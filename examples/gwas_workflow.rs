//! A complete GWAS-style workflow — the application the paper's §I leads
//! with ("LD is deployed to identify SNPs associated with certain traits").
//!
//! simulate cohort → simulate phenotype → association scan (popcounts on
//! the same packed substrate) → genomic-control check → LD clumping of the
//! hits (blocked r² engine) → report index SNPs.
//!
//! ```sh
//! cargo run --release --example gwas_workflow
//! ```

use gemm_ld::prelude::*;
use ld_assoc::{clump, genomic_lambda};

fn main() {
    // 1. Cohort: 4 000 haplotypes × 1 500 SNPs with realistic LD.
    let g = HaplotypeSimulator::new(4_000, 1_500)
        .seed(11)
        .founders(20)
        .generate();
    println!("cohort: {} haplotypes x {} SNPs", g.n_samples(), g.n_snps());

    // 2. Phenotype: two causal loci (choose common SNPs so power is high).
    let common: Vec<usize> = {
        let mut idx: Vec<usize> = (0..g.n_snps()).collect();
        idx.sort_by_key(|&j| {
            let ones = g.ones_in_snp(j);
            std::cmp::Reverse(ones.min(g.n_samples() as u64 - ones))
        });
        idx
    };
    let causal = [(common[0], 1.2), (common[1], 0.9)];
    println!(
        "planted causal SNPs: {} (beta 1.2), {} (beta 0.9)",
        causal[0].0, causal[1].0
    );
    let (_labels, case_mask) = PhenotypeSimulator::new(causal.to_vec())
        .prevalence(0.5)
        .noise_sd(1.0)
        .seed(12)
        .simulate(&g);

    // 3. Association scan: three popcounts per SNP.
    let t0 = std::time::Instant::now();
    let results = allelic_scan(&g.full_view(), &case_mask, 0);
    println!("scanned {} SNPs in {:?}", results.len(), t0.elapsed());

    // 4. Calibration: genomic-control lambda over all test statistics.
    let lambda = genomic_lambda(&results.iter().map(|r| r.chi2).collect::<Vec<_>>());
    println!("genomic-control lambda = {lambda:.3} (≈1 means well calibrated)");

    // 5. Hits at genome-wide-ish significance for this panel size.
    let p_cut = 0.05 / g.n_snps() as f64; // Bonferroni
    let n_hits = results.iter().filter(|r| r.p <= p_cut).count();
    println!("{n_hits} SNPs pass Bonferroni p <= {p_cut:.2e} (LD drags whole clumps under)");

    // 6. Clump the hits with the blocked r² engine.
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
    let clumps = clump(&g.full_view(), &results, &engine, p_cut, 0.3, 150);
    println!("\nindex SNPs after clumping (r² >= 0.3, window 150):");
    for c in clumps.iter().take(6) {
        println!(
            "  snp{:<5} p = {:.2e}  absorbed {} neighbours",
            c.index_snp,
            c.p,
            c.members.len()
        );
    }

    // 7. The causal loci must be recovered: each planted SNP should be an
    //    index SNP or inside an index SNP's clump.
    let recovered = causal
        .iter()
        .filter(|(snp, _)| {
            clumps
                .iter()
                .any(|c| c.index_snp == *snp || c.members.contains(snp))
        })
        .count();
    println!("\ncausal loci recovered in clumps: {recovered}/2");
    assert!(
        recovered >= 1,
        "at least the strong causal locus must be found"
    );
    assert!(
        clumps.len() < n_hits.max(1),
        "clumping must compress the hit list ({} clumps vs {} hits)",
        clumps.len(),
        n_hits
    );
}
