//! Finite-sites LD from a FASTA alignment — the paper's §VII "facilitating
//! finite sites models" extension, end to end.
//!
//! Real alignments carry more than two states per column, plus gaps and
//! ambiguity codes. This example builds an alignment with biallelic,
//! triallelic and gapped sites, runs Zaykin's T statistic (the paper's
//! Eq. 6) over all site pairs, and shows its agreement with r² on the
//! strictly biallelic subset.
//!
//! ```sh
//! cargo run --release --example finite_sites
//! ```

use gemm_ld::prelude::*;
use ld_ext::fsm::NucleotideMatrix;
use ld_io::fasta::{read_alignment, write_fasta, FastaRecord};
use ld_rng::SmallRng;

fn main() {
    // 1. Synthesize an alignment: 120 sequences × 80 sites.
    //    Sites 0..60: biallelic with block structure; 60..70: triallelic;
    //    70..80: biallelic with 5% gaps.
    let n_seq = 120usize;
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut cols: Vec<Vec<char>> = Vec::new();
    let mut pattern: Vec<bool> = (0..n_seq).map(|_| rng.gen()).collect();
    for j in 0..60 {
        if j % 10 == 0 {
            pattern = (0..n_seq).map(|_| rng.gen()).collect();
        }
        cols.push(
            pattern
                .iter()
                .map(|&p| {
                    if p ^ (rng.gen::<f64>() < 0.03) {
                        'A'
                    } else {
                        'G'
                    }
                })
                .collect(),
        );
    }
    for _ in 60..70 {
        cols.push(
            (0..n_seq)
                .map(|_| match rng.gen_range(0..3) {
                    0 => 'A',
                    1 => 'C',
                    _ => 'T',
                })
                .collect(),
        );
    }
    for _ in 70..80 {
        cols.push(
            (0..n_seq)
                .map(|_| {
                    if rng.gen::<f64>() < 0.05 {
                        '-'
                    } else if rng.gen() {
                        'C'
                    } else {
                        'T'
                    }
                })
                .collect(),
        );
    }
    let records: Vec<FastaRecord> = (0..n_seq)
        .map(|s| FastaRecord {
            id: format!("seq{s}"),
            seq: (0..80).map(|j| cols[j][s]).collect(),
        })
        .collect();

    // 2. Round-trip through FASTA (what a real pipeline would load).
    let mut buf = Vec::new();
    write_fasta(&mut buf, &records).unwrap();
    let aln = read_alignment(std::io::BufReader::new(buf.as_slice())).unwrap();
    println!(
        "alignment: {} sequences x {} sites, {} variable",
        aln.n_sequences(),
        aln.length(),
        aln.variable_sites().len()
    );

    // 3. FSM machinery: 4 bit-planes + validity mask.
    let m = NucleotideMatrix::from_site_columns(n_seq, aln.variable_columns());
    let tri = (0..m.n_sites())
        .filter(|&j| m.states_present(j) > 2)
        .count();
    println!(
        "sites with >2 states: {tri}; missing rate: {:.3}",
        m.mask().missing_rate()
    );

    // 4. All-pairs Zaykin T.
    let t0 = std::time::Instant::now();
    let t = m.t_matrix(0, NanPolicy::Zero);
    println!("Zaykin T over {} pairs in {:?}", t.n_values(), t0.elapsed());

    // 5. Within-block biallelic pairs score far above cross-block pairs.
    let (mut within, mut nw) = (0.0, 0);
    let (mut across, mut na) = (0.0, 0);
    for i in 0..60 {
        for j in i + 1..60 {
            let v = t.get(i, j);
            if i / 10 == j / 10 {
                within += v;
                nw += 1;
            } else {
                across += v;
                na += 1;
            }
        }
    }
    let (within, across) = (within / nw as f64, across / na as f64);
    println!("mean T within LD blocks: {within:.2}; across blocks: {across:.2}");
    assert!(within > 5.0 * across, "block structure must dominate");

    // 6. For biallelic pairs, T = N_valid · r² — verify on a gap-free pair.
    let (bi, kept) = aln.to_biallelic_matrix();
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
    let r2 = engine.r2_matrix(&bi);
    // sites 0 and 1 are biallelic and gap-free: find their positions in `kept`
    let k0 = kept
        .iter()
        .position(|&s| s == aln.variable_sites()[0])
        .unwrap();
    let k1 = kept
        .iter()
        .position(|&s| s == aln.variable_sites()[1])
        .unwrap();
    let expect = n_seq as f64 * r2.get(k0, k1);
    let got = t.get(0, 1);
    println!("biallelic pair check: T = {got:.3} vs N*r² = {expect:.3}");
    assert!((got - expect).abs() < 1e-6);

    println!("\nworst-case FSM cost is 16 popcount products per pair (4 states x 4 states),");
    println!("the 16x factor the paper quotes for finite-sites support.");
}
