//! Quickstart: simulate a cohort, compute all-pairs LD, inspect results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gemm_ld::prelude::*;
use ld_core::NanPolicy;

fn main() {
    // 1. Get data: 1 000 haplotypes × 400 SNPs with human-like LD structure.
    //    (Use ld_io to load real ms/VCF/PLINK files instead.)
    let g = HaplotypeSimulator::new(1_000, 400).seed(7).generate();
    println!(
        "simulated {} samples x {} SNPs, derived-allele density {:.3}",
        g.n_samples(),
        g.n_snps(),
        g.density()
    );

    // 2. Configure the engine. KernelKind::Auto picks the fastest
    //    micro-kernel the CPU supports (AVX-512 VPOPCNTQ > AVX2 > scalar).
    let engine = LdEngine::new()
        .kernel(KernelKind::Auto)
        .nan_policy(NanPolicy::Zero);

    // 3. All N(N+1)/2 r² values in one blocked GEMM.
    let t0 = std::time::Instant::now();
    let r2 = engine.r2_matrix(&g);
    let dt = t0.elapsed();
    println!("computed {} LD values in {dt:?}", r2.n_values());

    // 4. Query the triangle-packed result.
    println!(
        "r²(snp 0, snp 1)   = {:.4}  (adjacent: high LD expected)",
        r2.get(0, 1)
    );
    println!(
        "r²(snp 0, snp 399) = {:.4}  (distant: low LD expected)",
        r2.get(0, 399)
    );
    println!("mean off-diagonal  = {:.4}", r2.mean_offdiagonal());

    // 5. Strongest associations above a threshold.
    let mut top: Vec<_> = r2.pairs_at_least(0.8).collect();
    top.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\n{} pairs with r² >= 0.8; top 5:", top.len());
    for (i, j, v) in top.into_iter().take(5) {
        println!("  snp{i:<4} snp{j:<4} r² = {v:.4}");
    }

    // 6. Full per-pair statistics for one pair, without any matrix.
    let pair = engine.ld_pair(&g, 10, 11);
    println!(
        "\npair (10,11): p_i={:.3} p_j={:.3} P_ij={:.3} D={:+.4} D'={:.3} r²={:.3}",
        pair.p_i, pair.p_j, pair.p_ij, pair.d, pair.d_prime, pair.r2
    );
}
