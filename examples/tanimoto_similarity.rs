//! Chemical-fingerprint similarity screening — the paper's §VII domain
//! transfer (Eq. 7): Tanimoto coefficients are the same AND/POPCNT GEMM.
//!
//! Simulates a compound library with cluster structure, runs an all-vs-all
//! similarity screen through the blocked SYRK engine, and shows that
//! nearest neighbours recover the clusters.
//!
//! ```sh
//! cargo run --release --example tanimoto_similarity
//! ```

use gemm_ld::prelude::*;
use ld_data::fingerprints::clustered_fingerprints;
use ld_ext::tanimoto::{tanimoto_cross, tanimoto_matrix, top_k_neighbors};

fn main() {
    // 512 compounds, 2048-bit fingerprints, 16 structural clusters.
    const N: usize = 512;
    const CLUSTERS: usize = 16;
    let fp = clustered_fingerprints(N, 2048, CLUSTERS, 0.08, 0.01, 77);
    println!(
        "library: {} compounds x {} fingerprint bits (density {:.3})",
        fp.n_snps(),
        fp.n_samples(),
        fp.density()
    );

    // All-vs-all similarity in one blocked SYRK.
    let t0 = std::time::Instant::now();
    let sim = tanimoto_matrix(&fp.full_view(), KernelKind::Auto, 0);
    println!(
        "all-vs-all Tanimoto: {} values in {:?}",
        sim.n_values(),
        t0.elapsed()
    );

    // Cluster recovery via nearest neighbours (compound i belongs to
    // cluster i % CLUSTERS by construction).
    let v = fp.full_view();
    let cross = tanimoto_cross(&v, &v, KernelKind::Auto, 0);
    let nn = top_k_neighbors(&cross, 4); // self + top 3
    let mut correct = 0;
    let mut total = 0;
    for (i, row) in nn.iter().enumerate() {
        for &(j, _) in row.iter().filter(|(j, _)| *j != i).take(3) {
            total += 1;
            if j % CLUSTERS == i % CLUSTERS {
                correct += 1;
            }
        }
    }
    println!(
        "nearest-neighbour cluster purity: {}/{} ({:.1}%)",
        correct,
        total,
        100.0 * correct as f64 / total as f64
    );
    assert!(correct * 10 >= total * 9, "clusters should be recoverable");

    // Show one compound's neighbourhood.
    println!("\ncompound 0 (cluster 0) — top neighbours:");
    for &(j, s) in nn[0].iter().filter(|(j, _)| *j != 0).take(3) {
        println!(
            "  compound {j:<4} (cluster {:>2})  tanimoto = {s:.3}",
            j % CLUSTERS
        );
    }

    // Within- vs between-cluster similarity summary.
    let (mut within, mut between, mut nw, mut nb) = (0.0, 0.0, 0usize, 0usize);
    for (i, j, s) in sim.iter_pairs() {
        if i % CLUSTERS == j % CLUSTERS {
            within += s;
            nw += 1;
        } else {
            between += s;
            nb += 1;
        }
    }
    println!(
        "\nmean Tanimoto: within-cluster {:.3}, between-cluster {:.3}",
        within / nw as f64,
        between / nb as f64
    );
}
