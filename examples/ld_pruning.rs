//! GWAS-style LD pruning — the `plink --indep-pairwise` workflow.
//!
//! Association studies thin their SNP panels so that no retained pair
//! exceeds an r² threshold; every removal decision needs pairwise LD, which
//! is why PLINK's r² kernel is hot (paper §I, GWAS motivation).
//!
//! This example prunes greedily in sliding windows using the tiled engine
//! API, so the full r² matrix is never materialized.
//!
//! ```sh
//! cargo run --release --example ld_pruning
//! ```

use gemm_ld::prelude::*;
use ld_core::NanPolicy;

/// Greedy window pruning: within each window, drop the later SNP of any
/// pair with `r² > threshold` (keeping earlier = keeping the first tag).
fn prune(g: &ld_bitmat::BitMatrix, window: usize, step: usize, threshold: f64) -> Vec<usize> {
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
    let n = g.n_snps();
    let mut keep = vec![true; n];
    let mut start = 0;
    while start < n {
        let end = (start + window).min(n);
        let view = g.view(start, end);
        let r2 = engine.r2_matrix(view);
        for i in 0..end - start {
            if !keep[start + i] {
                continue;
            }
            for j in i + 1..end - start {
                if keep[start + j] && r2.get(i, j) > threshold {
                    keep[start + j] = false;
                }
            }
        }
        if end == n {
            break;
        }
        start += step;
    }
    (0..n).filter(|&i| keep[i]).collect()
}

fn main() {
    let g = HaplotypeSimulator::new(800, 1_000)
        .seed(31)
        .founders(12) // small panel -> heavy redundancy to prune
        .switch_rate(0.01)
        .generate();
    println!("panel: {} SNPs x {} haplotypes", g.n_snps(), g.n_samples());

    for threshold in [0.8, 0.5, 0.2] {
        let t0 = std::time::Instant::now();
        let kept = prune(&g, 100, 50, threshold);
        let dt = t0.elapsed();
        println!(
            "threshold r² > {threshold}: kept {} / {} SNPs ({:.1}%) in {dt:?}",
            kept.len(),
            g.n_snps(),
            100.0 * kept.len() as f64 / g.n_snps() as f64,
        );

        // Verify the pruning contract on the kept set (spot check within
        // the window range): no kept pair within a window exceeds the cut.
        let pruned = g.select_snps(&kept).expect("indices are valid");
        let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
        let mut violations = 0;
        engine.r2_tiled(&pruned, 128, |t| {
            for r in 0..t.rows {
                for c in 0..t.cols {
                    let (gi, gj) = (t.row_start + r, t.col_start + c);
                    // Pairs closer than one step are guaranteed to have
                    // shared a window, so pruning must have separated them.
                    if gi < gj
                        && kept[gj] - kept[gi] < 50
                        && t.values[r * t.cols + c] > threshold + 1e-9
                    {
                        violations += 1;
                    }
                }
            }
        });
        println!("  window-local pairs above threshold after pruning: {violations}");
    }
}
