//! Selective-sweep detection with the ω statistic — the OmegaPlus use
//! case that motivates fast LD (paper §I and §VI).
//!
//! Simulates a chromosome with a sweep planted at a known SNP, scans with
//! sliding ω windows, and prints an ASCII profile of the signal.
//!
//! ```sh
//! cargo run --release --example selective_sweep_scan
//! ```

use gemm_ld::prelude::*;
use ld_data::SweepSimulator;

fn main() {
    const N_SNPS: usize = 600;
    const SWEEP_AT: usize = 420;

    // Neutral background + sweep overlay at SNP 420.
    let base = HaplotypeSimulator::new(500, N_SNPS)
        .seed(2024)
        .founders(24)
        .switch_rate(0.08);
    let g = SweepSimulator::new(base, SWEEP_AT, 40)
        .carrier_fraction(0.85)
        .seed(9)
        .generate();
    println!(
        "chromosome: {} SNPs x {} haplotypes, sweep planted at SNP {SWEEP_AT}",
        g.n_snps(),
        g.n_samples()
    );

    // Scan: 80-SNP windows, advancing 10 SNPs; each window is one blocked
    // r² GEMM plus an O(S) split maximization. min_region keeps at least
    // 20 SNPs on each side of a candidate split, suppressing the
    // boundary artifacts small sub-regions produce.
    let scan = OmegaScan::new(80, 10)
        .min_region(20)
        .engine(LdEngine::new().kernel(KernelKind::Auto));
    let t0 = std::time::Instant::now();
    let points = scan.scan(&g);
    println!("scanned {} windows in {:?}\n", points.len(), t0.elapsed());

    // ASCII profile (log-scaled bars).
    let max_omega = points.iter().map(|p| p.omega).fold(0.0f64, f64::max);
    println!("window-center   omega");
    for p in &points {
        let center = (p.window_start + p.window_end) / 2;
        let bar_len = if max_omega > 0.0 {
            ((p.omega.max(1.0).ln() / max_omega.max(1.0).ln()) * 50.0) as usize
        } else {
            0
        };
        println!("{center:>6}  {:>9.2}  {}", p.omega, "#".repeat(bar_len));
    }

    let best = points
        .iter()
        .max_by(|a, b| a.omega.total_cmp(&b.omega))
        .expect("windows were scanned");
    println!(
        "\npeak omega = {:.2} with best split at SNP {} (true sweep: {SWEEP_AT})",
        best.omega, best.best_split
    );
    let err = best.best_split.abs_diff(SWEEP_AT);
    println!("localization error: {err} SNPs");
    // The sweep's flanks span ±40 SNPs; the strongest split must land
    // inside the affected region.
    assert!(
        err <= 45,
        "scan should land within the sweep region (err = {err})"
    );
}
