//! LD with alignment gaps / missing data — the paper's §VII extension.
//!
//! Real call sets have holes: failed genotype calls, alignment gaps,
//! low-quality masks. Dropping every sample with any missing call wastes
//! data; the §VII scheme instead computes each pair over its own
//! jointly-valid sample subset using validity bit-vectors and one extra
//! AND per word.
//!
//! This example knocks out 10 % of calls, compares the masked estimate
//! against the complete-data truth, and shows the bias of the naive
//! "treat missing as ancestral" approach.
//!
//! ```sh
//! cargo run --release --example missing_data
//! ```

use gemm_ld::prelude::*;
use ld_core::NanPolicy;
use ld_ext::gaps::masked_r2_matrix;
use ld_rng::SmallRng;

fn main() {
    let truth = HaplotypeSimulator::new(2_000, 150).seed(5).generate();
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
    let r2_true = engine.r2_matrix(&truth);

    // Knock out 10% of calls at random. The observed matrix keeps 0 in the
    // missing slots (what a naive pipeline would do).
    let mut rng = SmallRng::seed_from_u64(99);
    let mut observed = truth.clone();
    let mut mask = ValidityMask::all_valid(truth.n_samples(), truth.n_snps());
    let mut knocked = 0usize;
    for j in 0..truth.n_snps() {
        for s in 0..truth.n_samples() {
            if rng.gen::<f64>() < 0.10 {
                mask.set_missing(s, j);
                observed.set(s, j, false); // naive pipelines zero these
                knocked += 1;
            }
        }
    }
    println!(
        "{} of {} calls removed ({:.1}% missing)",
        knocked,
        truth.n_samples() * truth.n_snps(),
        100.0 * mask.missing_rate()
    );

    // Masked (per-pair effective N) vs naive (missing = ancestral).
    let t0 = std::time::Instant::now();
    let r2_masked = masked_r2_matrix(&observed.full_view(), &mask, 1, NanPolicy::Zero);
    println!("masked all-pairs r² in {:?}", t0.elapsed());
    let r2_naive = engine.r2_matrix(&observed);

    let rmse = |m: &LdMatrix| {
        let mut se = 0.0;
        let mut n = 0usize;
        for (i, j, v) in m.iter_pairs() {
            let t = r2_true.get(i, j);
            se += (v - t) * (v - t);
            n += 1;
        }
        (se / n as f64).sqrt()
    };
    let rmse_masked = rmse(&r2_masked);
    let rmse_naive = rmse(&r2_naive);
    println!("\nRMSE vs complete-data truth:");
    println!("  masked (SectionVII validity vectors): {rmse_masked:.4}");
    println!("  naive  (missing treated as 0-allele): {rmse_naive:.4}");
    println!(
        "  improvement: {:.1}x lower error",
        rmse_naive / rmse_masked
    );
    assert!(
        rmse_masked < rmse_naive,
        "the validity-vector estimator must beat the naive one"
    );

    // Per-pair view of what the mask buys.
    let (i, j) = (10, 11);
    println!("\npair ({i},{j}):");
    println!("  truth : r² = {:.4}", r2_true.get(i, j));
    println!("  masked: r² = {:.4}", r2_masked.get(i, j));
    println!("  naive : r² = {:.4}", r2_naive.get(i, j));
}
