//! Long-range LD between two SNP sets — the Fig. 4 configuration.
//!
//! The paper highlights that the GEMM formulation "can be deployed for
//! association studies between distant genes, as well as long-range LD
//! calculations": when the two SNP sets differ, all `m × n` values are
//! needed (no symmetric triangle). A classic application is detecting
//! coevolving, physically unlinked loci (Rohlfs et al., ref [2]).
//!
//! We simulate two "chromosomes" whose samples are shared, plant an
//! interaction (a group of SNPs on chromosome 2 that mirrors a group on
//! chromosome 1), and find it with one cross GEMM.
//!
//! ```sh
//! cargo run --release --example long_range_ld
//! ```

use gemm_ld::prelude::*;
use ld_core::NanPolicy;

fn main() {
    let n_samples = 600;
    let chr1 = HaplotypeSimulator::new(n_samples, 300).seed(101).generate();
    let mut chr2 = HaplotypeSimulator::new(n_samples, 250).seed(202).generate();

    // Plant coevolution: chr2 SNPs 100..105 copy chr1 SNPs 40..45 with a
    // little noise (an epistatic interaction maintained by selection).
    // ~0.5% mismatches: enough to avoid exact duplicates, small enough
    // that r² stays high even for low-frequency source SNPs.
    for (dst, src) in (100..105).zip(40..45) {
        for s in 0..n_samples {
            let v = chr1.get(s, src) ^ (s % 199 == 0);
            chr2.set(s, dst, v);
        }
    }

    let engine = LdEngine::new()
        .kernel(KernelKind::Auto)
        .nan_policy(NanPolicy::Zero);
    let t0 = std::time::Instant::now();
    let cross = engine.r2_cross(&chr1, &chr2);
    println!(
        "cross-chromosome LD: {} x {} = {} values in {:?}",
        cross.n_rows(),
        cross.n_cols(),
        cross.n_rows() * cross.n_cols(),
        t0.elapsed()
    );

    // Scan for unusually strong inter-chromosomal associations.
    let mut hits: Vec<(usize, usize, f64)> = cross.iter().filter(|&(_, _, v)| v > 0.5).collect();
    hits.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\ninter-chromosomal pairs with r² > 0.5: {}", hits.len());
    for &(i, j, v) in hits.iter().take(8) {
        println!("  chr1:snp{i:<4} ~ chr2:snp{j:<4}  r² = {v:.4}");
    }

    // The planted block must dominate the hit list.
    let planted = hits
        .iter()
        .filter(|&&(i, j, _)| (40..45).contains(&i) && (100..105).contains(&j))
        .count();
    println!("\nplanted interactions recovered: {planted}/5");
    assert!(planted >= 4, "the coevolving block should be detected");

    // Background check: a random far-apart pair should be near zero.
    println!("background r²(chr1:0, chr2:200) = {:.4}", cross.get(0, 200));
}
