#!/usr/bin/env python3
"""Validate Prometheus text exposition format v0.0.4 (stdlib only).

Structural checks over a scrape body (`gemm-ld serve --metrics-addr`,
the `metrics` opcode, or the golden file in crates/trace/tests/golden):

* every line is a comment, blank, or `name[{labels}] value` with a
  legal metric name, legal label syntax, and a parseable value;
* `# TYPE` appears at most once per metric, before its first sample,
  and is one of counter/gauge/histogram/summary/untyped;
* no duplicate (name, labels) sample;
* counter samples are finite and non-negative;
* histograms: per label-set, `le` buckets are cumulative
  (non-decreasing in bucket order), a `+Inf` bucket exists, the `+Inf`
  count equals the matching `_count` sample, and `_sum`/`_count` exist.

Usage: validate_prometheus.py <exposition.prom>   (or '-' for stdin)
Exit 0 when clean; nonzero with line-annotated messages otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(raw, lineno, errors):
    """`a="x",b="y"` -> ((a, x), (b, y)); appends errors on bad syntax."""
    out, pos = [], 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            errors.append(f"line {lineno}: bad label syntax at {raw[pos:]!r}")
            return tuple(out)
        out.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(f"line {lineno}: expected ',' in labels at {raw[pos:]!r}")
                return tuple(out)
            pos += 1
    return tuple(out)


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def base_name(name):
    """Histogram child series -> their parent metric name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text):
    errors = []
    types = {}          # metric -> declared type
    seen_sample = set() # (name, labels) duplicates
    first_sample = {}   # metric -> first sample line number
    samples = []        # (lineno, name, labels tuple, value)

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                metric, mtype = parts[2], parts[3].strip() if len(parts) > 3 else ""
                if mtype not in TYPES:
                    errors.append(f"line {lineno}: unknown TYPE {mtype!r} for {metric}")
                if metric in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {metric}")
                if metric in first_sample:
                    errors.append(
                        f"line {lineno}: TYPE for {metric} after its first sample"
                    )
                types[metric] = mtype
            continue
        # sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([^\s{]+)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?$", line)
        if not m:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name, raw_labels, value_text = m.group(1), m.group(3) or "", m.group(4)
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: illegal metric name {name!r}")
            continue
        labels = parse_labels(raw_labels, lineno, errors)
        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(f"line {lineno}: unparseable value {value_text!r}")
            continue
        key = (name, labels)
        if key in seen_sample:
            errors.append(f"line {lineno}: duplicate sample {name}{{{raw_labels}}}")
        seen_sample.add(key)
        metric = base_name(name) if base_name(name) in types else name
        first_sample.setdefault(metric, lineno)
        samples.append((lineno, name, labels, value))

    # type-specific checks
    histograms = {m for m, t in types.items() if t == "histogram"}
    counters = {m for m, t in types.items() if t == "counter"}
    buckets = {}  # (metric, labels-without-le) -> [(le, value, lineno)]
    counts = {}   # (metric, labels) -> value
    sums = set()  # (metric, labels)
    for lineno, name, labels, value in samples:
        if name in counters:
            if not (value >= 0):  # also catches NaN
                errors.append(f"line {lineno}: counter {name} has bad value {value}")
        parent = base_name(name)
        if parent in histograms and name != parent:
            rest = tuple(kv for kv in labels if kv[0] != "le")
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: {name} sample without le label")
                    continue
                try:
                    le_val = parse_value(le)
                except ValueError:
                    errors.append(f"line {lineno}: bad le bound {le!r}")
                    continue
                buckets.setdefault((parent, rest), []).append((le_val, value, lineno))
            elif name.endswith("_count"):
                counts[(parent, rest)] = value
            elif name.endswith("_sum"):
                sums.add((parent, rest))

    for (metric, rest), series in buckets.items():
        where = f"{metric}{{{','.join(f'{k}={v!r}' for k, v in rest)}}}"
        prev = None
        for le_val, value, lineno in series:  # file order == bucket order
            if prev is not None and value < prev:
                errors.append(
                    f"line {lineno}: {where} buckets not cumulative "
                    f"({value} < {prev})"
                )
            prev = value
        les = [le for le, _, _ in series]
        if not any(le == float("inf") for le in les):
            errors.append(f"{where}: histogram has no +Inf bucket")
        else:
            inf_val = next(v for le, v, _ in series if le == float("inf"))
            if (metric, rest) not in counts:
                errors.append(f"{where}: histogram has buckets but no _count")
            elif counts[(metric, rest)] != inf_val:
                errors.append(
                    f"{where}: +Inf bucket ({inf_val}) != _count "
                    f"({counts[(metric, rest)]})"
                )
        if (metric, rest) not in sums:
            errors.append(f"{where}: histogram has buckets but no _sum")

    return errors


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <exposition.prom | ->")
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    errors = validate(text)
    if errors:
        for e in errors:
            print(f"exposition violation: {e}", file=sys.stderr)
        sys.exit(1)
    n_samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"{sys.argv[1]}: valid Prometheus exposition ({n_samples} samples)")


if __name__ == "__main__":
    main()
