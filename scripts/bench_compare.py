#!/usr/bin/env python3
"""Bench-regression gate: diff a fresh bench JSON against its baseline.

Usage: scripts/bench_compare.py <baseline.json> <current.json> [--time-tol F]

The documents' top-level "bench" field selects the metric set: "fused"
(BENCH_fused.json, keyed per n_snps), "outofcore"
(BENCH_outofcore.json, keyed per budget label; gates wall seconds,
RSS high-water and the two analytic model metrics — streamed bytes and
derived slab height — exactly), or "serve" (BENCH_serve.json from
serve_load: gates request throughput direction-aware — only a *drop*
beyond the band fails — client p99 latency, and the telemetry-overhead
bound: the daemon with metrics endpoint + request log enabled must stay
within 3% of its own baseline throughput, measured A/B in-run; the
bench's own pass verdict must also hold).

Compares per-size metrics with per-metric tolerance bands and exits
nonzero naming every regressed metric. Policy:

  - config keys (n_samples, threads, the set of n_snps sizes) must match
    exactly — a mismatch means the runs are incomparable and the baseline
    must be regenerated (LD_BENCH_UPDATE_BASELINE=1 in ci.sh);
  - tuning parameters (kernel, block_kc/mc/nc, slab_rows, chunk_slabs)
    are compared but only WARN on mismatch: a machine with a cached
    `gemm-ld tune` profile legitimately runs different geometry than the
    committed baseline, and the warning contextualizes any timing delta
    instead of failing an otherwise-valid comparison;
  - model metrics (packed_mb, counts_model_mb, scratch_model_mb) are
    analytic functions of the config and must match to 1e-9: any drift is
    a real change in the memory model, not noise;
  - RSS high-water marks may grow by at most 25% plus a 32 MB absolute
    slack (allocator jitter dominates small sizes in absolute terms; a
    counts-matrix-sized jump at paper scale still trips the band);
  - wall times (fused_secs, twopass_secs) may regress by at most
    --time-tol (default 0.5 = +50%) plus a 50 ms absolute slack (a 6 ms
    size can double on scheduler noise alone; a half-second size
    cannot). The producing bench is already best-of-N, so the band only
    has to absorb machine noise, not rep noise. Improvements always
    pass.

Per-layer nanoseconds are reported but never gated: single-run layer
splits are too noisy to band tightly and the wall-time gate subsumes them.

No third-party imports — stdlib only, same constraint as the workspace.
"""

import json
import sys

# (metric key, kind) — kind selects the tolerance policy above.
GATED_FUSED = [
    ("fused_secs", "time"),
    ("twopass_secs", "time"),
    ("vm_hwm_after_fused_kb", "rss"),
    ("vm_hwm_after_twopass_kb", "rss"),
    ("packed_mb", "model"),
    ("counts_model_mb", "model"),
    ("scratch_model_mb", "model"),
]

# Out-of-core streaming bench: streamed_mb and slab_rows are analytic
# functions of the store geometry and the budget — exact; gbps_streamed
# is streamed_mb/secs, so the time gate subsumes it.
GATED_OOC = [
    ("secs", "time"),
    ("vm_hwm_kb", "rss"),
    ("streamed_mb", "model"),
    ("slab_rows", "model"),
]

# Serve daemon bench: throughput is direction-aware (only a drop
# fails), client p99 gets a wide band plus an absolute microsecond
# slack (loopback scheduling noise), and the in-run A/B telemetry
# overhead is an absolute bound, not a baseline diff.
GATED_SERVE = [
    ("load.throughput_rps", "throughput"),
    ("load.p99_us", "time_us"),
    ("telemetry.overhead_pct", "overhead_bound"),
]


def serve_rows(doc):
    """Flattens the nested BENCH_serve.json into one gate row."""
    load = doc.get("load", {})
    tel = doc.get("telemetry", {})
    return [{
        "label": "serve",
        "load.throughput_rps": load.get("throughput_rps", 0.0),
        "load.p99_us": load.get("p99_us", 0.0),
        "telemetry.overhead_pct": tel.get("overhead_pct", 100.0),
    }]


# Per-bench comparison spec, selected by the documents' "bench" field:
# which metrics to gate, which result field keys a row, and which
# top-level config keys must match exactly. "rows" (optional) adapts a
# document without a "results" list into gate rows.
BENCH_SPECS = {
    "fused": {
        "gated": GATED_FUSED,
        "row_key": "n_snps",
        "config": ("bench", "n_samples", "threads"),
    },
    "outofcore": {
        "gated": GATED_OOC,
        "row_key": "label",
        "config": ("bench", "n_samples", "threads", "n_snps", "chunk_snps"),
    },
    "serve": {
        "gated": GATED_SERVE,
        "row_key": "label",
        "config": ("bench", "n_samples", "n_snps", "clients",
                   "requests_per_client"),
        "rows": serve_rows,
    },
}

RSS_TOL = 0.25
RSS_SLACK_KB = 32768.0  # allocator jitter floor: 32 MB
TIME_SLACK_SECS = 0.05  # scheduler noise floor: 50 ms
TIME_SLACK_US = 2000.0  # loopback p99 noise floor: 2 ms
OVERHEAD_BOUND_PCT = 3.0  # telemetry plane must cost <= 3% throughput
MODEL_EPS = 1e-9

# Tuning parameters: mismatches warn (a tuned profile changes them) but
# never fail the gate. Absent keys (a baseline predating the autotuner)
# also only warn.
TUNING_KEYS = ("kernel", "block_kc", "block_mc", "block_nc",
               "slab_rows", "chunk_slabs")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_compare: {path} is not valid JSON: {e}")


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    time_tol = 0.5
    if "--time-tol" in argv:
        i = argv.index("--time-tol")
        try:
            time_tol = float(argv[i + 1])
            args.remove(argv[i + 1])
        except (IndexError, ValueError):
            sys.exit("bench_compare: --time-tol needs a number")
    if len(args) != 2:
        sys.exit(
            "usage: bench_compare.py <baseline.json> <current.json> [--time-tol F]"
        )
    base, cur = load(args[0]), load(args[1])

    spec = BENCH_SPECS.get(base.get("bench"), BENCH_SPECS["fused"])
    row_key = spec["row_key"]

    failures = []
    warnings = []
    for key in spec["config"]:
        if base.get(key) != cur.get(key):
            failures.append(
                f"config mismatch: {key} baseline={base.get(key)!r} "
                f"current={cur.get(key)!r} (regenerate the baseline)"
            )
    for key in TUNING_KEYS:
        bv, cv = base.get(key), cur.get(key)
        if bv != cv:
            warnings.append(
                f"tuning mismatch: {key} baseline={bv!r} current={cv!r} "
                "(a cached CPU profile changes the geometry; timings below "
                "compare different configurations)"
            )
    if base.get("bench") == "serve" and cur.get("pass") is not True:
        failures.append(
            "serve bench reported pass=false (hung or failed requests, "
            "overload shed floor, fault recovery, or restart check failed)"
        )
    rows_of = spec.get("rows", lambda doc: doc.get("results", []))
    base_sizes = {r[row_key]: r for r in rows_of(base)}
    cur_sizes = {r[row_key]: r for r in rows_of(cur)}
    if set(base_sizes) != set(cur_sizes):
        failures.append(
            f"config mismatch: {row_key} rows baseline={sorted(base_sizes)} "
            f"current={sorted(cur_sizes)} (regenerate the baseline)"
        )

    rows = []
    for n in sorted(set(base_sizes) & set(cur_sizes), key=str):
        b, c = base_sizes[n], cur_sizes[n]
        for key, kind in spec["gated"]:
            if key not in b or key not in c:
                failures.append(f"{key}[n={n}]: missing from one document")
                continue
            bv, cv = float(b[key]), float(c[key])
            if kind == "model":
                ok = abs(cv - bv) <= MODEL_EPS
                band = "exact"
            elif kind == "throughput":
                # direction-aware: only a drop beyond the band fails
                ok = cv >= bv * (1.0 - time_tol) - MODEL_EPS
                band = f"-{time_tol * 100:.0f}%"
            elif kind == "overhead_bound":
                # absolute bound on the in-run A/B measurement
                ok = cv <= OVERHEAD_BOUND_PCT + MODEL_EPS
                band = f"<={OVERHEAD_BOUND_PCT:.0f}%"
            elif kind == "time_us":
                ok = cv <= bv * (1.0 + time_tol) + TIME_SLACK_US \
                    or cv - bv <= MODEL_EPS
                band = f"+{time_tol * 100:.0f}%"
            else:
                tol = time_tol if kind == "time" else RSS_TOL
                slack = TIME_SLACK_SECS if kind == "time" else RSS_SLACK_KB
                ok = cv <= bv * (1.0 + tol) + slack or cv - bv <= MODEL_EPS
                band = f"+{tol * 100:.0f}%"
            ratio = cv / bv if bv else float("inf") if cv else 1.0
            rows.append((f"{key}[n={n}]", bv, cv, ratio, band, ok))
            if not ok:
                failures.append(
                    f"{key}[n={n}]: regressed {bv:.6g} -> {cv:.6g} "
                    f"({ratio:.2f}x, band {band})"
                )

    w = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{w}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>7}  {'band':>6}  verdict")
    for name, bv, cv, ratio, band, ok in rows:
        print(f"{name:<{w}}  {bv:>12.6g}  {cv:>12.6g}  "
              f"{ratio:>6.2f}x  {band:>6}  {'ok' if ok else 'FAIL'}")

    for w_msg in warnings:
        print(f"\nbench_compare WARNING: {w_msg}", file=sys.stderr)

    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(
            "  (intentional? rerun ci.sh with LD_BENCH_UPDATE_BASELINE=1 "
            "and commit the new baseline)",
            file=sys.stderr,
        )
        return 1
    print(f"\nbench_compare: all gated metrics within bands vs {args[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
