#!/usr/bin/env bash
# Offline CI gate for the gemm-ld workspace.
#
# Runs the full tier-1 pipeline with no network access:
#   1. rustfmt        — formatting is canonical
#   2. clippy         — all targets, warnings are errors
#   3. clippy (strict) — unwrap/expect denied in the panic-free crates
#   4. release build
#   5. workspace tests (quiet)
#   6. feature matrix — the compute stack passes with the `metrics`
#      instrumentation compiled out AND compiled in
#   7. zero-overhead guard — metrics-on and metrics-off CLI builds produce
#      byte-identical r² tables (threads 1/2/7), and `--profile=json`
#      validates against schemas/metrics.schema.json
#   8. perf smoke — the metrics-off build must not trail the metrics-on
#      build by > 2% (warning by default; CI_STRICT_PERF=1 makes it fatal)
#   9. interruption smoke — a deadline-carrying run must not trail a
#      plain run by > 2% (token/deadline polling is slab-granular, so
#      it must be free at kernel scale; same strictness switch)
#  10. kill/resume — `r2 --timeout 0 --checkpoint` must exit 5 with a
#      resume hint and a checkpoint on disk; the `--resume` rerun must
#      exit 0, produce a pair table byte-identical to a clean run, and
#      remove the checkpoint
#  11. malformed-input corpus through the CLI — every fixture must fail
#      with a nonzero exit and a single error line, never a panic
#  12. trace leg — `r2 --trace-out/--trace-report` must emit well-formed
#      Chrome trace-event JSON and a report that validates against
#      schemas/trace_report.schema.json with zero dropped events at the
#      default ring capacity; the flight recorder must cost <= 2% over
#      `--profile` alone (same CI_STRICT_PERF switch as step 8)
#  13. autotune leg — `tune --quick` writes a profile that validates
#      against schemas/cpu_profile.schema.json, a second run loads it
#      (verified by its slab geometry showing up in the metrics
#      counters), and tuned vs default r² tables are byte-identical
#  14. bench-regression gate — a fresh `fused` bench run is diffed
#      against results/baselines/BENCH_fused.json with per-metric
#      tolerance bands (scripts/bench_compare.py); rerun with
#      LD_BENCH_UPDATE_BASELINE=1 to refresh the baseline after an
#      intentional perf change (then commit it)
#  15. shard/merge leg — a 4-way `r2 --shard i/4` split stitched by
#      `merge` must be byte-identical to the one-shot pair table; a
#      merge missing one shard must exit 3 with a gap report naming the
#      shard to re-run and write nothing; a bit-flipped shard file must
#      be rejected by its CRC (exit 3, nothing written)
#  16. kill/retry leg — `run-sharded --fault-kill` SIGKILLs one shard
#      mid-run; the supervisor must classify the crash, retry it, and
#      still produce a panel byte-identical to the one-shot run, with
#      the crash+retry recorded in a manifest that validates against
#      schemas/shard_manifest.schema.json
#  17. out-of-core leg — `import` writes a chunked tile store whose
#      manifest validates against schemas/tile_manifest.schema.json;
#      `r2 --store` (budgeted, streaming) must be byte-identical to the
#      one-shot in-memory table, kill/resume on the store must
#      re-enter bit-identically, a bit-flipped chunk must be rejected
#      with exit 3 naming the chunk, and a fresh `outofcore` bench run
#      is gated against results/baselines/BENCH_outofcore.json (same
#      LD_BENCH_UPDATE_BASELINE refresh switch as step 14)
#  18. serve leg — the `serve_ci` driver spawns a real `gemm-ld serve`
#      daemon on a loopback port and proves: overload (1 slow worker,
#      depth-1 queue) splits into Ok + typed Shed responses with zero
#      hung connections; clients killed mid-request leave the pool
#      serving; SIGINT mid-load drains the in-flight region query —
#      whose bytes must equal the one-shot `r2 -o` table exactly — and
#      exits 0; an expired drain deadline exits 5 with the straggler
#      still receiving a typed response; finally the `serve_load`
#      fault-injection bench (malformed frames, half-open peers, a
#      SIGKILLed server) must pass end to end, and its BENCH_serve.json
#      is gated against results/baselines/BENCH_serve.json — request
#      throughput direction-aware, client p99 with an absolute slack,
#      and the in-run telemetry-overhead A/B bounded at 3% absolute
#      (same LD_BENCH_UPDATE_BASELINE refresh switch as step 14)
#  19. telemetry leg — a daemon with the full observability plane on
#      (--metrics-addr, --request-log, --trace-dump) is driven with real
#      load; the GET /metrics scrape and the `metrics` opcode must both
#      pass scripts/validate_prometheus.py and agree with each other
#      (equal gauges, monotone counters); SIGUSR1 must snapshot the live
#      flight recorder into a Perfetto-valid dump with the daemon still
#      serving; the request log must be schema-valid JSON-lines
#      (schemas/request_log.schema.json) with gap-free seq numbers and a
#      monotone lifecycle per request ending in exactly one terminal
#      event; SIGINT must still drain cleanly to exit 0
#
# Usage: scripts/ci.sh        (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

export CARGO_NET_OFFLINE=true
# The machine running CI may carry a cached `gemm-ld tune` profile or an
# LD_KERNEL override; every leg below must measure the committed defaults
# (the autotune leg re-enables the profile explicitly, in a private path).
export LD_NO_CPU_PROFILE=1
unset LD_KERNEL

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
# The library code of the compute/I/O stack must be panic-free on the
# error path: no unwrap/expect outside tests (lib targets only — test
# modules and doc examples may unwrap freely).
run cargo clippy --no-deps -p ld-core -p ld-parallel -p ld-io -p ld-bitmat -p ld-serve --offline -- \
    -D warnings -D clippy::unwrap-used -D clippy::expect-used
run cargo build --release --workspace --offline
run cargo test -q --workspace --offline

# Feature matrix: the workspace leg above unifies `metrics` ON (ld-cli and
# ld-bench default it); this leg pins the compiled-OUT build of the compute
# stack, then the explicit compiled-IN build of the same package set (which
# includes the metrics_invariants counter tests).
echo "==> feature matrix: compute stack with metrics compiled out"
run cargo test -q --offline -p ld-trace -p ld-kernels -p ld-parallel -p ld-io -p ld-core
echo "==> feature matrix: compute stack with metrics compiled in"
run cargo test -q --offline -p ld-trace -p ld-kernels -p ld-parallel -p ld-io -p ld-core \
    --features "ld-trace/metrics ld-kernels/metrics ld-parallel/metrics ld-io/metrics ld-core/metrics"

# Zero-overhead guard: the instrumentation must never change results.
# Build the CLI both ways, run the same simulated dataset through each at
# 1/2/7 threads, and require byte-identical pair tables; the metrics run
# also emits --profile=json for schema validation below.
echo "==> zero-overhead guard: metrics-on vs metrics-off bit-exactness"
run cargo build --release --offline -p ld-cli
cp target/release/gemm-ld target/release/gemm-ld.metrics
run cargo build --release --offline -p ld-cli --no-default-features
cp target/release/gemm-ld target/release/gemm-ld.nometrics
GUARD_SIM=target/ci-guard.ms
run target/release/gemm-ld.metrics simulate --samples 400 --snps 300 --seed 42 -o "$GUARD_SIM"
for T in 1 2 7; do
    target/release/gemm-ld.metrics r2 -i "$GUARD_SIM" --threads "$T" \
        --profile=json --profile-out "target/ci-profile-t$T.json" \
        -o "target/ci-on-t$T.tsv" 2>/dev/null
    # --trace-out on the metrics-off build exercises the compiled-out
    # recorder stubs: the flag must warn, not change a byte of output.
    target/release/gemm-ld.nometrics r2 -i "$GUARD_SIM" --threads "$T" \
        --trace-out "target/ci-off-trace-t$T.json" \
        -o "target/ci-off-t$T.tsv" 2>/dev/null
    if ! cmp -s "target/ci-on-t$T.tsv" "target/ci-off-t$T.tsv"; then
        echo "guard FAIL: metrics-on and metrics-off outputs differ (threads=$T)" >&2
        exit 1
    fi
done
echo "    metrics-on and metrics-off outputs byte-identical (threads 1/2/7, recorder stubs exercised)"

echo "==> schema validation: --profile=json vs schemas/metrics.schema.json"
if command -v python3 >/dev/null 2>&1; then
    for T in 1 2 7; do
        run python3 scripts/validate_metrics.py schemas/metrics.schema.json "target/ci-profile-t$T.json"
    done
else
    echo "    python3 unavailable; schema validation skipped"
fi

# Trace leg: the flight recorder must produce a well-formed Perfetto
# timeline and an analysis report that (a) validates against the stable
# schema and (b) dropped zero events at the default ring capacity.
echo "==> trace leg: --trace-out/--trace-report schema + zero-drop"
target/release/gemm-ld.metrics r2 -i "$GUARD_SIM" --threads 7 \
    --trace-out target/ci-trace.json \
    --trace-report target/ci-trace-report.json \
    -o target/ci-trace.tsv 2>/dev/null
if command -v python3 >/dev/null 2>&1; then
    run python3 scripts/validate_metrics.py schemas/trace_report.schema.json target/ci-trace-report.json
    python3 - <<'PYEOF'
import json, sys

rep = json.load(open("target/ci-trace-report.json"))
if rep["dropped"] != 0:
    sys.exit(f"trace leg FAIL: {rep['dropped']} events dropped at default ring capacity")
if rep["open_spans"] != 0:
    sys.exit(f"trace leg FAIL: {rep['open_spans']} spans never closed")
if abs(rep["share_sum"] - 1.0) > 0.01:
    sys.exit(f"trace leg FAIL: layer shares sum to {rep['share_sum']:.4f} (must be 1 within 1%)")
doc = json.load(open("target/ci-trace.json"))
evs = doc["traceEvents"]
need = {"ph", "pid", "tid"}
bad = [e for e in evs if not need <= e.keys()]
if bad:
    sys.exit(f"trace leg FAIL: {len(bad)} malformed trace events (missing {need})")
complete = [e for e in evs if e["ph"] == "X"]
if not complete:
    sys.exit("trace leg FAIL: no complete ('X') span events recorded")
if any("ts" not in e or "dur" not in e for e in complete):
    sys.exit("trace leg FAIL: complete events must carry ts + dur")
print(f"    {len(evs)} trace events ({len(complete)} spans), 0 dropped, report schema valid")
PYEOF
else
    echo "    python3 unavailable; trace validation skipped"
fi

# Perf smoke: with the feature compiled out the binary must be at least as
# fast as the instrumented one (the counters are supposed to be the only
# cost, and they are compiled to no-ops). Timing in CI is noisy, so a
# violation warns unless CI_STRICT_PERF=1.
echo "==> perf smoke: metrics-off vs metrics-on wall time"
PERF_SIM=target/ci-perf.ms
run target/release/gemm-ld.metrics simulate --samples 500 --snps 1500 --seed 7 -o "$PERF_SIM"
best_wall() {
    local bin=$1 best="" t
    shift
    for _ in 1 2 3 4 5; do
        t=$("$bin" r2 -i "$PERF_SIM" --threads 2 "$@" 2>&1 >/dev/null \
            | sed -n 's/.* in \([0-9.]*\)s .*/\1/p')
        if [ -z "$best" ] || awk -v a="$t" -v b="$best" 'BEGIN{exit !(a<b)}'; then
            best=$t
        fi
    done
    echo "$best"
}
ON_SECS=$(best_wall target/release/gemm-ld.metrics)
OFF_SECS=$(best_wall target/release/gemm-ld.nometrics)
echo "    best-of-5 wall: metrics-on ${ON_SECS}s, metrics-off ${OFF_SECS}s"
if awk -v on="$ON_SECS" -v off="$OFF_SECS" 'BEGIN{exit !(off > on * 1.02)}'; then
    echo "    WARNING: metrics-off slower than metrics-on by > 2% (noise or regression)"
    if [ "${CI_STRICT_PERF:-0}" = "1" ]; then
        exit 1
    fi
fi

# Recorder-overhead smoke: span recording is a handful of relaxed atomic
# stores per slab, so a traced run must cost <= 2% over `--profile` alone.
# Uses a larger problem than the perf smoke: the summary wall is printed
# at 1 ms resolution, so the run must be long enough that 2% is visible.
echo "==> recorder-overhead smoke: --trace-out vs --profile alone"
REC_SIM=target/ci-recorder.ms
run target/release/gemm-ld.metrics simulate --samples 500 --snps 6000 --seed 9 -o "$REC_SIM"
PERF_SIM_SAVED=$PERF_SIM
PERF_SIM=$REC_SIM
PROF_SECS=$(best_wall target/release/gemm-ld.metrics \
    --profile=json --profile-out target/ci-perf-prof.json)
TRACE_SECS=$(best_wall target/release/gemm-ld.metrics \
    --profile=json --profile-out target/ci-perf-prof.json \
    --trace-out target/ci-perf-trace.json)
PERF_SIM=$PERF_SIM_SAVED
echo "    best-of-5 wall: profile ${PROF_SECS}s, profile+trace ${TRACE_SECS}s"
if awk -v tr="$TRACE_SECS" -v pr="$PROF_SECS" 'BEGIN{exit !(tr > pr * 1.02)}'; then
    echo "    WARNING: recorder costs > 2% over --profile alone (noise or regression)"
    if [ "${CI_STRICT_PERF:-0}" = "1" ]; then
        exit 1
    fi
fi

# Interruption smoke: cancellation/deadline polling happens once per row
# slab, never inside the tile loops, so a run carrying a (never-firing)
# deadline must be indistinguishable from a plain run at kernel scale.
echo "==> interruption smoke: deadline-carrying vs plain wall time"
PLAIN_SECS=$(best_wall target/release/gemm-ld.metrics)
TOKEN_SECS=$(best_wall target/release/gemm-ld.metrics --timeout 3600)
echo "    best-of-5 wall: plain ${PLAIN_SECS}s, with --timeout 3600 ${TOKEN_SECS}s"
if awk -v tok="$TOKEN_SECS" -v plain="$PLAIN_SECS" 'BEGIN{exit !(tok > plain * 1.02)}'; then
    echo "    WARNING: deadline-carrying run slower than plain by > 2% (noise or regression)"
    if [ "${CI_STRICT_PERF:-0}" = "1" ]; then
        exit 1
    fi
fi

# Kill/resume: an interrupted checkpointed run must exit 5 with a resume
# hint and leave a snapshot; the resumed run must complete, match a clean
# (streamed) run byte-for-byte, and clean up its checkpoint.
echo "==> kill/resume: --timeout 0 checkpoint, then --resume to completion"
KR_BIN=target/release/gemm-ld.metrics
KR_SIM=target/ci-kr.ms
KR_CKPT=target/ci-kr.ckpt
run "$KR_BIN" simulate --samples 300 --snps 400 --seed 11 -o "$KR_SIM"
"$KR_BIN" r2 -i "$KR_SIM" --threads 2 -o target/ci-kr-clean.tsv 2>/dev/null
rm -f "$KR_CKPT"
set +e
"$KR_BIN" r2 -i "$KR_SIM" --threads 2 --timeout 0 --checkpoint "$KR_CKPT" \
    -o target/ci-kr-int.tsv 2>target/ci-kr-int.err
kr_status=$?
set -e
if [ "$kr_status" -ne 5 ]; then
    echo "kill/resume FAIL: interrupted run exited $kr_status (expected 5)" >&2
    cat target/ci-kr-int.err >&2
    exit 1
fi
if ! grep -q -- "--resume" target/ci-kr-int.err; then
    echo "kill/resume FAIL: stderr lacks the resume hint:" >&2
    cat target/ci-kr-int.err >&2
    exit 1
fi
if [ ! -f "$KR_CKPT" ]; then
    echo "kill/resume FAIL: no checkpoint at $KR_CKPT after interruption" >&2
    exit 1
fi
run "$KR_BIN" r2 -i "$KR_SIM" --threads 2 --checkpoint "$KR_CKPT" --resume \
    -o target/ci-kr-resumed.tsv
if ! cmp -s target/ci-kr-clean.tsv target/ci-kr-resumed.tsv; then
    echo "kill/resume FAIL: resumed pair table differs from the clean run" >&2
    exit 1
fi
if [ -f "$KR_CKPT" ]; then
    echo "kill/resume FAIL: checkpoint not removed after successful resume" >&2
    exit 1
fi
echo "    exit 5 + snapshot + bit-identical resume + checkpoint cleanup: OK"

# Autotune leg: `tune --quick` must produce a schema-valid, CRC-intact
# profile; a following r2 run must actually load it (its slab geometry
# shows up in the metrics counters); and because tuning only moves
# scheduling/blocking parameters, the tuned table must be byte-identical
# to the default one.
echo "==> autotune leg: tune --quick round-trip + bit-exactness"
TUNE_BIN=target/release/gemm-ld.metrics
TUNE_PROFILE=target/ci-tune-profile.json
TUNE_SIM=target/ci-tune.ms
rm -f "$TUNE_PROFILE"
run env LD_NO_CPU_PROFILE=0 LD_CPU_PROFILE="$TUNE_PROFILE" \
    "$TUNE_BIN" tune --quick --threads 2
if [ ! -f "$TUNE_PROFILE" ]; then
    echo "autotune FAIL: tune wrote no profile at $TUNE_PROFILE" >&2
    exit 1
fi
run "$TUNE_BIN" simulate --samples 300 --snps 250 --seed 13 -o "$TUNE_SIM"
env LD_NO_CPU_PROFILE=0 LD_CPU_PROFILE="$TUNE_PROFILE" \
    "$TUNE_BIN" r2 -i "$TUNE_SIM" --threads 2 \
    --profile=json --profile-out target/ci-tune-metrics.json \
    -o target/ci-tune-on.tsv 2>target/ci-tune-on.err
if grep -q "warning: ignoring CPU profile" target/ci-tune-on.err; then
    echo "autotune FAIL: the freshly tuned profile was rejected on load:" >&2
    cat target/ci-tune-on.err >&2
    exit 1
fi
"$TUNE_BIN" r2 -i "$TUNE_SIM" --threads 2 -o target/ci-tune-off.tsv 2>/dev/null
if ! cmp -s target/ci-tune-on.tsv target/ci-tune-off.tsv; then
    echo "autotune FAIL: tuned and default r2 tables differ" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    run python3 scripts/validate_metrics.py schemas/cpu_profile.schema.json "$TUNE_PROFILE"
    python3 - <<'PYEOF'
import json, math, sys

prof = json.load(open("target/ci-tune-profile.json"))
slab = prof["payload"]["tuned"]["slab_rows"]
met = json.load(open("target/ci-tune-metrics.json"))
if met.get("enabled"):
    got = met["counters"]["slabs_emitted"]
    want = math.ceil(250 / slab)
    if got != want:
        sys.exit(
            f"autotune FAIL: r2 emitted {got} slabs but the tuned profile's "
            f"slab_rows={slab} implies {want} — the profile was not applied"
        )
    print(f"    profile applied: slab_rows={slab} -> {got} slabs over 250 SNPs")
else:
    print("    (metrics disabled; slab-geometry check skipped)")
PYEOF
else
    echo "    python3 unavailable; profile schema validation skipped"
fi
echo "    tuned profile round-trips; tuned vs default tables byte-identical"

# Corpus step: feed every text-format fixture from the malformed-input
# corpus to the release CLI. Each must exit nonzero with an `error:`
# line on stderr and no panic backtrace.
echo "==> corpus: malformed inputs through the CLI"
BIN=target/release/gemm-ld
checked=0
for fixture in crates/io/tests/corpus/*.ms crates/io/tests/corpus/*.vcf crates/io/tests/corpus/*.txt; do
    set +e
    stderr=$("$BIN" r2 -i "$fixture" 2>&1 >/dev/null)
    status=$?
    set -e
    if [ "$status" -eq 0 ]; then
        echo "corpus FAIL: $fixture exited 0 (must be rejected)" >&2
        exit 1
    fi
    case "$stderr" in
        *"panicked at"*)
            echo "corpus FAIL: $fixture produced a panic backtrace:" >&2
            echo "$stderr" >&2
            exit 1
            ;;
        "error: "*) ;;
        *)
            echo "corpus FAIL: $fixture stderr lacks an 'error:' line:" >&2
            echo "$stderr" >&2
            exit 1
            ;;
    esac
    checked=$((checked + 1))
done
if [ "$checked" -lt 15 ]; then
    echo "corpus FAIL: only $checked fixtures checked (expected >= 15)" >&2
    exit 1
fi
echo "    $checked fixtures rejected cleanly"

# Bench-regression gate: run the fused bench (internally best-of-N per
# size) and diff it against the committed baseline with per-metric
# tolerance bands. LD_BENCH_UPDATE_BASELINE=1 refreshes the baseline
# instead (after an intentional perf change — commit the result).
echo "==> bench-regression gate: fused vs committed baseline"
BASELINE=results/baselines/BENCH_fused.json
rm -f BENCH_fused.json
run target/release/fused --threads 2
if [ "${LD_BENCH_UPDATE_BASELINE:-0}" = "1" ]; then
    cp BENCH_fused.json "$BASELINE"
    echo "    baseline refreshed: $BASELINE (commit it)"
elif command -v python3 >/dev/null 2>&1; then
    run python3 scripts/bench_compare.py "$BASELINE" BENCH_fused.json
else
    echo "    python3 unavailable; bench-regression gate skipped"
fi

# Shard/merge leg: splitting a run across processes must be invisible in
# the output. A 4-way --shard split stitched by `merge` has to reproduce
# the one-shot pair table byte for byte; damaged or incomplete shard sets
# must be rejected before anything is written.
echo "==> shard/merge: 4-way split must merge byte-identical to one-shot"
SH_BIN=target/release/gemm-ld.metrics
SH_SIM=target/ci-shard.ms
run "$SH_BIN" simulate --samples 500 --snps 3000 --seed 17 -o "$SH_SIM"
"$SH_BIN" r2 -i "$SH_SIM" --threads 2 --min-r2 0 -o target/ci-shard-one.tsv 2>/dev/null
for I in 1 2 3 4; do
    run "$SH_BIN" r2 -i "$SH_SIM" --threads 2 --min-r2 0 --slab-rows 32 \
        --shard "$I/4" -o "target/ci-shard-$I.bin"
done
run "$SH_BIN" merge target/ci-shard-1.bin target/ci-shard-2.bin \
    target/ci-shard-3.bin target/ci-shard-4.bin \
    --min-r2 0 -i "$SH_SIM" -o target/ci-shard-merged.tsv
if ! cmp -s target/ci-shard-one.tsv target/ci-shard-merged.tsv; then
    echo "shard/merge FAIL: merged panel differs from the one-shot run" >&2
    exit 1
fi
echo "    4-way shard set merged byte-identical to the one-shot table"

echo "==> shard/merge: incomplete set must exit 3 with a gap report"
rm -f target/ci-shard-gap.tsv
set +e
"$SH_BIN" merge target/ci-shard-1.bin target/ci-shard-2.bin --shards 4 \
    -o target/ci-shard-gap.tsv 2>target/ci-shard-gap.err
gap_status=$?
set -e
if [ "$gap_status" -ne 3 ]; then
    echo "shard/merge FAIL: gap merge exited $gap_status (expected 3)" >&2
    cat target/ci-shard-gap.err >&2
    exit 1
fi
if ! grep -q "missing" target/ci-shard-gap.err \
    || ! grep -q "re-run shard" target/ci-shard-gap.err; then
    echo "shard/merge FAIL: stderr lacks the gap report:" >&2
    cat target/ci-shard-gap.err >&2
    exit 1
fi
if [ -f target/ci-shard-gap.tsv ]; then
    echo "shard/merge FAIL: incomplete merge wrote a partial panel" >&2
    exit 1
fi
echo "    incomplete set rejected with a gap report, nothing written"

echo "==> shard/merge: bit-flipped shard file must be rejected by CRC"
cp target/ci-shard-2.bin target/ci-shard-bad.bin
bad_size=$(wc -c < target/ci-shard-bad.bin)
bad_off=$((bad_size / 2))
printf '\xAA' | dd of=target/ci-shard-bad.bin bs=1 seek="$bad_off" conv=notrunc 2>/dev/null
if cmp -s target/ci-shard-2.bin target/ci-shard-bad.bin; then
    # the original byte was already 0xAA; flip to its complement instead
    printf '\x55' | dd of=target/ci-shard-bad.bin bs=1 seek="$bad_off" conv=notrunc 2>/dev/null
fi
rm -f target/ci-shard-flip.tsv
set +e
"$SH_BIN" merge target/ci-shard-1.bin target/ci-shard-bad.bin \
    target/ci-shard-3.bin target/ci-shard-4.bin \
    -o target/ci-shard-flip.tsv 2>target/ci-shard-flip.err
flip_status=$?
set -e
if [ "$flip_status" -eq 0 ] || [ -f target/ci-shard-flip.tsv ]; then
    echo "shard/merge FAIL: bit-flipped shard was accepted (exit $flip_status)" >&2
    exit 1
fi
if ! grep -qi "CRC" target/ci-shard-flip.err; then
    echo "shard/merge FAIL: stderr does not name the CRC failure:" >&2
    cat target/ci-shard-flip.err >&2
    exit 1
fi
echo "    bit-flipped shard rejected by CRC (exit $flip_status), nothing written"

# Kill/retry leg: the supervisor's own fault harness SIGKILLs shard 1 on
# its first attempt ~25 ms in. The run must still converge: crash
# classified, shard retried after backoff, final panel byte-identical to
# the one-shot run, and the whole story recorded in a schema-valid
# manifest.
echo "==> shard supervisor: SIGKILL one shard mid-run, retry, identical panel"
SUP_DIR=target/ci-sup.shards
rm -rf "$SUP_DIR"
run "$SH_BIN" run-sharded -i "$SH_SIM" -o target/ci-sup.tsv --shards 2 \
    --threads 2 --min-r2 0 --retries 2 --backoff-ms 50 --fault-kill 1 \
    --work-dir "$SUP_DIR"
if ! cmp -s target/ci-shard-one.tsv target/ci-sup.tsv; then
    echo "supervisor FAIL: sharded panel differs from the one-shot run" >&2
    exit 1
fi
if command -v python3 >/dev/null 2>&1; then
    run python3 scripts/validate_metrics.py schemas/shard_manifest.schema.json "$SUP_DIR/manifest.json"
    python3 - <<'PYEOF'
import json, sys

man = json.load(open("target/ci-sup.shards/manifest.json"))
if man["interrupted"]:
    sys.exit("supervisor FAIL: manifest marked interrupted after a clean finish")
states = {s["shard"]: s for s in man["shard_states"]}
s1 = states[1]
if "crash" not in s1["classifications"]:
    sys.exit(f"supervisor FAIL: shard 1 never crashed ({s1['classifications']}) "
             "— the fault injection did not land")
if s1["state"] != "done" or s1["attempts"] < 2:
    sys.exit(f"supervisor FAIL: shard 1 not retried to completion: {s1}")
if any(s["state"] != "done" for s in states.values()):
    sys.exit(f"supervisor FAIL: unfinished shards in manifest: {man['shard_states']}")
print(f"    shard 1 crashed and was retried ({s1['attempts']} attempts); "
      "all shards done, manifest schema-valid")
PYEOF
else
    echo "    python3 unavailable; manifest validation skipped"
fi
echo "    SIGKILLed shard retried; final panel byte-identical to one-shot"

# Out-of-core leg: the tile store must be invisible in the output. A
# streamed, memory-budgeted `r2 --store` run has to reproduce the
# one-shot in-memory pair table byte for byte; the manifest must
# validate against its schema; kill/resume must re-enter bit-identically
# without a fresh start; and a damaged chunk must be a typed exit-3
# error that names the chunk.
echo "==> out-of-core: import + streamed r2 must match the one-shot table"
OOC_DIR=target/ci-ooc.store
rm -rf "$OOC_DIR"
run "$SH_BIN" import -i "$SH_SIM" --store "$OOC_DIR" --chunk-snps 256
if command -v python3 >/dev/null 2>&1; then
    run python3 scripts/validate_metrics.py schemas/tile_manifest.schema.json "$OOC_DIR/manifest.json"
else
    echo "    python3 unavailable; tile-manifest schema validation skipped"
fi
run "$SH_BIN" r2 --store "$OOC_DIR" --threads 2 --min-r2 0 \
    --memory-budget-mb 1 -o target/ci-ooc.tsv
if ! cmp -s target/ci-shard-one.tsv target/ci-ooc.tsv; then
    echo "out-of-core FAIL: streamed table differs from the one-shot run" >&2
    exit 1
fi
echo "    budgeted streamed table byte-identical to the one-shot run"

echo "==> out-of-core: kill/resume on the store must be bit-identical"
OOC_CK=target/ci-ooc.ckpt
rm -f "$OOC_CK" target/ci-ooc-resumed.tsv
set +e
"$SH_BIN" r2 --store "$OOC_DIR" --threads 2 --min-r2 0 --timeout 0 \
    --checkpoint "$OOC_CK" -o target/ci-ooc-resumed.tsv 2>target/ci-ooc-kill.err
ooc_kill_status=$?
set -e
if [ "$ooc_kill_status" -ne 5 ] || [ ! -f "$OOC_CK" ]; then
    echo "out-of-core FAIL: killed run exited $ooc_kill_status (expected 5 + checkpoint)" >&2
    cat target/ci-ooc-kill.err >&2
    exit 1
fi
run "$SH_BIN" r2 --store "$OOC_DIR" --threads 2 --min-r2 0 \
    --checkpoint "$OOC_CK" --resume -o target/ci-ooc-resumed.tsv
if ! cmp -s target/ci-shard-one.tsv target/ci-ooc-resumed.tsv; then
    echo "out-of-core FAIL: resumed table differs from the one-shot run" >&2
    exit 1
fi
if [ -f "$OOC_CK" ]; then
    echo "out-of-core FAIL: completed resume left its checkpoint behind" >&2
    exit 1
fi
echo "    killed at slab 0, resumed to a byte-identical table"

echo "==> out-of-core: bit-flipped chunk must be rejected, naming the chunk"
OOC_CHUNK="$OOC_DIR/chunk_000002.bin"
ooc_size=$(wc -c < "$OOC_CHUNK")
ooc_off=$((ooc_size / 2))
printf '\xAA' | dd of="$OOC_CHUNK" bs=1 seek="$ooc_off" conv=notrunc 2>/dev/null
set +e
"$SH_BIN" r2 --store "$OOC_DIR" --threads 2 -o target/ci-ooc-bad.tsv \
    2>target/ci-ooc-bad.err
ooc_bad_status=$?
set -e
if [ "$ooc_bad_status" -ne 3 ]; then
    echo "out-of-core FAIL: damaged chunk exited $ooc_bad_status (expected 3)" >&2
    cat target/ci-ooc-bad.err >&2
    exit 1
fi
if ! grep -q "chunk 2" target/ci-ooc-bad.err; then
    echo "out-of-core FAIL: stderr does not name the damaged chunk:" >&2
    cat target/ci-ooc-bad.err >&2
    exit 1
fi
echo "    damaged chunk rejected (exit 3), error names chunk 2"

# Out-of-core bench gate: same policy as step 14.
echo "==> bench-regression gate: outofcore vs committed baseline"
OOC_BASELINE=results/baselines/BENCH_outofcore.json
rm -f BENCH_outofcore.json
run target/release/outofcore --threads 2
if [ "${LD_BENCH_UPDATE_BASELINE:-0}" = "1" ]; then
    cp BENCH_outofcore.json "$OOC_BASELINE"
    echo "    baseline refreshed: $OOC_BASELINE (commit it)"
elif command -v python3 >/dev/null 2>&1; then
    run python3 scripts/bench_compare.py "$OOC_BASELINE" BENCH_outofcore.json
else
    echo "    python3 unavailable; bench-regression gate skipped"
fi

# Serve leg: the query daemon must degrade, never fall over. The
# serve_ci driver spawns real `gemm-ld serve` processes and checks the
# overload/drain/exit-code contract end to end; `cmp` then holds the
# region bytes it captured mid-drain against the one-shot CLI table.
# serve_load adds concurrent load plus wire-level fault injection
# (malformed frames, half-open peers, killed clients, a SIGKILLed
# server) and emits BENCH_serve.json.
echo "==> serve: overload sheds, killed clients, SIGINT drain, exit codes"
SERVE_SIM=target/ci-serve.ms
SERVE_ONESHOT=target/ci-serve-oneshot.tsv
SERVE_REGION=target/ci-serve-region.tsv
run "$SH_BIN" simulate --samples 200 --snps 160 --seed 23 -o "$SERVE_SIM"
run "$SH_BIN" r2 -i "$SERVE_SIM" --threads 2 -o "$SERVE_ONESHOT"
run target/release/serve_ci --gemm-ld "$SH_BIN" --input "$SERVE_SIM" \
    --region-out "$SERVE_REGION"
if ! cmp -s "$SERVE_ONESHOT" "$SERVE_REGION"; then
    echo "serve FAIL: drained region response differs from the one-shot table" >&2
    exit 1
fi
echo "    in-flight region drained byte-identical to the one-shot table"

echo "==> serve: concurrent load + fault injection (serve_load)"
rm -f BENCH_serve.json
run target/release/serve_load --gemm-ld "$SH_BIN"

# Serve bench gate: same policy as steps 14/17. Throughput is gated
# direction-aware (only drops fail), client p99 gets the microsecond
# slack band, and the in-run telemetry A/B must stay within the
# absolute 3% bound regardless of baseline drift.
echo "==> bench-regression gate: serve vs committed baseline"
SERVE_BASELINE=results/baselines/BENCH_serve.json
if [ "${LD_BENCH_UPDATE_BASELINE:-0}" = "1" ]; then
    cp BENCH_serve.json "$SERVE_BASELINE"
    echo "    baseline refreshed: $SERVE_BASELINE (commit it)"
elif command -v python3 >/dev/null 2>&1; then
    run python3 scripts/bench_compare.py "$SERVE_BASELINE" BENCH_serve.json
else
    echo "    python3 unavailable; bench-regression gate skipped"
fi

# Telemetry leg: a real daemon with the whole observability plane on —
# Prometheus HTTP endpoint, metrics opcode, structured request log,
# armed flight recorder — driven by real load, then inspected from the
# outside like an operator would.
echo "==> telemetry: /metrics scrape + opcode, SIGUSR1 dump, request log"
if ! command -v python3 >/dev/null 2>&1; then
    echo "    python3 unavailable; telemetry leg skipped"
else
    TEL_LOG=target/ci-tel-requests.jsonl
    TEL_DUMP=target/ci-tel-dump.json
    TEL_OUT=target/ci-tel-serve.out
    rm -f "$TEL_LOG" "$TEL_DUMP" "$TEL_OUT" target/ci-tel-serve.err
    "$SH_BIN" serve bench="$SERVE_SIM" --addr 127.0.0.1:0 \
        --metrics-addr 127.0.0.1:0 --request-log "$TEL_LOG" \
        --trace-dump "$TEL_DUMP" --slow-ms 10000 --preload \
        >"$TEL_OUT" 2>target/ci-tel-serve.err &
    TEL_PID=$!
    for _ in $(seq 1 100); do
        grep -q "^metrics on " "$TEL_OUT" 2>/dev/null && break
        sleep 0.1
    done
    TEL_ADDR=$(sed -n 's/^listening on //p' "$TEL_OUT")
    TEL_MADDR=$(sed -n 's/^metrics on //p' "$TEL_OUT")
    if [ -z "$TEL_ADDR" ] || [ -z "$TEL_MADDR" ]; then
        echo "telemetry FAIL: daemon did not announce both addresses:" >&2
        cat "$TEL_OUT" target/ci-tel-serve.err >&2
        kill "$TEL_PID" 2>/dev/null || true
        exit 1
    fi
    # Real load through the LDS1 socket (phase-1 clients, attach mode).
    run target/release/serve_load --attach "$TEL_ADDR" --snps 160
    # Scrape the HTTP endpoint first, the opcode second: the opcode
    # counters must then be >= the scrape's (counters are monotone).
    python3 - "$TEL_MADDR" >target/ci-tel-http.prom <<'PYEOF'
import http.client, sys
host, port = sys.argv[1].rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=5)
conn.request("GET", "/metrics")
resp = conn.getresponse()
if resp.status != 200:
    sys.exit(f"telemetry FAIL: GET /metrics returned {resp.status}")
ctype = resp.getheader("Content-Type") or ""
if "version=0.0.4" not in ctype:
    sys.exit(f"telemetry FAIL: bad /metrics content-type {ctype!r}")
sys.stdout.write(resp.read().decode())
PYEOF
    echo "==> $SH_BIN monitor $TEL_ADDR --raw"
    "$SH_BIN" monitor "$TEL_ADDR" --raw >target/ci-tel-op.prom
    run python3 scripts/validate_prometheus.py target/ci-tel-http.prom
    run python3 scripts/validate_prometheus.py target/ci-tel-op.prom
    python3 - target/ci-tel-http.prom target/ci-tel-op.prom <<'PYEOF'
import sys

def samples(path):
    out = {}
    for line in open(path):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_labels, value = line.rsplit(None, 1)
        out[name_labels] = float(value)
    return out

http_s, op_s = samples(sys.argv[1]), samples(sys.argv[2])
for gauge in ("gemm_ld_workers", "gemm_ld_registry_budget_bytes"):
    if http_s.get(gauge) != op_s.get(gauge):
        sys.exit(f"telemetry FAIL: {gauge} differs between HTTP scrape "
                 f"({http_s.get(gauge)}) and metrics opcode ({op_s.get(gauge)})")
mono = [k for k in http_s if k.endswith("_total")]
bad = [k for k in mono if k in op_s and op_s[k] + 1e-9 < http_s[k]]
if bad:
    sys.exit(f"telemetry FAIL: counters went backwards between scrapes: {bad}")
acc = "gemm_ld_requests_accepted_total"
if http_s.get(acc, 0) < 320:
    sys.exit(f"telemetry FAIL: {acc}={http_s.get(acc)} after 320-request load")
print(f"    HTTP scrape and metrics opcode mutually consistent "
      f"({len(mono)} counters monotone, {acc}={op_s.get(acc):.0f})")
PYEOF
    # SIGUSR1 must snapshot the live recorder into a Perfetto-valid file
    # without disturbing the daemon.
    kill -USR1 "$TEL_PID"
    for _ in $(seq 1 100); do
        [ -s "$TEL_DUMP" ] && break
        sleep 0.1
    done
    if [ ! -s "$TEL_DUMP" ]; then
        echo "telemetry FAIL: no trace dump at $TEL_DUMP after SIGUSR1" >&2
        kill "$TEL_PID" 2>/dev/null || true
        exit 1
    fi
    python3 - "$TEL_DUMP" <<'PYEOF'
import json, sys

doc = json.load(open(sys.argv[1]))
evs = doc["traceEvents"]
if not evs:
    sys.exit("telemetry FAIL: SIGUSR1 dump is empty (the recorder is armed "
             "before --preload, so panel-compute spans must be present)")
need = {"ph", "pid", "tid"}
bad = [e for e in evs if not need <= e.keys()]
if bad:
    sys.exit(f"telemetry FAIL: {len(bad)} malformed trace events in the dump")
print(f"    SIGUSR1 dump: {len(evs)} Perfetto events, structure valid")
PYEOF
    # The daemon must still be serving after the dump, and drain on
    # SIGINT with exit 0.
    "$SH_BIN" monitor "$TEL_ADDR" --raw >/dev/null
    kill -INT "$TEL_PID"
    set +e
    wait "$TEL_PID"
    tel_status=$?
    set -e
    if [ "$tel_status" -ne 0 ]; then
        echo "telemetry FAIL: daemon exited $tel_status on SIGINT (expected 0)" >&2
        cat target/ci-tel-serve.err >&2
        exit 1
    fi
    # Request log: every line schema-valid JSON, per-request lifecycle
    # ordering monotone with exactly one terminal event, seq gap-free.
    python3 - "$TEL_LOG" <<'PYEOF'
import json, sys

sys.path.insert(0, "scripts")
from validate_metrics import validate

schema = json.load(open("schemas/request_log.schema.json"))
RANK = {"accept": 0, "admit": 1, "shed": 1, "start": 2,
        "timeout": 3, "panic": 3, "finish": 4}
TERMINAL = {"shed", "timeout", "finish"}
per_id = {}
n = 0
for n, line in enumerate(open(sys.argv[1]), 1):
    try:
        ev = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"telemetry FAIL: request log line {n} is not JSON: {e}")
    errs = validate(ev, schema)
    if errs:
        sys.exit(f"telemetry FAIL: request log line {n}: " + "; ".join(errs))
    if ev["seq"] != n - 1:
        sys.exit(f"telemetry FAIL: line {n} has seq={ev['seq']} (gap)")
    per_id.setdefault(ev["id"], []).append(ev)
if n < 320 * 2:
    sys.exit(f"telemetry FAIL: only {n} log lines after a 320-request load")
for rid, evs in per_id.items():
    ranks = [RANK[e["event"]] for e in evs]
    if ranks != sorted(ranks) or len(set(ranks)) != len(ranks):
        sys.exit(f"telemetry FAIL: request {rid} lifecycle out of order: "
                 f"{[e['event'] for e in evs]}")
    if evs[0]["event"] != "accept":
        sys.exit(f"telemetry FAIL: request {rid} does not start with accept")
    terms = [e for e in evs if e["event"] in TERMINAL]
    if len(terms) != 1:
        sys.exit(f"telemetry FAIL: request {rid} has {len(terms)} terminal "
                 f"events: {[e['event'] for e in evs]}")
    monos = [e["mono_ns"] for e in evs]
    if monos != sorted(monos):
        sys.exit(f"telemetry FAIL: request {rid} mono_ns not monotone")
print(f"    request log: {n} lines schema-valid, {len(per_id)} lifecycles "
      "ordered, one terminal each")
PYEOF
    echo "    telemetry plane verified end to end (scrape, opcode, dump, log)"
fi

echo "==> CI green"
