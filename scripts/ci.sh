#!/usr/bin/env bash
# Offline CI gate for the gemm-ld workspace.
#
# Runs the full tier-1 pipeline with no network access:
#   1. rustfmt        — formatting is canonical
#   2. clippy         — all targets, warnings are errors
#   3. clippy (strict) — unwrap/expect denied in the panic-free crates
#   4. release build
#   5. workspace tests (quiet)
#   6. malformed-input corpus through the CLI — every fixture must fail
#      with a nonzero exit and a single error line, never a panic
#
# Usage: scripts/ci.sh        (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

export CARGO_NET_OFFLINE=true

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
# The library code of the compute/I/O stack must be panic-free on the
# error path: no unwrap/expect outside tests (lib targets only — test
# modules and doc examples may unwrap freely).
run cargo clippy --no-deps -p ld-core -p ld-parallel -p ld-io -p ld-bitmat --offline -- \
    -D warnings -D clippy::unwrap-used -D clippy::expect-used
run cargo build --release --workspace --offline
run cargo test -q --workspace --offline

# Corpus step: feed every text-format fixture from the malformed-input
# corpus to the release CLI. Each must exit nonzero with an `error:`
# line on stderr and no panic backtrace.
echo "==> corpus: malformed inputs through the CLI"
BIN=target/release/gemm-ld
checked=0
for fixture in crates/io/tests/corpus/*.ms crates/io/tests/corpus/*.vcf crates/io/tests/corpus/*.txt; do
    set +e
    stderr=$("$BIN" r2 -i "$fixture" 2>&1 >/dev/null)
    status=$?
    set -e
    if [ "$status" -eq 0 ]; then
        echo "corpus FAIL: $fixture exited 0 (must be rejected)" >&2
        exit 1
    fi
    case "$stderr" in
        *"panicked at"*)
            echo "corpus FAIL: $fixture produced a panic backtrace:" >&2
            echo "$stderr" >&2
            exit 1
            ;;
        "error: "*) ;;
        *)
            echo "corpus FAIL: $fixture stderr lacks an 'error:' line:" >&2
            echo "$stderr" >&2
            exit 1
            ;;
    esac
    checked=$((checked + 1))
done
if [ "$checked" -lt 15 ]; then
    echo "corpus FAIL: only $checked fixtures checked (expected >= 15)" >&2
    exit 1
fi
echo "    $checked fixtures rejected cleanly"

echo "==> CI green"
