#!/usr/bin/env bash
# Offline CI gate for the gemm-ld workspace.
#
# Runs the full tier-1 pipeline with no network access:
#   1. rustfmt      — formatting is canonical
#   2. clippy       — all targets, warnings are errors
#   3. release build
#   4. workspace tests (quiet)
#
# Usage: scripts/ci.sh        (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

export CARGO_NET_OFFLINE=true

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --workspace --offline
run cargo test -q --workspace --offline

echo "==> CI green"
