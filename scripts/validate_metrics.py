#!/usr/bin/env python3
"""Validate a JSON document against the subset of JSON Schema that
schemas/metrics.schema.json uses.

This workspace builds offline with no third-party packages, so instead of
depending on `jsonschema` we implement the handful of keywords the metrics
schema needs: type (incl. union types), required, properties,
additionalProperties (boolean false), items, enum, minimum, and local
``$ref`` into ``#/definitions/...``.

Beyond the structural schema, one semantic invariant is enforced on
instrumented documents: ``cancel_polls == slabs_emitted``. The fused
drivers poll the cancellation token exactly once per computed slab
(never inside the tile loops), so the two counters move in lock-step;
a divergence means a poll was added at the wrong granularity.

Usage: validate_metrics.py <schema.json> <document.json>
Exit 0 on success; nonzero with a path-annotated message otherwise.
"""

import json
import sys


def type_ok(value, tname):
    if tname == "object":
        return isinstance(value, dict)
    if tname == "array":
        return isinstance(value, list)
    if tname == "string":
        return isinstance(value, str)
    if tname == "boolean":
        return isinstance(value, bool)
    if tname == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if tname == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if tname == "null":
        return value is None
    raise ValueError(f"unsupported schema type: {tname}")


def resolve_ref(ref, root):
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, path="$", root=None):
    if root is None:
        root = schema
    if "$ref" in schema:
        schema = resolve_ref(schema["$ref"], root)
    errors = []
    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        if not any(type_ok(value, t) for t in types):
            errors.append(f"{path}: expected {types}, got {type(value).__name__}")
            return errors  # type mismatch: deeper checks are meaningless
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property '{key}'")
        if schema.get("additionalProperties", True) is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected property '{key}'")
        for key, sub in props.items():
            if key in value:
                errors.extend(validate(value[key], sub, f"{path}.{key}", root))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]", root))
    return errors


def semantic_checks(doc):
    """Cross-counter invariants the schema cannot express."""
    errors = []
    if not isinstance(doc, dict) or not doc.get("enabled"):
        return errors  # uninstrumented build: counters are all zero anyway
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        return errors  # structural validation already reports this
    polls = counters.get("cancel_polls")
    slabs = counters.get("slabs_emitted")
    if isinstance(polls, int) and isinstance(slabs, int) and polls != slabs:
        errors.append(
            f"$.counters: cancel_polls ({polls}) != slabs_emitted ({slabs}) "
            "— token polling must be exactly slab-granular"
        )
    lat = doc.get("request_latency")
    if isinstance(lat, dict):
        count = lat.get("count")
        buckets = lat.get("buckets")
        p50, p99 = lat.get("p50_ns"), lat.get("p99_ns")
        if isinstance(count, int) and isinstance(buckets, list) \
                and all(isinstance(b, int) for b in buckets) \
                and sum(buckets) != count:
            errors.append(
                f"$.request_latency: count ({count}) != sum of buckets "
                f"({sum(buckets)})"
            )
        if count == 0 and (p50 is not None or p99 is not None):
            errors.append(
                "$.request_latency: quantiles must be null when count is 0"
            )
        if isinstance(count, int) and count > 0:
            if p50 is None or p99 is None:
                errors.append(
                    "$.request_latency: quantiles must be present when "
                    "requests were recorded"
                )
            elif p50 > p99:
                errors.append(
                    f"$.request_latency: p50_ns ({p50}) > p99_ns ({p99})"
                )
    return errors


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <schema.json> <document.json>")
    with open(sys.argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        doc = json.load(f)
    errors = validate(doc, schema)
    errors.extend(semantic_checks(doc))
    if errors:
        for e in errors:
            print(f"schema violation: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"{sys.argv[2]}: valid against {sys.argv[1]}")


if __name__ == "__main__":
    main()
