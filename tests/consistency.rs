//! Cross-crate consistency: every implementation in the workspace computes
//! the same LD — the blocked GEMM engine, the OmegaPlus-style pairwise
//! kernel, the PLINK-style genotype kernel (on homozygous lifts), and the
//! naive byte loop — across kernels, thread counts and data shapes.

use gemm_ld::prelude::*;
use ld_baselines::{ByteMatrix, OmegaPlusKernel, PlinkKernel};
use ld_bitmat::GenotypeMatrix;
use ld_core::NanPolicy;
use ld_kernels::micro::supported_kernels;

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() < tol || (a.is_nan() && b.is_nan())
}

fn sim(n_samples: usize, n_snps: usize, seed: u64) -> ld_bitmat::BitMatrix {
    HaplotypeSimulator::new(n_samples, n_snps)
        .seed(seed)
        .generate()
}

#[test]
fn four_implementations_agree() {
    let g = sim(320, 40, 1);
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
    let gemm = engine.r2_matrix(&g);
    let omega = OmegaPlusKernel::new()
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&g.full_view(), 2);
    let naive = ByteMatrix::from_bitmatrix(&g).r2_matrix(2, NanPolicy::Zero);
    let plink = PlinkKernel::new()
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&GenotypeMatrix::from_haplotypes_as_homozygous(&g), 2);
    for i in 0..40 {
        for j in i..40 {
            let a = gemm.get(i, j);
            assert!(close(a, omega.get(i, j), 1e-10), "omega ({i},{j})");
            assert!(close(a, naive.get(i, j), 1e-10), "naive ({i},{j})");
            assert!(close(a, plink.get(i, j), 1e-6), "plink ({i},{j})");
        }
    }
}

#[test]
fn every_kernel_gives_identical_counts() {
    let g = sim(777, 30, 2);
    let reference = LdEngine::new().kernel(KernelKind::Scalar).counts_matrix(&g);
    for k in supported_kernels() {
        let counts = LdEngine::new().kernel(k.kind()).counts_matrix(&g);
        assert_eq!(counts, reference, "kernel {}", k.kind());
    }
}

#[test]
fn threads_never_change_results() {
    let g = sim(150, 60, 3);
    let one = LdEngine::new()
        .threads(1)
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&g);
    for t in [2usize, 3, 7, 16] {
        let many = LdEngine::new()
            .threads(t)
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&g);
        assert_eq!(one.packed(), many.packed(), "threads = {t}");
    }
}

#[test]
fn word_boundary_sample_counts() {
    // 63/64/65 samples cross the packing boundary; every path must agree.
    for n_samples in [63usize, 64, 65, 127, 128, 129] {
        let g = sim(n_samples, 12, n_samples as u64);
        let gemm = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        let omega = OmegaPlusKernel::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&g.full_view(), 1);
        for i in 0..12 {
            for j in i..12 {
                assert!(
                    close(gemm.get(i, j), omega.get(i, j), 1e-10),
                    "samples={n_samples} ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn cross_and_square_engines_consistent() {
    let g = sim(200, 50, 4);
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
    let square = engine.r2_matrix(&g);
    let cross = engine.r2_cross(g.view(0, 20), g.view(20, 50));
    for i in 0..20 {
        for j in 0..30 {
            assert!(
                close(cross.get(i, j), square.get(i, 20 + j), 1e-12),
                "({i},{j})"
            );
        }
    }
}

#[test]
fn diagonal_r2_is_one_for_polymorphic_sites() {
    let g = sim(500, 80, 5);
    let r2 = LdEngine::new().r2_matrix(&g);
    for j in 0..80 {
        assert!((r2.get(j, j) - 1.0).abs() < 1e-12, "snp {j}");
    }
}

#[test]
fn tanimoto_agrees_with_ld_counts_identity() {
    // Tanimoto and r² both come from the same counts matrix; check the
    // arithmetic relation x/(p+q-x) on real counts.
    let fp = ld_data::fingerprints::random_fingerprints(30, 512, 0.1, 6);
    let counts = LdEngine::new().counts_matrix(&fp);
    let sim = ld_ext::tanimoto::tanimoto_matrix(&fp.full_view(), KernelKind::Auto, 1);
    let n = 30;
    for i in 0..n {
        for j in i..n {
            let (p, q, x) = (
                counts[i * n + i] as f64,
                counts[j * n + j] as f64,
                counts[i * n + j] as f64,
            );
            let want = if p + q - x == 0.0 {
                1.0
            } else {
                x / (p + q - x)
            };
            assert!(close(sim.get(i, j), want, 1e-12), "({i},{j})");
        }
    }
}

#[test]
fn masked_matches_unmasked_when_all_valid() {
    let g = sim(100, 25, 7);
    let mask = ValidityMask::all_valid(100, 25);
    let masked = ld_ext::gaps::masked_r2_matrix(&g.full_view(), &mask, 2, NanPolicy::Zero);
    let plain = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
    for (i, j, v) in plain.iter_upper() {
        assert!(close(v, masked.get(i, j), 1e-12), "({i},{j})");
    }
}
