//! Integration + property tests for the §VII/§VIII extension layers.
//! Seeded `ld-rng` cases replace `proptest` (unavailable offline).

use gemm_ld::prelude::*;
use ld_core::NanPolicy;
use ld_ext::gaps::masked_r2_matrix;
use ld_ext::gaps_blocked::masked_r2_matrix_blocked;
use ld_rng::SmallRng;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-10 || (a.is_nan() && b.is_nan())
}

#[test]
fn blocked_and_pairwise_masked_ld_agree() {
    let mut rng = SmallRng::seed_from_u64(0xe1);
    for case in 0..20 {
        let n_samples = rng.gen_range(2usize..200);
        let n_snps = rng.gen_range(2usize..20);
        let seed = rng.gen_range(0u64..10_000);
        let missing_pct = rng.gen_range(0u64..40);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let mut mask = ValidityMask::all_valid(n_samples, n_snps);
        let mut s = seed | 1;
        for j in 0..n_snps {
            for smp in 0..n_samples {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s % 100 < missing_pct {
                    mask.set_missing(smp, j);
                }
            }
        }
        let pairwise = masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Propagate);
        let blocked = masked_r2_matrix_blocked(
            &g.full_view(),
            &mask,
            KernelKind::Auto,
            2,
            NanPolicy::Propagate,
        );
        for i in 0..n_snps {
            for j in i..n_snps {
                assert!(
                    close(pairwise.get(i, j), blocked.get(i, j)),
                    "case {case}: ({i},{j}): {} vs {}",
                    pairwise.get(i, j),
                    blocked.get(i, j)
                );
            }
        }
    }
}

#[test]
fn tanimoto_and_r2_rank_similar_pairs_together() {
    let mut rng = SmallRng::seed_from_u64(0xe2);
    for case in 0..20 {
        let seed = rng.gen_range(0u64..10_000);
        // both similarity notions must agree that a column is most similar
        // to its own duplicate
        let fp = ld_data::fingerprints::random_fingerprints(10, 256, 0.2, seed);
        let dup = fp.select_snps(&[0]).unwrap();
        let h = fp.hstack(&dup).unwrap();
        let sim = ld_ext::tanimoto::tanimoto_matrix(&h.full_view(), KernelKind::Auto, 1);
        let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&h);
        // column 10 duplicates column 0
        assert!((sim.get(0, 10) - 1.0).abs() < 1e-12, "case {case}");
        assert!((r2.get(0, 10) - 1.0).abs() < 1e-10, "case {case}");
        for j in 1..10 {
            assert!(sim.get(0, j) <= 1.0 + 1e-12, "case {case}: j={j}");
        }
    }
}

#[test]
fn third_order_d_is_bounded() {
    let mut rng = SmallRng::seed_from_u64(0xe3);
    for case in 0..20 {
        let n_samples = rng.gen_range(4usize..150);
        let seed = rng.gen_range(0u64..10_000);
        // |D_ABC| ≤ 1 always (it is a difference of probabilities and
        // probability products); usually far smaller
        let g = HaplotypeSimulator::new(n_samples, 6).seed(seed).generate();
        let v = g.full_view();
        for i in 0..6 {
            for j in i + 1..6 {
                for k in j + 1..6 {
                    let d3 = ld_ext::third_order_d(&v, i, j, k);
                    assert!(d3.abs() <= 1.0 + 1e-12, "case {case}: ({i},{j},{k}) = {d3}");
                }
            }
        }
    }
}

#[test]
fn masked_blocked_handles_heavy_missingness() {
    // 60% missing: per-pair intersections get small; both paths agree
    let g = HaplotypeSimulator::new(300, 15).seed(9).generate();
    let mut mask = ValidityMask::all_valid(300, 15);
    let mut s = 11u64;
    for j in 0..15 {
        for smp in 0..300 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s % 5 < 3 {
                mask.set_missing(smp, j);
            }
        }
    }
    let a = masked_r2_matrix(&g.full_view(), &mask, 2, NanPolicy::Zero);
    let b = masked_r2_matrix_blocked(
        &g.full_view(),
        &mask,
        KernelKind::Scalar,
        1,
        NanPolicy::Zero,
    );
    for (i, j, v) in a.iter_upper() {
        assert!(close(v, b.get(i, j)), "({i},{j})");
    }
}

#[test]
fn ld_matrix_binary_round_trip_through_engine() {
    let g = HaplotypeSimulator::new(200, 40).seed(10).generate();
    let m = LdEngine::new().r2_matrix(&g); // NaN policy default: propagate
    let mut buf = Vec::new();
    ld_io::ldmatrix::write_ld_matrix(&mut buf, &m).unwrap();
    let back = ld_io::ldmatrix::read_ld_matrix(buf.as_slice()).unwrap();
    for (i, j, v) in m.iter_upper() {
        let w = back.get(i, j);
        assert!(v.to_bits() == w.to_bits(), "({i},{j})");
    }
}

#[test]
fn ped_map_pipeline_matches_bed_pipeline() {
    // same cohort through both PLINK container formats
    let haps = HaplotypeSimulator::new(60, 12).seed(12).generate();
    let genos = ld_bitmat::GenotypeMatrix::from_haplotype_pairs(&haps).unwrap();
    let alleles: Vec<(char, char)> = (0..12).map(|_| ('A', 'G')).collect();
    let individuals = ld_io::ped::synthetic_individuals(genos.n_individuals());

    let mut ped_buf = Vec::new();
    ld_io::ped::write_ped(&mut ped_buf, &individuals, &genos, &alleles).unwrap();
    let ped = ld_io::ped::read_ped(ped_buf.as_slice(), 12).unwrap();

    let mut bed_buf = Vec::new();
    ld_io::bed::write_bed(&mut bed_buf, &genos).unwrap();
    let bed = ld_io::bed::read_bed(bed_buf.as_slice(), genos.n_individuals(), 12).unwrap();

    // r² through the PLINK kernel must match across container formats
    let a = ld_baselines::PlinkKernel::new()
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&ped.genotypes, 1);
    let b = ld_baselines::PlinkKernel::new()
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&bed, 1);
    assert_eq!(a.packed(), b.packed());
}
