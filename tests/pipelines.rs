//! End-to-end pipeline tests: simulate → serialize → parse → analyze,
//! through every file format and both statistics layers.

use gemm_ld::prelude::*;
use ld_bitmat::GenotypeMatrix;
use ld_core::NanPolicy;
use ld_io::{bed, ms, text, vcf};
use std::io::BufReader;

fn sim(n_samples: usize, n_snps: usize, seed: u64) -> ld_bitmat::BitMatrix {
    HaplotypeSimulator::new(n_samples, n_snps)
        .seed(seed)
        .generate()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gemm_ld_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn ms_round_trip_preserves_ld() {
    let g = sim(90, 40, 1);
    let rep = ms::MsReplicate {
        positions: (0..40).map(|j| j as f64 / 40.0).collect(),
        matrix: g.clone(),
    };
    let mut buf = Vec::new();
    ms::write_ms(&mut buf, std::slice::from_ref(&rep)).unwrap();
    let back = ms::read_ms_first(buf.as_slice()).unwrap();
    assert_eq!(back.matrix, g);
    let a = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
    let b = LdEngine::new()
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&back.matrix);
    assert_eq!(a.packed(), b.packed());
}

#[test]
fn vcf_pipeline_diploid() {
    let g = sim(60, 20, 2); // 60 haplotypes = 30 diploid samples
    let sites = vcf::synthetic_sites(20, 500);
    let mut buf = Vec::new();
    vcf::write_vcf(&mut buf, &g, &sites, 2).unwrap();
    let parsed = vcf::read_vcf(buf.as_slice()).unwrap();
    assert_eq!(parsed.ploidy, 2);
    assert_eq!(parsed.samples.len(), 30);
    assert_eq!(parsed.matrix, g);
    assert_eq!(parsed.sites.len(), 20);
    // no missing data was written
    assert_eq!(parsed.mask.missing_rate(), 0.0);
}

#[test]
fn plink_triple_to_r2() {
    let d = tmpdir("plink");
    let haps = sim(80, 15, 3);
    let genos = GenotypeMatrix::from_haplotypes_as_homozygous(&haps);
    let (bim, fam) = bed::synthetic_metadata(&genos);
    bed::write_plink_triple(d.join("cohort"), &genos, &bim, &fam).unwrap();

    let (g2, bim2, fam2) = bed::read_plink_triple(d.join("cohort")).unwrap();
    assert_eq!(bim2.len(), 15);
    assert_eq!(fam2.len(), 80);
    // PLINK kernel on the round-tripped genotypes equals engine on source
    let plink = ld_baselines::PlinkKernel::new()
        .nan_policy(NanPolicy::Zero)
        .r2_matrix(&g2, 1);
    let engine = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&haps);
    for i in 0..15 {
        for j in i..15 {
            assert!(
                (plink.get(i, j) - engine.get(i, j)).abs() < 1e-6,
                "({i},{j})"
            );
        }
    }
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn r2_table_export_and_reload() {
    let g = sim(100, 30, 4);
    let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
    let mut buf = Vec::new();
    text::write_r2_table(&mut buf, &r2, 0.3).unwrap();
    let rows = text::read_r2_table(BufReader::new(buf.as_slice())).unwrap();
    // every exported row matches the matrix and meets the threshold
    for row in &rows {
        assert!(row.r2 >= 0.3);
        assert!((row.r2 - r2.get(row.snp_a, row.snp_b)).abs() < 1e-5);
    }
    // and the export is complete
    let expected = r2.pairs_at_least(0.3).count();
    assert_eq!(rows.len(), expected);
}

#[test]
fn sweep_pipeline_ms_to_omega() {
    // simulate sweep -> write ms -> read back -> omega scan finds it
    let base = HaplotypeSimulator::new(200, 160)
        .seed(5)
        .founders(32)
        .switch_rate(0.2);
    let g = ld_data::SweepSimulator::new(base, 80, 20)
        .seed(6)
        .generate();
    let rep = ms::MsReplicate {
        positions: (0..160).map(|j| j as f64 / 160.0).collect(),
        matrix: g,
    };
    let mut buf = Vec::new();
    ms::write_ms(&mut buf, std::slice::from_ref(&rep)).unwrap();
    let back = ms::read_ms_first(buf.as_slice()).unwrap();
    let best = OmegaScan::new(40, 8).scan_max(&back.matrix).unwrap();
    assert!(
        (60..=100).contains(&best.best_split),
        "sweep at 80 missed: split {} omega {}",
        best.best_split,
        best.omega
    );
}

#[test]
fn text_matrix_to_tanimoto() {
    let fp = ld_data::fingerprints::clustered_fingerprints(16, 256, 4, 0.1, 0.02, 7);
    let mut buf = Vec::new();
    text::write_matrix(&mut buf, &fp).unwrap();
    let back = text::read_matrix(BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(back, fp);
    let sim_mat = ld_ext::tanimoto::tanimoto_matrix(&back.full_view(), KernelKind::Auto, 1);
    // same-cluster compounds (i, i+4) are more similar than (i, i+1)
    let mut within = 0.0;
    let mut between = 0.0;
    for i in 0..8 {
        within += sim_mat.get(i, i + 4);
        between += sim_mat.get(i, i + 1);
    }
    assert!(within > between, "within {within} between {between}");
}

#[test]
fn vcf_with_missing_data_flows_into_masked_ld() {
    let s = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\tB\tC\tD\n\
             1\t100\t.\tA\tC\t.\t.\t.\tGT\t1\t1\t0\t0\n\
             1\t200\t.\tA\tC\t.\t.\t.\tGT\t1\t1\t0\t.\n";
    let v = vcf::read_vcf(s.as_bytes()).unwrap();
    assert_eq!(v.ploidy, 1);
    assert!(!v.mask.is_valid(3, 1));
    let r2 = ld_ext::gaps::masked_r2_matrix(&v.matrix.full_view(), &v.mask, 1, NanPolicy::Zero);
    // Over the 3 jointly-valid samples the SNPs are identical -> r² = 1.
    assert!((r2.get(0, 1) - 1.0).abs() < 1e-12);
}
