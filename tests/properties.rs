//! Workspace-level property tests: statistical invariants that must hold
//! across the whole stack on arbitrary simulated inputs.
//! Seeded `ld-rng` cases replace `proptest` (unavailable offline).

use gemm_ld::prelude::*;
use ld_baselines::OmegaPlusKernel;
use ld_core::NanPolicy;
use ld_rng::SmallRng;

fn engine() -> LdEngine {
    LdEngine::new().nan_policy(NanPolicy::Zero)
}

#[test]
fn r2_bounded_and_symmetric_on_simulated_data() {
    let mut rng = SmallRng::seed_from_u64(0xf1);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..300);
        let n_snps = rng.gen_range(2usize..40);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let r2 = engine().r2_matrix(&g);
        for (i, j, v) in r2.iter_upper() {
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&v),
                "case {case}: ({i},{j}) = {v}"
            );
            assert_eq!(
                r2.get(i, j).to_bits(),
                r2.get(j, i).to_bits(),
                "case {case}"
            );
        }
    }
}

#[test]
fn gemm_equals_pairwise_on_simulated_data() {
    let mut rng = SmallRng::seed_from_u64(0xf2);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..250);
        let n_snps = rng.gen_range(2usize..30);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let a = engine().r2_matrix(&g);
        let b = OmegaPlusKernel::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&g.full_view(), 1);
        for (i, j, v) in a.iter_upper() {
            assert!((v - b.get(i, j)).abs() < 1e-10, "case {case}: ({i},{j})");
        }
    }
}

#[test]
fn duplicating_a_snp_gives_perfect_ld() {
    let mut rng = SmallRng::seed_from_u64(0xf3);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..200);
        let n_snps = rng.gen_range(2usize..20);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let pick = rng.gen_range(0usize..20) % n_snps;
        let dup = g.select_snps(&[pick]).unwrap();
        let h = g.hstack(&dup).unwrap(); // last column duplicates `pick`
        let r2 = engine().r2_matrix(&h);
        assert!((r2.get(pick, n_snps) - 1.0).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn permuting_samples_preserves_ld() {
    let mut rng = SmallRng::seed_from_u64(0xf4);
    for case in 0..24 {
        let n_samples = rng.gen_range(4usize..150);
        let n_snps = rng.gen_range(2usize..16);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        // rotate samples by 1 (a permutation)
        let rows: Vec<Vec<u8>> = (0..n_samples)
            .map(|s| g.sample_to_bytes((s + 1) % n_samples))
            .collect();
        let p = ld_bitmat::BitMatrix::from_rows(n_samples, n_snps, rows.iter()).unwrap();
        let a = engine().r2_matrix(&g);
        let b = engine().r2_matrix(&p);
        for (i, j, v) in a.iter_upper() {
            assert!((v - b.get(i, j)).abs() < 1e-12, "case {case}: ({i},{j})");
        }
    }
}

#[test]
fn complementing_a_snp_preserves_r2() {
    let mut rng = SmallRng::seed_from_u64(0xf5);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..150);
        let n_snps = rng.gen_range(2usize..16);
        let seed = rng.gen_range(0u64..10_000);
        // r² is invariant under allele relabeling (0 <-> 1 at one SNP)
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let mut flipped = g.clone();
        for s in 0..n_samples {
            flipped.set(s, 0, !g.get(s, 0));
        }
        let a = engine().r2_matrix(&g);
        let b = engine().r2_matrix(&flipped);
        for j in 1..n_snps {
            assert!(
                (a.get(0, j) - b.get(0, j)).abs() < 1e-10,
                "case {case}: j={j}"
            );
        }
    }
}

#[test]
fn omega_is_nonnegative_and_finite_on_neutral_data() {
    let mut rng = SmallRng::seed_from_u64(0xf6);
    for case in 0..24 {
        let n_samples = rng.gen_range(8usize..120);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, 24).seed(seed).generate();
        let r2 = engine().r2_matrix(&g);
        let (omega, split) = ld_omega::omega_max(&r2);
        assert!(omega >= 0.0, "case {case}");
        assert!((1..24).contains(&split), "case {case}");
    }
}

#[test]
fn tanimoto_triangle_like_bound() {
    let mut rng = SmallRng::seed_from_u64(0xf7);
    for case in 0..24 {
        let count = rng.gen_range(3usize..20);
        let seed = rng.gen_range(0u64..10_000);
        // Tanimoto distance (1 - T) obeys the triangle inequality; spot
        // check triples through the GEMM path.
        let fp = ld_data::fingerprints::random_fingerprints(count, 128, 0.3, seed);
        let t = ld_ext::tanimoto::tanimoto_matrix(&fp.full_view(), KernelKind::Auto, 1);
        for a in 0..count.min(6) {
            for b in 0..count.min(6) {
                for c in 0..count.min(6) {
                    let dab = 1.0 - t.get(a, b);
                    let dbc = 1.0 - t.get(b, c);
                    let dac = 1.0 - t.get(a, c);
                    assert!(dac <= dab + dbc + 1e-9, "case {case}: ({a},{b},{c})");
                }
            }
        }
    }
}
