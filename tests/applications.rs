//! Integration tests of the application layers on top of the engine:
//! banded LD, decay, haplotype blocks, grid ω, association, higher-order
//! LD, and the FASTA → finite-sites path.

use gemm_ld::prelude::*;
use ld_core::{BandedLdMatrix, NanPolicy};
use ld_data::{CoalescentSimulator, SweepSimulator};

fn engine() -> LdEngine {
    LdEngine::new().nan_policy(NanPolicy::Zero)
}

#[test]
fn banded_decay_and_blocks_are_mutually_consistent() {
    // strong local LD panel
    let g = HaplotypeSimulator::new(600, 300)
        .seed(41)
        .founders(10)
        .switch_rate(0.01)
        .generate();
    let e = engine();

    // banded matrix agrees with decay profile aggregates
    let band = 20usize;
    let banded = BandedLdMatrix::compute(&e, &g, band, LdStats::RSquared);
    let profile = DecayProfile::compute(&e, &g, band, 1);
    for bin in profile.bins() {
        let d = bin.min_dist;
        let mut sum = 0.0;
        let mut count = 0u64;
        for i in 0..g.n_snps() {
            if let Some(v) = banded.get(i, i + d) {
                if !v.is_nan() {
                    sum += v;
                    count += 1;
                }
            }
        }
        assert_eq!(count, bin.count, "distance {d}");
        if count > 0 {
            assert!(
                (sum / count as f64 - bin.mean_r2).abs() < 1e-10,
                "distance {d}"
            );
        }
    }

    // blocks cover SNPs whose near-pair LD is high
    let blocks = ld_core::haplotype_blocks(&e, &g, 0.9);
    assert!(!blocks.is_empty(), "low switch rate must produce blocks");
    let covered: usize = blocks.iter().map(|b| b.len()).sum();
    assert!(covered > g.n_snps() / 4, "covered only {covered}");
}

#[test]
fn grid_scan_beats_fixed_scan_on_asymmetric_sweep() {
    // a sweep whose flanks differ in width: adaptive borders should still
    // center correctly
    let base = HaplotypeSimulator::new(256, 200)
        .seed(42)
        .founders(32)
        .switch_rate(0.25);
    let g = SweepSimulator::new(base, 120, 30).seed(43).generate();
    let grid = GridScan::new(8, 40, 4).scan_max(&g).unwrap();
    assert!(
        (100..=140).contains(&grid.best_split),
        "grid scan missed sweep at 120: {} (omega {})",
        grid.best_split,
        grid.omega
    );
}

#[test]
fn coalescent_data_flows_through_everything() {
    let g = CoalescentSimulator::new(128, 96)
        .blocks(8)
        .seed(44)
        .generate();
    let e = engine();
    let r2 = e.r2_matrix(&g);
    assert_eq!(r2.n_snps(), 96);
    // within-genealogy LD must exceed cross-genealogy LD
    let within = r2.get(1, 5);
    let _ = within; // spot values vary; use the aggregate below
    let profile = DecayProfile::compute(&e, &g, 48, 12);
    assert!(profile.bins()[0].mean_r2 > profile.bins()[3].mean_r2);
}

#[test]
fn association_scan_finds_ld_proxies_of_causal_snp() {
    // the classic GWAS phenomenon: SNPs in LD with the causal one light up
    let g = HaplotypeSimulator::new(3000, 120)
        .seed(45)
        .founders(8)
        .switch_rate(0.005)
        .generate();
    let causal = (0..120)
        .max_by_key(|&j| {
            let ones = g.ones_in_snp(j);
            ones.min(3000 - ones)
        })
        .unwrap();
    let (_, mask) = PhenotypeSimulator::new(vec![(causal, 1.5)])
        .noise_sd(0.7)
        .seed(46)
        .simulate(&g);
    let results = ld_assoc::allelic_scan(&g.full_view(), &mask, 1);
    // causal SNP must be significant
    assert!(results[causal].p < 1e-6, "causal p = {}", results[causal].p);
    // its strongest LD partner should also be significant (proxy signal)
    let r2 = engine().r2_matrix(&g);
    let proxy = (0..120)
        .filter(|&j| j != causal)
        .max_by(|&a, &b| r2.get(causal, a).total_cmp(&r2.get(causal, b)))
        .unwrap();
    if r2.get(causal, proxy) > 0.8 {
        assert!(
            results[proxy].p < 1e-3,
            "proxy (r²={:.2}) p = {}",
            r2.get(causal, proxy),
            results[proxy].p
        );
    }
}

#[test]
fn fasta_to_finite_sites_to_biallelic_consistency() {
    // build an alignment from a simulated binary matrix, run both paths
    let g = HaplotypeSimulator::new(40, 25).seed(47).generate();
    let records: Vec<ld_io::fasta::FastaRecord> = (0..40)
        .map(|s| ld_io::fasta::FastaRecord {
            id: format!("seq{s}"),
            seq: (0..25)
                .map(|j| if g.get(s, j) { 'T' } else { 'A' })
                .collect(),
        })
        .collect();
    let mut buf = Vec::new();
    ld_io::fasta::write_fasta(&mut buf, &records).unwrap();
    let aln = ld_io::fasta::read_alignment(std::io::BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(aln.n_sequences(), 40);

    // ISM path: biallelic extraction reproduces the source matrix up to
    // allele polarity (minor = derived may flip columns)
    let (bi, kept) = aln.to_biallelic_matrix();
    assert_eq!(kept.len(), 25, "all simulated sites are biallelic");
    let r2_src = engine().r2_matrix(&g);
    let r2_bi = engine().r2_matrix(&bi);
    for i in 0..25 {
        for j in i..25 {
            // r² is polarity-invariant
            assert!(
                (r2_src.get(i, j) - r2_bi.get(i, j)).abs() < 1e-10,
                "({i},{j})"
            );
        }
    }

    // FSM path: Zaykin T = n·r² for biallelic pairs
    let m = ld_ext::fsm::NucleotideMatrix::from_site_columns(40, aln.variable_columns());
    let t01 = m.t_statistic(0, 1, NanPolicy::Zero);
    assert!((t01 - 40.0 * r2_src.get(0, 1)).abs() < 1e-9);
}

#[test]
fn higher_order_ld_vanishes_for_duplicated_pairs() {
    // if C = A (duplicate), D_ABC should reduce to pairwise structure only:
    // D_AAB = P_AAB - ... with P_AAB = P_AB; verify against the formula
    let g = HaplotypeSimulator::new(200, 10).seed(48).generate();
    let dup = g.select_snps(&[3]).unwrap();
    let h = g.hstack(&dup).unwrap(); // SNP 10 == SNP 3
    let v = h.full_view();
    let f = ld_ext::triple_freqs(&v, 3, 10, 7);
    // p_AB for the duplicated pair is just p_A
    assert!((f.p2[0] - f.p[0]).abs() < 1e-12);
    // and the triple frequency equals the (A, C) pair frequency
    assert!((f.p3 - f.p2[1]).abs() < 1e-12);
}

#[test]
fn banded_storage_is_linear_in_n() {
    let g = HaplotypeSimulator::new(64, 4000).seed(49).generate();
    let banded = BandedLdMatrix::compute(&engine(), &g, 10, LdStats::RSquared);
    assert_eq!(banded.storage_bytes(), 4000 * 10 * 8); // 320 KB
                                                       // full matrix would be 4000*4001/2 * 8 = 64 MB
    assert!(banded.storage_bytes() < 1 << 20);
    assert_eq!(
        banded.n_pairs(),
        10 * 3990 + (9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1)
    );
}
