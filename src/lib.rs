//! # gemm-ld — linkage disequilibrium as dense linear algebra
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture and `DESIGN.md` for the paper-reproduction map.
//!
//! ```
//! use gemm_ld::prelude::*;
//!
//! // 4 haplotypes × 3 SNPs
//! let g = BitMatrix::from_rows(4, 3, [
//!     [1u8, 1, 0],
//!     [1, 1, 0],
//!     [0, 0, 1],
//!     [0, 1, 1],
//! ]).unwrap();
//! let engine = LdEngine::new();
//! let r2 = engine.r2_matrix(&g);
//! // SNPs 0 and 1 are strongly associated:
//! assert!(r2.get(0, 1) > 0.3);
//! ```

pub use ld_assoc as assoc;
pub use ld_baselines as baselines;
pub use ld_bitmat as bitmat;
pub use ld_core as core;
pub use ld_data as data;
pub use ld_ext as ext;
pub use ld_io as io;
pub use ld_kernels as kernels;
pub use ld_omega as omega;
pub use ld_parallel as parallel;
pub use ld_popcount as popcount;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use ld_assoc::{allelic_scan, PhenotypeSimulator};
    pub use ld_bitmat::{BitMatrix, BitMatrixBuilder, BitMatrixView, GenotypeMatrix, ValidityMask};
    pub use ld_core::{DecayProfile, LdEngine, LdMatrix, LdPair, LdStats, NanPolicy};
    pub use ld_data::HaplotypeSimulator;
    pub use ld_kernels::{BlockSizes, KernelKind};
    pub use ld_omega::{GridScan, OmegaScan};
}
