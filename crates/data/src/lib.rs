//! # ld-data — synthetic genomic datasets
//!
//! The paper evaluates on a 1000-Genomes chromosome-1 subset (Dataset A)
//! and two Hudson-`ms` simulations (Datasets B, C). Neither raw resource
//! can ship with this reproduction, so this crate builds statistically
//! plausible substitutes (see DESIGN.md §3 for the substitution argument):
//!
//! * [`HaplotypeSimulator`] — a Li–Stephens-style copying model: samples
//!   are imperfect mosaics of a small founder panel, with per-SNP switch
//!   (recombination) and flip (mutation) probabilities. This produces the
//!   two properties the kernels care about: a human-like allele-frequency
//!   spectrum (`∝ 1/f`) and LD that decays with SNP distance.
//! * [`SweepSimulator`] — plants a selective-sweep signature (high LD on
//!   each flank of a sweep center, low LD across it) in a neutral
//!   background, the signal the ω statistic hunts for.
//! * [`datasets`] — the paper's Dataset A/B/C shapes (10 000 SNPs ×
//!   2 504 / 10 000 / 100 000 samples) plus a `scale` knob for CI-sized
//!   runs.
//! * [`fingerprints`] — random sparse 2-D chemical fingerprints for the
//!   Tanimoto adaptation of §VII.

#![warn(missing_docs)]

mod coalescent;
pub mod datasets;
pub mod fingerprints;
mod simulate;
mod sweep;

pub use coalescent::{CoalescentSimulator, CoalescentTree};
pub use simulate::HaplotypeSimulator;
pub use sweep::SweepSimulator;

/// Splits `total` into `parts` nearly-even positive chunks (used to spread
/// segregating sites over independent genealogies).
pub(crate) fn even_split(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|p| base + usize::from(p < extra)).collect()
}
