//! The paper's Dataset A/B/C shapes (§VI) and scaled variants.

use crate::HaplotypeSimulator;
use ld_bitmat::{BitMatrix, GenotypeMatrix};

/// Which of the paper's three evaluation datasets to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// 10 000 SNPs × 2 504 samples — the paper's 1000-Genomes chr1 subset.
    A,
    /// 10 000 SNPs × 10 000 simulated sequences.
    B,
    /// 10 000 SNPs × 100 000 simulated sequences.
    C,
}

impl Dataset {
    /// Parses `"a" | "b" | "c"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "a" => Some(Dataset::A),
            "b" => Some(Dataset::B),
            "c" => Some(Dataset::C),
            _ => None,
        }
    }

    /// Paper-sized shape `(n_snps, n_samples)`.
    pub fn full_shape(self) -> (usize, usize) {
        match self {
            Dataset::A => (10_000, 2_504),
            Dataset::B => (10_000, 10_000),
            Dataset::C => (10_000, 100_000),
        }
    }

    /// Shape scaled down by `scale` in both dimensions (floor 64 samples /
    /// 16 SNPs so kernels still exercise multi-word paths).
    pub fn scaled_shape(self, scale: usize) -> (usize, usize) {
        let (snps, samples) = self.full_shape();
        let s = scale.max(1);
        ((snps / s).max(16), (samples / s).max(64))
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::A => "A (1000G-like, 10k SNPs x 2,504)",
            Dataset::B => "B (simulated, 10k SNPs x 10k)",
            Dataset::C => "C (simulated, 10k SNPs x 100k)",
        }
    }
}

/// Builds the haplotype matrix for `dataset` at `scale` (1 = paper size).
///
/// Dataset A uses the human-like parameterization (small founder panel,
/// low switch rate — strong local LD, 1000-Genomes-like); B and C use a
/// more diverse panel, mimicking neutral `ms` output.
pub fn build(dataset: Dataset, scale: usize, seed: u64) -> BitMatrix {
    let (n_snps, n_samples) = dataset.scaled_shape(scale);
    let sim = match dataset {
        Dataset::A => HaplotypeSimulator::new(n_samples, n_snps)
            .founders(24)
            .switch_rate(0.015)
            .mutation_rate(0.004),
        Dataset::B | Dataset::C => HaplotypeSimulator::new(n_samples, n_snps)
            .founders(64)
            .switch_rate(0.05)
            .mutation_rate(0.01),
    };
    sim.seed(seed ^ dataset_salt(dataset)).generate()
}

/// The diploid view of a dataset for the PLINK-style baseline: each
/// haploid sample is lifted to a homozygous individual so that all three
/// §VI implementations process the *same number of rows* and produce the
/// same number of LD values (see DESIGN.md §3).
pub fn genotypes_for(haps: &BitMatrix) -> GenotypeMatrix {
    GenotypeMatrix::from_haplotypes_as_homozygous(haps)
}

fn dataset_salt(d: Dataset) -> u64 {
    match d {
        Dataset::A => 0xaaaa,
        Dataset::B => 0xbbbb,
        Dataset::C => 0xcccc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        assert_eq!(Dataset::A.full_shape(), (10_000, 2_504));
        assert_eq!(Dataset::B.full_shape(), (10_000, 10_000));
        assert_eq!(Dataset::C.full_shape(), (10_000, 100_000));
    }

    #[test]
    fn scaling_respects_floors() {
        // budget 10 barely scales A down; still far above the (16, 64) floor
        assert_eq!(Dataset::A.scaled_shape(10), (1_000, 250));
        let (snps, samples) = Dataset::A.scaled_shape(100_000);
        assert_eq!((snps, samples), (16, 64));
    }

    #[test]
    fn parse_names() {
        assert_eq!(Dataset::parse("a"), Some(Dataset::A));
        assert_eq!(Dataset::parse("B"), Some(Dataset::B));
        assert_eq!(Dataset::parse("x"), None);
        assert!(Dataset::C.name().contains("100k"));
    }

    #[test]
    fn build_scaled_dataset() {
        let g = build(Dataset::A, 100, 1);
        assert_eq!(g.n_snps(), 100);
        assert_eq!(g.n_samples(), 64);
        // polymorphic everywhere
        for j in 0..g.n_snps() {
            let ones = g.ones_in_snp(j);
            assert!(ones > 0 && ones < g.n_samples() as u64);
        }
    }

    #[test]
    fn genotype_lift_preserves_dimensions() {
        let g = build(Dataset::B, 200, 2);
        let genos = genotypes_for(&g);
        assert_eq!(genos.n_individuals(), g.n_samples());
        assert_eq!(genos.n_snps(), g.n_snps());
    }

    #[test]
    fn datasets_differ_by_seed_and_kind() {
        let a1 = build(Dataset::A, 200, 1);
        let a2 = build(Dataset::A, 200, 2);
        let b1 = build(Dataset::B, 200, 1);
        assert_ne!(a1, a2);
        assert_ne!(a1, b1);
    }
}
