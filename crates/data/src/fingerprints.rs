//! Random chemical-fingerprint generator for the Tanimoto adaptation
//! (paper §VII, "Adapting for other domains").
//!
//! 2-D fingerprints are sparse binary vectors (typically 1024–4096 bits
//! with a few percent set) produced by subgraph-pattern hashing. For the
//! similarity kernels only the bit statistics matter, so a Bernoulli
//! generator with realistic density stands in for a cheminformatics
//! pipeline.

use ld_bitmat::{BitMatrix, BitMatrixBuilder};
use ld_rng::SmallRng;

/// Generates `count` fingerprints of `n_bits` bits with expected `density`
/// fraction of set bits. Returned as a [`BitMatrix`] whose **columns are
/// compounds** and rows are fingerprint bits — the exact layout the
/// AND/POPCNT GEMM consumes (compounds play the role of SNPs).
pub fn random_fingerprints(count: usize, n_bits: usize, density: f64, seed: u64) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let density = density.clamp(0.0, 1.0);
    let mut b = BitMatrixBuilder::with_capacity(n_bits, count);
    for _ in 0..count {
        b.push_snp_bits((0..n_bits).map(|_| rng.gen::<f64>() < density))
            .expect("fixed length");
    }
    b.finish()
}

/// Generates clustered fingerprints: `n_clusters` random centroids, each
/// member copies its centroid with per-bit flip probability `noise`.
/// Produces the high-similarity blocks that make Tanimoto screening
/// interesting (nearest-neighbour structure, not uniform noise).
pub fn clustered_fingerprints(
    count: usize,
    n_bits: usize,
    n_clusters: usize,
    density: f64,
    noise: f64,
    seed: u64,
) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_clusters = n_clusters.max(1);
    let centroids: Vec<Vec<bool>> = (0..n_clusters)
        .map(|_| (0..n_bits).map(|_| rng.gen::<f64>() < density).collect())
        .collect();
    let mut b = BitMatrixBuilder::with_capacity(n_bits, count);
    for m in 0..count {
        let c = &centroids[m % n_clusters];
        b.push_snp_bits((0..n_bits).map(|i| {
            if rng.gen::<f64>() < noise {
                !c[i]
            } else {
                c[i]
            }
        }))
        .expect("fixed length");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_roughly_respected() {
        let fp = random_fingerprints(64, 1024, 0.05, 1);
        assert_eq!(fp.n_snps(), 64);
        assert_eq!(fp.n_samples(), 1024);
        let d = fp.density();
        assert!((d - 0.05).abs() < 0.01, "density {d}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            random_fingerprints(8, 256, 0.1, 7),
            random_fingerprints(8, 256, 0.1, 7)
        );
        assert_ne!(
            random_fingerprints(8, 256, 0.1, 7),
            random_fingerprints(8, 256, 0.1, 8)
        );
    }

    #[test]
    fn clusters_are_more_similar_within() {
        let fp = clustered_fingerprints(32, 512, 4, 0.1, 0.02, 3);
        // compounds 0 and 4 share a centroid; 0 and 1 don't
        let same = overlap(&fp, 0, 4);
        let diff = overlap(&fp, 0, 1);
        assert!(same > 2 * diff, "same {same} diff {diff}");
    }

    fn overlap(fp: &BitMatrix, a: usize, b: usize) -> u64 {
        fp.snp_words(a)
            .iter()
            .zip(fp.snp_words(b))
            .map(|(&x, &y)| (x & y).count_ones() as u64)
            .sum()
    }
}
