//! A neutral coalescent simulator (Hudson's `ms` without recombination,
//! plus an independent-blocks approximation of recombination).
//!
//! The paper's Datasets B and C are `ms`-style neutral simulations. The
//! standard coalescent generates them as follows (Hudson 1990):
//!
//! 1. simulate the genealogy of `n` samples backwards in time: while `k`
//!    lineages remain, the next coalescence happens after an
//!    `Exp(k(k−1)/2)` waiting time (in units of `2N` generations) between
//!    a uniformly random lineage pair;
//! 2. drop mutations on the tree as a Poisson process with total rate
//!    `θ/2` per unit branch length (or exactly `s` mutations placed on
//!    branches chosen proportionally to their length, the `-s` switch of
//!    `ms`); each mutation defines one segregating site whose derived
//!    carriers are the leaves under that branch — the infinite sites model
//!    of §II-A.
//!
//! Without recombination every site shares one genealogy, producing the
//! strong within-locus LD the coalescent is known for. [`CoalescentSimulator`]
//! optionally splits the region into `blocks` independent genealogies — the
//! free-recombination-between-blocks approximation — so LD decays across
//! block boundaries, qualitatively matching recombining `ms` runs.

use ld_bitmat::{BitMatrix, BitMatrixBuilder};
use ld_rng::SmallRng;

/// One node of a coalescent tree (leaves first, internal nodes appended).
#[derive(Clone, Debug)]
struct Node {
    /// Children (empty for leaves).
    children: [usize; 2],
    /// Is this a leaf?
    leaf: bool,
    /// Length of the branch *above* this node, in coalescent time units.
    branch: f64,
}

/// A random coalescent genealogy of `n` samples.
#[derive(Clone, Debug)]
pub struct CoalescentTree {
    nodes: Vec<Node>,
    n_samples: usize,
    total_length: f64,
}

impl CoalescentTree {
    /// Simulates the standard neutral coalescent for `n ≥ 1` samples.
    pub fn simulate(n: usize, rng: &mut SmallRng) -> Self {
        assert!(n >= 1, "need at least one sample");
        let mut nodes: Vec<Node> = (0..n)
            .map(|_| Node {
                children: [0, 0],
                leaf: true,
                branch: 0.0,
            })
            .collect();
        let mut active: Vec<usize> = (0..n).collect();
        let mut time = 0.0f64;
        let mut node_time = vec![0.0f64; n];
        while active.len() > 1 {
            let k = active.len() as f64;
            let rate = k * (k - 1.0) / 2.0;
            // Exp(rate) waiting time
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            time += -u.ln() / rate;
            // uniform random pair
            let i = rng.gen_range(0..active.len());
            let mut j = rng.gen_range(0..active.len() - 1);
            if j >= i {
                j += 1;
            }
            let (a, b) = (active[i], active[j]);
            let parent = nodes.len();
            nodes.push(Node {
                children: [a, b],
                leaf: false,
                branch: 0.0,
            });
            node_time.push(time);
            // branch lengths of the two children
            nodes[a].branch = time - node_time[a];
            nodes[b].branch = time - node_time[b];
            // replace the pair with the parent (order-stable removal)
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            active.swap_remove(hi);
            active.swap_remove(lo);
            active.push(parent);
        }
        let total_length = nodes.iter().map(|nd| nd.branch).sum();
        Self {
            nodes,
            n_samples: n,
            total_length,
        }
    }

    /// Number of leaf samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Sum of all branch lengths (`E = Σ 2/i` in expectation).
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// The leaves below `node`.
    fn leaves_under(&self, node: usize, out: &mut Vec<usize>) {
        if self.nodes[node].leaf {
            out.push(node);
        } else {
            let [a, b] = self.nodes[node].children;
            self.leaves_under(a, out);
            self.leaves_under(b, out);
        }
    }

    /// Drops one mutation on a branch chosen ∝ length and returns the
    /// derived carrier set. `None` for a single-sample tree (no branches).
    pub fn drop_mutation(&self, rng: &mut SmallRng) -> Option<Vec<usize>> {
        if self.total_length <= 0.0 {
            return None;
        }
        let mut target = rng.gen_range(0.0..self.total_length);
        // the root has branch 0 and can never be selected
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.branch > 0.0 {
                if target < node.branch {
                    let mut leaves = Vec::new();
                    self.leaves_under(idx, &mut leaves);
                    return Some(leaves);
                }
                target -= node.branch;
            }
        }
        None // floating-point edge; treat as no mutation
    }
}

/// Simulates haplotype matrices from independent coalescent genealogies.
///
/// ```
/// use ld_data::CoalescentSimulator;
/// let g = CoalescentSimulator::new(50, 100).blocks(5).seed(1).generate();
/// assert_eq!(g.n_samples(), 50);
/// assert_eq!(g.n_snps(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct CoalescentSimulator {
    n_samples: usize,
    n_snps: usize,
    blocks: usize,
    seed: u64,
}

impl CoalescentSimulator {
    /// `n_samples` haplotypes × exactly `n_snps` segregating sites
    /// (the `ms -s` fixed-sites mode, which is what benchmark datasets
    /// with exact SNP counts need).
    pub fn new(n_samples: usize, n_snps: usize) -> Self {
        Self {
            n_samples,
            n_snps,
            blocks: 1,
            seed: 0xc0a1,
        }
    }

    /// Number of independent genealogies the sites are spread over
    /// (1 = single non-recombining locus; more blocks ≈ more recombination).
    pub fn blocks(mut self, b: usize) -> Self {
        self.blocks = b.max(1);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the simulation. Sites that would be monomorphic (possible only
    /// for `n_samples == 1`) fall back to singleton columns.
    pub fn generate(&self) -> BitMatrix {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = BitMatrixBuilder::with_capacity(self.n_samples, self.n_snps);
        if self.n_snps == 0 {
            return b.finish();
        }
        let blocks = self.blocks.min(self.n_snps);
        let sites_per_block = crate::even_split(self.n_snps, blocks);
        let mut col = vec![false; self.n_samples];
        for &sites in &sites_per_block {
            let tree = CoalescentTree::simulate(self.n_samples, &mut rng);
            for _ in 0..sites {
                col.iter_mut().for_each(|c| *c = false);
                match tree.drop_mutation(&mut rng) {
                    Some(carriers) if !carriers.is_empty() && carriers.len() < self.n_samples => {
                        for s in carriers {
                            col[s] = true;
                        }
                    }
                    _ => {
                        // degenerate tree (n = 1) or the mutation hit a
                        // branch covering everyone: force a polymorphic
                        // singleton so downstream LD stays defined
                        col[rng.gen_range(0..self.n_samples.max(1))] = true;
                    }
                }
                b.push_snp_bits(col.iter().copied()).expect("fixed length");
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{LdEngine, NanPolicy};

    #[test]
    fn tree_has_correct_expected_length() {
        // E[total length] = 2 Σ_{i=1}^{n-1} 1/i ; check the sample mean.
        let n = 10;
        let expect: f64 = 2.0 * (1..n).map(|i| 1.0 / i as f64).sum::<f64>();
        let mut rng = SmallRng::seed_from_u64(1);
        let mean: f64 = (0..2000)
            .map(|_| CoalescentTree::simulate(n, &mut rng).total_length())
            .sum::<f64>()
            / 2000.0;
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean total length {mean} vs expected {expect}"
        );
    }

    #[test]
    fn mutations_are_proper_subsets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = CoalescentTree::simulate(20, &mut rng);
        for _ in 0..200 {
            let carriers = tree.drop_mutation(&mut rng).unwrap();
            assert!(!carriers.is_empty());
            assert!(carriers.len() < 20, "root branch has length 0");
            assert!(carriers.iter().all(|&s| s < 20));
            let mut sorted = carriers.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), carriers.len(), "no duplicate leaves");
        }
    }

    #[test]
    fn matrix_shape_and_polymorphism() {
        let g = CoalescentSimulator::new(40, 60).seed(3).generate();
        assert_eq!(g.n_samples(), 40);
        assert_eq!(g.n_snps(), 60);
        for j in 0..60 {
            let ones = g.ones_in_snp(j);
            assert!(ones > 0 && ones < 40, "site {j} monomorphic");
        }
        g.check_padding().unwrap();
    }

    #[test]
    fn single_tree_has_more_ld_than_many_blocks() {
        let one = CoalescentSimulator::new(100, 60)
            .blocks(1)
            .seed(4)
            .generate();
        let many = CoalescentSimulator::new(100, 60)
            .blocks(30)
            .seed(4)
            .generate();
        let e = LdEngine::new().nan_policy(NanPolicy::Zero);
        let ld_one = e.r2_matrix(&one).mean_offdiagonal();
        let ld_many = e.r2_matrix(&many).mean_offdiagonal();
        assert!(
            ld_one > 1.5 * ld_many,
            "shared genealogy should inflate LD: {ld_one} vs {ld_many}"
        );
    }

    #[test]
    fn blocks_decorrelate_across_boundaries() {
        let g = CoalescentSimulator::new(200, 40)
            .blocks(2)
            .seed(5)
            .generate();
        let e = LdEngine::new().nan_policy(NanPolicy::Zero);
        let r2 = e.r2_matrix(&g);
        // within block 0 (sites 0..20) vs across blocks
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..20 {
            for j in i + 1..20 {
                within.push(r2.get(i, j));
            }
            for j in 20..40 {
                across.push(r2.get(i, j));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&within) > 2.0 * mean(&across));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = CoalescentSimulator::new(30, 20).seed(6).generate();
        let b = CoalescentSimulator::new(30, 20).seed(6).generate();
        let c = CoalescentSimulator::new(30, 20).seed(7).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn frequency_spectrum_is_skewed() {
        // neutral coalescent: singletons dominate (SFS ∝ 1/i)
        let g = CoalescentSimulator::new(50, 500)
            .blocks(100)
            .seed(8)
            .generate();
        let mut rare = 0;
        let mut common = 0;
        for j in 0..500 {
            let ones = g.ones_in_snp(j).min(50 - g.ones_in_snp(j));
            if ones <= 2 {
                rare += 1;
            } else if ones >= 15 {
                common += 1;
            }
        }
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn degenerate_inputs() {
        let g = CoalescentSimulator::new(1, 5).seed(9).generate();
        assert_eq!(g.n_samples(), 1);
        assert_eq!(g.n_snps(), 5);
        let g = CoalescentSimulator::new(10, 0).seed(10).generate();
        assert_eq!(g.n_snps(), 0);
    }
}
