//! Selective-sweep signature generator.

use crate::HaplotypeSimulator;
use ld_bitmat::BitMatrix;
use ld_rng::SmallRng;

/// Plants the LD signature of a completed selective sweep into a neutral
/// background.
///
/// Following the sweep theory the paper cites (§I, Maynard Smith & Haigh;
/// Kim & Nielsen): after a sweep, each *flank* of the selected site carries
/// long shared haplotype blocks (high within-flank LD), but recombination
/// events that happened during the sweep decouple the two flanks (low
/// cross-flank LD). We model that directly: within the sweep region, a
/// sweeping subset of samples shares one founder haplotype per flank, and
/// the two flanks pick their carrier subsets independently.
#[derive(Clone, Debug)]
pub struct SweepSimulator {
    base: HaplotypeSimulator,
    center: usize,
    half_width: usize,
    carrier_fraction: f64,
    seed: u64,
}

impl SweepSimulator {
    /// A sweep at SNP index `center` affecting `half_width` SNPs on each
    /// side, embedded in the `base` neutral simulation.
    pub fn new(base: HaplotypeSimulator, center: usize, half_width: usize) -> Self {
        Self {
            base,
            center,
            half_width,
            carrier_fraction: 0.8,
            seed: 0xca11_ab1e,
        }
    }

    /// Fraction of samples carrying the swept haplotype (default 0.8).
    pub fn carrier_fraction(mut self, f: f64) -> Self {
        self.carrier_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// RNG seed for the sweep overlay.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The sweep center SNP index.
    pub fn center(&self) -> usize {
        self.center
    }

    /// Generates the matrix: neutral background + sweep overlay.
    pub fn generate(&self) -> BitMatrix {
        let mut g = self.base.generate();
        let n_samples = g.n_samples();
        let n_snps = g.n_snps();
        if n_samples < 4 || n_snps == 0 {
            return g;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let left_start = self.center.saturating_sub(self.half_width);
        let left_end = self.center.min(n_snps);
        let right_start = self.center.min(n_snps);
        let right_end = (self.center + self.half_width).min(n_snps);

        // Independent carrier subsets per flank — the decoupling that
        // recombination during the sweep produces.
        let carriers_left = self.pick_carriers(&mut rng, n_samples);
        let carriers_right = self.pick_carriers(&mut rng, n_samples);

        self.overlay_flank(&mut g, &mut rng, left_start..left_end, &carriers_left);
        self.overlay_flank(&mut g, &mut rng, right_start..right_end, &carriers_right);
        g
    }

    fn pick_carriers(&self, rng: &mut SmallRng, n_samples: usize) -> Vec<bool> {
        (0..n_samples)
            .map(|_| rng.gen::<f64>() < self.carrier_fraction)
            .collect()
    }

    /// Within one flank, carriers all share a single swept haplotype: each
    /// SNP gets one consensus allele for carriers; non-carriers keep their
    /// neutral alleles (preserving polymorphism).
    fn overlay_flank(
        &self,
        g: &mut BitMatrix,
        rng: &mut SmallRng,
        snps: std::ops::Range<usize>,
        carriers: &[bool],
    ) {
        for j in snps {
            let swept_allele = rng.gen::<bool>();
            for (s, &is_carrier) in carriers.iter().enumerate() {
                if is_carrier {
                    g.set(s, j, swept_allele);
                }
            }
            // keep the site polymorphic
            let ones = g.ones_in_snp(j);
            if ones == 0 {
                g.set(first_noncarrier(carriers).unwrap_or(0), j, true);
            } else if ones == g.n_samples() as u64 {
                g.set(first_noncarrier(carriers).unwrap_or(0), j, false);
            }
        }
    }
}

fn first_noncarrier(carriers: &[bool]) -> Option<usize> {
    carriers.iter().position(|&c| !c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{LdEngine, NanPolicy};
    use ld_omega::OmegaScan;

    fn sim() -> SweepSimulator {
        let base = HaplotypeSimulator::new(128, 120)
            .seed(11)
            .founders(32)
            .switch_rate(0.3);
        SweepSimulator::new(base, 60, 15).seed(12)
    }

    #[test]
    fn deterministic_and_shaped() {
        let a = sim().generate();
        let b = sim().generate();
        assert_eq!(a, b);
        assert_eq!(a.n_samples(), 128);
        assert_eq!(a.n_snps(), 120);
        a.check_padding().unwrap();
    }

    #[test]
    fn within_flank_ld_exceeds_cross_flank() {
        let g = sim().generate();
        let e = LdEngine::new().nan_policy(NanPolicy::Zero);
        let r2 = e.r2_matrix(&g);
        let mut within = Vec::new();
        let mut cross = Vec::new();
        for i in 46..75 {
            for j in i + 1..75 {
                let v = r2.get(i, j);
                if (i < 60) == (j < 60) {
                    within.push(v);
                } else {
                    cross.push(v);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&within) > 2.0 * mean(&cross),
            "within {} cross {}",
            mean(&within),
            mean(&cross)
        );
    }

    #[test]
    fn omega_scan_locates_the_sweep() {
        let g = sim().generate();
        let best = OmegaScan::new(24, 4).scan_max(&g).unwrap();
        assert!(
            (50..=70).contains(&best.best_split),
            "sweep at 60 missed: split {} (ω = {})",
            best.best_split,
            best.omega
        );
    }

    #[test]
    fn all_sites_stay_polymorphic() {
        let g = sim().carrier_fraction(1.0).generate();
        for j in 0..g.n_snps() {
            let ones = g.ones_in_snp(j);
            assert!(ones > 0 && ones < g.n_samples() as u64, "SNP {j}");
        }
    }

    #[test]
    fn degenerate_shapes_survive() {
        let base = HaplotypeSimulator::new(2, 5).seed(1);
        let g = SweepSimulator::new(base, 2, 2).generate();
        assert_eq!(g.n_snps(), 5);
        let base = HaplotypeSimulator::new(64, 10).seed(1);
        // center beyond the end: clamped, right flank empty
        let g = SweepSimulator::new(base, 100, 5).generate();
        assert_eq!(g.n_snps(), 10);
    }
}
