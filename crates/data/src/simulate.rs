//! Li–Stephens copying-model haplotype simulator.

use ld_bitmat::{BitMatrix, BitMatrixBuilder};
use ld_rng::SmallRng;

/// Simulates haplotypes as mosaics of a founder panel.
///
/// Founder alleles are drawn from the neutral site-frequency spectrum
/// (`P(derived frequency = f) ∝ 1/f`); each sample walks along the SNPs
/// copying one founder, switching founders with probability `switch_rate`
/// per SNP (recombination) and flipping the copied allele with probability
/// `mutation_rate` (new mutation / genotyping error). Small founder panels
/// and low switch rates give long-range LD; large panels and high switch
/// rates approach linkage equilibrium.
///
/// ```
/// use ld_data::HaplotypeSimulator;
/// let g = HaplotypeSimulator::new(100, 50).seed(7).generate();
/// assert_eq!(g.n_samples(), 100);
/// assert_eq!(g.n_snps(), 50);
/// ```
#[derive(Clone, Debug)]
pub struct HaplotypeSimulator {
    n_samples: usize,
    n_snps: usize,
    n_founders: usize,
    switch_rate: f64,
    mutation_rate: f64,
    min_maf: f64,
    seed: u64,
}

impl HaplotypeSimulator {
    /// A simulator with human-ish defaults: 16 founders, 2 % switch rate,
    /// 0.5 % flip rate, minor-allele-frequency floor 1 %.
    pub fn new(n_samples: usize, n_snps: usize) -> Self {
        Self {
            n_samples,
            n_snps,
            n_founders: 16,
            switch_rate: 0.02,
            mutation_rate: 0.005,
            min_maf: 0.01,
            seed: 0x5eed_1d5e,
        }
    }

    /// Sets the founder-panel size (≥ 2).
    pub fn founders(mut self, n: usize) -> Self {
        self.n_founders = n.max(2);
        self
    }

    /// Sets the per-SNP founder-switch probability (recombination).
    pub fn switch_rate(mut self, r: f64) -> Self {
        self.switch_rate = r.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-SNP allele-flip probability (mutation).
    pub fn mutation_rate(mut self, r: f64) -> Self {
        self.mutation_rate = r.clamp(0.0, 1.0);
        self
    }

    /// Sets the minor-allele-frequency floor used when drawing founder
    /// allele frequencies (0 disables).
    pub fn min_maf(mut self, maf: f64) -> Self {
        self.min_maf = maf.clamp(0.0, 0.5);
        self
    }

    /// Sets the RNG seed (simulations are fully deterministic given it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the simulation.
    pub fn generate(&self) -> BitMatrix {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // 1. founder panel: per SNP, draw a derived-allele frequency from
        //    the neutral SFS and assign founder alleles at that frequency.
        let f = self.n_founders;
        let mut founder_cols: Vec<Vec<bool>> = Vec::with_capacity(self.n_snps);
        for _ in 0..self.n_snps {
            let p = sfs_frequency(&mut rng, self.min_maf);
            let col: Vec<bool> = (0..f).map(|_| rng.gen::<f64>() < p).collect();
            founder_cols.push(col);
        }
        // 2. samples: mosaic walks over the panel.
        let mut current: Vec<usize> = (0..self.n_samples).map(|_| rng.gen_range(0..f)).collect();
        let mut b = BitMatrixBuilder::with_capacity(self.n_samples, self.n_snps);
        let mut col = vec![0u8; self.n_samples];
        for founders in &founder_cols {
            for (s, cur) in current.iter_mut().enumerate() {
                if rng.gen::<f64>() < self.switch_rate {
                    *cur = rng.gen_range(0..f);
                }
                let mut allele = founders[*cur];
                if rng.gen::<f64>() < self.mutation_rate {
                    allele = !allele;
                }
                col[s] = u8::from(allele);
            }
            b.push_snp_bytes(&col).expect("column length is fixed");
        }
        let mut g = b.finish();
        self.fix_monomorphic(&mut g, &mut rng);
        g
    }

    /// LD computations are undefined on monomorphic columns; real SNP
    /// callers never emit them (a site without variation is not a SNP), so
    /// flip a random allele to restore polymorphism where the mosaic
    /// collapsed.
    fn fix_monomorphic(&self, g: &mut BitMatrix, rng: &mut SmallRng) {
        if self.n_samples < 2 {
            return;
        }
        for j in 0..g.n_snps() {
            let ones = g.ones_in_snp(j);
            if ones == 0 {
                g.set(rng.gen_range(0..self.n_samples), j, true);
            } else if ones == self.n_samples as u64 {
                g.set(rng.gen_range(0..self.n_samples), j, false);
            }
        }
    }
}

/// Draws a derived-allele frequency from the neutral SFS (`density ∝ 1/f`)
/// truncated to `[maf_floor, 1 − maf_floor]`.
fn sfs_frequency(rng: &mut SmallRng, maf_floor: f64) -> f64 {
    let lo = maf_floor.max(1e-4);
    let hi = 1.0 - lo;
    // inverse-CDF sample of 1/x on [lo, hi]
    let u = rng.gen::<f64>();
    lo * (hi / lo).powf(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::LdEngine;

    #[test]
    fn deterministic_given_seed() {
        let a = HaplotypeSimulator::new(80, 40).seed(1).generate();
        let b = HaplotypeSimulator::new(80, 40).seed(1).generate();
        let c = HaplotypeSimulator::new(80, 40).seed(2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_sites_polymorphic() {
        let g = HaplotypeSimulator::new(60, 100).seed(3).generate();
        for j in 0..g.n_snps() {
            let ones = g.ones_in_snp(j);
            assert!(ones > 0 && ones < 60, "SNP {j} monomorphic");
        }
        g.check_padding().unwrap();
    }

    #[test]
    fn ld_decays_with_distance() {
        // neighbouring SNPs share founder mosaics; distant ones don't.
        let g = HaplotypeSimulator::new(300, 200)
            .seed(4)
            .founders(8)
            .switch_rate(0.05)
            .generate();
        let r2 = LdEngine::new()
            .nan_policy(ld_core::NanPolicy::Zero)
            .r2_matrix(&g);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for i in 0..200 {
            if i + 1 < 200 {
                near.push(r2.get(i, i + 1));
            }
            if i + 100 < 200 {
                far.push(r2.get(i, i + 100));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&near) > 2.0 * mean(&far),
            "LD should decay: near {} far {}",
            mean(&near),
            mean(&far)
        );
    }

    #[test]
    fn sfs_is_skewed_toward_rare() {
        let mut rng = SmallRng::seed_from_u64(9);
        let draws: Vec<f64> = (0..5000).map(|_| sfs_frequency(&mut rng, 0.01)).collect();
        let rare = draws.iter().filter(|&&p| p < 0.1).count();
        let common = draws.iter().filter(|&&p| p > 0.5).count();
        assert!(rare > 2 * common, "rare {rare} common {common}");
        assert!(draws.iter().all(|&p| (0.009..=0.991).contains(&p)));
    }

    #[test]
    fn builder_knobs_apply() {
        let g = HaplotypeSimulator::new(50, 30)
            .founders(4)
            .switch_rate(0.5)
            .mutation_rate(0.0)
            .min_maf(0.1)
            .seed(5)
            .generate();
        assert_eq!(g.n_samples(), 50);
        assert_eq!(g.n_snps(), 30);
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        let g = HaplotypeSimulator::new(1, 3).seed(6).generate();
        assert_eq!(g.n_samples(), 1);
        let g = HaplotypeSimulator::new(2, 0).seed(7).generate();
        assert_eq!(g.n_snps(), 0);
    }
}
