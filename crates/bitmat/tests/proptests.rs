//! Property-based tests for the bit-packed matrix substrate.

use ld_bitmat::{tail_mask, words_for, BitMatrix, BitMatrixBuilder, GenotypeMatrix, ValidityMask};
use proptest::prelude::*;

/// Strategy producing a (n_samples, n_snps, dense rows) triple.
fn dense_matrix() -> impl Strategy<Value = (usize, usize, Vec<Vec<u8>>)> {
    (1usize..200, 1usize..30).prop_flat_map(|(n, m)| {
        (
            Just(n),
            Just(m),
            proptest::collection::vec(proptest::collection::vec(0u8..=1, m), n),
        )
    })
}

proptest! {
    #[test]
    fn round_trip_rows((n, m, rows) in dense_matrix()) {
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        prop_assert_eq!(g.n_samples(), n);
        prop_assert_eq!(g.n_snps(), m);
        g.check_padding().unwrap();
        for (s, row) in rows.iter().enumerate() {
            for (j, &a) in row.iter().enumerate() {
                prop_assert_eq!(g.get(s, j), a == 1);
            }
        }
    }

    #[test]
    fn allele_counts_match_naive((n, m, rows) in dense_matrix()) {
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        for j in 0..m {
            let naive: u64 = rows.iter().map(|r| r[j] as u64).sum();
            prop_assert_eq!(g.ones_in_snp(j), naive);
        }
    }

    #[test]
    fn builder_equals_from_rows((n, m, rows) in dense_matrix()) {
        let by_rows = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let mut b = BitMatrixBuilder::new(n);
        for j in 0..m {
            let col: Vec<u8> = rows.iter().map(|r| r[j]).collect();
            b.push_snp_bytes(&col).unwrap();
        }
        prop_assert_eq!(b.finish(), by_rows);
    }

    #[test]
    fn view_get_agrees_with_parent((n, m, rows) in dense_matrix(), salt in 0usize..1000) {
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let start = salt % m;
        let end = start + (salt / m) % (m - start + 1).max(1);
        let end = end.min(m);
        let v = g.view(start, end);
        for j in 0..v.n_snps() {
            prop_assert_eq!(v.ones_in_snp(j), g.ones_in_snp(start + j));
            for s in 0..n {
                prop_assert_eq!(v.get(s, j), g.get(s, start + j));
            }
        }
    }

    #[test]
    fn tail_mask_popcount(bits in 1usize..1000) {
        // tail_mask has exactly `bits % 64` set bits (or 64 when divisible).
        let expect = if bits % 64 == 0 { 64 } else { bits % 64 };
        prop_assert_eq!(tail_mask(bits).count_ones() as usize, expect);
        // words_for * 64 covers bits
        prop_assert!(words_for(bits) * 64 >= bits);
        prop_assert!(words_for(bits) * 64 < bits + 64);
    }

    #[test]
    fn select_snps_preserves_columns((n, m, rows) in dense_matrix(), seed in 0u64..u64::MAX) {
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        // pick a pseudo-random subset
        let idx: Vec<usize> = (0..m).filter(|j| (seed >> (j % 64)) & 1 == 1).collect();
        let sel = g.select_snps(&idx).unwrap();
        prop_assert_eq!(sel.n_snps(), idx.len());
        for (dst, &src) in idx.iter().enumerate() {
            prop_assert_eq!(sel.snp_to_bytes(dst), g.snp_to_bytes(src));
        }
    }

    #[test]
    fn validity_pair_counts_symmetric((n, m, rows) in dense_matrix()) {
        prop_assume!(m >= 2);
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let mask = ValidityMask::from_bitmatrix(&g);
        for i in 0..m.min(5) {
            for j in 0..m.min(5) {
                prop_assert_eq!(mask.pair_valid_count(i, j), mask.pair_valid_count(j, i));
            }
        }
    }

    #[test]
    fn genotype_set_get(n in 1usize..100, vals in proptest::collection::vec(0u8..4, 1..100)) {
        let mut m = GenotypeMatrix::all_missing(n, 1);
        use ld_bitmat::Genotype;
        let gts = [Genotype::HomA1, Genotype::Het, Genotype::HomA2, Genotype::Missing];
        for (i, &v) in vals.iter().enumerate().take(n) {
            m.set(i, 0, gts[v as usize]);
        }
        for (i, &v) in vals.iter().enumerate().take(n) {
            prop_assert_eq!(m.get(i, 0), gts[v as usize]);
        }
    }

    #[test]
    fn genotype_bed_round_trip(n in 1usize..150, seed in 0u64..u64::MAX) {
        use ld_bitmat::Genotype;
        let gts = [Genotype::HomA1, Genotype::Het, Genotype::HomA2, Genotype::Missing];
        let col: Vec<Genotype> =
            (0..n).map(|i| gts[((seed >> (2 * (i % 32))) & 3) as usize]).collect();
        let m = GenotypeMatrix::from_columns(n, [col.clone()]).unwrap();
        let bytes = m.snp_to_bed_bytes(0);
        let back = GenotypeMatrix::snp_from_bed_bytes(n, &bytes).unwrap();
        prop_assert_eq!(back, col);
    }

    #[test]
    fn hstack_is_concatenation((n, m, rows) in dense_matrix()) {
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let h = g.hstack(&g).unwrap();
        prop_assert_eq!(h.n_snps(), 2 * m);
        for j in 0..m {
            prop_assert_eq!(h.snp_to_bytes(j), g.snp_to_bytes(j));
            prop_assert_eq!(h.snp_to_bytes(m + j), g.snp_to_bytes(j));
        }
    }
}
