//! Property-based tests for the bit-packed matrix substrate.
//! Seeded `ld-rng` cases replace `proptest` (unavailable offline).

use ld_bitmat::{tail_mask, words_for, BitMatrix, BitMatrixBuilder, GenotypeMatrix, ValidityMask};
use ld_rng::SmallRng;

/// Draws a (n_samples, n_snps, dense rows) triple.
fn dense_matrix(rng: &mut SmallRng) -> (usize, usize, Vec<Vec<u8>>) {
    let n = rng.gen_range(1usize..200);
    let m = rng.gen_range(1usize..30);
    let rows = (0..n)
        .map(|_| (0..m).map(|_| u8::from(rng.gen::<bool>())).collect())
        .collect();
    (n, m, rows)
}

#[test]
fn round_trip_rows() {
    let mut rng = SmallRng::seed_from_u64(1);
    for case in 0..32 {
        let (n, m, rows) = dense_matrix(&mut rng);
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        assert_eq!(g.n_samples(), n, "case {case}");
        assert_eq!(g.n_snps(), m, "case {case}");
        g.check_padding().unwrap();
        for (s, row) in rows.iter().enumerate() {
            for (j, &a) in row.iter().enumerate() {
                assert_eq!(g.get(s, j), a == 1, "case {case}: ({s},{j})");
            }
        }
    }
}

#[test]
fn allele_counts_match_naive() {
    let mut rng = SmallRng::seed_from_u64(2);
    for case in 0..32 {
        let (n, m, rows) = dense_matrix(&mut rng);
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        for j in 0..m {
            let naive: u64 = rows.iter().map(|r| r[j] as u64).sum();
            assert_eq!(g.ones_in_snp(j), naive, "case {case}: snp {j}");
        }
    }
}

#[test]
fn builder_equals_from_rows() {
    let mut rng = SmallRng::seed_from_u64(3);
    for case in 0..32 {
        let (n, m, rows) = dense_matrix(&mut rng);
        let by_rows = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let mut b = BitMatrixBuilder::new(n);
        for j in 0..m {
            let col: Vec<u8> = rows.iter().map(|r| r[j]).collect();
            b.push_snp_bytes(&col).unwrap();
        }
        assert_eq!(b.finish(), by_rows, "case {case}");
    }
}

#[test]
fn view_get_agrees_with_parent() {
    let mut rng = SmallRng::seed_from_u64(4);
    for case in 0..32 {
        let (n, m, rows) = dense_matrix(&mut rng);
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let start = rng.gen_range(0..m);
        let end = rng.gen_range(start..m + 1).min(m);
        let v = g.view(start, end);
        for j in 0..v.n_snps() {
            assert_eq!(v.ones_in_snp(j), g.ones_in_snp(start + j), "case {case}");
            for s in 0..n {
                assert_eq!(v.get(s, j), g.get(s, start + j), "case {case}: ({s},{j})");
            }
        }
    }
}

#[test]
fn tail_mask_popcount() {
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..200 {
        let bits = rng.gen_range(1usize..1000);
        // tail_mask has exactly `bits % 64` set bits (or 64 when divisible).
        let expect = if bits.is_multiple_of(64) {
            64
        } else {
            bits % 64
        };
        assert_eq!(tail_mask(bits).count_ones() as usize, expect);
        // words_for * 64 covers bits
        assert!(words_for(bits) * 64 >= bits);
        assert!(words_for(bits) * 64 < bits + 64);
    }
}

#[test]
fn select_snps_preserves_columns() {
    let mut rng = SmallRng::seed_from_u64(6);
    for case in 0..32 {
        let (n, m, rows) = dense_matrix(&mut rng);
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        // pick a pseudo-random subset
        let idx: Vec<usize> = (0..m).filter(|_| rng.gen::<bool>()).collect();
        let sel = g.select_snps(&idx).unwrap();
        assert_eq!(sel.n_snps(), idx.len(), "case {case}");
        for (dst, &src) in idx.iter().enumerate() {
            assert_eq!(sel.snp_to_bytes(dst), g.snp_to_bytes(src), "case {case}");
        }
    }
}

#[test]
fn validity_pair_counts_symmetric() {
    let mut rng = SmallRng::seed_from_u64(7);
    for case in 0..16 {
        let (n, m, rows) = dense_matrix(&mut rng);
        if m < 2 {
            continue;
        }
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let mask = ValidityMask::from_bitmatrix(&g);
        for i in 0..m.min(5) {
            for j in 0..m.min(5) {
                assert_eq!(
                    mask.pair_valid_count(i, j),
                    mask.pair_valid_count(j, i),
                    "case {case}: ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn genotype_set_get() {
    use ld_bitmat::Genotype;
    let mut rng = SmallRng::seed_from_u64(8);
    for case in 0..32 {
        let n = rng.gen_range(1usize..100);
        let vals: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..4)).collect();
        let mut m = GenotypeMatrix::all_missing(n, 1);
        let gts = [
            Genotype::HomA1,
            Genotype::Het,
            Genotype::HomA2,
            Genotype::Missing,
        ];
        for (i, &v) in vals.iter().enumerate() {
            m.set(i, 0, gts[v as usize]);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(m.get(i, 0), gts[v as usize], "case {case}: sample {i}");
        }
    }
}

#[test]
fn genotype_bed_round_trip() {
    use ld_bitmat::Genotype;
    let mut rng = SmallRng::seed_from_u64(9);
    for case in 0..32 {
        let n = rng.gen_range(1usize..150);
        let gts = [
            Genotype::HomA1,
            Genotype::Het,
            Genotype::HomA2,
            Genotype::Missing,
        ];
        let col: Vec<Genotype> = (0..n).map(|_| gts[rng.gen_range(0usize..4)]).collect();
        let m = GenotypeMatrix::from_columns(n, [col.clone()]).unwrap();
        let bytes = m.snp_to_bed_bytes(0);
        let back = GenotypeMatrix::snp_from_bed_bytes(n, &bytes).unwrap();
        assert_eq!(back, col, "case {case}");
    }
}

#[test]
fn hstack_is_concatenation() {
    let mut rng = SmallRng::seed_from_u64(10);
    for case in 0..16 {
        let (n, m, rows) = dense_matrix(&mut rng);
        let g = BitMatrix::from_rows(n, m, rows.iter()).unwrap();
        let h = g.hstack(&g).unwrap();
        assert_eq!(h.n_snps(), 2 * m, "case {case}");
        for j in 0..m {
            assert_eq!(h.snp_to_bytes(j), g.snp_to_bytes(j), "case {case}");
            assert_eq!(h.snp_to_bytes(m + j), g.snp_to_bytes(j), "case {case}");
        }
    }
}
