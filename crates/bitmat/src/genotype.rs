//! 2-bit genotype matrices in PLINK `.bed` encoding.
//!
//! The paper's comparison target PLINK 1.9 is *genotype*-oriented: each
//! individual carries 0, 1 or 2 copies of an allele at a biallelic site, or
//! is missing. PLINK packs genotypes 2 bits each, SNP-major, with the codes
//!
//! | bits | meaning |
//! |------|------------------------------|
//! | `00` | homozygous A1 (dosage 2)     |
//! | `01` | missing                      |
//! | `10` | heterozygous (dosage 1)      |
//! | `11` | homozygous A2 (dosage 0)     |
//!
//! [`GenotypeMatrix`] stores this encoding in `u64` words (32 genotypes per
//! word) so the PLINK-style baseline kernel can run popcount tricks on it,
//! and so `.bed` files round-trip byte-for-byte (the byte order within a
//! word matches `.bed`'s little-endian, lowest-bits-first layout).
//! Padding lanes beyond `n_individuals` are set to the *missing* code, which
//! keeps them out of every non-missing contingency cell without extra masks.

use crate::{AlignedWords, BitMatError, BitMatrix};

/// Genotypes per packed `u64` word.
pub const GENOS_PER_WORD: usize = 32;

/// A single biallelic genotype call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Genotype {
    /// Two copies of allele A1 (bed code `00`, A1 dosage 2).
    HomA1,
    /// One copy of each allele (bed code `10`, A1 dosage 1).
    Het,
    /// Two copies of allele A2 (bed code `11`, A1 dosage 0).
    HomA2,
    /// No call (bed code `01`).
    Missing,
}

impl Genotype {
    /// The 2-bit PLINK `.bed` code.
    #[inline]
    pub fn bed_code(self) -> u64 {
        match self {
            Genotype::HomA1 => 0b00,
            Genotype::Missing => 0b01,
            Genotype::Het => 0b10,
            Genotype::HomA2 => 0b11,
        }
    }

    /// Decodes a 2-bit PLINK `.bed` code.
    #[inline]
    pub fn from_bed_code(code: u64) -> Self {
        match code & 0b11 {
            0b00 => Genotype::HomA1,
            0b01 => Genotype::Missing,
            0b10 => Genotype::Het,
            _ => Genotype::HomA2,
        }
    }

    /// A1-allele dosage (0, 1 or 2); `None` when missing.
    #[inline]
    pub fn dosage(self) -> Option<u8> {
        match self {
            Genotype::HomA1 => Some(2),
            Genotype::Het => Some(1),
            Genotype::HomA2 => Some(0),
            Genotype::Missing => None,
        }
    }

    /// Builds the genotype of a diploid individual from two haploid alleles
    /// (`true` = derived/A1).
    #[inline]
    pub fn from_haplotypes(a: bool, b: bool) -> Self {
        match (a, b) {
            (true, true) => Genotype::HomA1,
            (false, false) => Genotype::HomA2,
            _ => Genotype::Het,
        }
    }
}

/// Per-SNP genotype class counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenotypeCounts {
    /// Individuals homozygous for A1.
    pub hom_a1: u64,
    /// Heterozygous individuals.
    pub het: u64,
    /// Individuals homozygous for A2.
    pub hom_a2: u64,
    /// Missing calls.
    pub missing: u64,
}

impl GenotypeCounts {
    /// Number of non-missing calls.
    pub fn called(&self) -> u64 {
        self.hom_a1 + self.het + self.hom_a2
    }

    /// A1 allele frequency among called genotypes (`None` if all missing).
    pub fn a1_frequency(&self) -> Option<f64> {
        let n = self.called();
        if n == 0 {
            None
        } else {
            Some((2 * self.hom_a1 + self.het) as f64 / (2 * n) as f64)
        }
    }
}

/// A SNP-major, 2-bit packed genotype matrix (PLINK `.bed` layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenotypeMatrix {
    words: AlignedWords,
    n_individuals: usize,
    n_snps: usize,
    words_per_snp: usize,
}

impl GenotypeMatrix {
    /// Number of `u64` words per SNP for `n` individuals.
    pub fn words_needed(n: usize) -> usize {
        n.div_ceil(GENOS_PER_WORD)
    }

    /// A matrix with every call missing.
    pub fn all_missing(n_individuals: usize, n_snps: usize) -> Self {
        let wps = Self::words_needed(n_individuals);
        let mut words = AlignedWords::zeroed(wps * n_snps);
        // 0b01 in every lane == all missing.
        for w in words.iter_mut() {
            *w = 0x5555_5555_5555_5555;
        }
        Self {
            words,
            n_individuals,
            n_snps,
            words_per_snp: wps,
        }
    }

    /// Builds from SNP-major columns of [`Genotype`]s.
    pub fn from_columns<C, I>(n_individuals: usize, cols: I) -> Result<Self, BitMatError>
    where
        C: AsRef<[Genotype]>,
        I: IntoIterator<Item = C>,
    {
        let cols: Vec<C> = cols.into_iter().collect();
        let mut m = Self::all_missing(n_individuals, cols.len());
        for (j, col) in cols.iter().enumerate() {
            let col = col.as_ref();
            if col.len() != n_individuals {
                return Err(BitMatError::DimensionMismatch {
                    expected: n_individuals,
                    got: col.len(),
                    what: "individuals",
                });
            }
            for (i, &g) in col.iter().enumerate() {
                m.set(i, j, g);
            }
        }
        Ok(m)
    }

    /// Pairs consecutive haplotype rows of a [`BitMatrix`] into diploid
    /// individuals: individual `i` gets haplotypes `2i` and `2i+1`.
    /// Requires an even sample count.
    pub fn from_haplotype_pairs(hap: &BitMatrix) -> Result<Self, BitMatError> {
        if !hap.n_samples().is_multiple_of(2) {
            return Err(BitMatError::DimensionMismatch {
                expected: hap.n_samples() + 1,
                got: hap.n_samples(),
                what: "even samples",
            });
        }
        let n_ind = hap.n_samples() / 2;
        let mut m = Self::all_missing(n_ind, hap.n_snps());
        for j in 0..hap.n_snps() {
            for i in 0..n_ind {
                m.set(
                    i,
                    j,
                    Genotype::from_haplotypes(hap.get(2 * i, j), hap.get(2 * i + 1, j)),
                );
            }
        }
        Ok(m)
    }

    /// Treats every haploid sample as a homozygous diploid individual —
    /// useful to feed haploid datasets through the genotype pipeline with
    /// the *same* number of individuals as the allele pipeline has samples,
    /// which keeps LD-values-per-second comparisons apples-to-apples.
    pub fn from_haplotypes_as_homozygous(hap: &BitMatrix) -> Self {
        let n_ind = hap.n_samples();
        let mut m = Self::all_missing(n_ind, hap.n_snps());
        for j in 0..hap.n_snps() {
            for i in 0..n_ind {
                let a = hap.get(i, j);
                m.set(i, j, if a { Genotype::HomA1 } else { Genotype::HomA2 });
            }
        }
        m
    }

    /// Number of individuals (rows).
    #[inline]
    pub fn n_individuals(&self) -> usize {
        self.n_individuals
    }

    /// Number of SNPs (columns).
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Packed words per SNP.
    #[inline]
    pub fn words_per_snp(&self) -> usize {
        self.words_per_snp
    }

    /// Packed words of SNP `j`.
    #[inline]
    pub fn snp_words(&self, j: usize) -> &[u64] {
        debug_assert!(j < self.n_snps);
        &self.words[j * self.words_per_snp..(j + 1) * self.words_per_snp]
    }

    /// Reads the genotype of `individual` at SNP `j`.
    #[inline]
    pub fn get(&self, individual: usize, j: usize) -> Genotype {
        debug_assert!(individual < self.n_individuals && j < self.n_snps);
        let w = self.words[j * self.words_per_snp + individual / GENOS_PER_WORD];
        Genotype::from_bed_code(w >> (2 * (individual % GENOS_PER_WORD)))
    }

    /// Writes the genotype of `individual` at SNP `j`.
    pub fn set(&mut self, individual: usize, j: usize, g: Genotype) {
        debug_assert!(individual < self.n_individuals && j < self.n_snps);
        let idx = j * self.words_per_snp + individual / GENOS_PER_WORD;
        let shift = 2 * (individual % GENOS_PER_WORD);
        let w = &mut self.words[idx];
        *w = (*w & !(0b11u64 << shift)) | (g.bed_code() << shift);
    }

    /// Class counts for SNP `j` (padding lanes are missing-coded and are
    /// *not* counted because only the first `n_individuals` lanes are read).
    pub fn counts(&self, j: usize) -> GenotypeCounts {
        let mut c = GenotypeCounts::default();
        for i in 0..self.n_individuals {
            match self.get(i, j) {
                Genotype::HomA1 => c.hom_a1 += 1,
                Genotype::Het => c.het += 1,
                Genotype::HomA2 => c.hom_a2 += 1,
                Genotype::Missing => c.missing += 1,
            }
        }
        c
    }

    /// Serializes SNP `j` into PLINK `.bed` bytes (no magic header).
    pub fn snp_to_bed_bytes(&self, j: usize) -> Vec<u8> {
        let n_bytes = self.n_individuals.div_ceil(4);
        let mut out = vec![0u8; n_bytes];
        for (b, byte) in out.iter_mut().enumerate() {
            let mut v = 0u8;
            for lane in 0..4 {
                let i = b * 4 + lane;
                let code = if i < self.n_individuals {
                    self.get(i, j).bed_code() as u8
                } else {
                    0b01 // pad with missing, as PLINK writers conventionally zero-fill; missing keeps stats exact
                };
                v |= code << (2 * lane);
            }
            *byte = v;
        }
        out
    }

    /// Deserializes one SNP column from PLINK `.bed` bytes.
    pub fn snp_from_bed_bytes(
        n_individuals: usize,
        bytes: &[u8],
    ) -> Result<Vec<Genotype>, BitMatError> {
        let need = n_individuals.div_ceil(4);
        if bytes.len() < need {
            return Err(BitMatError::DimensionMismatch {
                expected: need,
                got: bytes.len(),
                what: "bed bytes",
            });
        }
        Ok((0..n_individuals)
            .map(|i| Genotype::from_bed_code((bytes[i / 4] >> (2 * (i % 4))) as u64))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bed_codes_round_trip() {
        for g in [
            Genotype::HomA1,
            Genotype::Het,
            Genotype::HomA2,
            Genotype::Missing,
        ] {
            assert_eq!(Genotype::from_bed_code(g.bed_code()), g);
        }
    }

    #[test]
    fn dosages() {
        assert_eq!(Genotype::HomA1.dosage(), Some(2));
        assert_eq!(Genotype::Het.dosage(), Some(1));
        assert_eq!(Genotype::HomA2.dosage(), Some(0));
        assert_eq!(Genotype::Missing.dosage(), None);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = GenotypeMatrix::all_missing(37, 3);
        m.set(0, 0, Genotype::HomA1);
        m.set(36, 2, Genotype::Het);
        m.set(32, 1, Genotype::HomA2);
        assert_eq!(m.get(0, 0), Genotype::HomA1);
        assert_eq!(m.get(36, 2), Genotype::Het);
        assert_eq!(m.get(32, 1), Genotype::HomA2);
        assert_eq!(m.get(1, 0), Genotype::Missing);
    }

    #[test]
    fn counts_and_frequency() {
        let col = vec![
            Genotype::HomA1,
            Genotype::HomA1,
            Genotype::Het,
            Genotype::HomA2,
            Genotype::Missing,
        ];
        let m = GenotypeMatrix::from_columns(5, [col]).unwrap();
        let c = m.counts(0);
        assert_eq!(
            c,
            GenotypeCounts {
                hom_a1: 2,
                het: 1,
                hom_a2: 1,
                missing: 1
            }
        );
        assert_eq!(c.called(), 4);
        assert!((c.a1_frequency().unwrap() - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(GenotypeCounts::default().a1_frequency(), None);
    }

    #[test]
    fn from_haplotype_pairs_builds_genotypes() {
        let hap = BitMatrix::from_rows(4, 2, [[1u8, 0], [1, 1], [0, 0], [1, 0]]).unwrap();
        let m = GenotypeMatrix::from_haplotype_pairs(&hap).unwrap();
        assert_eq!(m.n_individuals(), 2);
        assert_eq!(m.get(0, 0), Genotype::HomA1); // haps 1,1
        assert_eq!(m.get(0, 1), Genotype::Het); // haps 0,1
        assert_eq!(m.get(1, 0), Genotype::Het); // haps 0,1
        assert_eq!(m.get(1, 1), Genotype::HomA2); // haps 0,0
    }

    #[test]
    fn odd_samples_rejected_for_pairs() {
        let hap = BitMatrix::zeros(3, 1);
        assert!(GenotypeMatrix::from_haplotype_pairs(&hap).is_err());
    }

    #[test]
    fn homozygous_lift_preserves_frequency() {
        let hap = BitMatrix::from_rows(4, 1, [[1u8], [0], [1], [1]]).unwrap();
        let m = GenotypeMatrix::from_haplotypes_as_homozygous(&hap);
        let c = m.counts(0);
        assert_eq!(c.hom_a1, 3);
        assert_eq!(c.hom_a2, 1);
        assert!((c.a1_frequency().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bed_bytes_round_trip() {
        let col = vec![
            Genotype::HomA1,
            Genotype::Het,
            Genotype::HomA2,
            Genotype::Missing,
            Genotype::Het,
        ];
        let m = GenotypeMatrix::from_columns(5, [col.clone()]).unwrap();
        let bytes = m.snp_to_bed_bytes(0);
        assert_eq!(bytes.len(), 2);
        let back = GenotypeMatrix::snp_from_bed_bytes(5, &bytes).unwrap();
        assert_eq!(back, col);
        assert!(GenotypeMatrix::snp_from_bed_bytes(9, &bytes).is_err());
    }
}
