//! Borrowed windows of consecutive SNP columns.

use crate::BitMatrix;

/// A borrowed, zero-copy view of SNP columns `[start, end)` of a
/// [`BitMatrix`].
///
/// Views are what the tiled LD drivers and the ω-statistic window scan hand
/// to the GEMM engine: the packed words of a window are already contiguous
/// in the SNP-major layout, so a view is just (pointer, shape).
///
/// ```
/// use ld_bitmat::BitMatrix;
/// let g = BitMatrix::from_rows(2, 4, [[0u8,1,0,1],[1,1,0,0]]).unwrap();
/// let v = g.view(1, 3);
/// assert_eq!(v.n_snps(), 2);
/// assert_eq!(v.ones_in_snp(0), 2); // SNP 1 of g
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BitMatrixView<'a> {
    mat: &'a BitMatrix,
    start: usize,
    end: usize,
}

impl<'a> BitMatrixView<'a> {
    pub(crate) fn new(mat: &'a BitMatrix, start: usize, end: usize) -> Self {
        Self { mat, start, end }
    }

    /// Number of samples (shared with the parent matrix).
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.mat.n_samples()
    }

    /// Number of SNPs in the window.
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.end - self.start
    }

    /// Words per SNP column.
    #[inline]
    pub fn words_per_snp(&self) -> usize {
        self.mat.words_per_snp()
    }

    /// Index of the first column in the parent matrix.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One-past-the-last column in the parent matrix.
    #[inline]
    pub fn end(&self) -> usize {
        self.end
    }

    /// The parent matrix.
    #[inline]
    pub fn parent(&self) -> &'a BitMatrix {
        self.mat
    }

    /// The packed words of the whole window (contiguous, SNP-major).
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        let wps = self.mat.words_per_snp();
        &self.mat.words()[self.start * wps..self.end * wps]
    }

    /// The packed words of local SNP `j` (i.e. parent SNP `start + j`).
    #[inline]
    pub fn snp_words(&self, j: usize) -> &'a [u64] {
        self.mat.snp_words(self.start + j)
    }

    /// Allele of `sample` at local SNP `j`.
    #[inline]
    pub fn get(&self, sample: usize, j: usize) -> bool {
        self.mat.get(sample, self.start + j)
    }

    /// Set-bit count of local SNP `j`.
    #[inline]
    pub fn ones_in_snp(&self, j: usize) -> u64 {
        self.mat.ones_in_snp(self.start + j)
    }

    /// Derived-allele frequencies of the window.
    pub fn allele_frequencies(&self) -> Vec<f64> {
        let n = self.n_samples() as f64;
        (0..self.n_snps())
            .map(|j| self.ones_in_snp(j) as f64 / n)
            .collect()
    }

    /// A sub-view relative to this view.
    pub fn subview(&self, start: usize, end: usize) -> BitMatrixView<'a> {
        assert!(
            start <= end && self.start + end <= self.end,
            "subview out of bounds"
        );
        BitMatrixView {
            mat: self.mat,
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl<'a> From<&'a BitMatrix> for BitMatrixView<'a> {
    fn from(m: &'a BitMatrix) -> Self {
        m.full_view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BitMatrix {
        BitMatrix::from_rows(3, 5, [[1u8, 0, 1, 0, 1], [0, 1, 1, 0, 0], [1, 1, 0, 1, 0]]).unwrap()
    }

    #[test]
    fn window_shape() {
        let g = toy();
        let v = g.view(1, 4);
        assert_eq!(v.n_snps(), 3);
        assert_eq!(v.n_samples(), 3);
        assert_eq!(v.start(), 1);
        assert_eq!(v.end(), 4);
    }

    #[test]
    fn words_are_contiguous_slice_of_parent() {
        let g = toy();
        let v = g.view(2, 5);
        assert_eq!(v.words().len(), 3 * g.words_per_snp());
        assert_eq!(v.snp_words(0), g.snp_words(2));
    }

    #[test]
    fn get_is_offset() {
        let g = toy();
        let v = g.view(1, 4);
        for s in 0..3 {
            for j in 0..3 {
                assert_eq!(v.get(s, j), g.get(s, j + 1));
            }
        }
    }

    #[test]
    fn subview_composes() {
        let g = toy();
        let v = g.view(1, 5);
        let w = v.subview(1, 3);
        assert_eq!(w.start(), 2);
        assert_eq!(w.end(), 4);
        assert_eq!(w.ones_in_snp(0), g.ones_in_snp(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_view_panics() {
        let g = toy();
        let _ = g.view(3, 6);
    }

    #[test]
    fn full_view_and_from() {
        let g = toy();
        let v: BitMatrixView = (&g).into();
        assert_eq!(v.n_snps(), 5);
        assert_eq!(v.allele_frequencies().len(), 5);
    }
}
