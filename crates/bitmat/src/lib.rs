//! # ld-bitmat — bit-packed genomic matrices
//!
//! Storage substrate for the GEMM-based linkage-disequilibrium engine.
//!
//! The central type is [`BitMatrix`]: a binary matrix holding one **SNP per
//! column** and one **sample (sequence/haplotype) per row**, packed 64
//! samples per `u64` word exactly as described in Figure 2 of the paper
//! (the layout introduced by Alachiotis & Weisz, FPGA'16):
//!
//! * each SNP column occupies `words_per_snp = ceil(n_samples / 64)`
//!   consecutive `u64` words,
//! * sample `s` of SNP `j` is bit `s % 64` of word `j * words_per_snp + s/64`,
//! * when `n_samples` is not a multiple of 64 the trailing *padding bits are
//!   zero* — an invariant every kernel relies on, because a stray set bit
//!   would silently corrupt every popcount that touches the last word.
//!
//! The crate also provides:
//!
//! * [`AlignedWords`] — a cache-line (64-byte) aligned `u64` buffer, so that
//!   packed panels used by the BLIS-style kernels never straddle cache lines
//!   unnecessarily;
//! * [`BitMatrixView`] — a borrowed window of consecutive SNP columns (used
//!   by the ω-statistic scan and tiled drivers);
//! * [`ValidityMask`] — per-SNP validity bit-vectors for alignment gaps /
//!   missing data (paper §VII, "Considering alignment gaps");
//! * [`GenotypeMatrix`] — a 2-bit-per-genotype SNP-major matrix in PLINK
//!   `.bed` encoding, the substrate for the PLINK-1.9-style baseline.

#![warn(missing_docs)]

mod aligned;
mod builder;
mod error;
mod genotype;
mod mask;
mod matrix;
mod transpose;
mod view;

pub use aligned::AlignedWords;
pub use builder::BitMatrixBuilder;
pub use error::BitMatError;
pub use genotype::{Genotype, GenotypeMatrix};
pub use mask::ValidityMask;
pub use matrix::{BitMatrix, WORD_BITS};
pub use transpose::transpose_64x64;
pub use view::BitMatrixView;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Mask selecting the valid (non-padding) bits of the **last** word of a
/// column with `bits` logical bits. All 64 bits are valid when
/// `bits % 64 == 0` (and `bits > 0`).
#[inline]
pub const fn tail_mask(bits: usize) -> u64 {
    let r = bits % 64;
    if r == 0 {
        u64::MAX
    } else {
        (1u64 << r) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_covers_remainder() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(128), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(3), 0b111);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
    }
}
