//! The SNP-major bit-packed genomic matrix.

use crate::{tail_mask, words_for, AlignedWords, BitMatError, BitMatrixView};

/// Number of samples stored per `u64` word.
pub const WORD_BITS: usize = 64;

/// A binary genomic matrix `G` with `n_samples` rows (sequences) and
/// `n_snps` columns (variable sites), stored SNP-major and bit-packed.
///
/// This is the layout of Figure 2 in the paper: every SNP is a contiguous
/// run of `words_per_snp` little-endian `u64` words, padded with zero bits
/// up to the next multiple of 64 samples. A set bit is the *derived* state
/// (a mutation), a clear bit the *ancestral* state, following the infinite
/// sites model.
///
/// ```
/// use ld_bitmat::BitMatrix;
/// // 3 samples × 2 SNPs from sample-major rows:
/// let g = BitMatrix::from_rows(3, 2, [[1u8, 0], [1, 1], [0, 1]]).unwrap();
/// assert_eq!(g.ones_in_snp(0), 2);
/// assert_eq!(g.ones_in_snp(1), 2);
/// assert!(g.get(0, 0) && !g.get(0, 1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    words: AlignedWords,
    n_samples: usize,
    n_snps: usize,
    words_per_snp: usize,
}

impl BitMatrix {
    /// An all-zero (all-ancestral) matrix.
    pub fn zeros(n_samples: usize, n_snps: usize) -> Self {
        let words_per_snp = words_for(n_samples);
        Self {
            words: AlignedWords::zeroed(words_per_snp * n_snps),
            n_samples,
            n_snps,
            words_per_snp,
        }
    }

    /// Builds a matrix from sample-major rows. Each row must have
    /// `n_snps` entries, each `0` or `1`.
    pub fn from_rows<R, I>(n_samples: usize, n_snps: usize, rows: I) -> Result<Self, BitMatError>
    where
        R: AsRef<[u8]>,
        I: IntoIterator<Item = R>,
    {
        let mut m = Self::zeros(n_samples, n_snps);
        let mut count = 0usize;
        for (s, row) in rows.into_iter().enumerate() {
            let row = row.as_ref();
            if s >= n_samples {
                return Err(BitMatError::DimensionMismatch {
                    expected: n_samples,
                    got: s + 1,
                    what: "samples",
                });
            }
            if row.len() != n_snps {
                return Err(BitMatError::DimensionMismatch {
                    expected: n_snps,
                    got: row.len(),
                    what: "snps",
                });
            }
            for (j, &a) in row.iter().enumerate() {
                match a {
                    0 => {}
                    1 => m.set(s, j, true),
                    v => {
                        return Err(BitMatError::InvalidAllele {
                            value: v,
                            sample: s,
                            snp: j,
                        })
                    }
                }
            }
            count += 1;
        }
        if count != n_samples {
            return Err(BitMatError::DimensionMismatch {
                expected: n_samples,
                got: count,
                what: "samples",
            });
        }
        Ok(m)
    }

    /// Builds a matrix from SNP-major columns of `0`/`1` bytes.
    pub fn from_columns<C, I>(n_samples: usize, cols: I) -> Result<Self, BitMatError>
    where
        C: AsRef<[u8]>,
        I: IntoIterator<Item = C>,
    {
        let cols: Vec<C> = cols.into_iter().collect();
        let mut m = Self::zeros(n_samples, cols.len());
        for (j, col) in cols.iter().enumerate() {
            let col = col.as_ref();
            if col.len() != n_samples {
                return Err(BitMatError::DimensionMismatch {
                    expected: n_samples,
                    got: col.len(),
                    what: "samples",
                });
            }
            for (s, &a) in col.iter().enumerate() {
                match a {
                    0 => {}
                    1 => m.set(s, j, true),
                    v => {
                        return Err(BitMatError::InvalidAllele {
                            value: v,
                            sample: s,
                            snp: j,
                        })
                    }
                }
            }
        }
        Ok(m)
    }

    /// Builds a matrix directly from packed words. `words.len()` must equal
    /// `words_for(n_samples) * n_snps` and padding bits must be zero.
    pub fn from_words(
        n_samples: usize,
        n_snps: usize,
        words: AlignedWords,
    ) -> Result<Self, BitMatError> {
        let wps = words_for(n_samples);
        if words.len() != wps * n_snps {
            return Err(BitMatError::DimensionMismatch {
                expected: wps * n_snps,
                got: words.len(),
                what: "words",
            });
        }
        let m = Self {
            words,
            n_samples,
            n_snps,
            words_per_snp: wps,
        };
        m.check_padding()?;
        Ok(m)
    }

    /// Number of samples (rows, the `k` dimension of the paper).
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of SNPs (columns, the `m`/`n` dimension of the paper).
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Words per SNP column (`N_int` in the paper).
    #[inline]
    pub fn words_per_snp(&self) -> usize {
        self.words_per_snp
    }

    /// The raw packed words, SNP-major.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The packed words of SNP `j`.
    #[inline]
    pub fn snp_words(&self, j: usize) -> &[u64] {
        debug_assert!(j < self.n_snps);
        &self.words[j * self.words_per_snp..(j + 1) * self.words_per_snp]
    }

    /// Mutable packed words of SNP `j`. The caller must keep padding bits
    /// zero; use [`BitMatrix::check_padding`] in tests.
    #[inline]
    pub fn snp_words_mut(&mut self, j: usize) -> &mut [u64] {
        debug_assert!(j < self.n_snps);
        &mut self.words[j * self.words_per_snp..(j + 1) * self.words_per_snp]
    }

    /// Reads the allele of `sample` at SNP `snp`.
    #[inline]
    pub fn get(&self, sample: usize, snp: usize) -> bool {
        debug_assert!(sample < self.n_samples && snp < self.n_snps);
        let w = self.words[snp * self.words_per_snp + sample / WORD_BITS];
        (w >> (sample % WORD_BITS)) & 1 == 1
    }

    /// Sets the allele of `sample` at SNP `snp`.
    #[inline]
    pub fn set(&mut self, sample: usize, snp: usize, derived: bool) {
        debug_assert!(sample < self.n_samples && snp < self.n_snps);
        let idx = snp * self.words_per_snp + sample / WORD_BITS;
        let bit = 1u64 << (sample % WORD_BITS);
        if derived {
            self.words[idx] |= bit;
        } else {
            self.words[idx] &= !bit;
        }
    }

    /// Number of derived alleles (set bits) in SNP `j` — the numerator of
    /// the allele frequency `p_j` (Eq. 3 of the paper).
    pub fn ones_in_snp(&self, j: usize) -> u64 {
        self.snp_words(j)
            .iter()
            .map(|w| w.count_ones() as u64)
            .sum()
    }

    /// Per-SNP derived-allele counts for the whole matrix.
    pub fn allele_counts(&self) -> Vec<u64> {
        (0..self.n_snps).map(|j| self.ones_in_snp(j)).collect()
    }

    /// Per-SNP derived-allele *frequencies* `p_j = count_j / n_samples`.
    pub fn allele_frequencies(&self) -> Vec<f64> {
        let n = self.n_samples as f64;
        (0..self.n_snps)
            .map(|j| self.ones_in_snp(j) as f64 / n)
            .collect()
    }

    /// Fraction of set bits over all (non-padding) positions.
    pub fn density(&self) -> f64 {
        if self.n_samples == 0 || self.n_snps == 0 {
            return 0.0;
        }
        let ones: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        ones as f64 / (self.n_samples as f64 * self.n_snps as f64)
    }

    /// Verifies the zero-padding invariant on every column.
    pub fn check_padding(&self) -> Result<(), BitMatError> {
        if self.n_samples.is_multiple_of(WORD_BITS) || self.words_per_snp == 0 {
            return Ok(());
        }
        let mask = tail_mask(self.n_samples);
        for j in 0..self.n_snps {
            let last = self.snp_words(j)[self.words_per_snp - 1];
            if last & !mask != 0 {
                return Err(BitMatError::PaddingViolation { snp: j });
            }
        }
        Ok(())
    }

    /// A borrowed view of SNP columns `range.start..range.end`.
    pub fn view(&self, start: usize, end: usize) -> BitMatrixView<'_> {
        assert!(
            start <= end && end <= self.n_snps,
            "view range out of bounds"
        );
        BitMatrixView::new(self, start, end)
    }

    /// A view over all columns.
    pub fn full_view(&self) -> BitMatrixView<'_> {
        self.view(0, self.n_snps)
    }

    /// Extracts SNP `j` as a `Vec<u8>` of 0/1 alleles (mostly for tests and
    /// text export).
    pub fn snp_to_bytes(&self, j: usize) -> Vec<u8> {
        (0..self.n_samples)
            .map(|s| u8::from(self.get(s, j)))
            .collect()
    }

    /// Extracts sample `s` as a `Vec<u8>` of 0/1 alleles across all SNPs.
    pub fn sample_to_bytes(&self, s: usize) -> Vec<u8> {
        (0..self.n_snps).map(|j| u8::from(self.get(s, j))).collect()
    }

    /// Returns a new matrix containing the given SNP columns, in order.
    pub fn select_snps(&self, indices: &[usize]) -> Result<Self, BitMatError> {
        let mut out = Self::zeros(self.n_samples, indices.len());
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.n_snps {
                return Err(BitMatError::IndexOutOfBounds {
                    index: src,
                    bound: self.n_snps,
                    what: "snp",
                });
            }
            let wps = self.words_per_snp;
            out.words[dst * wps..(dst + 1) * wps].copy_from_slice(self.snp_words(src));
        }
        Ok(out)
    }

    /// Concatenates the SNP columns of `other` after `self`'s.
    /// Both matrices must have the same number of samples.
    pub fn hstack(&self, other: &Self) -> Result<Self, BitMatError> {
        if self.n_samples != other.n_samples {
            return Err(BitMatError::DimensionMismatch {
                expected: self.n_samples,
                got: other.n_samples,
                what: "samples",
            });
        }
        let mut out = Self::zeros(self.n_samples, self.n_snps + other.n_snps);
        let wps = self.words_per_snp;
        out.words[..self.n_snps * wps].copy_from_slice(&self.words);
        out.words[self.n_snps * wps..].copy_from_slice(&other.words);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BitMatrix {
        // 5 samples × 3 SNPs
        BitMatrix::from_rows(
            5,
            3,
            [[1u8, 0, 1], [1, 1, 0], [0, 1, 0], [0, 0, 1], [1, 0, 1]],
        )
        .unwrap()
    }

    #[test]
    fn shape_and_counts() {
        let g = toy();
        assert_eq!(g.n_samples(), 5);
        assert_eq!(g.n_snps(), 3);
        assert_eq!(g.words_per_snp(), 1);
        assert_eq!(g.allele_counts(), vec![3, 2, 3]);
    }

    #[test]
    fn get_matches_rows() {
        let g = toy();
        assert!(g.get(0, 0));
        assert!(!g.get(0, 1));
        assert!(g.get(4, 2));
        assert!(!g.get(3, 0));
    }

    #[test]
    fn frequencies() {
        let g = toy();
        let p = g.allele_frequencies();
        assert!((p[0] - 0.6).abs() < 1e-12);
        assert!((p[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn set_clear_round_trip() {
        let mut g = BitMatrix::zeros(130, 4);
        g.set(129, 3, true);
        assert!(g.get(129, 3));
        g.set(129, 3, false);
        assert!(!g.get(129, 3));
        g.check_padding().unwrap();
    }

    #[test]
    fn from_rows_rejects_bad_allele() {
        let err = BitMatrix::from_rows(1, 2, [[0u8, 2]]).unwrap_err();
        assert!(matches!(err, BitMatError::InvalidAllele { value: 2, .. }));
    }

    #[test]
    fn from_rows_rejects_short_row() {
        let err = BitMatrix::from_rows(1, 3, [[0u8, 1]]).unwrap_err();
        assert!(matches!(
            err,
            BitMatError::DimensionMismatch { what: "snps", .. }
        ));
    }

    #[test]
    fn from_rows_rejects_row_count_mismatch() {
        let err = BitMatrix::from_rows(3, 1, [[0u8], [1]]).unwrap_err();
        assert!(matches!(
            err,
            BitMatError::DimensionMismatch {
                what: "samples",
                ..
            }
        ));
        let err = BitMatrix::from_rows(1, 1, [[0u8], [1]]).unwrap_err();
        assert!(matches!(
            err,
            BitMatError::DimensionMismatch {
                what: "samples",
                ..
            }
        ));
    }

    #[test]
    fn columns_equal_rows_construction() {
        let by_rows = toy();
        let by_cols = BitMatrix::from_columns(
            5,
            [
                [1u8, 1, 0, 0, 1], // SNP 0
                [0, 1, 1, 0, 0],   // SNP 1
                [1, 0, 0, 1, 1],   // SNP 2
            ],
        )
        .unwrap();
        assert_eq!(by_rows, by_cols);
    }

    #[test]
    fn padding_is_zero_and_detected() {
        let g = BitMatrix::from_rows(65, 1, (0..65).map(|_| [1u8])).unwrap();
        g.check_padding().unwrap();
        assert_eq!(g.words_per_snp(), 2);
        assert_eq!(g.ones_in_snp(0), 65);

        // Deliberately violate the invariant through the raw accessor.
        let mut g = g;
        g.snp_words_mut(0)[1] |= 1 << 63;
        assert!(matches!(
            g.check_padding(),
            Err(BitMatError::PaddingViolation { snp: 0 })
        ));
    }

    #[test]
    fn from_words_validates() {
        let words = AlignedWords::from_slice(&[0b1011]);
        let m = BitMatrix::from_words(4, 1, words).unwrap();
        assert_eq!(m.ones_in_snp(0), 3);

        let words = AlignedWords::from_slice(&[0b1_0000]); // bit 4 set but only 4 samples
        assert!(BitMatrix::from_words(4, 1, words).is_err());

        let words = AlignedWords::from_slice(&[1, 2, 3]);
        assert!(BitMatrix::from_words(64, 2, words).is_err()); // wrong word count
    }

    #[test]
    fn select_and_hstack() {
        let g = toy();
        let sel = g.select_snps(&[2, 0]).unwrap();
        assert_eq!(sel.n_snps(), 2);
        assert_eq!(sel.snp_to_bytes(0), g.snp_to_bytes(2));
        assert_eq!(sel.snp_to_bytes(1), g.snp_to_bytes(0));
        assert!(g.select_snps(&[5]).is_err());

        let h = g.hstack(&sel).unwrap();
        assert_eq!(h.n_snps(), 5);
        assert_eq!(h.snp_to_bytes(3), g.snp_to_bytes(2));

        let other = BitMatrix::zeros(4, 1);
        assert!(g.hstack(&other).is_err());
    }

    #[test]
    fn density_of_known_matrix() {
        let g = toy();
        assert!((g.density() - 8.0 / 15.0).abs() < 1e-12);
        assert_eq!(BitMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn sample_extraction() {
        let g = toy();
        assert_eq!(g.sample_to_bytes(1), vec![1, 1, 0]);
    }
}
