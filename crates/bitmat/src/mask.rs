//! Validity masks for alignment gaps and missing data (paper §VII).
//!
//! A [`ValidityMask`] stores one bit vector `c_j` per SNP in the same
//! SNP-major packed layout as [`BitMatrix`]: bit `s` of `c_j` is set iff
//! sample `s` has a *valid* allelic state at SNP `j` (not a gap `-`, not an
//! ambiguous character). For a pair of SNPs `i, j` the valid pair set is
//! `c_ij = c_i & c_j`, and the inner products of the paper's §VII become
//! `POPCNT(c_ij & s_i & s_j)` etc., with a per-pair effective sample size
//! `N_ij = POPCNT(c_ij)`.

use crate::{tail_mask, words_for, AlignedWords, BitMatError, BitMatrix, WORD_BITS};

/// Per-SNP validity bit vectors, packed like a [`BitMatrix`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidityMask {
    words: AlignedWords,
    n_samples: usize,
    n_snps: usize,
    words_per_snp: usize,
}

impl ValidityMask {
    /// A mask with every (sample, SNP) pair valid.
    pub fn all_valid(n_samples: usize, n_snps: usize) -> Self {
        let wps = words_for(n_samples);
        let mut words = AlignedWords::zeroed(wps * n_snps);
        if wps > 0 {
            let tm = tail_mask(n_samples);
            for j in 0..n_snps {
                for w in 0..wps {
                    words[j * wps + w] = if w + 1 == wps { tm } else { u64::MAX };
                }
            }
        }
        Self {
            words,
            n_samples,
            n_snps,
            words_per_snp: wps,
        }
    }

    /// Builds a mask from per-SNP byte columns (`1` = valid, `0` = missing).
    pub fn from_columns<C, I>(n_samples: usize, cols: I) -> Result<Self, BitMatError>
    where
        C: AsRef<[u8]>,
        I: IntoIterator<Item = C>,
    {
        // Reuse the BitMatrix builder logic by round-tripping through it.
        let m = BitMatrix::from_columns(n_samples, cols)?;
        Ok(Self::from_bitmatrix(&m))
    }

    /// Reinterprets a 0/1 [`BitMatrix`] as a validity mask.
    pub fn from_bitmatrix(m: &BitMatrix) -> Self {
        Self {
            words: AlignedWords::from_slice(m.words()),
            n_samples: m.n_samples(),
            n_snps: m.n_snps(),
            words_per_snp: m.words_per_snp(),
        }
    }

    /// Number of samples.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of SNPs.
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Words per SNP column.
    #[inline]
    pub fn words_per_snp(&self) -> usize {
        self.words_per_snp
    }

    /// Packed validity words of SNP `j`.
    #[inline]
    pub fn snp_words(&self, j: usize) -> &[u64] {
        debug_assert!(j < self.n_snps);
        &self.words[j * self.words_per_snp..(j + 1) * self.words_per_snp]
    }

    /// Is `sample` valid at SNP `j`?
    #[inline]
    pub fn is_valid(&self, sample: usize, j: usize) -> bool {
        let w = self.words[j * self.words_per_snp + sample / WORD_BITS];
        (w >> (sample % WORD_BITS)) & 1 == 1
    }

    /// Marks `sample` at SNP `j` as missing (invalid).
    pub fn set_missing(&mut self, sample: usize, j: usize) {
        debug_assert!(sample < self.n_samples && j < self.n_snps);
        let idx = j * self.words_per_snp + sample / WORD_BITS;
        self.words[idx] &= !(1u64 << (sample % WORD_BITS));
    }

    /// Marks `sample` at SNP `j` as valid.
    pub fn set_valid(&mut self, sample: usize, j: usize) {
        debug_assert!(sample < self.n_samples && j < self.n_snps);
        let idx = j * self.words_per_snp + sample / WORD_BITS;
        self.words[idx] |= 1u64 << (sample % WORD_BITS);
    }

    /// Number of valid samples at SNP `j`.
    pub fn valid_count(&self, j: usize) -> u64 {
        self.snp_words(j)
            .iter()
            .map(|w| w.count_ones() as u64)
            .sum()
    }

    /// Number of jointly-valid samples for the SNP pair `(i, j)` —
    /// `POPCNT(c_i & c_j)`, the `v_ij` of the paper's Eq. 6 context.
    pub fn pair_valid_count(&self, i: usize, j: usize) -> u64 {
        self.snp_words(i)
            .iter()
            .zip(self.snp_words(j))
            .map(|(&a, &b)| (a & b).count_ones() as u64)
            .sum()
    }

    /// Fraction of missing entries over the whole mask.
    pub fn missing_rate(&self) -> f64 {
        if self.n_samples == 0 || self.n_snps == 0 {
            return 0.0;
        }
        let valid: u64 = (0..self.n_snps).map(|j| self.valid_count(j)).sum();
        1.0 - valid as f64 / (self.n_samples as f64 * self.n_snps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_counts() {
        let m = ValidityMask::all_valid(70, 3);
        assert_eq!(m.words_per_snp(), 2);
        for j in 0..3 {
            assert_eq!(m.valid_count(j), 70);
        }
        assert_eq!(m.missing_rate(), 0.0);
        // Padding bits of the second word must be zero.
        assert_eq!(m.snp_words(0)[1] & !tail_mask(70), 0);
    }

    #[test]
    fn set_missing_and_pair_counts() {
        let mut m = ValidityMask::all_valid(10, 2);
        m.set_missing(3, 0);
        m.set_missing(4, 1);
        assert!(!m.is_valid(3, 0));
        assert!(m.is_valid(3, 1));
        assert_eq!(m.valid_count(0), 9);
        assert_eq!(m.valid_count(1), 9);
        assert_eq!(m.pair_valid_count(0, 1), 8);
        m.set_valid(3, 0);
        assert_eq!(m.pair_valid_count(0, 1), 9);
    }

    #[test]
    fn from_columns_matches_manual() {
        let m = ValidityMask::from_columns(4, [[1u8, 1, 0, 1], [1, 0, 0, 1]]).unwrap();
        assert_eq!(m.valid_count(0), 3);
        assert_eq!(m.valid_count(1), 2);
        assert_eq!(m.pair_valid_count(0, 1), 2);
        assert!((m.missing_rate() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn from_bitmatrix_preserves_bits() {
        let g = BitMatrix::from_rows(3, 2, [[1u8, 0], [1, 1], [0, 1]]).unwrap();
        let m = ValidityMask::from_bitmatrix(&g);
        assert_eq!(m.valid_count(0), 2);
        assert_eq!(m.valid_count(1), 2);
        assert!(m.is_valid(0, 0) && !m.is_valid(2, 0));
    }
}
