//! Incremental construction of bit matrices, one SNP at a time.

use crate::{words_for, AlignedWords, BitMatError, BitMatrix, WORD_BITS};

/// Builds a [`BitMatrix`] by appending SNP columns.
///
/// This is the natural shape for parsers (`ms`, VCF) and simulators, which
/// emit one variable site at a time for a fixed set of samples.
///
/// ```
/// use ld_bitmat::BitMatrixBuilder;
/// let mut b = BitMatrixBuilder::new(4);
/// b.push_snp_bytes(&[1, 0, 0, 1]).unwrap();
/// b.push_snp_bits([true, true, false, false]).unwrap();
/// let g = b.finish();
/// assert_eq!(g.n_snps(), 2);
/// assert_eq!(g.ones_in_snp(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BitMatrixBuilder {
    words: AlignedWords,
    n_samples: usize,
    words_per_snp: usize,
    n_snps: usize,
}

impl BitMatrixBuilder {
    /// A builder for matrices with `n_samples` rows.
    pub fn new(n_samples: usize) -> Self {
        Self {
            words: AlignedWords::new(),
            n_samples,
            words_per_snp: words_for(n_samples),
            n_snps: 0,
        }
    }

    /// A builder with capacity pre-reserved for `n_snps` columns.
    pub fn with_capacity(n_samples: usize, n_snps: usize) -> Self {
        let wps = words_for(n_samples);
        Self {
            words: AlignedWords::with_capacity(wps * n_snps),
            n_samples,
            words_per_snp: wps,
            n_snps: 0,
        }
    }

    /// Number of samples per SNP.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of SNPs appended so far.
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Appends a SNP given as a slice of `0`/`1` bytes, one per sample.
    pub fn push_snp_bytes(&mut self, alleles: &[u8]) -> Result<(), BitMatError> {
        if alleles.len() != self.n_samples {
            return Err(BitMatError::DimensionMismatch {
                expected: self.n_samples,
                got: alleles.len(),
                what: "samples",
            });
        }
        for (s, &a) in alleles.iter().enumerate() {
            if a > 1 {
                return Err(BitMatError::InvalidAllele {
                    value: a,
                    sample: s,
                    snp: self.n_snps,
                });
            }
        }
        self.push_snp_bits(alleles.iter().map(|&a| a == 1))
    }

    /// Appends a SNP from an iterator of booleans (`true` = derived).
    /// The iterator must yield exactly `n_samples` items.
    pub fn push_snp_bits<I>(&mut self, bits: I) -> Result<(), BitMatError>
    where
        I: IntoIterator<Item = bool>,
    {
        let mut word = 0u64;
        let mut in_word = 0usize;
        let mut total = 0usize;
        let mut pushed = 0usize;
        for b in bits {
            if total >= self.n_samples {
                return Err(BitMatError::DimensionMismatch {
                    expected: self.n_samples,
                    got: total + 1,
                    what: "samples",
                });
            }
            if b {
                word |= 1u64 << in_word;
            }
            in_word += 1;
            total += 1;
            if in_word == WORD_BITS {
                self.words.push(word);
                pushed += 1;
                word = 0;
                in_word = 0;
            }
        }
        if total != self.n_samples {
            // Roll back partially-pushed words so the builder stays usable.
            self.words.resize_zeroed(self.words.len() - pushed);
            return Err(BitMatError::DimensionMismatch {
                expected: self.n_samples,
                got: total,
                what: "samples",
            });
        }
        if in_word > 0 {
            self.words.push(word);
            pushed += 1;
        }
        debug_assert_eq!(pushed, self.words_per_snp);
        self.n_snps += 1;
        Ok(())
    }

    /// Appends a SNP given as pre-packed words (padding bits must be zero).
    pub fn push_snp_words(&mut self, words: &[u64]) -> Result<(), BitMatError> {
        if words.len() != self.words_per_snp {
            return Err(BitMatError::DimensionMismatch {
                expected: self.words_per_snp,
                got: words.len(),
                what: "words",
            });
        }
        if !self.n_samples.is_multiple_of(WORD_BITS) && self.words_per_snp > 0 {
            let mask = crate::tail_mask(self.n_samples);
            if words[self.words_per_snp - 1] & !mask != 0 {
                return Err(BitMatError::PaddingViolation { snp: self.n_snps });
            }
        }
        for &w in words {
            self.words.push(w);
        }
        self.n_snps += 1;
        Ok(())
    }

    /// Finishes the build, yielding the packed matrix.
    pub fn finish(self) -> BitMatrix {
        match BitMatrix::from_words(self.n_samples, self.n_snps, self.words) {
            Ok(m) => m,
            // Both push paths zero the padding bits and fix the word
            // count, so `from_words` cannot reject the builder's output.
            Err(e) => unreachable!("builder maintains the padding invariant: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_multi_word_columns() {
        let n = 130;
        let mut b = BitMatrixBuilder::new(n);
        b.push_snp_bits((0..n).map(|s| s % 3 == 0)).unwrap();
        b.push_snp_bits((0..n).map(|s| s == 129)).unwrap();
        let g = b.finish();
        assert_eq!(g.n_snps(), 2);
        assert_eq!(g.words_per_snp(), 3);
        assert_eq!(
            g.ones_in_snp(0),
            (0..n as u64).filter(|s| s % 3 == 0).count() as u64
        );
        assert_eq!(g.ones_in_snp(1), 1);
        assert!(g.get(129, 1));
        g.check_padding().unwrap();
    }

    #[test]
    fn rejects_wrong_lengths() {
        let mut b = BitMatrixBuilder::new(4);
        assert!(b.push_snp_bytes(&[1, 0, 0]).is_err());
        assert!(b.push_snp_bits([true; 5]).is_err());
        assert!(b.push_snp_bits([true; 3]).is_err());
        // builder remains usable and consistent
        b.push_snp_bytes(&[1, 1, 1, 1]).unwrap();
        let g = b.finish();
        assert_eq!(g.n_snps(), 1);
        assert_eq!(g.ones_in_snp(0), 4);
    }

    #[test]
    fn short_iterator_rolls_back_words() {
        let mut b = BitMatrixBuilder::new(70);
        // 65 bits: pushes one full word, then must roll back.
        assert!(b.push_snp_bits((0..65).map(|_| true)).is_err());
        b.push_snp_bits((0..70).map(|s| s < 2)).unwrap();
        let g = b.finish();
        assert_eq!(g.n_snps(), 1);
        assert_eq!(g.ones_in_snp(0), 2);
    }

    #[test]
    fn rejects_invalid_byte() {
        let mut b = BitMatrixBuilder::new(2);
        assert!(matches!(
            b.push_snp_bytes(&[0, 3]),
            Err(BitMatError::InvalidAllele { value: 3, .. })
        ));
    }

    #[test]
    fn push_words_validates_padding() {
        let mut b = BitMatrixBuilder::new(4);
        assert!(b.push_snp_words(&[0b10000]).is_err()); // bit 4 is padding
        b.push_snp_words(&[0b1010]).unwrap();
        let g = b.finish();
        assert_eq!(g.ones_in_snp(0), 2);
    }

    #[test]
    fn matches_from_rows() {
        let rows = [[1u8, 0], [0, 1], [1, 1]];
        let by_rows = BitMatrix::from_rows(3, 2, rows).unwrap();
        let mut b = BitMatrixBuilder::with_capacity(3, 2);
        b.push_snp_bytes(&[1, 0, 1]).unwrap();
        b.push_snp_bytes(&[0, 1, 1]).unwrap();
        assert_eq!(b.n_snps(), 2);
        assert_eq!(b.n_samples(), 3);
        assert_eq!(b.finish(), by_rows);
    }
}
