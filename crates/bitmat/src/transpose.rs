//! Fast bit-matrix transposition.
//!
//! Parsers and sequencers produce *sample-major* rows (one individual's
//! alleles across all SNPs), but every LD kernel wants the *SNP-major*
//! packed layout. Setting bits one at a time costs a read-modify-write per
//! allele; transposing 64×64 bit tiles with the classic recursive
//! block-swap (Hacker's Delight §7-3) moves 4096 alleles with ~190 word
//! ops, an order of magnitude faster — this is the bulk-ingestion path for
//! [`crate::BitMatrix::from_sample_major_words`].

use crate::{words_for, AlignedWords, BitMatrix, WORD_BITS};

/// Transposes a 64×64 bit block in place: bit `(r, c)` moves to `(c, r)`.
/// `block[r]` is row `r`, bit `c` = column `c`.
pub fn transpose_64x64(block: &mut [u64; 64]) {
    // swap progressively smaller sub-blocks: widths 32, 16, 8, 4, 2, 1
    let mut width = 32usize;
    while width > 0 {
        // mask selecting the low `width` bits of every 2·width bit group
        let mut mask = 0u64;
        let mut pos = 0;
        while pos < 64 {
            mask |= (((1u128 << width) - 1) as u64) << pos;
            pos += 2 * width;
        }
        let mut r = 0usize;
        while r < 64 {
            // rows come in pairs (r, r+width) within each 2*width group
            for i in r..r + width {
                let a = block[i];
                let b = block[i + width];
                // exchange the off-diagonal quadrants
                let t = ((a >> width) ^ b) & mask;
                block[i] = a ^ (t << width);
                block[i + width] = b ^ t;
            }
            r += 2 * width;
        }
        width /= 2;
    }
}

impl BitMatrix {
    /// Builds a matrix from **sample-major packed rows**: `rows[s]` holds
    /// sample `s`'s alleles, bit `j` of word `j / 64` = SNP `j`. Each row
    /// needs `ceil(n_snps / 64)` words; padding bits must be zero.
    ///
    /// This is the fast path for parsers that naturally stream samples:
    /// the conversion transposes 64×64 tiles instead of setting single
    /// bits.
    pub fn from_sample_major_words(
        n_samples: usize,
        n_snps: usize,
        rows: &[u64],
    ) -> Result<Self, crate::BitMatError> {
        let wpr = words_for(n_snps); // words per (sample) row
        if rows.len() != n_samples * wpr {
            return Err(crate::BitMatError::DimensionMismatch {
                expected: n_samples * wpr,
                got: rows.len(),
                what: "words",
            });
        }
        let wps = words_for(n_samples); // words per SNP column (output)
        let mut words = AlignedWords::zeroed(wps * n_snps);
        let mut tile = [0u64; 64];
        // walk 64×64 tiles: sample block sb, snp block jb
        for sb in 0..wps {
            let s0 = sb * WORD_BITS;
            let s_count = WORD_BITS.min(n_samples - s0);
            for jb in 0..wpr {
                let j0 = jb * WORD_BITS;
                let j_count = WORD_BITS.min(n_snps - j0);
                // load: tile row r = sample s0+r's word jb
                for (r, t) in tile.iter_mut().enumerate() {
                    *t = if r < s_count {
                        rows[(s0 + r) * wpr + jb]
                    } else {
                        0
                    };
                }
                transpose_64x64(&mut tile);
                // store: tile row c = SNP j0+c's word sb
                for c in 0..j_count {
                    words[(j0 + c) * wps + sb] = tile[c];
                }
            }
        }
        Self::from_words(n_samples, n_snps, words)
    }

    /// The inverse view: packs this matrix into sample-major rows
    /// (`ceil(n_snps/64)` words per sample).
    pub fn to_sample_major_words(&self) -> Vec<u64> {
        let wpr = words_for(self.n_snps());
        let wps = self.words_per_snp();
        let mut rows = vec![0u64; self.n_samples() * wpr];
        let mut tile = [0u64; 64];
        for jb in 0..wpr {
            let j0 = jb * WORD_BITS;
            let j_count = WORD_BITS.min(self.n_snps() - j0);
            for sb in 0..wps {
                let s0 = sb * WORD_BITS;
                let s_count = WORD_BITS.min(self.n_samples() - s0);
                for (c, t) in tile.iter_mut().enumerate() {
                    *t = if c < j_count {
                        self.snp_words(j0 + c)[sb]
                    } else {
                        0
                    };
                }
                transpose_64x64(&mut tile);
                for r in 0..s_count {
                    rows[(s0 + r) * wpr + jb] = tile[r];
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_transpose(block: &[u64; 64]) -> [u64; 64] {
        let mut out = [0u64; 64];
        for (r, &row) in block.iter().enumerate() {
            for (c, o) in out.iter_mut().enumerate() {
                if (row >> c) & 1 == 1 {
                    *o |= 1 << r;
                }
            }
        }
        out
    }

    fn pseudo_block(seed: u64) -> [u64; 64] {
        let mut s = seed | 1;
        let mut out = [0u64; 64];
        for w in out.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *w = s;
        }
        out
    }

    #[test]
    fn tile_transpose_matches_reference() {
        for seed in [1u64, 42, 0xdead_beef, u64::MAX / 3] {
            let mut block = pseudo_block(seed);
            let expect = reference_transpose(&block);
            transpose_64x64(&mut block);
            assert_eq!(block, expect, "seed {seed}");
        }
    }

    #[test]
    fn tile_transpose_is_involutive() {
        let original = pseudo_block(7);
        let mut block = original;
        transpose_64x64(&mut block);
        transpose_64x64(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn special_patterns() {
        // identity diagonal stays put
        let mut diag = [0u64; 64];
        for (i, w) in diag.iter_mut().enumerate() {
            *w = 1 << i;
        }
        let before = diag;
        transpose_64x64(&mut diag);
        assert_eq!(diag, before);
        // single row becomes single column
        let mut row0 = [0u64; 64];
        row0[0] = u64::MAX;
        transpose_64x64(&mut row0);
        assert!(row0.iter().all(|&w| w == 1));
    }

    #[test]
    fn sample_major_round_trip_odd_shapes() {
        for (n_samples, n_snps) in [
            (1usize, 1usize),
            (63, 65),
            (64, 64),
            (100, 130),
            (130, 100),
            (65, 1),
        ] {
            // build a reference matrix bit by bit
            let mut g = BitMatrix::zeros(n_samples, n_snps);
            let mut s = (n_samples * 31 + n_snps) as u64 | 1;
            for j in 0..n_snps {
                for smp in 0..n_samples {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if s.is_multiple_of(3) {
                        g.set(smp, j, true);
                    }
                }
            }
            let rows = g.to_sample_major_words();
            let back = BitMatrix::from_sample_major_words(n_samples, n_snps, &rows).unwrap();
            assert_eq!(back, g, "shape ({n_samples},{n_snps})");
        }
    }

    #[test]
    fn sample_major_words_match_bitwise_reads() {
        let mut g = BitMatrix::zeros(70, 90);
        g.set(0, 0, true);
        g.set(69, 89, true);
        g.set(64, 63, true);
        let rows = g.to_sample_major_words();
        let wpr = words_for(90);
        assert_eq!(rows[0] & 1, 1); // sample 0, snp 0
        assert_eq!((rows[69 * wpr + 1] >> (89 - 64)) & 1, 1); // sample 69, snp 89
        assert_eq!((rows[64 * wpr] >> 63) & 1, 1);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(BitMatrix::from_sample_major_words(10, 10, &[0u64; 3]).is_err());
    }

    #[test]
    fn padding_violations_detected() {
        // a stray bit beyond n_snps in a sample row leaks into nothing —
        // but a stray bit beyond n_samples cannot occur by construction;
        // verify output padding is clean for awkward shapes.
        let rows = vec![u64::MAX; 65]; // 65 samples × 1 word (64 snps)
        let g = BitMatrix::from_sample_major_words(65, 64, &rows).unwrap();
        g.check_padding().unwrap();
        for j in 0..64 {
            assert_eq!(g.ones_in_snp(j), 65);
        }
    }
}
