//! Cache-line aligned `u64` storage.
//!
//! The BLIS-style packing routines copy micro-panels of the genomic matrix
//! into contiguous buffers that are streamed by the micro-kernel. Aligning
//! those buffers to 64 bytes keeps every `MR`/`NR`-wide group of words inside
//! as few cache lines as possible and enables aligned vector loads in the
//! AVX2/AVX-512 kernels.
//!
//! Implemented safely on top of `Vec<CacheLine>` where `CacheLine` is a
//! `#[repr(C, align(64))]` array of eight `u64`s: the vector's allocation is
//! 64-byte aligned by construction, and the element type guarantees the
//! words are contiguous.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// One 64-byte cache line worth of `u64` words.
#[repr(C, align(64))]
#[derive(Clone, Copy, Default)]
struct CacheLine([u64; 8]);

const WORDS_PER_LINE: usize = 8;

/// A growable, 64-byte-aligned buffer of `u64` words.
///
/// Dereferences to `&[u64]` / `&mut [u64]` of the *logical* length, which
/// need not be a multiple of 8; the trailing words of the last cache line
/// are kept allocated but outside the slice.
///
/// ```
/// use ld_bitmat::AlignedWords;
/// let mut w = AlignedWords::zeroed(10);
/// assert_eq!(w.len(), 10);
/// assert_eq!(w.as_ptr() as usize % 64, 0);
/// w[3] = 0xdead_beef;
/// assert_eq!(w.iter().copied().sum::<u64>(), 0xdead_beef);
/// ```
pub struct AlignedWords {
    lines: Vec<CacheLine>,
    len: usize,
}

impl AlignedWords {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self {
            lines: Vec::new(),
            len: 0,
        }
    }

    /// A buffer of `len` words, all zero.
    pub fn zeroed(len: usize) -> Self {
        let lines = vec![CacheLine::default(); len.div_ceil(WORDS_PER_LINE)];
        Self { lines, len }
    }

    /// A buffer with capacity for at least `cap` words and length zero.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            lines: Vec::with_capacity(cap.div_ceil(WORDS_PER_LINE)),
            len: 0,
        }
    }

    /// Copies the contents of `src` into a fresh aligned buffer.
    pub fn from_slice(src: &[u64]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.copy_from_slice(src);
        v
    }

    /// Logical number of words.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resizes to `len` words; new words are zero. Shrinking does not
    /// release memory (the buffer is intended for reuse across GEMM calls).
    pub fn resize_zeroed(&mut self, len: usize) {
        let lines = len.div_ceil(WORDS_PER_LINE);
        self.lines.resize(lines, CacheLine::default());
        // Words that become visible again after a shrink+grow cycle must be
        // zero; clear anything past the new logical end inside the last line.
        if len > self.len {
            let start = self.len;
            self.len = len;
            let slice = &mut self[..];
            for w in &mut slice[start.min(len)..] {
                *w = 0;
            }
        } else {
            self.len = len;
        }
        // Zero the slack beyond `len` so that a later grow sees zeros.
        let total = self.lines.len() * WORDS_PER_LINE;
        if total > len {
            let raw = unsafe {
                std::slice::from_raw_parts_mut(self.lines.as_mut_ptr() as *mut u64, total)
            };
            for w in &mut raw[len..] {
                *w = 0;
            }
        }
    }

    /// Ensures the buffer holds at least `len` zeroed words, reusing the
    /// existing allocation when possible, and zeroes the visible prefix.
    pub fn reset_zeroed(&mut self, len: usize) {
        self.resize_zeroed(len);
        for w in self.iter_mut() {
            *w = 0;
        }
    }

    /// Appends a word.
    pub fn push(&mut self, word: u64) {
        let idx = self.len;
        if idx == self.lines.len() * WORDS_PER_LINE {
            self.lines.push(CacheLine::default());
        }
        self.len += 1;
        self[idx] = word;
    }

    /// Raw pointer to the first word (64-byte aligned when non-empty).
    #[inline]
    pub fn as_ptr(&self) -> *const u64 {
        self.lines.as_ptr() as *const u64
    }

    /// Mutable raw pointer to the first word.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut u64 {
        self.lines.as_mut_ptr() as *mut u64
    }
}

impl Default for AlignedWords {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for AlignedWords {
    type Target = [u64];
    #[inline]
    fn deref(&self) -> &[u64] {
        // SAFETY: `lines` owns `lines.len() * 8 >= self.len` contiguous u64s.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr() as *const u64, self.len) }
    }
}

impl DerefMut for AlignedWords {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        // SAFETY: as above; unique access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr() as *mut u64, self.len) }
    }
}

impl Clone for AlignedWords {
    fn clone(&self) -> Self {
        Self {
            lines: self.lines.clone(),
            len: self.len,
        }
    }
}

impl fmt::Debug for AlignedWords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedWords")
            .field("len", &self.len)
            .finish()
    }
}

impl PartialEq for AlignedWords {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for AlignedWords {}

impl FromIterator<u64> for AlignedWords {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut v = Self::new();
        for w in iter {
            v.push(w);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64_bytes() {
        for n in [1usize, 7, 8, 9, 64, 1000] {
            let v = AlignedWords::zeroed(n);
            assert_eq!(v.as_ptr() as usize % 64, 0, "len={n}");
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn zeroed_is_zero() {
        let v = AlignedWords::zeroed(100);
        assert!(v.iter().all(|&w| w == 0));
    }

    #[test]
    fn push_and_index() {
        let mut v = AlignedWords::new();
        for i in 0..100u64 {
            v.push(i * i);
        }
        assert_eq!(v.len(), 100);
        for i in 0..100u64 {
            assert_eq!(v[i as usize], i * i);
        }
    }

    #[test]
    fn resize_zeroed_grows_with_zeros() {
        let mut v = AlignedWords::zeroed(3);
        v[0] = 1;
        v[1] = 2;
        v[2] = 3;
        v.resize_zeroed(10);
        assert_eq!(&v[..3], &[1, 2, 3]);
        assert!(v[3..].iter().all(|&w| w == 0));
    }

    #[test]
    fn shrink_then_grow_sees_zeros() {
        let mut v = AlignedWords::zeroed(10);
        for w in v.iter_mut() {
            *w = u64::MAX;
        }
        v.resize_zeroed(2);
        v.resize_zeroed(10);
        assert_eq!(&v[..2], &[u64::MAX, u64::MAX]);
        assert!(v[2..].iter().all(|&w| w == 0), "slack must be re-zeroed");
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<u64> = (0..37).map(|i| i * 3 + 1).collect();
        let v = AlignedWords::from_slice(&data);
        assert_eq!(&v[..], &data[..]);
    }

    #[test]
    fn clone_eq() {
        let v: AlignedWords = (0..20u64).collect();
        let w = v.clone();
        assert_eq!(v, w);
    }
}
