//! Error type for bit-matrix construction and validation.

use std::fmt;

/// Errors produced while building or validating bit matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitMatError {
    /// A row/column had a different length than the matrix expects.
    DimensionMismatch {
        /// What the matrix expected.
        expected: usize,
        /// What the caller supplied.
        got: usize,
        /// Human-readable name of the dimension ("samples", "snps", ...).
        what: &'static str,
    },
    /// An allele value outside {0, 1} was supplied to a strictly biallelic
    /// builder.
    InvalidAllele {
        /// The offending byte.
        value: u8,
        /// Sample (row) index.
        sample: usize,
        /// SNP (column) index.
        snp: usize,
    },
    /// A padding bit beyond `n_samples` was found set; the popcount kernels
    /// would produce wrong counts.
    PaddingViolation {
        /// SNP (column) index with the stray bit.
        snp: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
        /// Which axis.
        what: &'static str,
    },
}

impl fmt::Display for BitMatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitMatError::DimensionMismatch {
                expected,
                got,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} {what}, got {got}"
                )
            }
            BitMatError::InvalidAllele { value, sample, snp } => write!(
                f,
                "invalid allele value {value} at sample {sample}, SNP {snp} (expected 0 or 1)"
            ),
            BitMatError::PaddingViolation { snp } => {
                write!(f, "padding bits of SNP {snp} are not zero")
            }
            BitMatError::IndexOutOfBounds { index, bound, what } => {
                write!(f, "{what} index {index} out of bounds (< {bound})")
            }
        }
    }
}

impl std::error::Error for BitMatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BitMatError::DimensionMismatch {
            expected: 10,
            got: 9,
            what: "samples",
        };
        assert!(e.to_string().contains("expected 10 samples"));
        let e = BitMatError::InvalidAllele {
            value: 7,
            sample: 1,
            snp: 2,
        };
        assert!(e.to_string().contains("allele value 7"));
        let e = BitMatError::PaddingViolation { snp: 3 };
        assert!(e.to_string().contains("SNP 3"));
        let e = BitMatError::IndexOutOfBounds {
            index: 5,
            bound: 5,
            what: "snp",
        };
        assert!(e.to_string().contains("out of bounds"));
    }
}
