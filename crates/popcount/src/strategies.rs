//! Scalar population-count strategies.
//!
//! All strategies compute the same function; they differ in instruction mix
//! and therefore throughput. The paper (§IV-A) cites measurements showing
//! the hardware `POPCNT` instruction beating every software scheme, which
//! the `ablation` benchmark of `ld-bench` reproduces.

/// 8-bit lookup table: `LUT8[b]` = number of set bits in byte `b`.
static LUT8: [u8; 256] = build_lut8();

const fn build_lut8() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = (i as u8).count_ones() as u8;
        i += 1;
    }
    t
}

/// A scalar strategy for counting set bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PopcountStrategy {
    /// The hardware `POPCNT` instruction (`u64::count_ones`; compiles to
    /// `popcnt` when the target supports it). The paper's choice.
    Hardware,
    /// The classic SWAR (SIMD-within-a-register) bit-twiddling sequence —
    /// what `count_ones` lowers to on targets *without* `POPCNT`.
    Swar,
    /// Byte-wise 256-entry lookup table.
    Lut8,
    /// 16-bit 65536-entry lookup table (large but fewer lookups per word).
    Lut16,
    /// Harley–Seal carry-save-adder reduction; only meaningful for bulk
    /// slices, where it amortizes full-adder networks over 8 words.
    /// Falls back to [`PopcountStrategy::Swar`] for single words.
    HarleySeal,
}

impl PopcountStrategy {
    /// All strategies, for sweeps and tests.
    pub const ALL: [PopcountStrategy; 5] = [
        PopcountStrategy::Hardware,
        PopcountStrategy::Swar,
        PopcountStrategy::Lut8,
        PopcountStrategy::Lut16,
        PopcountStrategy::HarleySeal,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PopcountStrategy::Hardware => "hardware",
            PopcountStrategy::Swar => "swar",
            PopcountStrategy::Lut8 => "lut8",
            PopcountStrategy::Lut16 => "lut16",
            PopcountStrategy::HarleySeal => "harley-seal",
        }
    }

    /// Counts set bits in one word with this strategy.
    #[inline]
    pub fn count_word(self, w: u64) -> u32 {
        match self {
            PopcountStrategy::Hardware => w.count_ones(),
            PopcountStrategy::Swar | PopcountStrategy::HarleySeal => swar(w),
            PopcountStrategy::Lut8 => lut8(w),
            PopcountStrategy::Lut16 => lut16(w),
        }
    }

    /// Counts set bits over a slice.
    pub fn count_slice(self, words: &[u64]) -> u64 {
        match self {
            PopcountStrategy::HarleySeal => harley_seal(words),
            _ => words.iter().map(|&w| self.count_word(w) as u64).sum(),
        }
    }

    /// Fused `Σ popcnt(a & b)` — the haplotype-frequency inner product.
    pub fn count_and_slice(self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len(), "operand slices must have equal length");
        match self {
            PopcountStrategy::HarleySeal => harley_seal_and(a, b),
            _ => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.count_word(x & y) as u64)
                .sum(),
        }
    }
}

/// Counts set bits of one word with the default (hardware) strategy.
#[inline]
pub fn popcount(w: u64) -> u32 {
    w.count_ones()
}

/// Counts set bits over a slice with the default strategy.
#[inline]
pub fn popcount_slice(words: &[u64]) -> u64 {
    words.iter().map(|&w| w.count_ones() as u64).sum()
}

/// `Σ popcnt(a & b)` with the default strategy — Eq. (4)'s numerator.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x & y).count_ones() as u64)
        .sum()
}

/// The scalar `POPCNT` instruction pinned with inline asm.
///
/// `count_ones()` is auto-vectorized into `VPOPCNTQ` by LLVM when the
/// build targets an AVX-512 CPU — great for production code, but wrong for
/// any measurement that must reflect the *scalar* instruction (the paper's
/// §IV/§V analysis, and the 2016-era baselines in `ld-baselines`, which
/// historically used the 64-bit scalar intrinsic). Non-x86 targets fall
/// back to `count_ones()`.
#[inline(always)]
pub fn popcount_pinned(x: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let r: u64;
        // SAFETY: POPCNT is present on every x86-64 CPU since ~2008; the
        // workspace's kernels verify it at resolution time.
        unsafe {
            std::arch::asm!(
                "popcnt {r}, {x}",
                r = out(reg) r,
                x = in(reg) x,
                options(pure, nomem, nostack)
            );
        }
        r
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        x.count_ones() as u64
    }
}

/// `Σ popcnt(a & b)` with the popcount pinned to the scalar instruction,
/// unrolled 4× for instruction-level parallelism (the shape of the
/// OmegaPlus inner loop after the paper's footnote-5 upgrade).
pub fn and_popcount_pinned(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "operand slices must have equal length");
    let n = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
    let mut i = 0;
    while i + 4 <= n {
        s0 += popcount_pinned(a[i] & b[i]);
        s1 += popcount_pinned(a[i + 1] & b[i + 1]);
        s2 += popcount_pinned(a[i + 2] & b[i + 2]);
        s3 += popcount_pinned(a[i + 3] & b[i + 3]);
        i += 4;
    }
    let mut total = s0 + s1 + s2 + s3;
    while i < n {
        total += popcount_pinned(a[i] & b[i]);
        i += 1;
    }
    total
}

/// SWAR popcount (Hacker's Delight fig. 5-2).
#[inline]
fn swar(mut x: u64) -> u32 {
    x -= (x >> 1) & 0x5555_5555_5555_5555;
    x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    x = (x + (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    ((x.wrapping_mul(0x0101_0101_0101_0101)) >> 56) as u32
}

#[inline]
fn lut8(w: u64) -> u32 {
    w.to_le_bytes()
        .iter()
        .map(|&b| LUT8[b as usize] as u32)
        .sum()
}

fn lut16_table() -> &'static [u8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u8>> = OnceLock::new();
    TABLE.get_or_init(|| (0..=u16::MAX).map(|v| v.count_ones() as u8).collect())
}

#[inline]
fn lut16(w: u64) -> u32 {
    let t = lut16_table();
    (0..4)
        .map(|i| t[((w >> (16 * i)) & 0xffff) as usize] as u32)
        .sum()
}

/// Carry-save full adder: returns (sum, carry) bit-planes.
#[inline]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// Harley–Seal popcount over a slice: processes 8 words through a CSA tree,
/// counting only the "eights" plane with one scalar popcount per 8 words
/// (plus small corrections), then handles the remainder naively.
pub fn harley_seal(words: &[u64]) -> u64 {
    let mut total = 0u64;
    let (mut ones, mut twos, mut fours) = (0u64, 0u64, 0u64);
    let chunks = words.chunks_exact(8);
    let rest = chunks.remainder();
    for c in chunks {
        let (t0, c0) = csa(ones, c[0], c[1]);
        let (t1, c1) = csa(t0, c[2], c[3]);
        let (t2, c2) = csa(t1, c[4], c[5]);
        let (t3, c3) = csa(t2, c[6], c[7]);
        ones = t3;
        let (tw0, f0) = csa(twos, c0, c1);
        let (tw1, f1) = csa(tw0, c2, c3);
        twos = tw1;
        let (fo, eight) = csa(fours, f0, f1);
        fours = fo;
        total += 8 * swar(eight) as u64;
    }
    total += 4 * swar(fours) as u64 + 2 * swar(twos) as u64 + swar(ones) as u64;
    total + rest.iter().map(|&w| swar(w) as u64).sum::<u64>()
}

/// Harley–Seal over `a[i] & b[i]`.
pub fn harley_seal_and(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len());
    let mut total = 0u64;
    let (mut ones, mut twos, mut fours) = (0u64, 0u64, 0u64);
    let mut i = 0;
    while i + 8 <= a.len() {
        let w = [
            a[i] & b[i],
            a[i + 1] & b[i + 1],
            a[i + 2] & b[i + 2],
            a[i + 3] & b[i + 3],
            a[i + 4] & b[i + 4],
            a[i + 5] & b[i + 5],
            a[i + 6] & b[i + 6],
            a[i + 7] & b[i + 7],
        ];
        let (t0, c0) = csa(ones, w[0], w[1]);
        let (t1, c1) = csa(t0, w[2], w[3]);
        let (t2, c2) = csa(t1, w[4], w[5]);
        let (t3, c3) = csa(t2, w[6], w[7]);
        ones = t3;
        let (tw0, f0) = csa(twos, c0, c1);
        let (tw1, f1) = csa(tw0, c2, c3);
        twos = tw1;
        let (fo, eight) = csa(fours, f0, f1);
        fours = fo;
        total += 8 * swar(eight) as u64;
        i += 8;
    }
    total += 4 * swar(fours) as u64 + 2 * swar(twos) as u64 + swar(ones) as u64;
    total
        + a[i..]
            .iter()
            .zip(&b[i..])
            .map(|(&x, &y)| swar(x & y) as u64)
            .sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROBES: [u64; 8] = [
        0,
        u64::MAX,
        1,
        1 << 63,
        0xdead_beef_cafe_babe,
        0x5555_5555_5555_5555,
        0xaaaa_aaaa_aaaa_aaaa,
        0x0123_4567_89ab_cdef,
    ];

    #[test]
    fn all_strategies_agree_on_words() {
        for &w in &PROBES {
            let expect = w.count_ones();
            for s in PopcountStrategy::ALL {
                assert_eq!(s.count_word(w), expect, "strategy {} word {w:#x}", s.name());
            }
        }
    }

    #[test]
    fn slice_strategies_agree() {
        // length 27 exercises the Harley–Seal remainder path
        let words: Vec<u64> = (0..27)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let expect: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        for s in PopcountStrategy::ALL {
            assert_eq!(s.count_slice(&words), expect, "strategy {}", s.name());
        }
        assert_eq!(popcount_slice(&words), expect);
    }

    #[test]
    fn and_slice_strategies_agree() {
        let a: Vec<u64> = (0..33)
            .map(|i| (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
            .collect();
        let b: Vec<u64> = (0..33)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xff)
            .collect();
        let expect: u64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x & y).count_ones() as u64)
            .sum();
        for s in PopcountStrategy::ALL {
            assert_eq!(s.count_and_slice(&a, &b), expect, "strategy {}", s.name());
        }
        assert_eq!(and_popcount(&a, &b), expect);
    }

    #[test]
    fn harley_seal_exact_multiples() {
        let words = vec![u64::MAX; 16];
        assert_eq!(harley_seal(&words), 16 * 64);
        let words = vec![u64::MAX; 8];
        assert_eq!(harley_seal(&words), 8 * 64);
        assert_eq!(harley_seal(&[]), 0);
    }

    #[test]
    fn single_word_popcount() {
        assert_eq!(popcount(0), 0);
        assert_eq!(popcount(u64::MAX), 64);
        assert_eq!(popcount(0b1011), 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_slices_panic() {
        PopcountStrategy::Hardware.count_and_slice(&[1, 2], &[3]);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PopcountStrategy::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PopcountStrategy::ALL.len());
    }
}
