//! CPU fingerprint: identity + cache geometry for tuned-profile keying.
//!
//! A tuned kernel/blocking profile is only valid on the machine class it
//! was measured on, so profiles are keyed by the tuple this module
//! detects: vendor string, family/model numbers, the instruction-set
//! features from [`crate::CpuFeatures`], and the per-level cache sizes
//! that drive `BlockSizes` defaults. Any component differing between the
//! profile and the running CPU invalidates the profile.

use crate::CpuFeatures;

/// Identity of the CPU a tuning profile was measured on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuFingerprint {
    /// Target architecture (`"x86_64"`, or `"unknown"` elsewhere).
    pub arch: String,
    /// CPUID vendor string (`"GenuineIntel"`, `"AuthenticAMD"`, …).
    pub vendor: String,
    /// Display family (base + extended).
    pub family: u32,
    /// Display model (base + extended<<4).
    pub model: u32,
    /// Instruction-set features relevant to kernel selection.
    pub features: CpuFeatures,
    /// L1 data cache size in KiB (0 if undetectable).
    pub l1d_kb: u32,
    /// L2 cache size in KiB (0 if undetectable).
    pub l2_kb: u32,
    /// L3 cache size in KiB (0 if undetectable).
    pub l3_kb: u32,
}

/// Process-wide cache: the fingerprint cannot change at runtime.
static DETECTED: std::sync::OnceLock<CpuFingerprint> = std::sync::OnceLock::new();

impl CpuFingerprint {
    /// Detects the fingerprint of the current CPU (cached after first call).
    pub fn detect() -> &'static Self {
        DETECTED.get_or_init(Self::detect_uncached)
    }

    /// Uncached detection: re-runs the `cpuid` interrogation.
    pub fn detect_uncached() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            detect_x86_64()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFingerprint {
                arch: "unknown".to_string(),
                vendor: "unknown".to_string(),
                family: 0,
                model: 0,
                features: CpuFeatures::detect(),
                l1d_kb: 0,
                l2_kb: 0,
                l3_kb: 0,
            }
        }
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} {} family={} model={} l1d={}K l2={}K l3={}K [{}]",
            self.arch,
            self.vendor,
            self.family,
            self.model,
            self.l1d_kb,
            self.l2_kb,
            self.l3_kb,
            self.features.summary()
        )
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_x86_64() -> CpuFingerprint {
    use std::arch::x86_64::{__cpuid, __cpuid_count};

    let leaf0 = __cpuid(0);
    let max_leaf = leaf0.eax;
    let mut vendor_bytes = [0u8; 12];
    vendor_bytes[0..4].copy_from_slice(&leaf0.ebx.to_le_bytes());
    vendor_bytes[4..8].copy_from_slice(&leaf0.edx.to_le_bytes());
    vendor_bytes[8..12].copy_from_slice(&leaf0.ecx.to_le_bytes());
    let vendor = String::from_utf8_lossy(&vendor_bytes)
        .trim_end_matches('\0')
        .to_string();

    let (family, model) = if max_leaf >= 1 {
        let leaf1 = __cpuid(1);
        let base_family = (leaf1.eax >> 8) & 0xF;
        let ext_family = (leaf1.eax >> 20) & 0xFF;
        let base_model = (leaf1.eax >> 4) & 0xF;
        let ext_model = (leaf1.eax >> 16) & 0xF;
        let family = if base_family == 0xF {
            base_family + ext_family
        } else {
            base_family
        };
        let model = if base_family == 0x6 || base_family == 0xF {
            (ext_model << 4) | base_model
        } else {
            base_model
        };
        (family, model)
    } else {
        (0, 0)
    };

    // Deterministic-cache-parameter enumeration: Intel leaf 4, AMD leaf
    // 0x8000001D (same encoding). Falls back to the AMD legacy leaves.
    let (mut l1d_kb, mut l2_kb, mut l3_kb) = (0u32, 0u32, 0u32);
    let max_ext = __cpuid(0x8000_0000).eax;
    let cache_leaf = if max_leaf >= 4 {
        Some(4u32)
    } else if max_ext >= 0x8000_001D {
        Some(0x8000_001Du32)
    } else {
        None
    };
    if let Some(leaf) = cache_leaf {
        for sub in 0..16u32 {
            // Invalid subleaves report cache type 0 and end the loop.
            let c = __cpuid_count(leaf, sub);
            let ctype = c.eax & 0x1F;
            if ctype == 0 {
                break;
            }
            let level = (c.eax >> 5) & 0x7;
            let ways = (c.ebx >> 22) + 1;
            let partitions = ((c.ebx >> 12) & 0x3FF) + 1;
            let line = (c.ebx & 0xFFF) + 1;
            let sets = c.ecx + 1;
            let kb = ways
                .saturating_mul(partitions)
                .saturating_mul(line)
                .saturating_mul(sets)
                / 1024;
            match (level, ctype) {
                (1, 1) => l1d_kb = kb,         // L1 data
                (2, 3) | (2, 1) => l2_kb = kb, // L2 unified (or data)
                (3, 3) => l3_kb = kb,          // L3 unified
                _ => {}
            }
        }
    }
    if l1d_kb == 0 && max_ext >= 0x8000_0006 {
        // AMD legacy cache leaves.
        let l1 = __cpuid(0x8000_0005);
        let l23 = __cpuid(0x8000_0006);
        l1d_kb = l1.ecx >> 24;
        l2_kb = l23.ecx >> 16;
        l3_kb = ((l23.edx >> 18) & 0x3FFF) * 512;
    }

    CpuFingerprint {
        arch: "x86_64".to_string(),
        vendor,
        family,
        model,
        features: CpuFeatures::detect(),
        l1d_kb,
        l2_kb,
        l3_kb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_does_not_panic_and_is_cached() {
        let a = CpuFingerprint::detect();
        let b = CpuFingerprint::detect();
        assert!(std::ptr::eq(a, b));
        assert_eq!(*a, CpuFingerprint::detect_uncached());
    }

    #[test]
    fn x86_fingerprint_has_vendor_and_caches() {
        let fp = CpuFingerprint::detect();
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(fp.arch, "x86_64");
            assert!(!fp.vendor.is_empty());
            // Every x86_64 part this workspace targets has real caches.
            assert!(fp.l1d_kb > 0, "L1d undetected: {}", fp.summary());
            assert!(fp.l2_kb > 0, "L2 undetected: {}", fp.summary());
        }
        let s = fp.summary();
        assert!(s.contains("family="));
    }

    #[test]
    fn mismatched_fingerprints_compare_unequal() {
        let a = CpuFingerprint::detect_uncached();
        let mut b = a.clone();
        b.model = a.model.wrapping_add(1);
        assert_ne!(a, b);
        let mut c = a.clone();
        c.l3_kb = a.l3_kb.wrapping_add(1024);
        assert_ne!(a, c);
    }
}
