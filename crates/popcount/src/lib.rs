//! # ld-popcount — population-count strategies and the SIMD cost model
//!
//! The performance bottleneck of linkage-disequilibrium computation is the
//! *population count*: every haplotype-frequency inner product is
//! `Σ_k POPCNT(s_i^k & s_j^k)` over packed 64-bit words (paper §IV-A).
//! This crate collects every way of computing that primitive that the paper
//! discusses or that its argument implies:
//!
//! * [`strategies`] — scalar strategies: the hardware `POPCNT` instruction
//!   (`u64::count_ones`), the classic SWAR bit-twiddle, and 8-/16-bit lookup
//!   tables (the "software implementations" of the paper's §IV references
//!   \[17\], \[18\]), plus a Harley–Seal carry-save adder for bulk slices.
//! * [`simd`] — explicitly vectorized bulk popcounts: the AVX2
//!   Mula/`PSHUFB` nibble-table popcount (software vector popcount) and the
//!   AVX-512 `VPOPCNTDQ` instruction (the *hardware vectorized popcount* the
//!   paper's §V-B asks for), both runtime-feature-guarded; and the
//!   extract/insert anti-pattern of §V-A for measurement.
//! * [`model`] — the paper's §V analytical model: `T`, `T_SIMD`, `T_HW` as
//!   functions of the SIMD width `v`, showing why wider SIMD without a
//!   vector popcount yields no speedup.
//! * [`detect`] — runtime CPU feature detection used to pick kernels.
//! * [`fingerprint`] — CPU identity + cache geometry, the key under which
//!   tuned kernel/blocking profiles are cached and invalidated.

#![warn(missing_docs)]

pub mod detect;
pub mod fingerprint;
pub mod model;
pub mod simd;
pub mod strategies;

pub use detect::CpuFeatures;
pub use fingerprint::CpuFingerprint;
pub use model::{SimdCostModel, SimdTimes};
pub use strategies::{and_popcount, popcount, popcount_slice, PopcountStrategy};
