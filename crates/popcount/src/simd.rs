//! Explicitly vectorized bulk popcounts (x86-64).
//!
//! Three code paths, mirroring the paper's §V taxonomy:
//!
//! 1. [`and_popcount_extract_insert_avx2`] — the **anti-pattern** analysed
//!    in §V-A: AND two 256-bit registers, then *extract* each 64-bit lane,
//!    run the scalar `POPCNT`, and *insert* the results back into a vector
//!    for a SIMD accumulate. The paper predicts (and our `simd` benchmark
//!    confirms) this is no faster than staying scalar, because the lane
//!    traffic serializes on the same ports as the popcount itself.
//! 2. [`and_popcount_mula_avx2`] — a *software* vector popcount: the
//!    Mula/`PSHUFB` nibble-lookup computes per-byte counts inside the SIMD
//!    register and `VPSADBW` horizontally reduces them, i.e. it emulates the
//!    missing instruction with ~5 cheap vector ops per 256 bits.
//! 3. [`and_popcount_vpopcntdq`] — the *hardware* vector popcount of
//!    §V-B: AVX-512 `VPOPCNTQ` counts eight 64-bit lanes per instruction.
//!
//! All functions compute `Σ_k popcnt(a[k] & b[k])` and are verified against
//! the scalar reference in tests (when the CPU supports them).

/// Returns `Σ popcnt(a & b)` using AVX2 with per-lane extract → scalar
/// `POPCNT` → insert (the §V-A anti-pattern). Falls back to scalar if AVX2
/// is unavailable.
pub fn and_popcount_extract_insert_avx2(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
        {
            // SAFETY: features checked above.
            return unsafe { extract_insert_avx2(a, b) };
        }
    }
    crate::strategies::and_popcount(a, b)
}

/// Scalar `POPCNT` pinned with inline asm so LLVM cannot re-vectorize the
/// extract/insert sequence into `VPOPCNTQ` on AVX-512 targets (it will,
/// which would un-measure the very anti-pattern this function exists to
/// measure).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn popcnt_pinned(x: i64) -> i64 {
    let r: i64;
    // SAFETY: callers are gated on POPCNT detection.
    unsafe {
        std::arch::asm!(
            "popcnt {r}, {x}",
            r = out(reg) r,
            x = in(reg) x,
            options(pure, nomem, nostack)
        );
    }
    r
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn extract_insert_avx2(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let and = _mm256_and_si256(va, vb);
        // Extract each 64-bit lane, scalar POPCNT, re-insert — deliberately
        // the instruction sequence the paper's §V-A analyses.
        let l0 = popcnt_pinned(_mm256_extract_epi64::<0>(and));
        let l1 = popcnt_pinned(_mm256_extract_epi64::<1>(and));
        let l2 = popcnt_pinned(_mm256_extract_epi64::<2>(and));
        let l3 = popcnt_pinned(_mm256_extract_epi64::<3>(and));
        let counts = _mm256_set_epi64x(l3, l2, l1, l0);
        acc = _mm256_add_epi64(acc, counts);
        i += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total: u64 = lanes.iter().sum();
    while i < n {
        total += (a[i] & b[i]).count_ones() as u64;
        i += 1;
    }
    total
}

/// Returns `Σ popcnt(a & b)` with the AVX2 Mula nibble-LUT popcount
/// (software vector popcount). Falls back to scalar without AVX2.
pub fn and_popcount_mula_avx2(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature checked above.
            return unsafe { mula_avx2(a, b) };
        }
    }
    crate::strategies::and_popcount(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mula_avx2(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // low lane
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // high lane
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let v = _mm256_and_si256(va, vb);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        // per-byte counts → per-64-bit-lane sums
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
        i += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total: u64 = lanes.iter().sum();
    while i < n {
        total += (a[i] & b[i]).count_ones() as u64;
        i += 1;
    }
    total
}

/// Returns `Σ popcnt(a & b)` using AVX-512 `VPOPCNTQ` — the hardware
/// vectorized popcount the paper calls for. Falls back to scalar when the
/// CPU lacks `avx512f`+`avx512vpopcntdq`.
pub fn and_popcount_vpopcntdq(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            // SAFETY: features checked above.
            return unsafe { vpopcntdq(a, b) };
        }
    }
    crate::strategies::and_popcount(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn vpopcntdq(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0;
    while i + 8 <= n {
        let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
        let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
        let and = _mm512_and_si512(va, vb);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(and));
        i += 8;
    }
    let mut total = _mm512_reduce_add_epi64(acc) as u64;
    while i < n {
        total += (a[i] & b[i]).count_ones() as u64;
        i += 1;
    }
    total
}

/// Bulk popcount of a single slice via `VPOPCNTQ` (used for per-SNP allele
/// counts on large matrices); scalar fallback otherwise.
pub fn popcount_slice_vpopcntdq(words: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            // SAFETY: features checked above.
            return unsafe { popcount_slice_512(words) };
        }
    }
    crate::strategies::popcount_slice(words)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn popcount_slice_512(words: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = words.len();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm512_loadu_si512(words.as_ptr().add(i) as *const _);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        i += 8;
    }
    let mut total = _mm512_reduce_add_epi64(acc) as u64;
    while i < n {
        total += words[i].count_ones() as u64;
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::and_popcount;

    fn mk(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut s = seed;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<u64> = (0..n).map(|_| next()).collect();
        let b: Vec<u64> = (0..n).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn vector_paths_match_scalar_reference() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 32, 33, 127, 1000] {
            let (a, b) = mk(n, 0x1234_5678 + n as u64);
            let expect = and_popcount(&a, &b);
            assert_eq!(
                and_popcount_extract_insert_avx2(&a, &b),
                expect,
                "extract n={n}"
            );
            assert_eq!(and_popcount_mula_avx2(&a, &b), expect, "mula n={n}");
            assert_eq!(and_popcount_vpopcntdq(&a, &b), expect, "vpopcnt n={n}");
        }
    }

    #[test]
    fn slice_popcount_matches() {
        for n in [0usize, 5, 8, 100, 999] {
            let (a, _) = mk(n, 99);
            let expect: u64 = a.iter().map(|w| w.count_ones() as u64).sum();
            assert_eq!(popcount_slice_vpopcntdq(&a), expect, "n={n}");
        }
    }

    #[test]
    fn all_ones_and_zeros() {
        let a = vec![u64::MAX; 16];
        let z = vec![0u64; 16];
        assert_eq!(and_popcount_mula_avx2(&a, &a), 16 * 64);
        assert_eq!(and_popcount_mula_avx2(&a, &z), 0);
        assert_eq!(and_popcount_vpopcntdq(&a, &a), 16 * 64);
        assert_eq!(and_popcount_extract_insert_avx2(&a, &z), 0);
    }
}
