//! The paper's §V analytical model of SIMD benefit for LD.
//!
//! The micro-kernel's steady state issues, per packed 64-bit word pair, one
//! `AND`, one `POPCNT` and one `ADD`; the paper assumes all three can issue
//! in the same cycle, giving a theoretical peak of 3 ops/cycle and a
//! per-word time of `max(T_and, T_popcnt, T_add)`.
//!
//! * **Scalar** (`T`): `m·n·max(T_and, T_popcnt, T_add)`.
//! * **SIMD without vector popcount** (`T_SIMD`): AND and ADD drop to
//!   `T/v` for `v` lanes, but POPCNT stays scalar, so the max is unchanged —
//!   *no benefit*. Worse, each lane must be **extracted** before the scalar
//!   POPCNT and the result **inserted** back; these transfers contend for
//!   the same hardware, adding a per-word penalty `T_xfer`, so the model
//!   allows `T_SIMD > T` (a slowdown).
//! * **Hardware vector popcount** (`T_HW`): all three scale, giving
//!   `T/v` — the full SIMD speedup (§V-B; realized today by AVX-512
//!   `VPOPCNTDQ`).

use std::fmt;

/// Instruction timing assumptions for the §V model, in cycles per
/// instruction (the paper uses 1 for everything).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimdCostModel {
    /// SIMD width in 64-bit lanes (`v` in the paper): 1 = scalar,
    /// 2 = SSE, 4 = AVX2, 8 = AVX-512.
    pub lanes: usize,
    /// Cycles per AND instruction.
    pub t_and: f64,
    /// Cycles per POPCNT instruction (scalar, 64-bit).
    pub t_popcnt: f64,
    /// Cycles per ADD (accumulate) instruction.
    pub t_add: f64,
    /// Extra cycles per 64-bit word spent extracting lanes to feed the
    /// scalar POPCNT and inserting results back (§V-A: "extractions and
    /// insertions cannot be performed in parallel as they require the same
    /// hardware resources"). Zero in the best case the paper first assumes.
    pub t_xfer: f64,
}

impl SimdCostModel {
    /// The paper's idealized assumptions: every instruction is 1 cycle,
    /// no transfer penalty.
    pub fn paper_ideal(lanes: usize) -> Self {
        Self {
            lanes,
            t_and: 1.0,
            t_popcnt: 1.0,
            t_add: 1.0,
            t_xfer: 0.0,
        }
    }

    /// Like [`SimdCostModel::paper_ideal`] but with a transfer penalty of
    /// one cycle per extract and one per insert per word — the "in
    /// practice" case of §V-A.
    pub fn paper_practical(lanes: usize) -> Self {
        Self {
            lanes,
            t_and: 1.0,
            t_popcnt: 1.0,
            t_add: 1.0,
            t_xfer: 2.0,
        }
    }

    /// Scalar time per word pair: `max(T_and, T_popcnt, T_add)`.
    pub fn word_time_scalar(&self) -> f64 {
        self.t_and.max(self.t_popcnt).max(self.t_add)
    }

    /// SIMD-without-vector-popcount time per word pair:
    /// `max(T_and/v, T_add/v, T_popcnt + T_xfer)`.
    pub fn word_time_simd(&self) -> f64 {
        let v = self.lanes as f64;
        (self.t_and / v)
            .max(self.t_add / v)
            .max(self.t_popcnt + self.t_xfer)
    }

    /// Hardware-vector-popcount time per word pair: `max(...)/v`.
    pub fn word_time_hw(&self) -> f64 {
        self.word_time_scalar() / self.lanes as f64
    }

    /// Full-matrix times for an `m × n` output with `k_words` packed words
    /// per SNP (the paper folds `k` into the per-element constant; we keep
    /// it explicit).
    pub fn times(&self, m: usize, n: usize, k_words: usize) -> SimdTimes {
        let elems = (m as f64) * (n as f64) * (k_words as f64);
        SimdTimes {
            lanes: self.lanes,
            scalar: elems * self.word_time_scalar(),
            simd: elems * self.word_time_simd(),
            hw: elems * self.word_time_hw(),
        }
    }

    /// Predicted speedup of SIMD-without-vector-popcount over scalar
    /// (≤ 1.0 whenever `t_xfer ≥ 0` — the paper's headline claim).
    pub fn simd_speedup(&self) -> f64 {
        self.word_time_scalar() / self.word_time_simd()
    }

    /// Predicted speedup of hardware vector popcount over scalar (= `v`).
    pub fn hw_speedup(&self) -> f64 {
        self.word_time_scalar() / self.word_time_hw()
    }
}

/// Predicted cycle counts for the three §V scenarios.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimdTimes {
    /// SIMD width used for the prediction.
    pub lanes: usize,
    /// `T`: scalar implementation.
    pub scalar: f64,
    /// `T_SIMD`: SIMD AND/ADD, scalar POPCNT with lane transfers.
    pub simd: f64,
    /// `T_HW`: vectorized POPCNT in hardware.
    pub hw: f64,
}

impl fmt::Display for SimdTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "v={:<2} T={:>12.0}  T_SIMD={:>12.0} ({:+.0}%)  T_HW={:>12.0} ({:.1}x)",
            self.lanes,
            self.scalar,
            self.simd,
            (self.simd / self.scalar - 1.0) * 100.0,
            self.hw,
            self.scalar / self.hw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_shows_no_simd_benefit() {
        // §V-A best case: T_SIMD == T for every width.
        for v in [1, 2, 4, 8, 16] {
            let m = SimdCostModel::paper_ideal(v);
            assert_eq!(m.word_time_simd(), m.word_time_scalar(), "v={v}");
            assert!((m.simd_speedup() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn practical_model_shows_slowdown() {
        // With transfer contention, SIMD is strictly slower than scalar.
        let m = SimdCostModel::paper_practical(4);
        assert!(m.word_time_simd() > m.word_time_scalar());
        assert!(m.simd_speedup() < 1.0);
    }

    #[test]
    fn hw_popcount_gives_linear_speedup() {
        for v in [2usize, 4, 8] {
            let m = SimdCostModel::paper_ideal(v);
            assert!((m.hw_speedup() - v as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn times_scale_with_problem_size() {
        let m = SimdCostModel::paper_ideal(8);
        let t1 = m.times(100, 100, 10);
        let t2 = m.times(200, 100, 10);
        assert!((t2.scalar / t1.scalar - 2.0).abs() < 1e-12);
        assert!((t1.scalar / t1.hw - 8.0).abs() < 1e-12);
        assert_eq!(t1.lanes, 8);
    }

    #[test]
    fn display_mentions_width() {
        let t = SimdCostModel::paper_ideal(4).times(10, 10, 1);
        assert!(t.to_string().contains("v=4"));
    }

    #[test]
    fn scalar_width_one_is_degenerate() {
        let m = SimdCostModel::paper_ideal(1);
        assert_eq!(m.word_time_scalar(), m.word_time_hw());
    }
}
