//! Runtime CPU feature detection.
//!
//! Every explicitly-vectorized kernel in the workspace is gated on the
//! features reported here; on CPUs without them the engine silently uses
//! the scalar POPCNT path (the paper's main implementation).

/// The instruction-set features relevant to LD kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    /// Hardware scalar `POPCNT` (x86, 2007+ per the paper).
    pub popcnt: bool,
    /// 256-bit AVX2 integer SIMD (needed by the Mula software popcount and
    /// the extract/insert anti-pattern kernel).
    pub avx2: bool,
    /// AVX-512 foundation (512-bit registers).
    pub avx512f: bool,
    /// AVX-512 `VPOPCNTDQ` — the vectorized population count instruction
    /// whose absence §V of the paper laments.
    pub avx512vpopcntdq: bool,
}

/// Process-wide cache: the CPU's feature set cannot change at runtime, so
/// `cpuid` is interrogated exactly once (the drivers resolve a kernel per
/// call, which used to re-run the detection macros every time).
static DETECTED: std::sync::OnceLock<CpuFeatures> = std::sync::OnceLock::new();

impl CpuFeatures {
    /// Detects the features of the current CPU (cached after first call).
    pub fn detect() -> Self {
        *DETECTED.get_or_init(Self::detect_uncached)
    }

    /// Uncached detection: re-runs the `cpuid` interrogation. Only useful
    /// for tests that want to confirm the cache is coherent.
    pub fn detect_uncached() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            Self {
                popcnt: std::arch::is_x86_feature_detected!("popcnt"),
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                avx512vpopcntdq: std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self::default()
        }
    }

    /// True if the AVX-512 vector-popcount kernel can run.
    pub fn has_vector_popcount(&self) -> bool {
        self.avx512f && self.avx512vpopcntdq
    }

    /// Human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "popcnt={} avx2={} avx512f={} vpopcntdq={}",
            self.popcnt, self.avx2, self.avx512f, self.avx512vpopcntdq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_does_not_panic_and_is_consistent() {
        let f = CpuFeatures::detect();
        // vpopcntdq implies avx512f on any real CPU; our accessor demands both.
        if f.has_vector_popcount() {
            assert!(f.avx512f && f.avx512vpopcntdq);
        }
        let s = f.summary();
        assert!(s.contains("popcnt="));
    }

    #[test]
    fn cached_detection_matches_uncached() {
        // The OnceLock cache must be coherent with a fresh cpuid pass, and
        // repeated calls must return the identical feature set.
        let cached = CpuFeatures::detect();
        assert_eq!(cached, CpuFeatures::detect_uncached());
        assert_eq!(cached, CpuFeatures::detect());
    }

    #[test]
    fn default_is_all_false() {
        let f = CpuFeatures::default();
        assert!(!f.popcnt && !f.avx2 && !f.has_vector_popcount());
    }
}
