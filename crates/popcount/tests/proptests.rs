//! Property tests: every popcount path computes the same function.

use ld_popcount::simd::{
    and_popcount_extract_insert_avx2, and_popcount_mula_avx2, and_popcount_vpopcntdq,
    popcount_slice_vpopcntdq,
};
use ld_popcount::strategies::{and_popcount, harley_seal, harley_seal_and};
use ld_popcount::PopcountStrategy;
use proptest::prelude::*;

proptest! {
    #[test]
    fn strategies_equal_reference(words in proptest::collection::vec(any::<u64>(), 0..200)) {
        let expect: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        for s in PopcountStrategy::ALL {
            prop_assert_eq!(s.count_slice(&words), expect, "strategy {}", s.name());
        }
        prop_assert_eq!(harley_seal(&words), expect);
        prop_assert_eq!(popcount_slice_vpopcntdq(&words), expect);
    }

    #[test]
    fn and_paths_equal_reference(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..200)
    ) {
        let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let expect = and_popcount(&a, &b);
        for s in PopcountStrategy::ALL {
            prop_assert_eq!(s.count_and_slice(&a, &b), expect, "strategy {}", s.name());
        }
        prop_assert_eq!(harley_seal_and(&a, &b), expect);
        prop_assert_eq!(and_popcount_extract_insert_avx2(&a, &b), expect);
        prop_assert_eq!(and_popcount_mula_avx2(&a, &b), expect);
        prop_assert_eq!(and_popcount_vpopcntdq(&a, &b), expect);
    }

    #[test]
    fn and_popcount_bounded_by_operands(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..100)
    ) {
        let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let x = and_popcount(&a, &b);
        let pa: u64 = a.iter().map(|w| w.count_ones() as u64).sum();
        let pb: u64 = b.iter().map(|w| w.count_ones() as u64).sum();
        // |A ∩ B| ≤ min(|A|, |B|) — the basis of the Tanimoto bound too.
        prop_assert!(x <= pa.min(pb));
        // inclusion-exclusion lower bound
        prop_assert!(pa + pb <= x + 64 * pairs.len() as u64);
    }
}
