//! Property tests: every popcount path computes the same function.
//! Seeded `ld-rng` cases replace `proptest` (unavailable offline).

use ld_popcount::simd::{
    and_popcount_extract_insert_avx2, and_popcount_mula_avx2, and_popcount_vpopcntdq,
    popcount_slice_vpopcntdq,
};
use ld_popcount::strategies::{and_popcount, harley_seal, harley_seal_and};
use ld_popcount::PopcountStrategy;
use ld_rng::SmallRng;

fn random_words(rng: &mut SmallRng, len: usize) -> Vec<u64> {
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn strategies_equal_reference() {
    let mut rng = SmallRng::seed_from_u64(0x70c);
    for case in 0..64 {
        let len = rng.gen_range(0usize..200);
        let words = random_words(&mut rng, len);
        let expect: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        for s in PopcountStrategy::ALL {
            assert_eq!(
                s.count_slice(&words),
                expect,
                "case {case}: strategy {}",
                s.name()
            );
        }
        assert_eq!(harley_seal(&words), expect, "case {case}");
        assert_eq!(popcount_slice_vpopcntdq(&words), expect, "case {case}");
    }
}

#[test]
fn and_paths_equal_reference() {
    let mut rng = SmallRng::seed_from_u64(0xa2d);
    for case in 0..64 {
        let len = rng.gen_range(0usize..200);
        let a = random_words(&mut rng, len);
        let b = random_words(&mut rng, len);
        let expect = and_popcount(&a, &b);
        for s in PopcountStrategy::ALL {
            assert_eq!(
                s.count_and_slice(&a, &b),
                expect,
                "case {case}: strategy {}",
                s.name()
            );
        }
        assert_eq!(harley_seal_and(&a, &b), expect, "case {case}");
        assert_eq!(
            and_popcount_extract_insert_avx2(&a, &b),
            expect,
            "case {case}"
        );
        assert_eq!(and_popcount_mula_avx2(&a, &b), expect, "case {case}");
        assert_eq!(and_popcount_vpopcntdq(&a, &b), expect, "case {case}");
    }
}

#[test]
fn and_popcount_bounded_by_operands() {
    let mut rng = SmallRng::seed_from_u64(0xbed);
    for case in 0..64 {
        let len = rng.gen_range(1usize..100);
        let a = random_words(&mut rng, len);
        let b = random_words(&mut rng, len);
        let x = and_popcount(&a, &b);
        let pa: u64 = a.iter().map(|w| w.count_ones() as u64).sum();
        let pb: u64 = b.iter().map(|w| w.count_ones() as u64).sum();
        // |A ∩ B| ≤ min(|A|, |B|) — the basis of the Tanimoto bound too.
        assert!(x <= pa.min(pb), "case {case}");
        // inclusion-exclusion lower bound
        assert!(pa + pb <= x + 64 * len as u64, "case {case}");
    }
}
