//! Property tests for the association layer.
//! Seeded `ld-rng` cases replace `proptest` (unavailable offline).

use ld_assoc::{allelic_scan, chi2_sf_1df, genomic_lambda, PhenotypeSimulator};
use ld_bitmat::BitMatrix;
use ld_data::HaplotypeSimulator;
use ld_rng::SmallRng;

#[test]
fn scan_counts_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xa550c);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..300);
        let n_snps = rng.gen_range(1usize..24);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let (labels, mask) = PhenotypeSimulator::new(vec![(0, 0.5)])
            .seed(seed ^ 1)
            .simulate(&g);
        let results = allelic_scan(&g.full_view(), &mask, 2);
        assert_eq!(results.len(), n_snps, "case {case}");
        for r in &results {
            // counts never exceed the group sizes or the SNP's total count
            let total = g.ones_in_snp(r.snp);
            assert_eq!(r.case_alt + r.ctrl_alt, total, "case {case}: snp {}", r.snp);
            let n_case = labels.iter().filter(|&&c| c).count() as u64;
            assert!(r.case_alt <= n_case, "case {case}");
            assert!(r.ctrl_alt <= n_samples as u64 - n_case, "case {case}");
            // p in [0, 1], chi2 >= 0, OR > 0
            assert!((0.0..=1.0).contains(&r.p), "case {case}");
            assert!(r.chi2 >= 0.0, "case {case}");
            assert!(r.odds_ratio > 0.0, "case {case}");
            // p agrees with the chi2 through the sf
            assert!((r.p - chi2_sf_1df(r.chi2)).abs() < 1e-12, "case {case}");
        }
    }
}

#[test]
fn swapping_cases_and_controls_preserves_chi2() {
    let mut rng = SmallRng::seed_from_u64(0x5a9);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..200);
        let n_snps = rng.gen_range(1usize..12);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        let (_, mask) = PhenotypeSimulator::new(vec![(0, 1.0)])
            .seed(seed)
            .simulate(&g);
        // complement the mask within the valid sample range
        let mut inv = mask.clone();
        for (w, word) in inv.iter_mut().enumerate() {
            *word = !*word;
            let hi = n_samples.saturating_sub(w * 64).min(64);
            if hi < 64 {
                *word &= (1u64 << hi) - 1;
            }
        }
        let a = allelic_scan(&g.full_view(), &mask, 1);
        let b = allelic_scan(&g.full_view(), &inv, 1);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.chi2 - y.chi2).abs() < 1e-9, "case {case}: snp {}", x.snp);
            // odds ratio inverts
            assert!(
                (x.odds_ratio * y.odds_ratio - 1.0).abs() < 0.2 * x.odds_ratio.max(1.0),
                "case {case}: snp {}",
                x.snp
            );
        }
    }
}

#[test]
fn null_phenotype_is_calibrated() {
    let mut rng = SmallRng::seed_from_u64(0xca11b);
    for case in 0..4 {
        // phenotype independent of genotype: lambda should hover near 1
        let seed = rng.gen_range(0u64..1_000);
        let g = HaplotypeSimulator::new(800, 200).seed(seed).generate();
        let mut mask = vec![0u64; ld_bitmat::words_for(800)];
        let mut s = seed | 1;
        for smp in 0..800usize {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s.is_multiple_of(2) {
                mask[smp / 64] |= 1 << (smp % 64);
            }
        }
        let results = allelic_scan(&g.full_view(), &mask, 1);
        let lambda = genomic_lambda(&results.iter().map(|r| r.chi2).collect::<Vec<_>>());
        assert!(
            (0.5..2.0).contains(&lambda),
            "case {case}: lambda = {lambda}"
        );
    }
}

#[test]
fn constant_phenotype_yields_no_signal() {
    let mut rng = SmallRng::seed_from_u64(0xc0);
    for case in 0..24 {
        let n_samples = rng.gen_range(2usize..100);
        let n_snps = rng.gen_range(1usize..10);
        let seed = rng.gen_range(0u64..10_000);
        let g = HaplotypeSimulator::new(n_samples, n_snps)
            .seed(seed)
            .generate();
        // everyone is a case: chi2 degenerates to 0 for every SNP
        let mut mask = vec![0u64; ld_bitmat::words_for(n_samples)];
        for smp in 0..n_samples {
            mask[smp / 64] |= 1 << (smp % 64);
        }
        for r in allelic_scan(&g.full_view(), &mask, 1) {
            assert_eq!(r.chi2, 0.0, "case {case}: snp {}", r.snp);
            assert_eq!(r.p, 1.0, "case {case}: snp {}", r.snp);
        }
    }
}

#[test]
fn scan_mask_matches_bitmatrix_semantics() {
    // deterministic end-to-end check against per-sample brute force
    let g = BitMatrix::from_rows(6, 2, [[1u8, 0], [1, 1], [0, 1], [1, 0], [0, 0], [1, 1]]).unwrap();
    let mask = vec![0b010101u64]; // cases: samples 0, 2, 4
    let r = allelic_scan(&g.full_view(), &mask, 1);
    // snp0 carriers {0,1,3,5}: cases carrying = {0} -> 1
    assert_eq!(r[0].case_alt, 1);
    assert_eq!(r[0].ctrl_alt, 3);
    // snp1 carriers {1,2,5}: cases carrying = {2} -> 1
    assert_eq!(r[1].case_alt, 1);
    assert_eq!(r[1].ctrl_alt, 2);
}
