//! Property tests for the association layer.

use ld_assoc::{allelic_scan, chi2_sf_1df, genomic_lambda, PhenotypeSimulator};
use ld_bitmat::BitMatrix;
use ld_data::HaplotypeSimulator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_counts_are_consistent(
        n_samples in 2usize..300,
        n_snps in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let g = HaplotypeSimulator::new(n_samples, n_snps).seed(seed).generate();
        let (labels, mask) = PhenotypeSimulator::new(vec![(0, 0.5)])
            .seed(seed ^ 1)
            .simulate(&g);
        let results = allelic_scan(&g.full_view(), &mask, 2);
        prop_assert_eq!(results.len(), n_snps);
        for r in &results {
            // counts never exceed the group sizes or the SNP's total count
            let total = g.ones_in_snp(r.snp);
            prop_assert_eq!(r.case_alt + r.ctrl_alt, total);
            let n_case = labels.iter().filter(|&&c| c).count() as u64;
            prop_assert!(r.case_alt <= n_case);
            prop_assert!(r.ctrl_alt <= n_samples as u64 - n_case);
            // p in [0, 1], chi2 >= 0, OR > 0
            prop_assert!((0.0..=1.0).contains(&r.p));
            prop_assert!(r.chi2 >= 0.0);
            prop_assert!(r.odds_ratio > 0.0);
            // p agrees with the chi2 through the sf
            prop_assert!((r.p - chi2_sf_1df(r.chi2)).abs() < 1e-12);
        }
    }

    #[test]
    fn swapping_cases_and_controls_preserves_chi2(
        n_samples in 2usize..200,
        n_snps in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let g = HaplotypeSimulator::new(n_samples, n_snps).seed(seed).generate();
        let (_, mask) = PhenotypeSimulator::new(vec![(0, 1.0)]).seed(seed).simulate(&g);
        // complement the mask within the valid sample range
        let mut inv = mask.clone();
        for (w, word) in inv.iter_mut().enumerate() {
            *word = !*word;
            let hi = n_samples.saturating_sub(w * 64).min(64);
            if hi < 64 {
                *word &= (1u64 << hi) - 1;
            }
        }
        let a = allelic_scan(&g.full_view(), &mask, 1);
        let b = allelic_scan(&g.full_view(), &inv, 1);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.chi2 - y.chi2).abs() < 1e-9, "snp {}", x.snp);
            // odds ratio inverts
            prop_assert!((x.odds_ratio * y.odds_ratio - 1.0).abs() < 0.2 * x.odds_ratio.max(1.0));
        }
    }

    #[test]
    fn null_phenotype_is_calibrated(
        seed in 0u64..1_000,
    ) {
        // phenotype independent of genotype: lambda should hover near 1
        let g = HaplotypeSimulator::new(800, 200).seed(seed).generate();
        let mut mask = vec![0u64; ld_bitmat::words_for(800)];
        let mut s = seed | 1;
        for smp in 0..800usize {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s % 2 == 0 {
                mask[smp / 64] |= 1 << (smp % 64);
            }
        }
        let results = allelic_scan(&g.full_view(), &mask, 1);
        let lambda = genomic_lambda(&results.iter().map(|r| r.chi2).collect::<Vec<_>>());
        prop_assert!((0.5..2.0).contains(&lambda), "lambda = {lambda}");
    }

    #[test]
    fn constant_phenotype_yields_no_signal(
        n_samples in 2usize..100,
        n_snps in 1usize..10,
        seed in 0u64..10_000,
    ) {
        let g = HaplotypeSimulator::new(n_samples, n_snps).seed(seed).generate();
        // everyone is a case: chi2 degenerates to 0 for every SNP
        let mut mask = vec![0u64; ld_bitmat::words_for(n_samples)];
        for smp in 0..n_samples {
            mask[smp / 64] |= 1 << (smp % 64);
        }
        for r in allelic_scan(&g.full_view(), &mask, 1) {
            prop_assert_eq!(r.chi2, 0.0);
            prop_assert_eq!(r.p, 1.0);
        }
    }
}

#[test]
fn scan_mask_matches_bitmatrix_semantics() {
    // deterministic end-to-end check against per-sample brute force
    let g = BitMatrix::from_rows(
        6,
        2,
        [[1u8, 0], [1, 1], [0, 1], [1, 0], [0, 0], [1, 1]],
    )
    .unwrap();
    let mask = vec![0b010101u64]; // cases: samples 0, 2, 4
    let r = allelic_scan(&g.full_view(), &mask, 1);
    // snp0 carriers {0,1,3,5}: cases carrying = {0} -> 1
    assert_eq!(r[0].case_alt, 1);
    assert_eq!(r[0].ctrl_alt, 3);
    // snp1 carriers {1,2,5}: cases carrying = {2} -> 1
    assert_eq!(r[1].case_alt, 1);
    assert_eq!(r[1].ctrl_alt, 2);
}
