//! Statistical helpers: χ² tail probabilities, odds ratios, λ_GC.

/// Complementary error function (Abramowitz & Stegun 7.1.26; |ε| ≤ 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if sign_negative {
        2.0 - e
    } else {
        e
    }
}

/// Survival function of the χ² distribution with 1 degree of freedom:
/// `P(X ≥ x) = erfc(√(x/2))`.
pub fn chi2_sf_1df(x: f64) -> f64 {
    if x <= 0.0 {
        1.0
    } else {
        erfc((x / 2.0).sqrt())
    }
}

/// Quantile-free genomic-control λ: the median observed χ² statistic over
/// the median of the 1-df χ² distribution (0.4549). λ ≈ 1 for a
/// well-calibrated scan; inflation (stratification, cryptic relatedness)
/// pushes it above 1.
pub fn genomic_lambda(chi2_stats: &[f64]) -> f64 {
    if chi2_stats.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = chi2_stats
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    };
    const CHI2_1DF_MEDIAN: f64 = 0.454936423119573;
    median / CHI2_1DF_MEDIAN
}

/// 2×2 allelic odds ratio with Haldane–Anscombe 0.5 correction.
pub fn odds_ratio(case_alt: u64, case_ref: u64, ctrl_alt: u64, ctrl_ref: u64) -> f64 {
    let (a, b, c, d) = (
        case_alt as f64 + 0.5,
        case_ref as f64 + 0.5,
        ctrl_alt as f64 + 0.5,
        ctrl_ref as f64 + 0.5,
    );
    (a * d) / (b * c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // reference values from standard tables
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(0.5) - 0.4795001).abs() < 1e-5);
        assert!((erfc(1.0) - 0.1572992).abs() < 1e-5);
        assert!((erfc(2.0) - 0.0046777).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.8427008).abs() < 1e-5);
    }

    #[test]
    fn chi2_tail_reference_values() {
        // P(chi2_1 >= 3.841) = 0.05; >= 6.635 -> 0.01; >= 10.828 -> 0.001
        assert!((chi2_sf_1df(3.841459) - 0.05).abs() < 2e-4);
        assert!((chi2_sf_1df(6.634897) - 0.01).abs() < 1e-4);
        assert!((chi2_sf_1df(10.8276) - 0.001).abs() < 5e-5);
        assert_eq!(chi2_sf_1df(0.0), 1.0);
        assert_eq!(chi2_sf_1df(-3.0), 1.0);
    }

    #[test]
    fn chi2_sf_is_monotone() {
        let mut last = 1.0;
        for i in 1..100 {
            let p = chi2_sf_1df(i as f64 * 0.3);
            assert!(p <= last + 1e-12);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn lambda_of_null_chi2_sample_is_near_one() {
        // χ²(1) = Z²: build a crude normal sample via sum of uniforms
        let mut s = 12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let stats: Vec<f64> = (0..20_000)
            .map(|_| {
                let z: f64 = (0..12).map(|_| next()).sum::<f64>() - 6.0; // ~N(0,1)
                z * z
            })
            .collect();
        let lambda = genomic_lambda(&stats);
        assert!((lambda - 1.0).abs() < 0.06, "lambda = {lambda}");
    }

    #[test]
    fn lambda_edge_cases() {
        assert!(genomic_lambda(&[]).is_nan());
        assert!(genomic_lambda(&[f64::NAN]).is_nan());
        let l = genomic_lambda(&[0.4549364231]);
        assert!((l - 1.0).abs() < 1e-9);
    }

    #[test]
    fn odds_ratio_directions() {
        // enriched in cases -> OR > 1
        assert!(odds_ratio(80, 20, 50, 50) > 1.0);
        assert!(odds_ratio(20, 80, 50, 50) < 1.0);
        // symmetric table -> OR == 1
        assert!((odds_ratio(50, 50, 50, 50) - 1.0).abs() < 1e-12);
        // zero cells survive thanks to the 0.5 correction
        assert!(odds_ratio(10, 0, 0, 10).is_finite());
    }
}
