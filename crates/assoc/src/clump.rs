//! LD clumping — PLINK's `--clump` on the blocked engine.
//!
//! A GWAS scan reports correlated hits in clumps: one causal signal drags
//! every SNP in LD with it below the significance line. Clumping reduces
//! the hit list to *index SNPs*: repeatedly take the most significant
//! remaining SNP, assign every SNP within `window` whose `r²` with it
//! exceeds `r2_threshold` to its clump, and continue.

use crate::scan::AssocResult;
use ld_bitmat::BitMatrixView;
use ld_core::{LdEngine, NanPolicy};

/// One clump: an index SNP and its absorbed members.
#[derive(Clone, Debug, PartialEq)]
pub struct Clump {
    /// The index (most significant) SNP.
    pub index_snp: usize,
    /// Index SNP's p-value.
    pub p: f64,
    /// Members absorbed into this clump (excluding the index SNP),
    /// ascending.
    pub members: Vec<usize>,
}

/// Clumps the significant results (`p ≤ p_threshold`).
///
/// `window` bounds the clumping radius in SNP indices; `r²` queries run
/// through `engine` on the window view around each index SNP, so only
/// `O(window)` LD values are computed per clump.
pub fn clump(
    g: &BitMatrixView<'_>,
    results: &[AssocResult],
    engine: &LdEngine,
    p_threshold: f64,
    r2_threshold: f64,
    window: usize,
) -> Vec<Clump> {
    let engine = engine.clone().nan_policy(NanPolicy::Zero);
    let mut candidates: Vec<&AssocResult> = results.iter().filter(|r| r.p <= p_threshold).collect();
    candidates.sort_by(|a, b| a.p.partial_cmp(&b.p).unwrap_or(std::cmp::Ordering::Equal));
    let mut taken = vec![false; g.n_snps()];
    let mut out = Vec::new();
    for r in candidates {
        if taken[r.snp] {
            continue;
        }
        taken[r.snp] = true;
        let lo = r.snp.saturating_sub(window);
        let hi = (r.snp + window + 1).min(g.n_snps());
        // r² between the index SNP and its window, one thin cross-GEMM
        let index_view = g.subview(r.snp, r.snp + 1);
        let win_view = g.subview(lo, hi);
        let cross = engine.r2_cross(index_view, win_view);
        let mut members = Vec::new();
        for (j, taken_j) in taken.iter_mut().enumerate().take(hi).skip(lo) {
            if j != r.snp && !*taken_j && cross.get(0, j - lo) >= r2_threshold {
                *taken_j = true;
                members.push(j);
            }
        }
        out.push(Clump {
            index_snp: r.snp,
            p: r.p,
            members,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allelic_scan;
    use ld_bitmat::BitMatrix;

    /// Three LD groups of 4 identical SNPs; group 0 and 2 associated.
    fn fixture() -> (BitMatrix, Vec<u64>) {
        let n_samples = 64usize;
        let mut g = BitMatrix::zeros(n_samples, 12);
        // cases = samples 0..32
        let case_mask = vec![0x0000_0000_FFFF_FFFFu64];
        // group 0 (snps 0..4): carried by samples 0..24 — enriched in cases
        for j in 0..4 {
            for s in 0..24 {
                g.set(s, j, true);
            }
        }
        // group 1 (snps 4..8): half-and-half — null
        for j in 4..8 {
            for s in (0..n_samples).step_by(2) {
                g.set(s, j, true);
            }
        }
        // group 2 (snps 8..12): carried by samples 40..64 — enriched in controls
        for j in 8..12 {
            for s in 40..64 {
                g.set(s, j, true);
            }
        }
        (g, case_mask)
    }

    #[test]
    fn clumps_collapse_ld_groups() {
        let (g, mask) = fixture();
        let results = allelic_scan(&g.full_view(), &mask, 1);
        let engine = LdEngine::new();
        let clumps = clump(&g.full_view(), &results, &engine, 0.05, 0.5, 12);
        assert_eq!(clumps.len(), 2, "two independent signals: {clumps:?}");
        for c in &clumps {
            assert_eq!(c.members.len(), 3, "each group of 4 collapses to index + 3");
            // members are from the same group as the index
            let group = c.index_snp / 4;
            assert!(c.members.iter().all(|&m| m / 4 == group));
        }
        // clumps are ordered by significance
        assert!(clumps[0].p <= clumps[1].p);
    }

    #[test]
    fn null_snps_do_not_clump() {
        let (g, mask) = fixture();
        let results = allelic_scan(&g.full_view(), &mask, 1);
        let clumps = clump(&g.full_view(), &results, &LdEngine::new(), 0.05, 0.5, 12);
        for c in &clumps {
            assert!(!(4..8).contains(&c.index_snp), "null group became an index");
            assert!(c.members.iter().all(|m| !(4..8).contains(m)));
        }
    }

    #[test]
    fn threshold_one_keeps_everything_separate() {
        let (g, mask) = fixture();
        let results = allelic_scan(&g.full_view(), &mask, 1);
        // r² must exceed 1.0 -> nothing absorbs, every significant SNP is
        // its own clump... except identical SNPs have r² == 1 ≥ 1.0.
        let clumps = clump(
            &g.full_view(),
            &results,
            &LdEngine::new(),
            0.05,
            1.0 + 1e-9,
            12,
        );
        let n_sig = results.iter().filter(|r| r.p <= 0.05).count();
        assert_eq!(clumps.len(), n_sig);
        assert!(clumps.iter().all(|c| c.members.is_empty()));
    }

    #[test]
    fn window_bounds_absorption() {
        let (g, mask) = fixture();
        let results = allelic_scan(&g.full_view(), &mask, 1);
        // window 0: nothing beyond the index itself can be absorbed
        let clumps = clump(&g.full_view(), &results, &LdEngine::new(), 0.05, 0.5, 0);
        assert!(clumps.iter().all(|c| c.members.is_empty()));
    }

    #[test]
    fn no_significant_results_no_clumps() {
        let (g, mask) = fixture();
        let results = allelic_scan(&g.full_view(), &mask, 1);
        let clumps = clump(&g.full_view(), &results, &LdEngine::new(), 1e-30, 0.5, 12);
        assert!(clumps.is_empty());
    }
}
