//! Allelic association scans via popcounts.
//!
//! For each SNP `s` and case mask `y` (one bit per sample), the 2×2
//! allelic table is three popcounts:
//!
//! ```text
//! case_alt = POPCNT(s ∧ y)      ctrl_alt = POPCNT(s) − case_alt
//! n_case   = POPCNT(y)          n_ctrl   = N − n_case
//! ```
//!
//! — the matrix-vector sibling of the paper's LD GEMM, running on the
//! identical packed substrate. A whole-matrix scan touches every word
//! once, so it is bandwidth-trivial next to LD itself.

use crate::stats::{chi2_sf_1df, odds_ratio};
use ld_bitmat::BitMatrixView;
use ld_parallel::parallel_for;

/// The association result of one SNP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssocResult {
    /// SNP index.
    pub snp: usize,
    /// Derived-allele count in cases.
    pub case_alt: u64,
    /// Derived-allele count in controls.
    pub ctrl_alt: u64,
    /// Allelic χ² statistic (1 df).
    pub chi2: f64,
    /// Asymptotic p-value.
    pub p: f64,
    /// Allelic odds ratio (Haldane-corrected).
    pub odds_ratio: f64,
}

/// Runs the allelic χ² scan over every SNP.
///
/// `case_mask` packs one bit per sample (`words_for(n_samples)` words,
/// padding zero) — see `PhenotypeSimulator::simulate`.
pub fn allelic_scan(g: &BitMatrixView<'_>, case_mask: &[u64], threads: usize) -> Vec<AssocResult> {
    let n_samples = g.n_samples() as u64;
    assert_eq!(
        case_mask.len(),
        g.words_per_snp(),
        "case mask must have one bit per sample (padded like a SNP column)"
    );
    let n_case: u64 = case_mask.iter().map(|w| w.count_ones() as u64).sum();
    let n_ctrl = n_samples - n_case;
    let n = g.n_snps();
    let mut out = vec![
        AssocResult {
            snp: 0,
            case_alt: 0,
            ctrl_alt: 0,
            chi2: 0.0,
            p: 1.0,
            odds_ratio: 1.0
        };
        n
    ];
    {
        let slots = SyncPtr(out.as_mut_ptr(), out.len());
        parallel_for(threads.max(1), n, |range| {
            for j in range {
                let col = g.snp_words(j);
                let alt: u64 = col.iter().map(|w| w.count_ones() as u64).sum();
                let case_alt: u64 = col
                    .iter()
                    .zip(case_mask)
                    .map(|(&s, &y)| (s & y).count_ones() as u64)
                    .sum();
                let ctrl_alt = alt - case_alt;
                let chi2 = allelic_chi2(case_alt, n_case, ctrl_alt, n_ctrl);
                // SAFETY: each j is written by exactly one worker.
                unsafe {
                    *slots.at(j) = AssocResult {
                        snp: j,
                        case_alt,
                        ctrl_alt,
                        chi2,
                        p: chi2_sf_1df(chi2),
                        odds_ratio: odds_ratio(
                            case_alt,
                            n_case - case_alt,
                            ctrl_alt,
                            n_ctrl - ctrl_alt,
                        ),
                    };
                }
            }
        });
    }
    out
}

/// 2×2 allelic χ² with one observation per haplotype.
fn allelic_chi2(case_alt: u64, n_case: u64, ctrl_alt: u64, n_ctrl: u64) -> f64 {
    let n = (n_case + n_ctrl) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let a = case_alt as f64; // case, alt
    let b = (n_case - case_alt) as f64; // case, ref
    let c = ctrl_alt as f64; // control, alt
    let d = (n_ctrl - ctrl_alt) as f64; // control, ref
    let row1 = a + b;
    let row2 = c + d;
    let col1 = a + c;
    let col2 = b + d;
    let denom = row1 * row2 * col1 * col2;
    if denom == 0.0 {
        return 0.0;
    }
    let det = a * d - b * c;
    n * det * det / denom
}

struct SyncPtr(*mut AssocResult, usize);
unsafe impl Send for SyncPtr {}
unsafe impl Sync for SyncPtr {}
impl SyncPtr {
    unsafe fn at(&self, i: usize) -> *mut AssocResult {
        debug_assert!(i < self.1);
        unsafe { self.0.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::BitMatrix;

    /// 8 samples; samples 0..4 are cases.
    fn mask_first_half() -> Vec<u64> {
        vec![0b0000_1111u64]
    }

    #[test]
    fn counts_by_hand() {
        // SNP 0 carried by samples 0,1,5 -> case_alt 2, ctrl_alt 1
        let g = BitMatrix::from_columns(8, [[1u8, 1, 0, 0, 0, 1, 0, 0]]).unwrap();
        let r = allelic_scan(&g.full_view(), &mask_first_half(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].case_alt, 2);
        assert_eq!(r[0].ctrl_alt, 1);
        assert!(r[0].odds_ratio > 1.0);
    }

    #[test]
    fn perfect_association_has_tiny_p() {
        // allele present in every case, absent in every control
        let g = BitMatrix::from_columns(8, [[1u8, 1, 1, 1, 0, 0, 0, 0]]).unwrap();
        let r = allelic_scan(&g.full_view(), &mask_first_half(), 1);
        assert!(r[0].chi2 > 7.5, "chi2 = {}", r[0].chi2);
        assert!(r[0].p < 0.01);
    }

    #[test]
    fn balanced_allele_has_no_association() {
        // 2 carriers in each group
        let g = BitMatrix::from_columns(8, [[1u8, 1, 0, 0, 1, 1, 0, 0]]).unwrap();
        let r = allelic_scan(&g.full_view(), &mask_first_half(), 1);
        assert!(r[0].chi2 < 1e-12);
        assert!((r[0].p - 1.0).abs() < 1e-9);
        assert!((r[0].odds_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chi2_matches_textbook_formula() {
        // classic 2x2: a=30 b=20 c=10 d=40 -> chi2 = 100*(30*40-20*10)^2/(50*50*40*60)
        let got = allelic_chi2(30, 50, 10, 50);
        let expect = 100.0 * (1200.0f64 - 200.0).powi(2) / (50.0 * 50.0 * 40.0 * 60.0);
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn threads_do_not_change_results() {
        let mut g = BitMatrix::zeros(128, 40);
        let mut s = 5u64;
        for j in 0..40 {
            for smp in 0..128 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s.is_multiple_of(3) {
                    g.set(smp, j, true);
                }
            }
        }
        let mask = vec![0xAAAA_AAAA_AAAA_AAAAu64, 0x5555_5555_5555_5555];
        let one = allelic_scan(&g.full_view(), &mask, 1);
        let many = allelic_scan(&g.full_view(), &mask, 8);
        assert_eq!(one, many);
    }

    #[test]
    #[should_panic(expected = "case mask")]
    fn short_mask_panics() {
        let g = BitMatrix::zeros(128, 2);
        allelic_scan(&g.full_view(), &[0u64], 1);
    }
}
