//! # ld-assoc — association testing and LD clumping
//!
//! The paper's §I motivates fast LD with genome-wide association studies:
//! LD links the genotyped markers to the unobserved causal variants, and
//! every post-GWAS step (clumping, fine-mapping, tag selection) consumes
//! pairwise LD wholesale. This crate closes that loop on the gemm-ld
//! substrate:
//!
//! * [`phenotype`] — case/control simulation on haplotype matrices
//!   (liability-threshold model over chosen causal SNPs);
//! * [`scan`] — allelic association scans. The 2×2 test's counts are
//!   popcounts of `snp ∧ case_mask`: a whole-matrix scan is one pass of
//!   the same AND+POPCNT machinery the LD kernels run (a matrix-vector
//!   sibling of the paper's matrix-matrix formulation);
//! * [`clump`] — LD clumping (PLINK `--clump`): keep the best-p SNP per
//!   LD neighbourhood, using the blocked engine for the `r²` queries;
//! * [`stats`] — χ² tails, odds ratios, genomic-control λ.

#![warn(missing_docs)]

pub mod clump;
pub mod phenotype;
pub mod scan;
pub mod stats;

pub use clump::{clump, Clump};
pub use phenotype::PhenotypeSimulator;
pub use scan::{allelic_scan, AssocResult};
pub use stats::{chi2_sf_1df, genomic_lambda};
