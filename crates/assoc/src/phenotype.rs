//! Case/control phenotype simulation on haplotype matrices.
//!
//! Liability-threshold model: each sample's liability is the sum of its
//! causal-allele effects plus Gaussian noise; the top `prevalence`
//! fraction are cases. Effects are additive on the haploid dosage
//! (0/1 per haplotype — convert to diploid dosages upstream if needed).

use ld_bitmat::BitMatrix;
use ld_rng::SmallRng;

/// Simulates binary phenotypes driven by chosen causal SNPs.
#[derive(Clone, Debug)]
pub struct PhenotypeSimulator {
    causal: Vec<(usize, f64)>,
    prevalence: f64,
    noise_sd: f64,
    seed: u64,
}

impl PhenotypeSimulator {
    /// A simulator with the given `(snp index, effect size)` pairs.
    pub fn new(causal: Vec<(usize, f64)>) -> Self {
        Self {
            causal,
            prevalence: 0.5,
            noise_sd: 1.0,
            seed: 0xbeef,
        }
    }

    /// Fraction of samples labeled as cases (default 0.5 — balanced).
    pub fn prevalence(mut self, p: f64) -> Self {
        self.prevalence = p.clamp(0.01, 0.99);
        self
    }

    /// Standard deviation of the environmental noise (default 1.0).
    pub fn noise_sd(mut self, sd: f64) -> Self {
        self.noise_sd = sd.max(0.0);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The causal SNPs.
    pub fn causal(&self) -> &[(usize, f64)] {
        &self.causal
    }

    /// Simulates labels: `true` = case. Also returns the packed case mask
    /// (one bit per sample, [`ld_bitmat::words_for`]`(n_samples)` words) —
    /// the format [`crate::allelic_scan`] consumes.
    pub fn simulate(&self, g: &BitMatrix) -> (Vec<bool>, Vec<u64>) {
        let n = g.n_samples();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut liability = vec![0.0f64; n];
        for &(snp, beta) in &self.causal {
            assert!(snp < g.n_snps(), "causal SNP {snp} out of range");
            for (s, l) in liability.iter_mut().enumerate() {
                if g.get(s, snp) {
                    *l += beta;
                }
            }
        }
        for l in liability.iter_mut() {
            // sum of 12 uniforms − 6 ≈ N(0, 1)
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            *l += z * self.noise_sd;
        }
        // threshold at the (1 − prevalence) quantile
        let mut sorted = liability.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cut_idx = ((n as f64) * (1.0 - self.prevalence)) as usize;
        let cut = sorted
            .get(cut_idx.min(n.saturating_sub(1)))
            .copied()
            .unwrap_or(f64::MAX);
        let labels: Vec<bool> = liability.iter().map(|&l| l >= cut).collect();
        let mut mask = vec![0u64; ld_bitmat::words_for(n)];
        for (s, &is_case) in labels.iter().enumerate() {
            if is_case {
                mask[s / 64] |= 1 << (s % 64);
            }
        }
        (labels, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::HaplotypeSimulator;

    #[test]
    fn prevalence_is_respected() {
        let g = HaplotypeSimulator::new(1000, 50).seed(1).generate();
        let (labels, mask) = PhenotypeSimulator::new(vec![(10, 1.0)])
            .prevalence(0.3)
            .seed(2)
            .simulate(&g);
        let cases = labels.iter().filter(|&&c| c).count();
        assert!((250..=350).contains(&cases), "cases = {cases}");
        // mask agrees with labels
        let mask_count: u32 = mask.iter().map(|w| w.count_ones()).sum();
        assert_eq!(mask_count as usize, cases);
    }

    #[test]
    fn causal_snp_is_enriched_in_cases() {
        let g = HaplotypeSimulator::new(2000, 30).seed(3).generate();
        // the neutral SFS is rare-skewed; pick a *common* causal SNP so the
        // enrichment has room to show
        let causal = (0..30)
            .max_by_key(|&j| {
                let ones = g.ones_in_snp(j);
                ones.min(2000 - ones)
            })
            .unwrap();
        let (labels, _) = PhenotypeSimulator::new(vec![(causal, 2.0)])
            .noise_sd(0.5)
            .seed(4)
            .simulate(&g);
        let mut case_alt = 0;
        let mut case_n = 0;
        let mut ctrl_alt = 0;
        let mut ctrl_n = 0;
        for (s, &is_case) in labels.iter().enumerate().take(2000) {
            if is_case {
                case_n += 1;
                case_alt += u64::from(g.get(s, causal));
            } else {
                ctrl_n += 1;
                ctrl_alt += u64::from(g.get(s, causal));
            }
        }
        let f_case = case_alt as f64 / case_n as f64;
        let f_ctrl = ctrl_alt as f64 / ctrl_n as f64;
        assert!(f_case > f_ctrl + 0.05, "case {f_case} vs ctrl {f_ctrl}");
    }

    #[test]
    fn deterministic_and_bounds_checked() {
        let g = HaplotypeSimulator::new(100, 10).seed(5).generate();
        let sim = PhenotypeSimulator::new(vec![(0, 1.0)]).seed(6);
        assert_eq!(sim.simulate(&g).0, sim.simulate(&g).0);
        assert_eq!(sim.causal(), &[(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_causal_index_panics() {
        let g = HaplotypeSimulator::new(10, 5).seed(7).generate();
        PhenotypeSimulator::new(vec![(99, 1.0)]).simulate(&g);
    }
}
