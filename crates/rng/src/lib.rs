//! # ld-rng — deterministic, dependency-free pseudo-randomness
//!
//! A minimal stand-in for the parts of the `rand` crate this workspace
//! used: a small, fast, seedable generator for the data simulators
//! (`ld-data`, `ld-assoc`) and the randomized test suites. Built entirely
//! offline-safe (no external crates): SplitMix64 expands the seed, and
//! Xoshiro256++ (Blackman & Vigna) generates the stream — the same
//! generator family `rand::rngs::SmallRng` wraps on 64-bit targets.
//!
//! The API mirrors the subset of `rand` the workspace called, so porting
//! was mechanical: [`SmallRng::seed_from_u64`], [`SmallRng::gen`],
//! [`SmallRng::gen_range`], [`SmallRng::gen_bool`].
//!
//! Determinism is part of the contract: the sequences produced for a given
//! seed are stable across platforms and releases (golden tests below pin
//! the reference vectors from the Xoshiro reference implementation).

#![warn(missing_docs)]

use std::ops::Range;

/// One step of SplitMix64 (Steele, Lea & Flood) — used to expand a 64-bit
/// seed into generator state, and occasionally as a tiny standalone PRNG
/// for hashing-style mixing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, seedable PRNG: Xoshiro256++.
///
/// Not cryptographically secure — intended for simulation and testing.
///
/// ```
/// use ld_rng::SmallRng;
/// let mut rng = SmallRng::seed_from_u64(42);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// let k = rng.gen_range(0..10usize);
/// assert!(k < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion
    /// (the standard seeding procedure recommended by the Xoshiro
    /// authors; mirrors `rand`'s `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next 64 uniformly random bits (Xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of type `T` (see [`Random`] for the
    /// supported types: `bool`, the integer widths, `f32`/`f64` in
    /// `[0, 1)`).
    #[inline]
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range` (half-open). Supports the
    /// integer and float ranges the workspace uses; panics on an empty
    /// range, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

/// Types [`SmallRng::gen`] can produce uniformly.
pub trait Random: Sized {
    /// Draws one uniformly random value.
    fn random(rng: &mut SmallRng) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u32()
    }
}

impl Random for u8 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for i64 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for i32 {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u32() as i32
    }
}

impl Random for bool {
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `bits >> 11` construction).
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random(rng: &mut SmallRng) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniformly random value from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

/// Lemire-style unbiased bounded integer sampling on 64-bit arithmetic
/// would need 128-bit multiplies; for simulation purposes the classic
/// modulo-rejection loop is simpler and exact.
#[inline]
fn bounded_u64(rng: &mut SmallRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // rejection sampling: accept only below the largest multiple of bound
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the SplitMix64 reference
        // implementation (Vigna).
        let mut s = 1234567u64;
        let got: Vec<u64> = (0..3).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_float_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        for _ in 0..1000 {
            let k = rng.gen_range(5i32..8);
            assert!((5..8).contains(&k));
        }
        for _ in 0..1000 {
            let k = rng.gen_range(17u64..18);
            assert_eq!(k, 17);
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let y = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(1).gen_range(3usize..3);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely to be identity"
        );
    }

    #[test]
    fn bool_balance() {
        let mut rng = SmallRng::seed_from_u64(17);
        let trues = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((trues as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }
}
