//! Counter-invariant tests: the `metrics` counters are *correct*, not
//! just present.
//!
//! The deterministic counters (`kernel_tiles`, `kernel_words`,
//! `bytes_packed`, `slabs_emitted`, `tiles_claimed`) are predicted by an
//! independent re-implementation of the documented driver geometry
//! (DESIGN.md §8) and must match exactly:
//!
//! * `kernel_tiles` = the micro-tile grid covering the padded upper
//!   triangle (tile counted iff its row start is ≤ its column end, the
//!   `pc`-independent SYRK skip);
//! * `kernel_words == words_per_snp × kernel_tiles × MR × NR` — the skip
//!   decision never depends on the rank-k pass, so every distinct tile is
//!   swept over the full packed depth;
//! * `bytes_packed` = the Σ of `pack_panels` buffer sizes
//!   (`ceil(snps/R)·R·kc` words) over every (jc, pc[, ic]) block;
//! * all of the above are **identical across 1/2/7 threads** (the dynamic
//!   scheduler's chunks are grain-aligned, so the slab decomposition is
//!   thread-invariant) and — for slab heights that preserve micro-tile
//!   grid alignment — across slab sizes.
//!
//! Only with `--features metrics`; the file compiles to nothing otherwise.
#![cfg(feature = "metrics")]

use ld_bitmat::BitMatrix;
use ld_core::{LdEngine, LdStats, NanPolicy};
use ld_kernels::micro::Kernel;
use ld_kernels::pack::packed_len;
use ld_kernels::{BlockSizes, KernelKind};
use ld_rng::SmallRng;
use ld_trace::Counter;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The ld-trace counters are process-global; tests that reset and read
/// them must not interleave. (Separate integration-test *files* are
/// separate processes — only this file needs the lock.)
fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn random_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen_bool(0.3) {
                g.set(s, j, true);
            }
        }
    }
    g
}

/// What the deterministic counters must read after one fused
/// `stat_matrix` run.
#[derive(Debug, PartialEq, Eq)]
struct Expected {
    tiles: u64,
    words: u64,
    bytes_packed: u64,
    slabs: u64,
}

/// Independent model of the fused SYRK geometry: replays the documented
/// five-loop structure (jc/pc/ic/jr/ir with the two `i > j` skips) per
/// grain-aligned row slab and accumulates what the instrumentation is
/// specified to count. Deliberately *not* a call into ld-kernels — it
/// re-derives the numbers from DESIGN.md §8 so a driver bug cannot
/// self-certify.
fn expected_counters(n: usize, k_words: usize, slab: usize, kind: KernelKind) -> Expected {
    let kernel = Kernel::resolve(kind).expect("kernel must resolve");
    let (mr, nr) = (kernel.mr(), kernel.nr());
    let bs0 = BlockSizes::default();
    let (mut tiles, mut words, mut bytes) = (0u64, 0u64, 0u64);
    let slab = slab.max(1).min(n);
    let n_slabs = n.div_ceil(slab);
    for s in 0..n_slabs {
        let (r0, r1) = (s * slab, ((s + 1) * slab).min(n));
        let bs = bs0.clamped(r1 - r0, n - r0, k_words);
        let mut jc = r0;
        while jc < n {
            let ncur = bs.nc.min(n - jc);
            let mut pc = 0usize;
            while pc < k_words {
                let kcur = bs.kc.min(k_words - pc);
                bytes += (packed_len(ncur, kcur, nr) * 8) as u64;
                let mut ic = r0;
                while ic < r1 {
                    let mcur = bs.mc.min(r1 - ic);
                    if ic > jc + ncur - 1 {
                        ic += mcur;
                        continue;
                    }
                    bytes += (packed_len(mcur, kcur, mr) * 8) as u64;
                    let mut jr = 0usize;
                    while jr < ncur {
                        let nrcur = nr.min(ncur - jr);
                        let gj1 = jc + jr + nrcur - 1;
                        let mut ir = 0usize;
                        while ir < mcur {
                            let gi0 = ic + ir;
                            if gi0 <= gj1 {
                                if pc == 0 {
                                    tiles += 1;
                                }
                                words += (kcur * mr * nr) as u64;
                            }
                            ir += mr;
                        }
                        jr += nr;
                    }
                    ic += mcur;
                }
                pc += kcur;
            }
            jc += ncur;
        }
    }
    Expected {
        tiles,
        words,
        bytes_packed: bytes,
        slabs: n_slabs as u64,
    }
}

/// One instrumented fused run; returns the deterministic counters.
fn run_and_read(g: &BitMatrix, threads: usize, slab: usize) -> Expected {
    let engine = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);
    ld_trace::reset();
    let _ = engine.stat_matrix(g, LdStats::RSquared);
    Expected {
        tiles: ld_trace::get(Counter::KernelTiles),
        words: ld_trace::get(Counter::KernelWords),
        bytes_packed: ld_trace::get(Counter::BytesPacked),
        slabs: ld_trace::get(Counter::SlabsEmitted),
    }
}

#[test]
fn counters_match_the_geometry_model() {
    let _l = counter_lock();
    // (n_snps, n_samples) chosen to hit fringe tiles, multi-word columns,
    // and a sub-word column; slabs include non-divisors of n.
    for &(n, k) in &[(97usize, 130usize), (256, 64), (33, 1000), (64, 63)] {
        let g = random_matrix(k, n, (n as u64) << 32 | k as u64);
        let k_words = g.full_view().words_per_snp();
        for &slab in &[16usize, 64, 1000] {
            let got = run_and_read(&g, 1, slab);
            let want = expected_counters(n, k_words, slab, KernelKind::Auto);
            assert_eq!(got, want, "n={n} k={k} slab={slab}");
        }
    }
}

#[test]
fn tiles_cover_the_padded_triangle_and_words_are_tiles_times_depth() {
    let _l = counter_lock();
    let (n, k) = (129usize, 150usize);
    let g = random_matrix(k, n, 0xDEC0DE);
    let k_words = g.full_view().words_per_snp();
    let kernel = Kernel::resolve(KernelKind::Auto).unwrap();
    let (mr, nr) = (kernel.mr(), kernel.nr());
    let got = run_and_read(&g, 1, n); // one slab: the pure triangle case
                                      // Exact padded-triangle tile count: column tiles at multiples of NR;
                                      // each keeps every row tile whose start is ≤ its (clipped) last column.
    let mut grid_tiles = 0u64;
    let mut j0 = 0usize;
    while j0 < n {
        let j1 = (j0 + nr).min(n) - 1;
        grid_tiles += (j1 / mr + 1).min(n.div_ceil(mr)) as u64;
        j0 += nr;
    }
    assert_eq!(got.tiles, grid_tiles, "tiles != padded-triangle tile grid");
    // Coverage: the padded tile area must dominate the true triangle and
    // never exceed it by more than one fringe ring.
    let area = got.tiles * (mr * nr) as u64;
    let triangle = (n * (n + 1) / 2) as u64;
    assert!(area >= triangle, "tile area {area} < triangle {triangle}");
    let padded_bound = ((n + mr) * (n + nr)) as u64;
    assert!(
        area <= padded_bound,
        "tile area {area} > bound {padded_bound}"
    );
    // The SYRK skip is pc-independent, so every distinct tile is swept
    // over the full packed depth: words == words_per_snp × pair-ops.
    assert_eq!(got.words, got.tiles * (mr * nr * k_words) as u64);
}

#[test]
fn counters_are_thread_invariant() {
    let _l = counter_lock();
    let (n, k) = (201usize, 333usize);
    let g = random_matrix(k, n, 0x7EAD);
    let slab = 32usize;
    let base = run_and_read(&g, 1, slab);
    // Claimed chunks must equal emitted slabs (every chunk is claimed
    // exactly once), regardless of which worker got which.
    ld_trace::reset();
    for &threads in &[1usize, 2, 7] {
        let engine = LdEngine::new()
            .threads(threads)
            .slab_rows(slab)
            .nan_policy(NanPolicy::Zero);
        ld_trace::reset();
        let _ = engine.stat_matrix(&g, LdStats::RSquared);
        let got = Expected {
            tiles: ld_trace::get(Counter::KernelTiles),
            words: ld_trace::get(Counter::KernelWords),
            bytes_packed: ld_trace::get(Counter::BytesPacked),
            slabs: ld_trace::get(Counter::SlabsEmitted),
        };
        assert_eq!(got, base, "threads={threads}");
        assert_eq!(
            ld_trace::get(Counter::TilesClaimed),
            base.slabs,
            "claims != slabs at threads={threads}"
        );
        assert_eq!(ld_trace::get(Counter::BudgetShrinks), 0);
    }
}

#[test]
fn tile_counters_are_slab_invariant_on_aligned_grids() {
    let _l = counter_lock();
    // Slab heights that are multiples of 64 keep the micro-tile grid
    // globally aligned for every MR/NR in the kernel family (all divide
    // 64), so the distinct-tile set — and hence tiles and words — cannot
    // depend on the slab decomposition. (`bytes_packed` legitimately
    // varies: pack-panel widths follow the per-slab column window.)
    let (n, k) = (256usize, 100usize);
    let g = random_matrix(k, n, 0x51AB);
    let base = run_and_read(&g, 1, 64);
    for &slab in &[128usize, 256] {
        let got = run_and_read(&g, 1, slab);
        assert_eq!(got.tiles, base.tiles, "slab={slab}");
        assert_eq!(got.words, base.words, "slab={slab}");
    }
}

#[test]
fn two_pass_driver_hits_the_same_tile_geometry() {
    let _l = counter_lock();
    // The two-pass oracle computes the same triangle in one full-height
    // slab; its tile/word counters must equal the fused run at slab = n.
    let (n, k) = (100usize, 80usize);
    let g = random_matrix(k, n, 0x2FA55);
    let fused = run_and_read(&g, 1, n);
    let engine = LdEngine::new().threads(1).nan_policy(NanPolicy::Zero);
    ld_trace::reset();
    let _ = engine.stat_matrix_twopass(&g, LdStats::RSquared);
    assert_eq!(ld_trace::get(Counter::KernelTiles), fused.tiles);
    assert_eq!(ld_trace::get(Counter::KernelWords), fused.words);
}

#[test]
fn cancel_polls_are_exactly_slab_granular() {
    let _l = counter_lock();
    // The token/deadline poll sits once per computed row slab — never in
    // the tile loops — so `cancel_polls` must equal `slabs_emitted` on
    // every run, token-carrying or not, at any thread count.
    let (n, k) = (157usize, 210usize);
    let g = random_matrix(k, n, 0xCA9CE1);
    for &slab in &[16usize, 64] {
        let n_slabs = n.div_ceil(slab) as u64;
        for &threads in &[1usize, 2, 7] {
            let engine = LdEngine::new()
                .threads(threads)
                .slab_rows(slab)
                .nan_policy(NanPolicy::Zero);
            ld_trace::reset();
            let _ = engine.stat_matrix(&g, LdStats::RSquared);
            let polls = ld_trace::get(Counter::CancelPolls);
            let slabs = ld_trace::get(Counter::SlabsEmitted);
            assert_eq!(polls, slabs, "slab={slab} threads={threads}");
            assert_eq!(polls, n_slabs, "slab={slab} threads={threads}");
            assert_eq!(ld_trace::get(Counter::ResumeSlabsSkipped), 0);
        }
    }
}

#[test]
fn resumed_slabs_skip_the_poll_and_the_counters_balance() {
    use ld_core::{CheckpointPlan, MemorySink, RunControl};
    let _l = counter_lock();
    // A resumed run replays recorded slabs without polling, so
    // `resume_slabs_skipped + cancel_polls == total slabs` and the two
    // runs together account for every slab exactly once.
    let (n, k, slab) = (96usize, 120usize, 16usize);
    let n_slabs = (n.div_ceil(slab)) as u64;
    let g = random_matrix(k, n, 0x0E5C0E5);
    let engine = LdEngine::new()
        .threads(2)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);

    // Full checkpointed run: every slab computed (and polled) once, at
    // least one snapshot flushed.
    let sink = MemorySink::new();
    ld_trace::reset();
    {
        let plan = CheckpointPlan::new(&sink).every_slabs(1);
        let ctl = RunControl::new().with_checkpoint(plan);
        engine
            .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
            .expect("checkpointed run must succeed");
    }
    assert_eq!(ld_trace::get(Counter::CancelPolls), n_slabs);
    assert_eq!(ld_trace::get(Counter::SlabsEmitted), n_slabs);
    assert!(ld_trace::get(Counter::CheckpointsWritten) >= 1);
    let state = sink.latest().expect("snapshot must exist");
    let state = ld_core::CheckpointState::from_bytes(&state).expect("snapshot must parse");
    assert_eq!(state.records.len() as u64, n_slabs);

    // Resume from the complete snapshot: zero computed slabs, zero polls,
    // every slab accounted for by the skip counter.
    ld_trace::reset();
    {
        let sink2 = MemorySink::new();
        let plan = CheckpointPlan::new(&sink2)
            .every_slabs(usize::MAX)
            .resume_from(state);
        let ctl = RunControl::new().with_checkpoint(plan);
        engine
            .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
            .expect("resumed run must succeed");
    }
    let polls = ld_trace::get(Counter::CancelPolls);
    let skipped = ld_trace::get(Counter::ResumeSlabsSkipped);
    assert_eq!(skipped, n_slabs);
    assert_eq!(polls + skipped, n_slabs);
    assert_eq!(ld_trace::get(Counter::SlabsEmitted), 0);
}
