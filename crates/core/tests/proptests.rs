//! Property tests: the matrix engine agrees with per-pair brute force.
//! Seeded `ld-rng` cases replace `proptest` (unavailable offline).

use ld_bitmat::BitMatrix;
use ld_core::{ld_pair_from_counts, LdEngine, LdStats, NanPolicy};
use ld_rng::SmallRng;

fn random_matrix(rng: &mut SmallRng) -> BitMatrix {
    let n_samples = rng.gen_range(1usize..150);
    let n_snps = rng.gen_range(1usize..14);
    let rows: Vec<Vec<u8>> = (0..n_samples)
        .map(|_| (0..n_snps).map(|_| u8::from(rng.gen::<bool>())).collect())
        .collect();
    BitMatrix::from_rows(n_samples, n_snps, rows).unwrap()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-10 || (a.is_nan() && b.is_nan())
}

#[test]
fn r2_matrix_matches_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xb1);
    for case in 0..48 {
        let g = random_matrix(&mut rng);
        let e = LdEngine::new();
        let r2 = e.r2_matrix(&g);
        let n_samples = g.n_samples() as u64;
        for i in 0..g.n_snps() {
            for j in i..g.n_snps() {
                // brute-force the three counts
                let mut c_ii = 0u64;
                let mut c_jj = 0u64;
                let mut c_ij = 0u64;
                for s in 0..g.n_samples() {
                    let (a, b) = (g.get(s, i), g.get(s, j));
                    c_ii += u64::from(a);
                    c_jj += u64::from(b);
                    c_ij += u64::from(a && b);
                }
                let want = ld_pair_from_counts(c_ii, c_jj, c_ij, n_samples, NanPolicy::Propagate);
                assert!(
                    close(r2.get(i, j), want.r2),
                    "case {case}: ({i},{j}): {} vs {}",
                    r2.get(i, j),
                    want.r2
                );
            }
        }
    }
}

#[test]
fn r2_values_in_unit_interval() {
    let mut rng = SmallRng::seed_from_u64(0xb2);
    for case in 0..48 {
        let g = random_matrix(&mut rng);
        let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        for (_, _, v) in r2.iter_upper() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v), "case {case}: r2 = {v}");
        }
    }
}

#[test]
fn d_prime_dominates_in_magnitude() {
    let mut rng = SmallRng::seed_from_u64(0xb3);
    for case in 0..48 {
        let g = random_matrix(&mut rng);
        // |D'| ≥ r for every pair (a classical inequality: r² ≤ D'²)
        let e = LdEngine::new().nan_policy(NanPolicy::Zero);
        let r2 = e.r2_matrix(&g);
        let dp = e.d_prime_matrix(&g);
        for (i, j, v) in r2.iter_pairs() {
            let d = dp.get(i, j);
            assert!(d * d + 1e-9 >= v, "case {case}: ({i},{j}): D'={d} r2={v}");
        }
    }
}

#[test]
fn cross_equals_square_blocks() {
    let mut rng = SmallRng::seed_from_u64(0xb4);
    for case in 0..48 {
        let g = random_matrix(&mut rng);
        if g.n_snps() < 2 {
            continue;
        }
        let e = LdEngine::new();
        let full = e.r2_matrix(&g);
        let mid = g.n_snps() / 2;
        let cross = e.r2_cross(g.view(0, mid), g.view(mid, g.n_snps()));
        for i in 0..mid {
            for j in 0..g.n_snps() - mid {
                assert!(
                    close(cross.get(i, j), full.get(i, mid + j)),
                    "case {case}: ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn tiled_equals_full() {
    let mut rng = SmallRng::seed_from_u64(0xb5);
    for case in 0..48 {
        let g = random_matrix(&mut rng);
        let tile = rng.gen_range(1usize..8);
        let e = LdEngine::new();
        let full = e.r2_matrix(&g);
        let mut visited = 0usize;
        e.r2_tiled(&g, tile, |t| {
            for r in 0..t.rows {
                for c in 0..t.cols {
                    let (i, j) = (t.row_start + r, t.col_start + c);
                    assert!(
                        close(t.values[r * t.cols + c], full.get(i, j)),
                        "case {case}: ({i},{j})"
                    );
                    visited += 1;
                }
            }
        });
        // every ordered pair with block(col) >= block(row) visited at least once
        assert!(visited >= g.n_snps() * (g.n_snps() + 1) / 2, "case {case}");
    }
}

#[test]
fn stat_d_symmetry_and_range() {
    let mut rng = SmallRng::seed_from_u64(0xb6);
    for case in 0..48 {
        let g = random_matrix(&mut rng);
        let d = LdEngine::new().stat_matrix(&g, LdStats::D);
        for (_, _, v) in d.iter_upper() {
            // D ∈ [-0.25, 0.25] always
            assert!(
                (-0.25 - 1e-9..=0.25 + 1e-9).contains(&v),
                "case {case}: D = {v}"
            );
        }
    }
}
