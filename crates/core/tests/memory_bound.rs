//! Allocation accounting for the fused pipeline's memory bound.
//!
//! A counting global allocator tracks live and peak heap bytes; the test
//! verifies the tentpole claim: `stat_matrix`'s transient peak is the
//! packed output plus `O(threads × slab × n)` u32 scratch — *not* the
//! `4n²`-byte counts matrix the two-pass oracle allocates.
//!
//! This file is its own integration-test binary so the allocator hooks see
//! only this test's traffic (cargo builds each `tests/*.rs` separately).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its peak heap growth in bytes over the level at
/// entry (allocations made before and freed after `f` don't count against
/// it; thread-stack memory is not heap and is excluded by construction).
fn peak_heap_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (peak.saturating_sub(base), r)
}

#[test]
fn fused_peak_memory_is_slab_bounded() {
    use ld_bitmat::BitMatrix;
    use ld_core::{LdEngine, LdStats, NanPolicy};
    use ld_rng::SmallRng;

    let (n_samples, n) = (256usize, 600usize);
    let (threads, slab) = (2usize, 8usize);
    let mut rng = SmallRng::seed_from_u64(0x3e3);
    let mut g = BitMatrix::zeros(n_samples, n);
    for j in 0..n {
        for s in 0..n_samples {
            if rng.gen_bool(0.4) {
                g.set(s, j, true);
            }
        }
    }
    let e = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);

    // Warm up once so lazily-initialized runtime structures don't bill
    // either measured section.
    let _ = e.r2_matrix(&g);

    let packed_bytes = n * (n + 1) / 2 * 8;
    let counts_bytes = n * n * 4;
    let scratch_bytes = threads * slab * n * 4;
    // transform tables (3 vecs of n), pack buffers, thread plumbing, slack
    let overhead = 512 * 1024;

    let (fused_peak, fused) = peak_heap_during(|| e.stat_matrix(&g, LdStats::RSquared));
    let (twopass_peak, oracle) = peak_heap_during(|| e.stat_matrix_twopass(&g, LdStats::RSquared));

    // Sanity: both computed the same thing (and the matrices stay alive
    // until here so their storage counts inside the measured sections).
    for (a, b) in fused.packed().iter().zip(oracle.packed()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    assert!(
        fused_peak >= packed_bytes,
        "fused peak {fused_peak} cannot be below its own output ({packed_bytes})"
    );
    assert!(
        fused_peak <= packed_bytes + scratch_bytes + overhead,
        "fused peak {fused_peak} exceeds packed {packed_bytes} + slab scratch \
         {scratch_bytes} + overhead {overhead} — the O(threads × slab × n) bound is broken"
    );
    // The oracle really does pay for the full counts matrix…
    assert!(
        twopass_peak >= packed_bytes + counts_bytes,
        "two-pass peak {twopass_peak} below packed {packed_bytes} + counts {counts_bytes}"
    );
    // …and the fused path avoids it with room to spare.
    assert!(
        fused_peak + counts_bytes / 2 < twopass_peak,
        "fused peak {fused_peak} not clearly below two-pass peak {twopass_peak}"
    );
}

#[test]
fn streaming_rows_never_materialize_the_triangle() {
    use ld_bitmat::BitMatrix;
    use ld_core::{LdEngine, LdStats, NanPolicy};

    let (n_samples, n) = (128usize, 600usize);
    let (threads, slab) = (2usize, 8usize);
    let mut g = BitMatrix::zeros(n_samples, n);
    for j in 0..n {
        for s in 0..n_samples {
            if (s * 31 + j * 17) % 5 == 0 {
                g.set(s, j, true);
            }
        }
    }
    let e = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);
    let _ = e.r2_matrix(&g); // warm-up (see above)

    let (peak, sum) = peak_heap_during(|| {
        let mut acc = 0.0f64;
        e.stat_rows(&g, LdStats::RSquared, |s| {
            for (_, row) in s.rows() {
                acc += row.iter().copied().filter(|v| !v.is_nan()).sum::<f64>();
            }
        });
        acc
    });
    assert!(sum.is_finite() && sum > 0.0);

    let packed_bytes = n * (n + 1) / 2 * 8;
    // counts (u32) + values (f64) scratch per worker, plus slack
    let scratch_bytes = threads * slab * n * (4 + 8);
    let overhead = 512 * 1024;
    assert!(
        peak <= scratch_bytes + overhead,
        "streaming peak {peak} exceeds scratch bound {scratch_bytes} + {overhead}"
    );
    assert!(
        peak < packed_bytes / 2,
        "streaming peak {peak} is in the same class as the packed triangle ({packed_bytes})"
    );
}
