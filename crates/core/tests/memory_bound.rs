//! Allocation accounting for the fused pipeline's memory bound.
//!
//! A counting global allocator tracks live and peak heap bytes; the test
//! verifies the tentpole claim: `stat_matrix`'s transient peak is the
//! packed output plus `O(threads × slab × n)` u32 scratch — *not* the
//! `4n²`-byte counts matrix the two-pass oracle allocates.
//!
//! This file is its own integration-test binary so the allocator hooks see
//! only this test's traffic (cargo builds each `tests/*.rs` separately).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its peak heap growth in bytes over the level at
/// entry (allocations made before and freed after `f` don't count against
/// it; thread-stack memory is not heap and is excluded by construction).
fn peak_heap_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (peak.saturating_sub(base), r)
}

#[test]
fn fused_peak_memory_is_slab_bounded() {
    use ld_bitmat::BitMatrix;
    use ld_core::{LdEngine, LdStats, NanPolicy};
    use ld_rng::SmallRng;

    let (n_samples, n) = (256usize, 600usize);
    let (threads, slab) = (2usize, 8usize);
    let mut rng = SmallRng::seed_from_u64(0x3e3);
    let mut g = BitMatrix::zeros(n_samples, n);
    for j in 0..n {
        for s in 0..n_samples {
            if rng.gen_bool(0.4) {
                g.set(s, j, true);
            }
        }
    }
    let e = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);

    // Warm up once so lazily-initialized runtime structures don't bill
    // either measured section.
    let _ = e.r2_matrix(&g);

    let packed_bytes = n * (n + 1) / 2 * 8;
    let counts_bytes = n * n * 4;
    let scratch_bytes = threads * slab * n * 4;
    // transform tables (3 vecs of n), pack buffers, thread plumbing, slack
    let overhead = 512 * 1024;

    let (fused_peak, fused) = peak_heap_during(|| e.stat_matrix(&g, LdStats::RSquared));
    let (twopass_peak, oracle) = peak_heap_during(|| e.stat_matrix_twopass(&g, LdStats::RSquared));

    // Sanity: both computed the same thing (and the matrices stay alive
    // until here so their storage counts inside the measured sections).
    for (a, b) in fused.packed().iter().zip(oracle.packed()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    assert!(
        fused_peak >= packed_bytes,
        "fused peak {fused_peak} cannot be below its own output ({packed_bytes})"
    );
    assert!(
        fused_peak <= packed_bytes + scratch_bytes + overhead,
        "fused peak {fused_peak} exceeds packed {packed_bytes} + slab scratch \
         {scratch_bytes} + overhead {overhead} — the O(threads × slab × n) bound is broken"
    );
    // The oracle really does pay for the full counts matrix…
    assert!(
        twopass_peak >= packed_bytes + counts_bytes,
        "two-pass peak {twopass_peak} below packed {packed_bytes} + counts {counts_bytes}"
    );
    // …and the fused path avoids it with room to spare.
    assert!(
        fused_peak + counts_bytes / 2 < twopass_peak,
        "fused peak {fused_peak} not clearly below two-pass peak {twopass_peak}"
    );
}

#[test]
fn streaming_rows_never_materialize_the_triangle() {
    use ld_bitmat::BitMatrix;
    use ld_core::{LdEngine, LdStats, NanPolicy};

    let (n_samples, n) = (128usize, 600usize);
    let (threads, slab) = (2usize, 8usize);
    let mut g = BitMatrix::zeros(n_samples, n);
    for j in 0..n {
        for s in 0..n_samples {
            if (s * 31 + j * 17) % 5 == 0 {
                g.set(s, j, true);
            }
        }
    }
    let e = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);
    let _ = e.r2_matrix(&g); // warm-up (see above)

    let (peak, sum) = peak_heap_during(|| {
        let mut acc = 0.0f64;
        e.stat_rows(&g, LdStats::RSquared, |s| {
            for (_, row) in s.rows() {
                acc += row.iter().copied().filter(|v| !v.is_nan()).sum::<f64>();
            }
        });
        acc
    });
    assert!(sum.is_finite() && sum > 0.0);

    let packed_bytes = n * (n + 1) / 2 * 8;
    // counts (u32) + values (f64) scratch per worker, plus slack
    let scratch_bytes = threads * slab * n * (4 + 8);
    let overhead = 512 * 1024;
    assert!(
        peak <= scratch_bytes + overhead,
        "streaming peak {peak} exceeds scratch bound {scratch_bytes} + {overhead}"
    );
    assert!(
        peak < packed_bytes / 2,
        "streaming peak {peak} is in the same class as the packed triangle ({packed_bytes})"
    );
}

/// The out-of-core rows driver's peak heap is the slab panel, the chunk
/// double-buffers and the per-slab values strip — it never materializes
/// the full genotype matrix (which lives only in the tile store) nor the
/// packed triangle. Doubling the SNP count must grow the peak at most
/// linearly (the values strip and transform tables), never with the
/// full-`G` or `n²` classes.
#[test]
fn outofcore_rows_peak_is_slab_panel_bounded() {
    use ld_bitmat::{words_for, BitMatrix};
    use ld_core::{LdEngine, LdStats, MemoryTileStore, NanPolicy, RunControl};

    let n_samples = 16_384usize; // multiple of 64: no tail-word padding
    let (slab, chunk) = (8usize, 16usize);
    let wps = words_for(n_samples);

    let build = |n: usize| {
        let mut words = ld_bitmat::AlignedWords::zeroed(n * wps);
        for (i, w) in words.iter_mut().enumerate() {
            *w = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        }
        BitMatrix::from_words(n_samples, n, words).unwrap()
    };
    let e = LdEngine::new()
        .threads(2)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);

    // Warm up the streamed path once (thread plumbing, lazy runtime
    // structures) so they don't bill the measured sections.
    let warm = MemoryTileStore::from_matrix(&build(40), chunk).unwrap();
    e.try_stat_rows_outofcore_with(&warm, LdStats::RSquared, |_| {}, &RunControl::new())
        .unwrap();

    let run = |n: usize| {
        // The store (the full encoded G) is allocated *outside* the
        // measured section — that's the point of out-of-core: it could
        // as well be a directory on disk.
        let store = MemoryTileStore::from_matrix(&build(n), chunk).unwrap();
        let (peak, sum) = peak_heap_during(|| {
            let mut acc = 0.0f64;
            e.try_stat_rows_outofcore_with(
                &store,
                LdStats::RSquared,
                |s| {
                    for (_, row) in s.rows() {
                        acc += row.iter().copied().filter(|v| !v.is_nan()).sum::<f64>();
                    }
                },
                &RunControl::new(),
            )
            .unwrap();
            acc
        });
        assert!(sum.is_finite() && sum > 0.0);
        peak
    };

    let (n1, n2) = (600usize, 1200usize);
    let peak1 = run(n1);
    let peak2 = run(n2);

    let full_g_bytes = n2 * wps * 8;
    let packed_bytes = n2 * (n2 + 1) / 2 * 8;
    // values strip + counts scratch + panel assembly (chunk-aligned, with
    // the BitMatrix copy) + prefetch double-buffers + transform tables
    let values = slab * n2 * 8;
    let counts = slab * chunk * 4;
    let panel = 4 * (slab + 2 * chunk) * wps * 8;
    let buffers = 4 * chunk * wps * 8;
    let tables = 64 * n2;
    let overhead = 512 * 1024;
    let bound = values + counts + panel + buffers + tables + overhead;
    assert!(
        peak2 <= bound,
        "out-of-core peak {peak2} exceeds the slab×panel bound {bound} \
         (values {values} + panel {panel} + buffers {buffers} + tables {tables} \
         + overhead {overhead})"
    );
    assert!(
        peak2 < full_g_bytes / 2,
        "out-of-core peak {peak2} is in the same class as the full matrix ({full_g_bytes})"
    );
    assert!(
        peak2 < packed_bytes / 4,
        "out-of-core peak {peak2} is in the same class as the packed triangle ({packed_bytes})"
    );
    // Doubling n may at most double the linear terms — a quadratic or
    // full-G dependence would show up as ≳4×.
    assert!(
        peak2 <= 2 * peak1 + 128 * 1024,
        "peak grew superlinearly with n: {peak1} → {peak2}"
    );
}
