//! Kill/resume equivalence and checkpoint robustness.
//!
//! The contract under test (DESIGN.md §9): a run cancelled at **any** slab
//! boundary, checkpointed, and resumed produces a packed triangle
//! **bit-identical** to an uninterrupted run — across thread counts, NaN
//! policies and cancellation points — and a corrupted or mismatched
//! checkpoint is a located typed error, never a panic and never silent
//! wrong output.

use ld_bitmat::BitMatrix;
use ld_core::{
    CancelToken, CheckpointPlan, CheckpointSink, CheckpointState, Deadline, LdEngine, LdError,
    LdStats, MemorySink, NanPolicy, RunControl,
};
use ld_rng::SmallRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn random_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen_bool(0.3) {
                g.set(s, j, true);
            }
        }
    }
    g
}

/// Adds a monomorphic column so the two NaN policies actually differ.
fn matrix_with_monomorphic(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut g = random_matrix(n_samples, n_snps, seed);
    for s in 0..n_samples {
        g.set(s, n_snps / 2, false);
    }
    g
}

/// A checkpoint sink that trips a token after its `k`-th write — the test
/// stand-in for "the process was killed after k slabs were persisted".
struct TrippingSink {
    inner: MemorySink,
    token: CancelToken,
    trip_after: usize,
    writes: AtomicUsize,
}

impl TrippingSink {
    fn new(token: &CancelToken, trip_after: usize) -> Self {
        Self {
            inner: MemorySink::new(),
            token: token.clone(),
            trip_after,
            writes: AtomicUsize::new(0),
        }
    }
}

impl CheckpointSink for TrippingSink {
    fn write_checkpoint(&self, bytes: &[u8]) -> Result<(), String> {
        self.inner.write_checkpoint(bytes)?;
        if self.writes.fetch_add(1, Ordering::SeqCst) + 1 >= self.trip_after {
            self.token.cancel_with_reason("test kill");
        }
        Ok(())
    }
}

fn engine(threads: usize, slab: usize, policy: NanPolicy) -> LdEngine {
    LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(policy)
}

/// Cancel after every possible number of persisted slabs `k ∈ 1..=slabs`,
/// resume from the flushed snapshot, and require the final triangle to be
/// bit-identical to an uninterrupted oracle — for 1/2/7 threads and both
/// NaN policies.
#[test]
fn resume_is_bit_identical_at_every_cancellation_point() {
    let n = 37usize;
    let slab = 5usize;
    let n_slabs = n.div_ceil(slab); // 8
    let g = matrix_with_monomorphic(64, n, 11);
    for policy in [NanPolicy::Propagate, NanPolicy::Zero] {
        for &threads in &[1usize, 2, 7] {
            let oracle = engine(threads, slab, policy)
                .try_stat_matrix(&g, LdStats::RSquared)
                .expect("oracle run");
            for k in 1..=n_slabs {
                // Phase 1: run with every-slab checkpointing; the sink
                // trips the token after k writes.
                let token = CancelToken::new();
                let sink = TrippingSink::new(&token, k);
                let ctl = RunControl::new()
                    .with_token(&token)
                    .with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
                let first =
                    engine(threads, slab, policy).try_stat_matrix_with(&g, LdStats::RSquared, &ctl);
                let bytes = sink.inner.latest().expect("snapshot flushed");
                let state = CheckpointState::from_bytes(&bytes).expect("snapshot parses");
                match first {
                    Err(LdError::Cancelled {
                        reason,
                        completed_slabs,
                    }) => {
                        assert_eq!(reason, "test kill", "t{threads} k{k}");
                        assert!(
                            completed_slabs >= k.min(n_slabs),
                            "t{threads} k{k}: at least the persisted slabs completed \
                             ({completed_slabs})"
                        );
                        // the final flush covers everything that completed
                        assert_eq!(
                            state.records.len(),
                            completed_slabs,
                            "t{threads} k{k}: final snapshot holds every done slab"
                        );
                        assert!(completed_slabs < n_slabs, "cancelled runs are partial");
                    }
                    // With many threads the last trip can land after the
                    // final slab was already claimed — then the run simply
                    // completes. That's the documented completeness-over-
                    // token-state contract; nothing to resume.
                    Ok(_) => {
                        assert_eq!(state.records.len(), n_slabs, "t{threads} k{k}");
                        continue;
                    }
                    Err(other) => panic!("t{threads} k{k}: unexpected error {other}"),
                }
                // Phase 2: resume from the snapshot, run to completion.
                let replay_sink = MemorySink::new();
                let ctl = RunControl::new().with_checkpoint(
                    CheckpointPlan::new(&replay_sink)
                        .every_slabs(usize::MAX)
                        .resume_from(state),
                );
                let resumed = engine(threads, slab, policy)
                    .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
                    .unwrap_or_else(|e| panic!("t{threads} k{k}: resume failed: {e}"));
                assert_eq!(
                    oracle.packed().len(),
                    resumed.packed().len(),
                    "t{threads} k{k}"
                );
                for (idx, (a, b)) in oracle.packed().iter().zip(resumed.packed()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "t{threads} k{k} policy {policy:?}: packed[{idx}] {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// An expired deadline cancels before any slab runs; the flushed snapshot
/// (zero records) still resumes cleanly into a bit-identical result.
#[test]
fn expired_deadline_flushes_resumable_empty_snapshot() {
    let g = random_matrix(40, 23, 3);
    let sink = MemorySink::new();
    let ctl = RunControl::new()
        .with_deadline(Deadline::after(Duration::ZERO))
        .with_checkpoint(CheckpointPlan::new(&sink));
    let err = engine(4, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::DPrime, &ctl)
        .expect_err("zero deadline must cancel");
    match err {
        LdError::Cancelled {
            reason,
            completed_slabs,
        } => {
            assert_eq!(reason, "deadline exceeded");
            assert_eq!(completed_slabs, 0);
        }
        other => panic!("unexpected: {other}"),
    }
    let state = CheckpointState::from_bytes(&sink.latest().expect("final flush")).unwrap();
    assert!(state.records.is_empty());
    let oracle = engine(4, 4, NanPolicy::Zero)
        .try_stat_matrix(&g, LdStats::DPrime)
        .unwrap();
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink).resume_from(state));
    let resumed = engine(4, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::DPrime, &ctl)
        .unwrap();
    for (a, b) in oracle.packed().iter().zip(resumed.packed()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Plain token cancellation (no checkpoint) reports typed partial progress.
#[test]
fn pre_cancelled_token_reports_zero_progress() {
    let g = random_matrix(30, 19, 7);
    let token = CancelToken::new();
    token.cancel_with_reason("operator abort");
    let ctl = RunControl::new().with_token(&token);
    let err = engine(2, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
        .expect_err("tripped token must cancel");
    match err {
        LdError::Cancelled {
            reason,
            completed_slabs,
        } => {
            assert_eq!(reason, "operator abort");
            assert_eq!(completed_slabs, 0);
        }
        other => panic!("unexpected: {other}"),
    }
}

/// The streaming drivers honor tokens but reject checkpoint plans.
#[test]
fn streaming_rejects_checkpoint_but_honors_token() {
    let g = random_matrix(30, 19, 9);
    let sink = MemorySink::new();
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink));
    let err = engine(1, 4, NanPolicy::Zero)
        .try_stat_rows_with(&g, LdStats::RSquared, |_s| {}, &ctl)
        .expect_err("streaming + checkpoint is invalid");
    assert!(matches!(err, LdError::InvalidConfig { .. }), "{err}");
    let err = engine(1, 4, NanPolicy::Zero)
        .try_for_each_tile_with(&g, LdStats::RSquared, 4, |_t| {}, &ctl)
        .expect_err("tiling + checkpoint is invalid");
    assert!(matches!(err, LdError::InvalidConfig { .. }), "{err}");
    // token path: pre-tripped → zero slabs delivered
    let token = CancelToken::new();
    token.cancel();
    let ctl = RunControl::new().with_token(&token);
    let mut slabs = 0usize;
    let err = engine(2, 4, NanPolicy::Zero)
        .try_stat_rows_with(&g, LdStats::RSquared, |_s| slabs += 1, &ctl)
        .expect_err("tripped token must cancel the stream");
    assert!(matches!(err, LdError::Cancelled { .. }), "{err}");
    assert_eq!(slabs, 0);
}

/// Every resume-validation dimension is checked with a located message:
/// different input, stat, policy, slab geometry.
#[test]
fn resume_validation_rejects_mismatches() {
    let g = random_matrix(50, 20, 5);
    let sink = MemorySink::new();
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
    engine(1, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
        .unwrap();
    let bytes = sink.latest().unwrap();
    let state = || CheckpointState::from_bytes(&bytes).unwrap();
    let attempt = |g: &BitMatrix, stat, policy, slab: usize| {
        let s2 = MemorySink::new();
        let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&s2).resume_from(state()));
        engine(1, slab, policy).try_stat_matrix_with(g, stat, &ctl)
    };
    // matching configuration resumes fine
    attempt(&g, LdStats::RSquared, NanPolicy::Zero, 4).expect("identical run resumes");
    let cases: Vec<(&str, LdError)> = vec![
        (
            "stat",
            attempt(&g, LdStats::D, NanPolicy::Zero, 4).expect_err("stat mismatch"),
        ),
        (
            "policy",
            attempt(&g, LdStats::RSquared, NanPolicy::Propagate, 4).expect_err("policy mismatch"),
        ),
        (
            "slab",
            attempt(&g, LdStats::RSquared, NanPolicy::Zero, 5).expect_err("slab mismatch"),
        ),
        (
            "matrix",
            attempt(
                &random_matrix(50, 20, 6),
                LdStats::RSquared,
                NanPolicy::Zero,
                4,
            )
            .expect_err("different input data"),
        ),
    ];
    for (what, err) in cases {
        match err {
            LdError::Checkpoint { message } => {
                assert!(
                    message.contains("resume rejected"),
                    "{what}: message must locate the field: {message}"
                );
            }
            other => panic!("{what}: expected Checkpoint error, got {other}"),
        }
    }
}

/// An engine-produced snapshot survives neither truncation nor single-bit
/// corruption: every mutation is a typed error (and never a panic).
#[test]
fn corrupted_engine_snapshots_never_parse() {
    let g = random_matrix(40, 12, 13);
    let sink = MemorySink::new();
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
    engine(1, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
        .unwrap();
    let bytes = sink.latest().unwrap();
    CheckpointState::from_bytes(&bytes).expect("pristine bytes parse");
    for cut in 0..bytes.len() {
        assert!(
            CheckpointState::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    for flip in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[flip] ^= 0x01;
        // Either the parse fails (CRC/magic/geometry) — or, never, silent
        // acceptance of different bytes.
        assert!(
            CheckpointState::from_bytes(&bad).is_err(),
            "bit flip at byte {flip} must fail"
        );
    }
}

/// A sink that fails mid-run surfaces as a checkpoint error (not silent
/// data loss, not a panic) and stops the run.
#[test]
fn failing_sink_stops_the_run_with_a_typed_error() {
    struct FailingSink;
    impl CheckpointSink for FailingSink {
        fn write_checkpoint(&self, _bytes: &[u8]) -> Result<(), String> {
            Err("disk full (injected)".into())
        }
    }
    let g = random_matrix(40, 24, 17);
    let sink = FailingSink;
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
    let err = engine(2, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
        .expect_err("failing sink must fail the run");
    match err {
        LdError::Checkpoint { message } => {
            assert!(message.contains("disk full"), "{message}");
        }
        other => panic!("unexpected: {other}"),
    }
}

/// Deadline expiry must not cancel a sibling run sharing the same caller
/// token (the driver trips a *child*).
#[test]
fn deadline_does_not_poison_shared_tokens() {
    let g = random_matrix(40, 16, 19);
    let token = CancelToken::new();
    let ctl = RunControl::new()
        .with_token(&token)
        .with_deadline(Deadline::after(Duration::ZERO));
    let err = engine(1, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
        .expect_err("expired deadline cancels");
    assert!(matches!(err, LdError::Cancelled { .. }));
    assert!(
        !token.is_cancelled(),
        "deadline expiry must not trip the caller's token"
    );
    // the same token still works for a fresh run
    let ctl = RunControl::new().with_token(&token);
    engine(1, 4, NanPolicy::Zero)
        .try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
        .expect("sibling run unaffected");
}

/// The out-of-core driver honors the same kill/resume contract as the
/// in-memory one — and the two drivers' checkpoints are *interchangeable*:
/// a run killed in memory resumes out-of-core (and vice versa)
/// bit-identically, because both stamp the same matrix fingerprint,
/// kernel and slab geometry into the snapshot header. Chunk-read
/// accounting for the streamed side lives in `outofcore_resume.rs`.
#[test]
fn outofcore_and_in_memory_checkpoints_are_interchangeable() {
    use ld_core::MemoryTileStore;
    let n = 29usize;
    let slab = 4usize;
    let n_slabs = n.div_ceil(slab); // 8
    let chunk = 6usize;
    let g = matrix_with_monomorphic(48, n, 23);
    let store = MemoryTileStore::from_matrix(&g, chunk).expect("import");
    for policy in [NanPolicy::Propagate, NanPolicy::Zero] {
        let oracle = engine(1, slab, policy)
            .try_stat_matrix(&g, LdStats::RSquared)
            .expect("oracle run");
        for k in 1..n_slabs {
            for start_streamed in [false, true] {
                // Phase 1: kill after k persisted slabs, in one driver.
                let token = CancelToken::new();
                let sink = TrippingSink::new(&token, k);
                let e = engine(1, slab, policy);
                let ctl = RunControl::new()
                    .with_token(&token)
                    .with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
                let first = if start_streamed {
                    e.try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &ctl)
                } else {
                    e.try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
                };
                match first {
                    Err(LdError::Cancelled {
                        completed_slabs, ..
                    }) => assert_eq!(completed_slabs, k, "k{k}: single-threaded is exact"),
                    other => panic!("k{k}: expected cancellation, got {other:?}"),
                }
                let state = CheckpointState::from_bytes(&sink.inner.latest().unwrap())
                    .expect("snapshot parses");
                assert_eq!(state.records.len(), k, "k{k}");
                // Phase 2: resume in the *other* driver.
                let replay = MemorySink::new();
                let ctl = RunControl::new().with_checkpoint(
                    CheckpointPlan::new(&replay)
                        .every_slabs(usize::MAX)
                        .resume_from(state),
                );
                let e = engine(1, slab, policy);
                let resumed = if start_streamed {
                    e.try_stat_matrix_with(&g, LdStats::RSquared, &ctl)
                } else {
                    e.try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &ctl)
                };
                let resumed = resumed.unwrap_or_else(|e| {
                    panic!("k{k} streamed-first={start_streamed}: resume failed: {e}")
                });
                for (idx, (a, b)) in oracle.packed().iter().zip(resumed.packed()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "k{k} streamed-first={start_streamed}: packed[{idx}]"
                    );
                }
            }
        }
    }
}
