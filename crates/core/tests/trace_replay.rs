//! Replay test: the fused driver's recorded span tree must match the
//! five-loop slab geometry the engine was configured with, at 1, 2 and
//! 7 threads.
//!
//! Gated on `metrics`: without it the recorder is compiled to no-ops and
//! there is no timeline to replay (the CI feature matrix runs this leg
//! with the feature on; the plain workspace test run unifies it on via
//! ld-cli's default).
#![cfg(feature = "metrics")]

use ld_bitmat::BitMatrix;
use ld_core::{LdEngine, LdStats, NanPolicy};
use ld_trace::recorder::{start, stop, RecorderConfig, SpanKind, TraceSnapshot};

/// Recorder state is process-global; serialize the per-thread-count runs.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A deterministic toy matrix (same generator style as the engine tests).
fn toy_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    let mut state = seed | 1;
    for j in 0..n_snps {
        for i in 0..n_samples {
            // xorshift64* — cheap, deterministic, well-mixed
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1 {
                g.set(i, j, true);
            }
        }
    }
    g
}

/// Runs the fused packed driver under the recorder and returns the
/// snapshot alongside the slab count the geometry implies.
fn record_run(threads: usize, n: usize, slab: usize) -> (TraceSnapshot, usize) {
    let g = toy_matrix(96, n, 0x5eed ^ threads as u64);
    let engine = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);
    while stop().is_some() {}
    start(RecorderConfig::for_threads(threads));
    let m = engine.stat_matrix(&g, LdStats::RSquared);
    let snap = stop().expect("recorder was active");
    assert_eq!(m.n_snps(), n, "the run itself must have completed");
    (snap, n.div_ceil(slab))
}

/// One complete span per `(kind, arg)` expectation, used to replay the
/// slab geometry against the timeline.
fn args_of(snap: &TraceSnapshot, kind: SpanKind) -> Vec<u64> {
    let mut v: Vec<u64> = snap
        .events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.arg)
        .collect();
    v.sort_unstable();
    v
}

fn assert_replay(threads: usize) {
    let (n, slab) = (100usize, 16usize);
    let (snap, n_slabs) = record_run(threads, n, slab);
    assert_eq!(snap.dropped, 0, "threads={threads}: dropped events");
    assert_eq!(snap.open_spans, 0, "threads={threads}: unbalanced spans");

    // Slab geometry: exactly one SlabEmit instant per slab, slab indices
    // 0..n_slabs, each emitted exactly once.
    assert_eq!(
        args_of(&snap, SpanKind::SlabEmit),
        (0..n_slabs as u64).collect::<Vec<_>>(),
        "threads={threads}: slab emission must replay the slab geometry"
    );

    // Transform spans: one per slab (arg = slab index) plus the table
    // build on the coordinating thread (arg = n).
    let mut expected: Vec<u64> = (0..n_slabs as u64).collect();
    expected.push(n as u64);
    expected.sort_unstable();
    assert_eq!(
        args_of(&snap, SpanKind::Transform),
        expected,
        "threads={threads}: transform spans must cover every slab + setup"
    );

    // Scheduler chunks: grain == slab, so the loop hands out exactly
    // n_slabs chunks; their args decode to distinct chunk indices.
    let chunk_ids: Vec<u64> = args_of(&snap, SpanKind::Chunk)
        .iter()
        .map(|a| a >> 1)
        .collect();
    assert_eq!(
        chunk_ids,
        (0..n_slabs as u64).collect::<Vec<_>>(),
        "threads={threads}: one scheduler chunk per slab"
    );

    // Allocation spans: the packed output triangle + the scratch pool.
    let allocs = args_of(&snap, SpanKind::Alloc);
    assert_eq!(allocs.len(), 2, "threads={threads}: triangle + scratch");
    assert!(
        allocs.contains(&((n * (n + 1) / 2 * 8) as u64)),
        "threads={threads}: the packed-triangle alloc span carries its size"
    );

    // Every slab runs the blocked SYRK/GEMM sweep, so the pack and
    // kernel layers must each record at least one span per slab.
    for kind in [SpanKind::PackA, SpanKind::PackB, SpanKind::KernelBatch] {
        assert!(
            snap.count(kind) >= n_slabs,
            "threads={threads}: {} spans ({}) must cover every slab ({n_slabs})",
            kind.name(),
            snap.count(kind)
        );
    }

    // Tree shape: every pack/kernel leaf nests inside a scheduler chunk
    // on the same worker (the five-loop sweep runs only inside chunks).
    let chunks: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Chunk)
        .collect();
    for e in snap.events.iter().filter(|e| {
        matches!(
            e.kind,
            SpanKind::PackA | SpanKind::PackB | SpanKind::KernelBatch
        )
    }) {
        let contained = chunks.iter().any(|c| {
            c.worker == e.worker
                && c.start_ns <= e.start_ns
                && e.start_ns + e.dur_ns <= c.start_ns + c.dur_ns
        });
        assert!(
            contained,
            "threads={threads}: {} span at {}ns (worker {}) outside every chunk",
            e.kind.name(),
            e.start_ns,
            e.worker
        );
    }

    // Workers stay within the configured ring count, and with one thread
    // the whole timeline lives on worker 0.
    assert!(snap
        .events
        .iter()
        .all(|e| (e.worker as usize) < snap.workers));
    if threads == 1 {
        assert!(snap.events.iter().all(|e| e.worker == 0));
    }
}

#[test]
fn fused_span_tree_matches_slab_geometry_t1() {
    let _g = lock();
    assert_replay(1);
}

#[test]
fn fused_span_tree_matches_slab_geometry_t2() {
    let _g = lock();
    assert_replay(2);
}

#[test]
fn fused_span_tree_matches_slab_geometry_t7() {
    let _g = lock();
    assert_replay(7);
}
