//! Fault-injection harness for the panic-free boundary.
//!
//! Three failure modes are injected deliberately and must each surface as
//! a typed [`LdError`] — never a panic, abort, or hang:
//!
//! 1. **Allocation failure.** A counting global allocator refuses the
//!    N-th allocation *inside a fallible scope*
//!    ([`ld_core::error::fault::in_fallible_alloc`]), for every N, so
//!    every `try_reserve` site in the pipeline gets exercised.
//! 2. **Worker panic.** [`ld_core::error::fault::arm_kernel_panic`]
//!    makes the fused workers panic mid-scan; the team must drain and
//!    return [`LdError::Worker`] with the payload message preserved.
//! 3. **Memory pressure.** A tight [`MemoryBudget`] forces the slab to
//!    shrink; the result must stay bit-exact against the two-pass oracle,
//!    and an impossible budget must come back as `BudgetExceeded`.
//!
//! This file is its own integration-test binary so the `#[global_allocator]`
//! hook sees only this test's traffic. Tests that arm global fault state
//! serialize through one mutex.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ld_bitmat::BitMatrix;
use ld_core::error::fault;
use ld_core::{LdEngine, LdError, LdStats, MemoryBudget};
use ld_rng::SmallRng;

/// Fails the `FAIL_AT`-th fallible allocation (1-based) on any thread
/// currently inside a fallible scope. `0` disarms. Infallible allocations
/// (Vec growth in kernels, test bookkeeping, ...) always succeed — failing
/// those would abort the process, which is exactly what the fallible API
/// exists to avoid.
struct InjectingAlloc;

static FAIL_AT: AtomicUsize = AtomicUsize::new(0);
static FALLIBLE_SEEN: AtomicUsize = AtomicUsize::new(0);

impl InjectingAlloc {
    fn should_fail() -> bool {
        if !fault::in_fallible_alloc() {
            return false;
        }
        let target = FAIL_AT.load(Ordering::Relaxed);
        if target == 0 {
            return false;
        }
        FALLIBLE_SEEN.fetch_add(1, Ordering::Relaxed) + 1 == target
    }
}

unsafe impl GlobalAlloc for InjectingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if Self::should_fail() {
            return std::ptr::null_mut();
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if Self::should_fail() {
            return std::ptr::null_mut();
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout)
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if Self::should_fail() {
            return std::ptr::null_mut();
        }
        System.realloc(p, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: InjectingAlloc = InjectingAlloc;

/// Serializes tests that arm process-global fault state.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn arm_alloc_failure(nth: usize) {
    FALLIBLE_SEEN.store(0, Ordering::Relaxed);
    FAIL_AT.store(nth, Ordering::Relaxed);
}

fn disarm_alloc_failure() {
    FAIL_AT.store(0, Ordering::Relaxed);
}

fn random_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.next_u64().is_multiple_of(3) {
                g.set(s, j, true);
            }
        }
        // keep every SNP polymorphic so r² is finite everywhere
        g.set(j % n_samples, j, true);
        g.set((j + 1) % n_samples, j, false);
    }
    g
}

fn bits(m: &ld_core::LdMatrix) -> Vec<u64> {
    m.packed().iter().map(|v| v.to_bits()).collect()
}

// ---------------------------------------------------------------------
// 1. Allocation failure at every fallible site
// ---------------------------------------------------------------------

#[test]
fn every_fallible_allocation_site_fails_cleanly() {
    let _guard = lock_faults();
    let g = random_matrix(96, 48, 0xfa01);
    let engine = LdEngine::new().threads(2).slab_rows(8);

    let mut failures = 0usize;
    let mut completed = false;
    for nth in 1..=64 {
        arm_alloc_failure(nth);
        let result = engine.try_stat_matrix(&g, LdStats::RSquared);
        disarm_alloc_failure();
        match result {
            Err(LdError::AllocationFailed { bytes, .. }) => {
                assert!(bytes > 0, "failure should report the requested size");
                failures += 1;
            }
            Err(other) => panic!("expected AllocationFailed, got: {other}"),
            Ok(m) => {
                // nth exceeded the number of fallible allocations in one
                // run: the pipeline completed untouched. Its output must
                // match an uninjected run exactly.
                let clean = engine
                    .try_stat_matrix(&g, LdStats::RSquared)
                    .expect("uninjected run");
                assert_eq!(bits(&m), bits(&clean));
                completed = true;
                break;
            }
        }
    }
    assert!(
        failures >= 3,
        "expected at least diag/tables/output/scratch sites, saw {failures}"
    );
    assert!(completed, "injection never ran past the last fallible site");
}

#[test]
fn counts_matrix_allocation_failure_is_typed() {
    let _guard = lock_faults();
    let g = random_matrix(32, 24, 0xfa02);
    let engine = LdEngine::new().threads(1);
    arm_alloc_failure(1);
    let result = engine.try_counts_matrix(&g);
    disarm_alloc_failure();
    assert!(
        matches!(result, Err(LdError::AllocationFailed { .. })),
        "counts buffer must fail as AllocationFailed"
    );
}

// ---------------------------------------------------------------------
// 2. Worker panic containment
// ---------------------------------------------------------------------

#[test]
fn injected_kernel_panic_surfaces_as_worker_error() {
    let _guard = lock_faults();
    let g = random_matrix(64, 80, 0xfa03);
    let engine = LdEngine::new().threads(4).slab_rows(4);

    fault::arm_kernel_panic(true);
    let result = engine.try_stat_matrix(&g, LdStats::RSquared);
    fault::arm_kernel_panic(false);

    match result {
        Err(LdError::Worker(p)) => {
            assert!(
                p.message.contains("injected kernel panic"),
                "payload message must survive: {:?}",
                p.message
            );
        }
        Err(other) => panic!("expected LdError::Worker, got {other}"),
        Ok(_) => panic!("expected LdError::Worker, got a clean result"),
    }

    // the engine is not poisoned: the next run succeeds and matches the oracle
    let m = engine
        .try_stat_matrix(&g, LdStats::RSquared)
        .expect("clean run after disarm");
    let oracle = engine.stat_matrix_twopass(&g, LdStats::RSquared);
    assert_eq!(bits(&m), bits(&oracle));
}

#[test]
fn injected_panic_in_streaming_path_is_contained() {
    let _guard = lock_faults();
    let g = random_matrix(48, 40, 0xfa04);
    let engine = LdEngine::new().threads(3).slab_rows(4);

    fault::arm_kernel_panic(true);
    let result = engine.try_stat_rows(&g, LdStats::RSquared, |_slab| {});
    fault::arm_kernel_panic(false);

    assert!(
        matches!(result, Err(LdError::Worker(_))),
        "streaming path must contain worker panics too"
    );
}

// ---------------------------------------------------------------------
// 3. Memory budget: shrink-to-fit stays bit-exact, impossible errors
// ---------------------------------------------------------------------

#[test]
fn budget_constrained_run_matches_twopass_oracle_bitexact() {
    let n = 300usize;
    let threads = 2usize;
    let g = random_matrix(128, n, 0xfa05);

    // fixed footprint of the matrix form: packed output + tables
    let tri = n * (n + 1) / 2;
    let fixed = 8 * tri + 20 * n;
    let per_row = threads * n * 4;

    let unbounded = LdEngine::new().threads(threads).slab_rows(64);
    let oracle = unbounded.stat_matrix_twopass(&g, LdStats::RSquared);

    // room for exactly 3 slab rows: the slab must shrink 64 → 3 and the
    // values must not move by a single bit
    let engine = unbounded
        .clone()
        .memory_budget(MemoryBudget::bytes(fixed + 3 * per_row));
    let m = engine
        .try_stat_matrix(&g, LdStats::RSquared)
        .expect("budget admits 3 slab rows");
    assert_eq!(bits(&m), bits(&oracle), "slab shrink changed values");

    // one-row budget still works
    let engine = unbounded
        .clone()
        .memory_budget(MemoryBudget::bytes(fixed + per_row));
    let m = engine
        .try_stat_matrix(&g, LdStats::RSquared)
        .expect("budget admits 1 slab row");
    assert_eq!(bits(&m), bits(&oracle));

    // below one row: typed refusal, with both sides reported
    let engine = unbounded
        .clone()
        .memory_budget(MemoryBudget::bytes(fixed + per_row - 1));
    match engine.try_stat_matrix(&g, LdStats::RSquared) {
        Err(LdError::BudgetExceeded { required, budget }) => {
            assert_eq!(required, fixed + per_row);
            assert_eq!(budget, fixed + per_row - 1);
        }
        Err(other) => panic!("expected BudgetExceeded, got {other}"),
        Ok(_) => panic!("expected BudgetExceeded, got a clean result"),
    }
}

#[test]
fn tile_iteration_verifies_budget_instead_of_shrinking() {
    let g = random_matrix(64, 120, 0xfa06);
    let engine = LdEngine::new()
        .threads(1)
        .memory_budget(MemoryBudget::bytes(1024));
    let result = engine.try_for_each_tile(&g, LdStats::RSquared, 64, |_t| {});
    assert!(
        matches!(result, Err(LdError::BudgetExceeded { .. })),
        "a 64-wide tile cannot fit in 1 KiB"
    );
    // a smaller tile fits under a larger budget
    let engine = LdEngine::new()
        .threads(1)
        .memory_budget(MemoryBudget::mib(64));
    engine
        .try_for_each_tile(&g, LdStats::RSquared, 16, |_t| {})
        .expect("16-wide tiles fit in 64 MiB");
}

// ---------------------------------------------------------------------
// 4. Shape and configuration errors
// ---------------------------------------------------------------------

#[test]
fn zero_samples_is_empty_input() {
    let g = BitMatrix::zeros(0, 5);
    let err = LdEngine::new()
        .try_stat_matrix(&g, LdStats::RSquared)
        .unwrap_err();
    assert!(matches!(err, LdError::EmptyInput), "{err}");
    assert!(err.to_string().contains("zero samples"));
}

#[test]
fn absurd_snp_count_is_size_overflow_not_oom() {
    // 2^40 SNPs of zero samples occupy no memory, but the packed triangle
    // would need ~2^79 entries: must be a typed overflow, not an abort.
    let g = BitMatrix::zeros(0, 1usize << 40);
    let err = LdEngine::new()
        .try_stat_matrix(&g, LdStats::RSquared)
        .unwrap_err();
    assert!(matches!(err, LdError::SizeOverflow { .. }), "{err}");
}

#[test]
fn cross_matrix_rejects_mismatched_sample_sets() {
    let a = random_matrix(32, 10, 0xfa07);
    let b = random_matrix(48, 10, 0xfa08);
    let err = LdEngine::new()
        .try_cross_stat_matrix(&a, &b, LdStats::RSquared)
        .unwrap_err();
    match err {
        LdError::DimensionMismatch { left, right, .. } => {
            assert_eq!((left, right), (32, 48));
        }
        other => panic!("expected DimensionMismatch, got {other}"),
    }
}

#[test]
fn zero_tile_is_invalid_config() {
    let g = random_matrix(16, 8, 0xfa09);
    let err = LdEngine::new()
        .try_for_each_tile(&g, LdStats::RSquared, 0, |_t| {})
        .unwrap_err();
    assert!(matches!(err, LdError::InvalidConfig { .. }), "{err}");
}

#[test]
fn empty_matrix_succeeds_under_any_budget() {
    let g = BitMatrix::zeros(4, 0);
    let engine = LdEngine::new().memory_budget(MemoryBudget::bytes(1));
    let m = engine
        .try_stat_matrix(&g, LdStats::RSquared)
        .expect("0 SNPs need 0 bytes");
    assert_eq!(m.n_snps(), 0);
}
