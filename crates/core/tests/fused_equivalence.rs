//! The fused slab pipeline against the classical two-pass oracle.
//!
//! `LdEngine::stat_matrix` (fused: bounded per-worker slabs, no global
//! counts matrix, no mirror pass) must reproduce
//! `LdEngine::stat_matrix_twopass` (full `n × n` SYRK + transform sweep)
//! **bit-exactly**: both run the same batched rank-1 transform over the
//! same integer counts, so there is no tolerance to hide behind — any
//! discrepancy is a real bug in the slab/offset bookkeeping.

use ld_bitmat::BitMatrix;
use ld_core::{LdEngine, LdStats, NanPolicy};
use ld_rng::SmallRng;

const STATS: [LdStats; 3] = [LdStats::RSquared, LdStats::D, LdStats::DPrime];
const POLICIES: [NanPolicy; 2] = [NanPolicy::Propagate, NanPolicy::Zero];
const THREADS: [usize; 3] = [1, 2, 7];

fn random_matrix(rng: &mut SmallRng, n_samples: usize, n_snps: usize) -> BitMatrix {
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    let density = 0.05 + 0.9 * rng.gen::<f64>();
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen_bool(density) {
                g.set(s, j, true);
            }
        }
    }
    g
}

/// Asserts the packed triangles are identical to the bit.
fn assert_bit_equal(fused: &ld_core::LdMatrix, oracle: &ld_core::LdMatrix, ctx: &str) {
    assert_eq!(fused.packed().len(), oracle.packed().len(), "{ctx}");
    for (k, (a, b)) in fused.packed().iter().zip(oracle.packed()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: packed[{k}] fused={a} oracle={b}"
        );
    }
}

#[test]
fn fused_matches_twopass_across_shapes_threads_slabs() {
    let mut rng = SmallRng::seed_from_u64(0xfade);
    // Odd shapes: word-boundary sample counts, SNP counts around slab edges.
    let shapes = [
        (1usize, 1usize),
        (3, 7),
        (63, 12),
        (64, 33),
        (65, 40),
        (127, 9),
        (130, 65),
        (31, 64),
    ];
    for &(n_samples, n_snps) in &shapes {
        let g = random_matrix(&mut rng, n_samples, n_snps);
        for stat in STATS {
            for &threads in &THREADS {
                for slab in [1usize, 3, 16, 1000] {
                    let e = LdEngine::new().threads(threads).slab_rows(slab);
                    let ctx =
                        format!("{n_samples}x{n_snps} {stat:?} threads={threads} slab={slab}");
                    assert_bit_equal(
                        &e.stat_matrix(&g, stat),
                        &e.stat_matrix_twopass(&g, stat),
                        &ctx,
                    );
                }
            }
        }
    }
}

#[test]
fn fused_matches_twopass_on_monomorphic_snps_under_both_policies() {
    let mut rng = SmallRng::seed_from_u64(0x0f0f);
    for _ in 0..8 {
        let n_samples = rng.gen_range(1usize..100);
        let n_snps = rng.gen_range(2usize..30);
        let mut g = random_matrix(&mut rng, n_samples, n_snps);
        // Force monomorphic columns: one all-zeros, one all-ones.
        for s in 0..n_samples {
            g.set(s, 0, false);
            g.set(s, n_snps - 1, true);
        }
        for policy in POLICIES {
            for stat in STATS {
                for &threads in &THREADS {
                    let e = LdEngine::new()
                        .threads(threads)
                        .slab_rows(4)
                        .nan_policy(policy);
                    let fused = e.stat_matrix(&g, stat);
                    let oracle = e.stat_matrix_twopass(&g, stat);
                    let ctx = format!("{n_samples}x{n_snps} {stat:?} {policy:?} t{threads}");
                    assert_bit_equal(&fused, &oracle, &ctx);
                    // the policy is actually exercised: r² of the
                    // monomorphic pair is NaN or 0 as configured
                    if stat == LdStats::RSquared && n_snps >= 2 {
                        let v = fused.get(0, n_snps - 1);
                        match policy {
                            NanPolicy::Propagate => assert!(v.is_nan(), "{ctx}: {v}"),
                            NanPolicy::Zero => assert_eq!(v, 0.0, "{ctx}"),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fused_handles_zero_and_one_snp() {
    // n_snps = 0: empty triangle, no work, no panic (even with 0 samples —
    // there is nothing to divide).
    let empty = BitMatrix::zeros(5, 0);
    let m = LdEngine::new().r2_matrix(&empty);
    assert_eq!(m.n_snps(), 0);
    assert_eq!(m.packed().len(), 0);
    LdEngine::new().r2_rows(&empty, |_| panic!("no slabs for an empty panel"));
    LdEngine::new().r2_tiled(&empty, 4, |_| panic!("no tiles for an empty panel"));

    // n_snps = 1: a single diagonal entry.
    let mut one = BitMatrix::zeros(6, 1);
    one.set(0, 0, true);
    one.set(3, 0, true);
    for &threads in &THREADS {
        let e = LdEngine::new().threads(threads);
        let fused = e.r2_matrix(&one);
        let oracle = e.stat_matrix_twopass(&one, LdStats::RSquared);
        assert_bit_equal(&fused, &oracle, "single snp");
        assert!((fused.get(0, 0) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn fused_counts_are_bit_exact_against_full_syrk() {
    // The integer layer: slab counts assembled over the triangle equal the
    // full SYRK counts matrix entry for entry (u32 — necessarily exact).
    let mut rng = SmallRng::seed_from_u64(0xc0de);
    for _ in 0..6 {
        let n_samples = rng.gen_range(1usize..200);
        let n = rng.gen_range(1usize..48);
        let g = random_matrix(&mut rng, n_samples, n);
        let full = LdEngine::new().threads(2).counts_matrix(&g);
        let v = g.full_view();
        let slab = rng.gen_range(1usize..8);
        let mut r0 = 0usize;
        while r0 < n {
            let r1 = (r0 + slab).min(n);
            let width = n - r0;
            let mut c = vec![0u32; (r1 - r0) * width];
            ld_kernels::syrk_slab_counts(
                &v,
                r0..r1,
                &mut c,
                width,
                ld_kernels::KernelKind::Auto,
                ld_kernels::BlockSizes::default(),
            );
            for i in r0..r1 {
                for j in i..n {
                    assert_eq!(
                        c[(i - r0) * width + (j - r0)],
                        full[i * n + j],
                        "({i},{j}) slab {r0}..{r1}"
                    );
                }
            }
            r0 = r1;
        }
    }
}

#[test]
fn streaming_rows_and_tiles_match_fused_matrix() {
    let mut rng = SmallRng::seed_from_u64(0x57a7);
    for _ in 0..6 {
        let n_samples = rng.gen_range(1usize..120);
        let n = rng.gen_range(1usize..40);
        let g = random_matrix(&mut rng, n_samples, n);
        let threads = *THREADS.get(rng.gen_range(0usize..3)).unwrap();
        let e = LdEngine::new()
            .threads(threads)
            .slab_rows(rng.gen_range(1usize..9));
        let full = e.r2_matrix(&g);

        // row slabs: every (i, j ≥ i) exactly once, bit-equal
        let mut seen = vec![0u32; n * (n + 1) / 2];
        e.r2_rows(&g, |s| {
            for (i, row) in s.rows() {
                for (t, &v) in row.iter().enumerate() {
                    let j = i + t;
                    let idx = i * n - (i * i - i) / 2 + t;
                    seen[idx] += 1;
                    assert_eq!(v.to_bits(), full.get(i, j).to_bits(), "rows ({i},{j})");
                    assert_eq!(v.to_bits(), s.value(i - s.row_start(), j).to_bits());
                }
            }
        });
        assert!(seen.iter().all(|&c| c == 1), "row coverage");

        // tiles: upper-triangle coverage, diagonal tiles mirrored
        let tile = rng.gen_range(1usize..10);
        let mut tiles_seen = vec![0u32; n * n];
        e.for_each_tile(&g, LdStats::RSquared, tile, |t| {
            assert!(t.col_start >= t.row_start);
            for r in 0..t.rows {
                for c in 0..t.cols {
                    let (i, j) = (t.row_start + r, t.col_start + c);
                    tiles_seen[i * n + j] += 1;
                    let (a, b) = (i.min(j), i.max(j));
                    assert_eq!(
                        t.values[r * t.cols + c].to_bits(),
                        full.get(a, b).to_bits(),
                        "tile ({i},{j})"
                    );
                }
            }
        });
        for i in 0..n {
            for j in 0..n {
                let expect = u32::from(j >= i || (j / tile) == (i / tile));
                assert_eq!(tiles_seen[i * n + j], expect, "tile coverage ({i},{j})");
            }
        }
    }
}
