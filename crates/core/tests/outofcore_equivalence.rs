//! The out-of-core tile-store driver against the in-memory fused engine.
//!
//! `LdEngine::try_stat_matrix_outofcore_with` streams slab×panel blocks
//! of `GᵀG` from a chunked [`MemoryTileStore`] / `DirTileStore` instead
//! of holding `G` in RAM. Counts are exact u32 either way and both paths
//! run the *same* `Transform` arithmetic, so the packed triangle must be
//! **bit-identical** to `LdEngine::try_stat_matrix` for every chunk
//! size, slab height, memory budget and thread count — no tolerance, any
//! difference is a real bookkeeping bug in the panel/chunk offsets.

use ld_bitmat::BitMatrix;
use ld_core::{
    LdEngine, LdError, LdMatrix, LdStats, MemoryBudget, MemoryTileStore, NanPolicy, RunControl,
};
use ld_io::tilestore::{import_to_dir, DirTileStore};
use ld_rng::SmallRng;

const STATS: [LdStats; 3] = [LdStats::RSquared, LdStats::D, LdStats::DPrime];
const POLICIES: [NanPolicy; 2] = [NanPolicy::Propagate, NanPolicy::Zero];
const THREADS: [usize; 3] = [1, 2, 7];

fn random_matrix(rng: &mut SmallRng, n_samples: usize, n_snps: usize) -> BitMatrix {
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    let density = 0.05 + 0.9 * rng.gen::<f64>();
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen_bool(density) {
                g.set(s, j, true);
            }
        }
    }
    g
}

fn assert_bit_equal(ooc: &LdMatrix, oracle: &LdMatrix, ctx: &str) {
    assert_eq!(ooc.packed().len(), oracle.packed().len(), "{ctx}");
    for (k, (a, b)) in ooc.packed().iter().zip(oracle.packed()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{ctx}: packed[{k}] outofcore={a} in-memory={b}"
        );
    }
}

/// The core sweep: shapes crossing word boundaries × chunk sizes
/// bracketing the SNP count × slab heights × thread counts, in-memory
/// store backend. Stat and policy are cycled so every combination is
/// hit without a full cross product.
#[test]
fn outofcore_matrix_matches_in_memory_across_geometries() {
    let mut rng = SmallRng::seed_from_u64(0x00c0_4e11);
    let shapes = [
        (1usize, 1usize),
        (3, 7),
        (63, 12),
        (64, 33),
        (65, 40),
        (130, 65),
        (31, 100),
    ];
    let mut cycle = 0usize;
    for &(n_samples, n_snps) in &shapes {
        let g = random_matrix(&mut rng, n_samples, n_snps);
        for chunk_snps in [1usize, 3, 16, 1000] {
            let store = MemoryTileStore::from_matrix(&g, chunk_snps).unwrap();
            for slab in [1usize, 4, 1000] {
                let stat = STATS[cycle % STATS.len()];
                let policy = POLICIES[cycle % POLICIES.len()];
                let threads = THREADS[cycle % THREADS.len()];
                cycle += 1;
                let e = LdEngine::new()
                    .threads(threads)
                    .slab_rows(slab)
                    .nan_policy(policy);
                let ctx = format!(
                    "{n_samples}x{n_snps} chunk={chunk_snps} slab={slab} \
                     {stat:?} {policy:?} t{threads}"
                );
                let ooc = e
                    .try_stat_matrix_outofcore_with(&store, stat, &RunControl::new())
                    .unwrap();
                let oracle = e.try_stat_matrix(&g, stat).unwrap();
                assert_bit_equal(&ooc, &oracle, &ctx);
            }
        }
    }
}

/// Same sweep through the *file-backed* store: import to a directory,
/// reopen, stream — still bit-identical.
#[test]
fn file_backed_store_matches_in_memory_engine() {
    let dir = std::env::temp_dir().join(format!("ld_ooc_equiv_{}", std::process::id()));
    let mut rng = SmallRng::seed_from_u64(0xd15c);
    for (round, &(n_samples, n_snps, chunk_snps, slab)) in [
        (5usize, 1usize, 1usize, 1usize),
        (17, 13, 4, 3),
        (64, 33, 8, 5),
        (130, 65, 17, 1000),
    ]
    .iter()
    .enumerate()
    {
        let g = random_matrix(&mut rng, n_samples, n_snps);
        let d = dir.join(format!("round{round}"));
        let meta = import_to_dir(&g, chunk_snps, &d).unwrap();
        assert_eq!(meta.n_chunks(), n_snps.div_ceil(chunk_snps));
        let store = DirTileStore::open(&d).unwrap();
        for &threads in &THREADS {
            let e = LdEngine::new().threads(threads).slab_rows(slab);
            let ctx = format!("{n_samples}x{n_snps} chunk={chunk_snps} slab={slab} t{threads}");
            let ooc = e
                .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &RunControl::new())
                .unwrap();
            let oracle = e.try_r2_matrix(&g).unwrap();
            assert_bit_equal(&ooc, &oracle, &ctx);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The streaming form: slabs arrive in ascending row order, cover every
/// `(i, j ≥ i)` pair exactly once, and every value is bit-equal to the
/// in-memory matrix.
#[test]
fn outofcore_rows_cover_the_triangle_bit_exactly() {
    let mut rng = SmallRng::seed_from_u64(0x0c0c);
    for round in 0..6 {
        let n_samples = rng.gen_range(1usize..120);
        let n = rng.gen_range(1usize..50);
        let g = random_matrix(&mut rng, n_samples, n);
        let chunk_snps = rng.gen_range(1usize..20);
        let store = MemoryTileStore::from_matrix(&g, chunk_snps).unwrap();
        let e = LdEngine::new()
            .threads(THREADS[round % THREADS.len()])
            .slab_rows(rng.gen_range(1usize..9));
        let full = e.try_r2_matrix(&g).unwrap();
        let mut seen = vec![0u32; n * (n + 1) / 2];
        let mut last_start = 0usize;
        e.try_stat_rows_outofcore_with(
            &store,
            LdStats::RSquared,
            |s| {
                assert!(s.row_start() >= last_start, "slabs out of order");
                last_start = s.row_start();
                for (i, row) in s.rows() {
                    for (t, &v) in row.iter().enumerate() {
                        let j = i + t;
                        let idx = i * n - (i * i - i) / 2 + t;
                        seen[idx] += 1;
                        assert_eq!(v.to_bits(), full.get(i, j).to_bits(), "rows ({i},{j})");
                    }
                }
            },
            &RunControl::new(),
        )
        .unwrap();
        assert!(seen.iter().all(|&c| c == 1), "row coverage");
    }
}

/// The paper-level acceptance criterion: a memory budget **smaller than
/// the packed genotype panel** still produces the bit-identical result —
/// the streamed driver never needs the whole panel resident.
#[test]
fn budget_smaller_than_packed_panel_is_bit_exact() {
    let mut rng = SmallRng::seed_from_u64(0xb06e7);
    let (n_samples, n) = (512usize, 200usize);
    let g = random_matrix(&mut rng, n_samples, n);
    let chunk_snps = 8usize;
    let store = MemoryTileStore::from_matrix(&g, chunk_snps).unwrap();
    let wps = ld_bitmat::words_for(n_samples);
    let panel_bytes = n * wps * 8;
    // The streaming form's modeled floor: tables (20n) + four chunk
    // buffers + one slab row (panel words + u32 counts + f64 values).
    let chunk_bytes = chunk_snps * wps * 8;
    let floor = 20 * n + 4 * chunk_bytes + (wps * 8 + chunk_snps * 4 + n * 8);
    let budget = floor + 256;
    assert!(
        budget < panel_bytes,
        "test geometry must make the budget ({budget}) smaller than the \
         packed panel ({panel_bytes})"
    );
    let full = LdEngine::new().threads(2).try_r2_matrix(&g).unwrap();
    let e = LdEngine::new()
        .threads(2)
        .slab_rows(64)
        .memory_budget(MemoryBudget::bytes(budget));
    let mut got = vec![0f64; n * (n + 1) / 2];
    e.try_stat_rows_outofcore_with(
        &store,
        LdStats::RSquared,
        |s| {
            for (i, row) in s.rows() {
                let off = i * n - (i * i - i) / 2;
                for (t, &v) in row.iter().enumerate() {
                    got[off + t] = v;
                }
            }
        },
        &RunControl::new(),
    )
    .unwrap();
    for (k, (a, b)) in got.iter().zip(full.packed()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "packed[{k}]");
    }
    // An over-tight budget fails with the typed error, not a panic.
    let starved = LdEngine::new().memory_budget(MemoryBudget::bytes(64));
    let err = starved
        .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &RunControl::new())
        .unwrap_err();
    assert!(matches!(err, LdError::BudgetExceeded { .. }), "{err}");
}

/// Monomorphic columns under both NaN policies — the transform's
/// policy-dependent branch — stay bit-identical to the in-memory path.
#[test]
fn outofcore_monomorphic_policies_match_in_memory() {
    let mut rng = SmallRng::seed_from_u64(0x3035);
    for _ in 0..4 {
        let n_samples = rng.gen_range(1usize..100);
        let n_snps = rng.gen_range(2usize..30);
        let mut g = random_matrix(&mut rng, n_samples, n_snps);
        for s in 0..n_samples {
            g.set(s, 0, false);
            g.set(s, n_snps - 1, true);
        }
        let store = MemoryTileStore::from_matrix(&g, 5).unwrap();
        for policy in POLICIES {
            for stat in STATS {
                let e = LdEngine::new().threads(2).slab_rows(4).nan_policy(policy);
                let ooc = e
                    .try_stat_matrix_outofcore_with(&store, stat, &RunControl::new())
                    .unwrap();
                let oracle = e.try_stat_matrix(&g, stat).unwrap();
                assert_bit_equal(&ooc, &oracle, &format!("{stat:?} {policy:?}"));
            }
        }
    }
}

/// Degenerate shapes: zero SNPs (empty result), zero samples (typed
/// error), single SNP.
#[test]
fn outofcore_handles_degenerate_shapes() {
    let empty = MemoryTileStore::from_matrix(&BitMatrix::zeros(5, 0), 4).unwrap();
    let m = LdEngine::new()
        .try_stat_matrix_outofcore_with(&empty, LdStats::RSquared, &RunControl::new())
        .unwrap();
    assert_eq!(m.n_snps(), 0);
    LdEngine::new()
        .try_stat_rows_outofcore_with(
            &empty,
            LdStats::RSquared,
            |_| panic!("no slabs for an empty store"),
            &RunControl::new(),
        )
        .unwrap();

    let no_samples = MemoryTileStore::from_matrix(&BitMatrix::zeros(0, 3), 2).unwrap();
    let err = LdEngine::new()
        .try_stat_matrix_outofcore_with(&no_samples, LdStats::RSquared, &RunControl::new())
        .unwrap_err();
    assert!(matches!(err, LdError::EmptyInput), "{err}");

    let mut one = BitMatrix::zeros(6, 1);
    one.set(0, 0, true);
    one.set(3, 0, true);
    let store = MemoryTileStore::from_matrix(&one, 1).unwrap();
    let ooc = LdEngine::new()
        .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &RunControl::new())
        .unwrap();
    let oracle = LdEngine::new().try_r2_matrix(&one).unwrap();
    assert_bit_equal(&ooc, &oracle, "single snp");
}

/// Checkpoint plans are rejected by the streaming form with the typed
/// config error (same contract as the in-memory rows driver).
#[test]
fn outofcore_rows_reject_checkpoint_plans() {
    use ld_core::{CheckpointPlan, MemorySink};
    let g = random_matrix(&mut SmallRng::seed_from_u64(1), 10, 8);
    let store = MemoryTileStore::from_matrix(&g, 4).unwrap();
    let sink = MemorySink::new();
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
    let err = LdEngine::new()
        .try_stat_rows_outofcore_with(&store, LdStats::RSquared, |_| {}, &ctl)
        .unwrap_err();
    assert!(matches!(err, LdError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("packed-matrix driver"), "{err}");
}

/// Out-of-core sharding: every shard of the grid computed from the
/// store merges into the full in-memory matrix.
#[test]
fn outofcore_shards_merge_to_the_full_matrix() {
    use ld_core::{merge_shard_states, state_to_matrix};
    let mut rng = SmallRng::seed_from_u64(0x54a6d);
    let g = random_matrix(&mut rng, 40, 37);
    let store = MemoryTileStore::from_matrix(&g, 6).unwrap();
    let e = LdEngine::new().threads(2).slab_rows(5);
    let full = e.try_r2_matrix(&g).unwrap();
    let plan = e.shard_plan(37, 3).unwrap();
    assert!(plan.len() > 1, "plan should actually shard");
    let mut states = Vec::new();
    for range in plan {
        let ctl = RunControl::new().with_shard(range);
        states.push(
            e.try_stat_shard_outofcore_with(&store, LdStats::RSquared, &ctl)
                .unwrap(),
        );
    }
    let merged = merge_shard_states(states).unwrap();
    let m = state_to_matrix(&merged).unwrap();
    assert_bit_equal(&m, &full, "sharded out-of-core merge");
}
