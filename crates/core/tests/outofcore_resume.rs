//! Kill/resume for the out-of-core driver, with chunk-read accounting.
//!
//! The contract: a streamed run cancelled at **any** slab boundary,
//! checkpointed and resumed is bit-identical to an uninterrupted run —
//! *and the resume does not re-read the chunks of completed slabs*. The
//! second half is what makes resumption worth having for a multi-hour
//! out-of-core scan, and it is asserted directly through the
//! `chunks_read` / `resume_slabs_skipped` counters (when the `metrics`
//! feature is on; the bit-identity half runs either way).
//!
//! Every test takes one file-wide lock: the counters are process-global,
//! and this file owns the only out-of-core runs in its process, so the
//! deltas observed under the lock are exact.

use ld_bitmat::BitMatrix;
use ld_core::{
    CancelToken, CheckpointPlan, CheckpointSink, CheckpointState, LdEngine, LdError, LdStats,
    MemorySink, MemoryTileStore, NanPolicy, RunControl,
};
use ld_rng::SmallRng;
use ld_trace::Counter;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn random_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen_bool(0.3) {
                g.set(s, j, true);
            }
        }
    }
    g
}

/// Trips a token after its `k`-th successful write — "the process was
/// killed after k slabs were persisted".
struct TrippingSink {
    inner: MemorySink,
    token: CancelToken,
    trip_after: usize,
    writes: AtomicUsize,
}

impl TrippingSink {
    fn new(token: &CancelToken, trip_after: usize) -> Self {
        Self {
            inner: MemorySink::new(),
            token: token.clone(),
            trip_after,
            writes: AtomicUsize::new(0),
        }
    }
}

impl CheckpointSink for TrippingSink {
    fn write_checkpoint(&self, bytes: &[u8]) -> Result<(), String> {
        self.inner.write_checkpoint(bytes)?;
        if self.writes.fetch_add(1, Ordering::SeqCst) + 1 >= self.trip_after {
            self.token.cancel_with_reason("test kill");
        }
        Ok(())
    }
}

/// Chunks the out-of-core driver reads in one full (uninterrupted) run:
/// per slab, the A-panel's covering chunks plus the column stream from
/// the first covering chunk to the end (the documented panel double-
/// read).
fn expected_chunk_reads(
    n: usize,
    slab: usize,
    chunk: usize,
    pending: impl Fn(usize) -> bool,
) -> u64 {
    let n_slabs = n.div_ceil(slab);
    let n_chunks = n.div_ceil(chunk);
    let mut reads = 0u64;
    for k in 0..n_slabs {
        if !pending(k) {
            continue;
        }
        let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
        let (first, last) = (r0 / chunk, (r1 - 1) / chunk);
        reads += (last - first + 1) as u64; // panel assembly
        reads += (n_chunks - first) as u64; // column stream
    }
    reads
}

/// Cancel after every possible number of persisted slabs, resume, and
/// require (a) a bit-identical triangle and (b) — when counters are on —
/// that the resumed run read exactly the pending slabs' chunks and
/// skipped the rest.
#[test]
fn outofcore_resume_is_bit_identical_and_skips_completed_chunks() {
    let _l = counter_lock();
    let (n, slab, chunk) = (37usize, 5usize, 4usize);
    let n_slabs = n.div_ceil(slab); // 8
    let g = random_matrix(64, n, 0x000c_5eed);
    let store = MemoryTileStore::from_matrix(&g, chunk).unwrap();
    let threads = [1usize, 2, 7];
    for k in 1..n_slabs {
        let t = threads[k % threads.len()];
        let e = LdEngine::new()
            .threads(t)
            .slab_rows(slab)
            .nan_policy(NanPolicy::Zero);
        let oracle = e.try_stat_matrix(&g, LdStats::RSquared).unwrap();

        // Phase 1: checkpoint every slab; the sink kills the run after
        // k writes. The sequential driver makes this exact: k slabs
        // complete, no more.
        let token = CancelToken::new();
        let sink = TrippingSink::new(&token, k);
        let ctl = RunControl::new()
            .with_token(&token)
            .with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
        ld_trace::reset();
        let err = e
            .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &ctl)
            .expect_err("tripped run must cancel");
        match err {
            LdError::Cancelled {
                reason,
                completed_slabs,
            } => {
                assert_eq!(reason, "test kill", "k{k}");
                assert_eq!(completed_slabs, k, "k{k}: sequential driver is exact");
            }
            other => panic!("k{k}: unexpected error {other}"),
        }
        if ld_trace::enabled() {
            // one poll per computed slab, always followed by the compute
            assert_eq!(
                ld_trace::get(Counter::CancelPolls),
                ld_trace::get(Counter::SlabsEmitted),
                "k{k}"
            );
            assert_eq!(
                ld_trace::get(Counter::ChunksRead),
                expected_chunk_reads(n, slab, chunk, |s| s < k),
                "k{k}: interrupted run reads exactly the completed slabs' chunks"
            );
        }
        let bytes = sink.inner.latest().expect("final flush");
        let state = CheckpointState::from_bytes(&bytes).expect("snapshot parses");
        assert_eq!(state.records.len(), k, "k{k}");

        // Phase 2: resume to completion; only the pending slabs' chunks
        // may be touched.
        let replay = MemorySink::new();
        let ctl = RunControl::new().with_checkpoint(
            CheckpointPlan::new(&replay)
                .every_slabs(usize::MAX)
                .resume_from(state),
        );
        ld_trace::reset();
        let resumed = e
            .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &ctl)
            .unwrap_or_else(|e| panic!("k{k}: resume failed: {e}"));
        if ld_trace::enabled() {
            assert_eq!(ld_trace::get(Counter::ResumeSlabsSkipped), k as u64, "k{k}");
            assert_eq!(
                ld_trace::get(Counter::SlabsEmitted),
                (n_slabs - k) as u64,
                "k{k}"
            );
            let full = expected_chunk_reads(n, slab, chunk, |_| true);
            let got = ld_trace::get(Counter::ChunksRead);
            assert_eq!(
                got,
                expected_chunk_reads(n, slab, chunk, |s| s >= k),
                "k{k}: resume reads exactly the pending slabs' chunks"
            );
            assert!(
                got < full,
                "k{k}: resume must read strictly fewer chunks ({got} vs {full})"
            );
        }
        for (idx, (a, b)) in oracle.packed().iter().zip(resumed.packed()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "k{k} t{t}: packed[{idx}] {a} vs {b}"
            );
        }
    }
}

/// Resuming from a complete snapshot touches the store not at all.
#[test]
fn resume_from_complete_snapshot_reads_zero_chunks() {
    let _l = counter_lock();
    let (n, slab, chunk) = (24usize, 4usize, 5usize);
    let g = random_matrix(40, n, 0xf0_11);
    let store = MemoryTileStore::from_matrix(&g, chunk).unwrap();
    let e = LdEngine::new().threads(2).slab_rows(slab);
    let sink = MemorySink::new();
    let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
    let first = e
        .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &ctl)
        .unwrap();
    let state = CheckpointState::from_bytes(&sink.latest().unwrap()).unwrap();
    assert_eq!(state.records.len(), n.div_ceil(slab));
    let replay = MemorySink::new();
    let ctl = RunControl::new().with_checkpoint(
        CheckpointPlan::new(&replay)
            .every_slabs(usize::MAX)
            .resume_from(state),
    );
    ld_trace::reset();
    let resumed = e
        .try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &ctl)
        .unwrap();
    if ld_trace::enabled() {
        assert_eq!(ld_trace::get(Counter::ChunksRead), 0);
        assert_eq!(ld_trace::get(Counter::StoreBytesRead), 0);
        assert_eq!(ld_trace::get(Counter::SlabsEmitted), 0);
        assert_eq!(ld_trace::get(Counter::CancelPolls), 0);
        assert_eq!(
            ld_trace::get(Counter::ResumeSlabsSkipped),
            n.div_ceil(slab) as u64
        );
    }
    for (a, b) in first.packed().iter().zip(resumed.packed()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The deterministic read accounting of a fresh run: `chunks_read` and
/// `store_bytes_read` match the documented panel + column-stream model
/// exactly, for several geometries.
#[test]
fn fresh_run_chunk_reads_match_the_documented_model() {
    let _l = counter_lock();
    if !ld_trace::enabled() {
        return; // counter-only test
    }
    for &(n, slab, chunk) in &[
        (37usize, 5usize, 4usize),
        (20, 20, 3),
        (16, 1, 16),
        (9, 2, 1),
    ] {
        let g = random_matrix(33, n, (n * 31 + slab * 7 + chunk) as u64);
        let store = MemoryTileStore::from_matrix(&g, chunk).unwrap();
        let meta = ld_core::TileSource::meta(&store).clone();
        let e = LdEngine::new().threads(2).slab_rows(slab);
        ld_trace::reset();
        e.try_stat_matrix_outofcore_with(&store, LdStats::RSquared, &RunControl::new())
            .unwrap();
        assert_eq!(
            ld_trace::get(Counter::ChunksRead),
            expected_chunk_reads(n, slab, chunk, |_| true),
            "n={n} slab={slab} chunk={chunk}"
        );
        // bytes: same walk, weighted by each chunk's encoded size
        let n_chunks = meta.n_chunks();
        let mut bytes = 0u64;
        for k in 0..n.div_ceil(slab) {
            let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
            let (first, last) = (r0 / chunk, (r1 - 1) / chunk);
            for c in first..=last {
                bytes += meta.chunk_bytes(c) as u64;
            }
            for c in first..n_chunks {
                bytes += meta.chunk_bytes(c) as u64;
            }
        }
        assert_eq!(
            ld_trace::get(Counter::StoreBytesRead),
            bytes,
            "n={n} slab={slab} chunk={chunk}"
        );
        // the prefetcher never claims more hits than there were reads
        assert!(ld_trace::get(Counter::PrefetchHits) <= ld_trace::get(Counter::ChunksRead));
    }
}
