//! Per-pair LD statistics (the paper's §II equations).

/// How to report LD when a SNP is monomorphic in the sample
/// (`p ∈ {0, 1}`), which makes the `r²` denominator zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NanPolicy {
    /// Report `NaN` (the statistically honest choice; default).
    #[default]
    Propagate,
    /// Report `0.0` (what several pipelines, including PLINK table output
    /// consumers, expect so downstream sums stay finite).
    Zero,
}

/// Which pairwise statistic a matrix-level computation should produce.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LdStats {
    /// Squared Pearson correlation `r²` (Eq. 2). The common choice.
    #[default]
    RSquared,
    /// Raw disequilibrium coefficient `D` (Eq. 1/5).
    D,
    /// Lewontin's `D' = D / D_max`.
    DPrime,
}

/// The complete set of statistics for one SNP pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LdPair {
    /// Derived-allele frequency of the first SNP (`P(A)`).
    pub p_i: f64,
    /// Derived-allele frequency of the second SNP (`P(B)`).
    pub p_j: f64,
    /// Haplotype frequency of the derived-derived haplotype (`P(AB)`).
    pub p_ij: f64,
    /// `D = P(AB) − P(A)P(B)`.
    pub d: f64,
    /// Lewontin's normalized `D' = D / D_max` (NaN if monomorphic).
    pub d_prime: f64,
    /// `r² = D² / (p_i(1−p_i) p_j(1−p_j))` (subject to [`NanPolicy`]).
    pub r2: f64,
}

/// Computes an [`LdPair`] from raw co-occurrence counts:
/// `c_ii = |s_i|`, `c_jj = |s_j|`, `c_ij = |s_i ∧ s_j|`, over `n` samples.
///
/// These are exactly the three popcounts the GEMM produces (diagonal,
/// diagonal, off-diagonal), so matrix-level code funnels through here.
pub fn ld_pair_from_counts(c_ii: u64, c_jj: u64, c_ij: u64, n: u64, policy: NanPolicy) -> LdPair {
    debug_assert!(
        c_ij <= c_ii.min(c_jj),
        "intersection exceeds operand counts"
    );
    debug_assert!(c_ii <= n && c_jj <= n, "counts exceed sample size");
    let nf = n as f64;
    ld_pair_from_freqs(c_ii as f64 / nf, c_jj as f64 / nf, c_ij as f64 / nf, policy)
}

/// Computes an [`LdPair`] from frequencies (Eq. 1, 2 and `D'`).
pub fn ld_pair_from_freqs(p_i: f64, p_j: f64, p_ij: f64, policy: NanPolicy) -> LdPair {
    let d = p_ij - p_i * p_j;
    let denom = p_i * (1.0 - p_i) * p_j * (1.0 - p_j);
    let r2 = if denom > 0.0 {
        (d * d) / denom
    } else {
        match policy {
            NanPolicy::Propagate => f64::NAN,
            NanPolicy::Zero => 0.0,
        }
    };
    let d_max = if d >= 0.0 {
        (p_i * (1.0 - p_j)).min(p_j * (1.0 - p_i))
    } else {
        (p_i * p_j).min((1.0 - p_i) * (1.0 - p_j))
    };
    let d_prime = if d_max > 0.0 {
        (d / d_max).abs()
    } else {
        match policy {
            NanPolicy::Propagate => f64::NAN,
            NanPolicy::Zero => 0.0,
        }
    };
    LdPair {
        p_i,
        p_j,
        p_ij,
        d,
        d_prime,
        r2,
    }
}

/// Scalar transform used by the matrix paths: counts → the selected
/// statistic, with the division-free early-outs inlined.
#[inline]
pub(crate) fn stat_from_counts(
    stat: LdStats,
    c_ii: u32,
    c_jj: u32,
    c_ij: u32,
    inv_n: f64,
    policy: NanPolicy,
) -> f64 {
    let p_i = c_ii as f64 * inv_n;
    let p_j = c_jj as f64 * inv_n;
    let p_ij = c_ij as f64 * inv_n;
    let d = p_ij - p_i * p_j;
    match stat {
        LdStats::D => d,
        LdStats::RSquared => {
            let denom = p_i * (1.0 - p_i) * p_j * (1.0 - p_j);
            if denom > 0.0 {
                (d * d) / denom
            } else {
                match policy {
                    NanPolicy::Propagate => f64::NAN,
                    NanPolicy::Zero => 0.0,
                }
            }
        }
        LdStats::DPrime => {
            let d_max = if d >= 0.0 {
                (p_i * (1.0 - p_j)).min(p_j * (1.0 - p_i))
            } else {
                (p_i * p_j).min((1.0 - p_i) * (1.0 - p_j))
            };
            if d_max > 0.0 {
                (d / d_max).abs()
            } else {
                match policy {
                    NanPolicy::Propagate => f64::NAN,
                    NanPolicy::Zero => 0.0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ld() {
        // identical SNPs: p=0.5, P(AB)=0.5 -> D=0.25, r2=1, D'=1
        let p = ld_pair_from_counts(2, 2, 2, 4, NanPolicy::Propagate);
        assert!((p.d - 0.25).abs() < 1e-12);
        assert!((p.r2 - 1.0).abs() < 1e-12);
        assert!((p.d_prime - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_repulsion() {
        // complementary SNPs: never co-occur
        let p = ld_pair_from_counts(2, 2, 0, 4, NanPolicy::Propagate);
        assert!((p.d + 0.25).abs() < 1e-12);
        assert!((p.r2 - 1.0).abs() < 1e-12);
        assert!((p.d_prime - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linkage_equilibrium() {
        // p_i = p_j = 0.5, P(AB) = 0.25 = p_i p_j -> D = 0
        let p = ld_pair_from_counts(4, 4, 2, 8, NanPolicy::Propagate);
        assert_eq!(p.d, 0.0);
        assert_eq!(p.r2, 0.0);
        assert_eq!(p.d_prime, 0.0);
    }

    #[test]
    fn monomorphic_policies() {
        let nan = ld_pair_from_counts(0, 2, 0, 4, NanPolicy::Propagate);
        assert!(nan.r2.is_nan());
        assert!(nan.d_prime.is_nan());
        let zero = ld_pair_from_counts(0, 2, 0, 4, NanPolicy::Zero);
        assert_eq!(zero.r2, 0.0);
        assert_eq!(zero.d_prime, 0.0);
        // fixed SNP at frequency 1 is also monomorphic
        let fixed = ld_pair_from_counts(4, 2, 2, 4, NanPolicy::Propagate);
        assert!(fixed.r2.is_nan());
    }

    #[test]
    fn r2_is_bounded() {
        // exhaustive small-sample sweep: r² ∈ [0,1] whenever defined
        let n = 8u64;
        for c_ii in 0..=n {
            for c_jj in 0..=n {
                let lo = (c_ii + c_jj).saturating_sub(n);
                for c_ij in lo..=c_ii.min(c_jj) {
                    let p = ld_pair_from_counts(c_ii, c_jj, c_ij, n, NanPolicy::Propagate);
                    if !p.r2.is_nan() {
                        assert!(
                            (-1e-12..=1.0 + 1e-12).contains(&p.r2),
                            "r2={} for ({c_ii},{c_jj},{c_ij})",
                            p.r2
                        );
                    }
                    if !p.d_prime.is_nan() {
                        assert!(p.d_prime <= 1.0 + 1e-9, "D'={}", p.d_prime);
                    }
                }
            }
        }
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = ld_pair_from_counts(3, 5, 2, 10, NanPolicy::Propagate);
        let b = ld_pair_from_counts(5, 3, 2, 10, NanPolicy::Propagate);
        assert_eq!(a.r2, b.r2);
        assert_eq!(a.d, b.d);
        assert_eq!(a.d_prime, b.d_prime);
    }

    #[test]
    fn stat_selector_consistency() {
        let (c_ii, c_jj, c_ij, n) = (30u32, 45u32, 25u32, 100u64);
        let pair = ld_pair_from_counts(
            c_ii as u64,
            c_jj as u64,
            c_ij as u64,
            n,
            NanPolicy::Propagate,
        );
        let inv_n = 1.0 / n as f64;
        assert_eq!(
            stat_from_counts(LdStats::D, c_ii, c_jj, c_ij, inv_n, NanPolicy::Propagate),
            pair.d
        );
        assert_eq!(
            stat_from_counts(
                LdStats::RSquared,
                c_ii,
                c_jj,
                c_ij,
                inv_n,
                NanPolicy::Propagate
            ),
            pair.r2
        );
        assert_eq!(
            stat_from_counts(
                LdStats::DPrime,
                c_ii,
                c_jj,
                c_ij,
                inv_n,
                NanPolicy::Propagate
            ),
            pair.d_prime
        );
    }

    #[test]
    fn known_textbook_example() {
        // Haplotype counts: AB=5, Ab=1, aB=1, ab=3 over n=10
        // p_A = 0.6, p_B = 0.6, P(AB) = 0.5, D = 0.5 - 0.36 = 0.14
        let p = ld_pair_from_freqs(0.6, 0.6, 0.5, NanPolicy::Propagate);
        assert!((p.d - 0.14).abs() < 1e-12);
        assert!((p.r2 - 0.14 * 0.14 / (0.24 * 0.24)).abs() < 1e-12);
        // D_max = min(0.6*0.4, 0.6*0.4) = 0.24 -> D' = 0.5833..
        assert!((p.d_prime - 0.14 / 0.24).abs() < 1e-12);
    }
}
