//! # ld-core — linkage disequilibrium as dense linear algebra
//!
//! The public API of the GEMM-LD system. Everything the paper's §II derives
//! lives here:
//!
//! * allele frequencies `p_i = (s_iᵀ s_i)/N`                     (Eq. 3)
//! * haplotype frequencies `P_ij = (s_iᵀ s_j)/N`                 (Eq. 4)
//! * `D_ij = P_ij − p_i p_j`                                     (Eq. 5)
//! * `r²_ij = D² / (p_i(1−p_i) p_j(1−p_j))`                      (Eq. 2)
//! * `D'` (Lewontin's normalized D), as the standard companion measure
//!
//! computed for **all pairs at once** through the blocked AND/POPCNT GEMM
//! of `ld-kernels` (`H = (1/N) GᵀG`, then the rank-1 allele-frequency
//! correction — §II-B).
//!
//! Entry point: [`LdEngine`] (kernel/threads/blocking configuration) with
//!
//! * [`LdEngine::r2_matrix`] — all `N(N+1)/2` values, triangle-packed
//!   ([`LdMatrix`]), filled by the fused slab pipeline of [`fused`]
//!   (transient memory bounded by `threads × slab × N` u32 — never the
//!   `N × N` counts matrix);
//! * [`LdEngine::r2_cross`] — all `m × n` values between two SNP sets
//!   (long-range LD / distant genes, Fig. 4);
//! * [`LdEngine::stat_rows`] / [`LdEngine::for_each_tile`] — streaming
//!   row slabs ([`RowSlabVisit`]) or tiles ([`TileVisit`]) for matrices
//!   too large to materialize at all;
//! * [`LdEngine::ld_pair`] / [`ld_pair_from_counts`] — single-pair
//!   statistics ([`LdPair`]) for spot checks and downstream tools.
//!
//! Long batch scans are **interruptible and resumable**: the `_with`
//! drivers ([`LdEngine::try_stat_matrix_with`] and friends) take a
//! [`RunControl`] bundling a shared [`CancelToken`], a monotonic
//! [`Deadline`] and a [`CheckpointPlan`] (periodic persistence via any
//! [`CheckpointSink`], plus validated resume). Cancellation lands on slab
//! boundaries — never mid-kernel — and surfaces as [`LdError::Cancelled`]
//! with the completed-slab count; a resumed run is bit-identical to an
//! uninterrupted one (see [`checkpoint`]).

#![warn(missing_docs)]

pub mod banded;
pub mod blocks;
pub mod checkpoint;
pub mod control;
pub mod decay;
mod engine;
pub mod error;
pub mod fused;
mod matrix;
mod outofcore;
pub mod shard;
mod stats;
pub mod tilestore;

pub use banded::BandedLdMatrix;
pub use blocks::{haplotype_blocks, solid_spine_blocks, tag_snps};
pub use checkpoint::{
    crc32, matrix_fingerprint, CheckpointSink, CheckpointState, Fingerprinter, MemorySink,
    SlabRecord,
};
pub use control::{CancelToken, CheckpointPlan, Deadline, RunControl};
pub use decay::{DecayBin, DecayProfile};
pub use engine::{LdEngine, TileVisit};
pub use error::{LdError, MemoryBudget, WorkerPanic};
pub use fused::RowSlabVisit;
pub use matrix::{CrossLdMatrix, LdMatrix};
pub use shard::{merge_shard_states, plan_shards, state_to_matrix, SlabRange};
pub use stats::{ld_pair_from_counts, ld_pair_from_freqs, LdPair, LdStats, NanPolicy};
pub use tilestore::{
    ChunkEntry, MemoryTileStore, TileManifest, TileSink, TileSource, TileStoreMeta,
};
