//! Slab-range shards: partitioning one LD run across processes, and the
//! fingerprint-validated merge that stitches shard outputs back together.
//!
//! The fused pipeline already decomposes the packed triangle into row
//! slabs (see [`crate::fused`]); a **shard** is nothing more than a
//! contiguous range of those slab indices, promoted to a first-class
//! execution unit:
//!
//! * [`SlabRange`] names the range; [`plan_shards`] cuts `[0, n_slabs)`
//!   into `N` contiguous ranges balanced by *packed-triangle work* (row
//!   `i` holds `n − i` pairs, so an even slab split would give the first
//!   shard ~2× the work of the last);
//! * [`crate::RunControl::with_shard`] restricts a `_with` driver to one
//!   range — only those slabs are computed, checkpointed and counted;
//! * a shard's output is an ordinary [`CheckpointState`] whose records
//!   are exactly the shard's slabs (the header keeps the *global* slab
//!   grid), so the shard interchange format inherits the checkpoint
//!   format's CRC-32 discipline, its matrix fingerprint, and its
//!   versioning — unchanged;
//! * [`merge_shard_states`] validates every input against every other
//!   (fingerprint, statistic, NaN policy, slab geometry, kernel),
//!   rejects overlapping spans ([`LdError::ShardMismatch`]) and
//!   incomplete coverage ([`LdError::IncompleteShardSet`] — a gap
//!   report, never a silently truncated panel), and returns the single
//!   complete state [`state_to_matrix`] turns back into an [`LdMatrix`]
//!   bit-identical to a single-process run.

use crate::checkpoint::CheckpointState;
use crate::error::LdError;
use crate::fused::packed_row_offset;
use crate::matrix::LdMatrix;
use ld_trace::Counter;

/// A contiguous, half-open range `[start, end)` of row-slab indices — the
/// unit of work a shard owns. Slab indices refer to the global slab grid
/// of the run (`slab` rows per slab, `⌈n_snps / slab⌉` slabs total), so a
/// range is only meaningful together with that geometry; the checkpoint
/// header carries both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlabRange {
    /// First slab index in the range.
    pub start: usize,
    /// One past the last slab index in the range.
    pub end: usize,
}

impl SlabRange {
    /// The range `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Number of slabs in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the range contains no slabs.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// True when slab index `k` falls inside the range.
    pub fn contains(&self, k: usize) -> bool {
        self.start <= k && k < self.end
    }

    /// The row window `[r0, r1)` this range covers on a grid of `slab`
    /// rows per slab over `n_snps` rows.
    pub fn rows(&self, slab: usize, n_snps: usize) -> (usize, usize) {
        (
            (self.start * slab).min(n_snps),
            (self.end * slab).min(n_snps),
        )
    }
}

impl std::fmt::Display for SlabRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Packed-triangle work of slab `k` on an (`n_snps`, `slab`) grid: the
/// number of pair values its rows hold, `Σ_{i∈rows(k)} (n − i)`.
fn slab_work(n_snps: usize, slab: usize, k: usize) -> u128 {
    let r0 = k * slab;
    let r1 = ((k + 1) * slab).min(n_snps);
    let h = (r1 - r0) as u128;
    // arithmetic series: first term n − r0, last term n − (r1 − 1)
    h * ((n_snps - r0) as u128 + (n_snps - r1 + 1) as u128) / 2
}

/// Cuts the slab grid of an `n_snps`-row run into `n_shards` contiguous
/// [`SlabRange`]s balanced by packed-triangle work, not slab count: the
/// top rows of the triangle hold the most pairs, so the first shards get
/// fewer slabs than the last. The ranges tile `[0, n_slabs)` exactly and
/// every shard owns at least one slab.
///
/// Errors with [`LdError::InvalidConfig`] on a zero shard count, an empty
/// matrix, or more shards than slabs (each shard must own work).
pub fn plan_shards(n_snps: usize, slab: usize, n_shards: usize) -> Result<Vec<SlabRange>, LdError> {
    if n_shards == 0 {
        return Err(LdError::InvalidConfig {
            message: "shard count must be positive",
        });
    }
    if n_snps == 0 {
        return Err(LdError::InvalidConfig {
            message: "cannot shard an empty matrix",
        });
    }
    let slab = slab.max(1).min(n_snps);
    let n_slabs = n_snps.div_ceil(slab);
    if n_shards > n_slabs {
        return Err(LdError::InvalidConfig {
            message: "more shards than row slabs (lower the shard count or the slab height)",
        });
    }
    let mut remaining: u128 = (0..n_slabs).map(|k| slab_work(n_snps, slab, k)).sum();
    let mut plan = Vec::with_capacity(n_shards);
    let mut k = 0usize;
    for s in 0..n_shards {
        let shards_left = n_shards - s;
        let target = remaining.div_ceil(shards_left as u128);
        // leave at least one slab for every shard still to come
        let max_end = n_slabs - (shards_left - 1);
        let start = k;
        let mut acc = 0u128;
        while k < max_end && (k == start || acc < target) {
            acc += slab_work(n_snps, slab, k);
            k += 1;
        }
        remaining -= acc;
        plan.push(SlabRange { start, end: k });
    }
    debug_assert_eq!(plan.last().map(|r| r.end), Some(n_slabs));
    Ok(plan)
}

/// Formats half-open slab spans for gap reports: `"0..2, 5..6"`.
pub(crate) fn format_spans(spans: &[(u64, u64)]) -> String {
    spans
        .iter()
        .map(|&(a, b)| format!("{a}..{b}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Collapses a sorted list of slab indices' *complement* over
/// `[0, n_slabs)` into contiguous half-open spans.
fn missing_spans(covered: &[bool]) -> Vec<(u64, u64)> {
    let mut spans = Vec::new();
    let mut k = 0usize;
    while k < covered.len() {
        if covered[k] {
            k += 1;
            continue;
        }
        let start = k;
        while k < covered.len() && !covered[k] {
            k += 1;
        }
        spans.push((start as u64, k as u64));
    }
    spans
}

/// Stitches shard outputs into one complete [`CheckpointState`].
///
/// Every input must describe the *same* run: matrix fingerprint,
/// `n_snps`/`n_samples`, statistic, NaN policy, slab geometry and kernel
/// are compared pairwise against the first input, and any disagreement is
/// a [`LdError::ShardMismatch`] naming the input and the field. Slab
/// spans must be disjoint (overlap ⇒ [`LdError::ShardMismatch`]) and
/// complete (gaps ⇒ [`LdError::IncompleteShardSet`] listing the missing
/// spans — the caller reports which shard to re-run instead of writing a
/// truncated panel). Record geometry is re-verified even though
/// [`CheckpointState::from_bytes`] already checked it, so in-memory
/// states get the same scrutiny as parsed files.
///
/// Each record that passes validation bumps the
/// `merge_spans_validated` trace counter.
pub fn merge_shard_states(states: Vec<CheckpointState>) -> Result<CheckpointState, LdError> {
    let Some(first) = states.first() else {
        return Err(LdError::InvalidConfig {
            message: "no shard inputs to merge",
        });
    };
    let mismatch = |i: usize, field: &str, a: String, b: String| {
        Err(LdError::ShardMismatch {
            message: format!(
                "input {i} disagrees with input 0 on {field}: {a} vs {b} — \
                 these shards do not come from the same run"
            ),
        })
    };
    for (i, s) in states.iter().enumerate().skip(1) {
        if s.matrix_hash != first.matrix_hash {
            return mismatch(
                i,
                "matrix fingerprint",
                format!("{:#018x}", s.matrix_hash),
                format!("{:#018x}", first.matrix_hash),
            );
        }
        if s.n_snps != first.n_snps {
            return mismatch(i, "n_snps", s.n_snps.to_string(), first.n_snps.to_string());
        }
        if s.n_samples != first.n_samples {
            return mismatch(
                i,
                "n_samples",
                s.n_samples.to_string(),
                first.n_samples.to_string(),
            );
        }
        if s.stat != first.stat {
            return mismatch(
                i,
                "statistic",
                format!("{:?}", s.stat),
                format!("{:?}", first.stat),
            );
        }
        if s.policy != first.policy {
            return mismatch(
                i,
                "NaN policy",
                format!("{:?}", s.policy),
                format!("{:?}", first.policy),
            );
        }
        if s.slab != first.slab || s.n_slabs != first.n_slabs {
            return mismatch(
                i,
                "slab geometry",
                format!("slab {} × {} slabs", s.slab, s.n_slabs),
                format!("slab {} × {} slabs", first.slab, first.n_slabs),
            );
        }
        if s.kernel != first.kernel {
            return mismatch(i, "kernel", s.kernel.clone(), first.kernel.clone());
        }
    }
    let (n_snps, slab, n_slabs) = (first.n_snps, first.slab, first.n_slabs);
    let n_slabs_us = usize::try_from(n_slabs).map_err(|_| LdError::SizeOverflow {
        what: "shard slab count",
    })?;
    let mut owner: Vec<Option<usize>> = vec![None; n_slabs_us];
    let mut header = CheckpointState {
        records: Vec::new(),
        kernel: first.kernel.clone(),
        ..*first
    };
    let mut merged = Vec::new();
    for (i, s) in states.into_iter().enumerate() {
        for rec in s.records {
            let k = rec.index;
            if k >= n_slabs {
                return Err(LdError::ShardMismatch {
                    message: format!(
                        "input {i}: slab index {k} out of range (n_slabs = {n_slabs})"
                    ),
                });
            }
            let (r0, r1) = (k * slab, ((k + 1) * slab).min(n_snps));
            let span: u64 = (r0..r1).map(|r| n_snps - r).sum();
            if rec.start_row != r0 || rec.end_row != r1 || rec.values.len() as u64 != span {
                return Err(LdError::ShardMismatch {
                    message: format!(
                        "input {i}: slab {k} rows {}..{} with {} values does not match \
                         the {slab}-row grid over {n_snps} SNPs (expected rows {r0}..{r1}, \
                         {span} values)",
                        rec.start_row,
                        rec.end_row,
                        rec.values.len()
                    ),
                });
            }
            if let Some(prev) = owner[k as usize] {
                return Err(LdError::ShardMismatch {
                    message: format!(
                        "overlapping spans: slab {k} (rows {r0}..{r1}) appears in both \
                         input {prev} and input {i}"
                    ),
                });
            }
            owner[k as usize] = Some(i);
            ld_trace::add(Counter::MergeSpansValidated, 1);
            merged.push(rec);
        }
    }
    let covered: Vec<bool> = owner.iter().map(Option::is_some).collect();
    let missing = missing_spans(&covered);
    if !missing.is_empty() {
        return Err(LdError::IncompleteShardSet { missing, n_slabs });
    }
    merged.sort_by_key(|r| r.index);
    header.records = merged;
    Ok(header)
}

/// Reassembles a *complete* [`CheckpointState`] (every slab present) into
/// the packed [`LdMatrix`] a single-process run would have produced —
/// bit-identical, because the records hold the exact f64 bit patterns.
///
/// An incomplete state is [`LdError::IncompleteShardSet`]; this function
/// never fabricates values for missing spans.
pub fn state_to_matrix(state: &CheckpointState) -> Result<LdMatrix, LdError> {
    let n = usize::try_from(state.n_snps).map_err(|_| LdError::SizeOverflow {
        what: "shard matrix dimension",
    })?;
    let n_slabs = usize::try_from(state.n_slabs).map_err(|_| LdError::SizeOverflow {
        what: "shard slab count",
    })?;
    let mut covered = vec![false; n_slabs];
    for rec in &state.records {
        if let Some(c) = covered.get_mut(rec.index as usize) {
            *c = true;
        }
    }
    let missing = missing_spans(&covered);
    if !missing.is_empty() {
        return Err(LdError::IncompleteShardSet {
            missing,
            n_slabs: state.n_slabs,
        });
    }
    let mut out = LdMatrix::try_zeros(n)?;
    for rec in &state.records {
        let (r0, r1) = (rec.start_row as usize, (rec.end_row as usize).min(n));
        let off = packed_row_offset(n, r0);
        let len = packed_row_offset(n, r1) - off;
        if rec.values.len() != len {
            return Err(LdError::ShardMismatch {
                message: format!(
                    "slab {}: {} values but rows {r0}..{r1} pack {len}",
                    rec.index,
                    rec.values.len()
                ),
            });
        }
        out.packed_mut()[off..off + len].copy_from_slice(&rec.values);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::RunControl;
    use crate::engine::LdEngine;
    use crate::stats::LdStats;
    use ld_bitmat::BitMatrix;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        let mut s = seed | 1;
        for j in 0..n_snps {
            for smp in 0..n_samples {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s.is_multiple_of(3) {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn plan_tiles_the_grid_and_balances_work() {
        for (n, slab, shards) in [
            (100usize, 1usize, 4usize),
            (97, 8, 3),
            (64, 64, 1),
            (10, 3, 4),
        ] {
            let plan = plan_shards(n, slab, shards).expect("plan");
            assert_eq!(plan.len(), shards);
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, n.div_ceil(slab.min(n)));
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            assert!(plan.iter().all(|r| !r.is_empty()), "no empty shard");
        }
        // triangle weighting: the first shard takes fewer slabs than the last
        let plan = plan_shards(100, 1, 4).expect("plan");
        assert!(
            plan[0].len() < plan[3].len(),
            "top-of-triangle shard must be narrower: {plan:?}"
        );
    }

    #[test]
    fn plan_rejects_degenerate_requests() {
        assert!(matches!(
            plan_shards(10, 2, 0),
            Err(LdError::InvalidConfig { .. })
        ));
        assert!(matches!(
            plan_shards(0, 2, 1),
            Err(LdError::InvalidConfig { .. })
        ));
        // 10 rows at slab 4 → 3 slabs < 5 shards
        assert!(matches!(
            plan_shards(10, 4, 5),
            Err(LdError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn slab_range_accessors() {
        let r = SlabRange::new(2, 5);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.contains(2) && r.contains(4) && !r.contains(5));
        assert_eq!(r.rows(3, 100), (6, 15));
        assert_eq!(r.rows(3, 13), (6, 13));
        assert_eq!(r.to_string(), "2..5");
        assert!(SlabRange::new(4, 4).is_empty());
    }

    #[test]
    fn sharded_run_merges_bit_identical_to_single_run() {
        let g = pseudo(60, 37, 5);
        let e = LdEngine::new().threads(2).slab_rows(4);
        for stat in [LdStats::RSquared, LdStats::D] {
            let full = e.try_stat_matrix(&g, stat).expect("single run");
            let plan = e.shard_plan(37, 3).expect("plan");
            let mut states = Vec::new();
            for range in plan {
                let ctl = RunControl::new().with_shard(range);
                states.push(e.try_stat_shard_with(&g, stat, &ctl).expect("shard"));
            }
            // shard outputs survive the interchange format losslessly
            let states: Vec<_> = states
                .iter()
                .map(|s| CheckpointState::from_bytes(&s.to_bytes()).expect("roundtrip"))
                .collect();
            let merged = merge_shard_states(states).expect("merge");
            let m = state_to_matrix(&merged).expect("assemble");
            assert_eq!(m.packed().len(), full.packed().len());
            for (a, b) in m.packed().iter().zip(full.packed()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{stat:?}");
            }
        }
    }

    #[test]
    fn merge_rejects_overlap_and_reports_gaps() {
        let g = pseudo(40, 20, 9);
        let e = LdEngine::new().threads(1).slab_rows(4); // 5 slabs
        let plan = e.shard_plan(20, 2).expect("plan");
        let shard = |r: SlabRange| {
            let ctl = RunControl::new().with_shard(r);
            e.try_stat_shard_with(&g, LdStats::RSquared, &ctl)
                .expect("shard")
        };
        let (a, b) = (shard(plan[0]), shard(plan[1]));
        // overlap: the same shard twice
        let err = merge_shard_states(vec![a.clone(), a.clone()]).unwrap_err();
        match err {
            LdError::ShardMismatch { message } => {
                assert!(message.contains("overlapping"), "{message}")
            }
            other => panic!("expected ShardMismatch, got {other}"),
        }
        // gap: second shard missing → typed report naming its spans
        let err = merge_shard_states(vec![a.clone()]).unwrap_err();
        match &err {
            LdError::IncompleteShardSet { missing, n_slabs } => {
                assert_eq!(*n_slabs, 5);
                assert_eq!(missing, &[(plan[1].start as u64, plan[1].end as u64)]);
            }
            other => panic!("expected IncompleteShardSet, got {other}"),
        }
        assert!(err.to_string().contains("missing"), "{err}");
        // assembling an incomplete state is refused the same way
        assert!(matches!(
            state_to_matrix(&a),
            Err(LdError::IncompleteShardSet { .. })
        ));
        // complete set is fine
        assert!(merge_shard_states(vec![a, b]).is_ok());
    }

    #[test]
    fn merge_rejects_cross_run_inputs_field_by_field() {
        let g = pseudo(40, 20, 9);
        let e = LdEngine::new().threads(1).slab_rows(4);
        let plan = e.shard_plan(20, 2).expect("plan");
        let mk = |stat, range: SlabRange| {
            let ctl = RunControl::new().with_shard(range);
            e.try_stat_shard_with(&g, stat, &ctl).expect("shard")
        };
        let a = mk(LdStats::RSquared, plan[0]);
        let b = mk(LdStats::RSquared, plan[1]);
        let cases: Vec<(CheckpointState, &str)> = vec![
            (
                CheckpointState {
                    matrix_hash: b.matrix_hash ^ 1,
                    ..b.clone()
                },
                "fingerprint",
            ),
            (
                CheckpointState {
                    n_samples: 99,
                    ..b.clone()
                },
                "n_samples",
            ),
            (mk(LdStats::D, plan[1]), "statistic"),
            (
                CheckpointState {
                    kernel: "other-kernel".to_owned(),
                    ..b.clone()
                },
                "kernel",
            ),
            (
                CheckpointState {
                    slab: 5,
                    ..b.clone()
                },
                "slab geometry",
            ),
        ];
        for (bad, needle) in cases {
            let err = merge_shard_states(vec![a.clone(), bad]).unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, LdError::ShardMismatch { .. }),
                "expected ShardMismatch for {needle}: {msg}"
            );
            assert!(msg.contains(needle), "wanted {needle} in: {msg}");
        }
        // empty input set is a config error, not a silent empty panel
        assert!(matches!(
            merge_shard_states(vec![]),
            Err(LdError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn shard_resume_rejects_out_of_range_snapshot() {
        use crate::checkpoint::MemorySink;
        use crate::control::CheckpointPlan;
        let g = pseudo(40, 20, 11);
        let e = LdEngine::new().threads(1).slab_rows(4); // 5 slabs
        let plan = e.shard_plan(20, 2).expect("plan");
        // checkpoint written by shard 1 ...
        let sink = MemorySink::new();
        let ctl = RunControl::new()
            .with_shard(plan[1])
            .with_checkpoint(CheckpointPlan::new(&sink).every_slabs(1));
        e.try_stat_shard_with(&g, LdStats::RSquared, &ctl)
            .expect("shard 1");
        let snap = CheckpointState::from_bytes(&sink.latest().expect("snapshot")).expect("parse");
        assert!(!snap.records.is_empty());
        // ... must be rejected when resuming shard 0 (spans out of range)
        let ctl = RunControl::new()
            .with_shard(plan[0])
            .with_checkpoint(CheckpointPlan::new(&sink).resume_from(snap));
        let err = e
            .try_stat_shard_with(&g, LdStats::RSquared, &ctl)
            .unwrap_err();
        match &err {
            LdError::Checkpoint { message } => {
                assert!(message.contains("outside"), "{message}");
                assert!(message.contains("shard"), "{message}");
            }
            other => panic!("expected Checkpoint error, got {other}"),
        }
    }

    #[test]
    fn shard_range_must_fit_the_grid() {
        let g = pseudo(40, 20, 13);
        let e = LdEngine::new().threads(1).slab_rows(4); // 5 slabs
        for bad in [
            SlabRange::new(3, 3),
            SlabRange::new(4, 6),
            SlabRange::new(5, 4),
        ] {
            let ctl = RunControl::new().with_shard(bad);
            assert!(
                matches!(
                    e.try_stat_shard_with(&g, LdStats::RSquared, &ctl),
                    Err(LdError::InvalidConfig { .. })
                ),
                "{bad}"
            );
        }
        // and the shard entry point requires a shard
        assert!(matches!(
            e.try_stat_shard_with(&g, LdStats::RSquared, &RunControl::new()),
            Err(LdError::InvalidConfig { .. })
        ));
    }
}
