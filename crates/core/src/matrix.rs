//! Result containers: triangle-packed and rectangular LD matrices.

use crate::error::{checked_triangle_len, try_zeroed_vec, LdError};
use std::fmt;

/// A symmetric `n × n` LD matrix stored as the packed upper triangle
/// (including the diagonal): `n(n+1)/2` values instead of `n²`.
///
/// Index layout (row-major upper triangle): for `i ≤ j`,
/// `idx(i, j) = i·n − i(i−1)/2 + (j − i)`.
#[derive(Clone, PartialEq)]
pub struct LdMatrix {
    n: usize,
    values: Vec<f64>,
}

impl LdMatrix {
    /// An all-zero matrix for `n` SNPs.
    pub fn zeros(n: usize) -> Self {
        match Self::try_zeros(n) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`LdMatrix::zeros`]: the packed length `n(n+1)/2` is
    /// computed with checked arithmetic ([`LdError::SizeOverflow`]) and
    /// the buffer is allocated via `try_reserve`
    /// ([`LdError::AllocationFailed`]).
    pub fn try_zeros(n: usize) -> Result<Self, LdError> {
        let len = checked_triangle_len(n)?;
        Ok(Self {
            n,
            values: try_zeroed_vec(len, "packed LD triangle")?,
        })
    }

    /// Builds from a packed triangle (length must be `n(n+1)/2`).
    pub fn from_packed(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n * (n + 1) / 2, "packed length mismatch");
        Self { n, values }
    }

    /// Number of SNPs.
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n
    }

    /// Number of stored (distinct) values, `n(n+1)/2`.
    #[inline]
    pub fn n_values(&self) -> usize {
        self.values.len()
    }

    /// Packed index of `(i, j)` with either argument order.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n && j < self.n);
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        // row offset Σ_{t<i}(n−t) = i·n − i(i−1)/2, written underflow-free
        i * self.n - (i * i - i) / 2 + (j - i)
    }

    /// Value at `(i, j)` (symmetric access).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[self.index(i, j)]
    }

    /// Sets the value at `(i, j)` (both orders map to the same slot).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.values[idx] = v;
    }

    /// The packed storage, row-major upper triangle.
    pub fn packed(&self) -> &[f64] {
        &self.values
    }

    /// Mutable packed storage (used by the engine's parallel fill and by
    /// callers transforming values in place, e.g. Fisher-z or thresholding).
    pub fn packed_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates `(i, j, value)` over the upper triangle with `i ≤ j`.
    pub fn iter_upper(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n)
            .flat_map(move |i| (i..self.n).map(move |j| (i, j, self.values[self.index(i, j)])))
    }

    /// Iterates strictly-off-diagonal pairs `(i, j, value)`, `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.iter_upper().filter(|&(i, j, _)| i != j)
    }

    /// Pairs whose value meets `threshold` (NaNs never match) — the core of
    /// LD pruning and association screens.
    pub fn pairs_at_least(&self, threshold: f64) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.iter_pairs().filter(move |&(_, _, v)| v >= threshold)
    }

    /// Mean of the defined (non-NaN) off-diagonal values.
    pub fn mean_offdiagonal(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (_, _, v) in self.iter_pairs() {
            if !v.is_nan() {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            f64::NAN
        } else {
            sum / count as f64
        }
    }

    /// Expands to a dense row-major `n × n` matrix (tests, export).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                out[i * self.n + j] = self.get(i, j);
            }
        }
        out
    }
}

impl fmt::Debug for LdMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LdMatrix")
            .field("n_snps", &self.n)
            .field("n_values", &self.values.len())
            .finish()
    }
}

/// A rectangular `m × n` LD matrix between two SNP sets (Fig. 4:
/// long-range LD, distant genes, two cohorts).
#[derive(Clone, PartialEq)]
pub struct CrossLdMatrix {
    m: usize,
    n: usize,
    values: Vec<f64>,
}

impl CrossLdMatrix {
    /// Builds from a row-major buffer of length `m·n`.
    pub fn from_dense(m: usize, n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), m * n, "dense length mismatch");
        Self { m, n, values }
    }

    /// Rows (SNPs of the first set).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.m
    }

    /// Columns (SNPs of the second set).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n
    }

    /// Value for `(row SNP i, column SNP j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.m && j < self.n);
        self.values[i * self.n + j]
    }

    /// Row-major raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(i, j, value)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.m).flat_map(move |i| (0..self.n).map(move |j| (i, j, self.values[i * self.n + j])))
    }
}

impl fmt::Debug for CrossLdMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrossLdMatrix")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_index_is_bijective() {
        let n = 7;
        let m = LdMatrix::zeros(n);
        let mut seen = vec![false; n * (n + 1) / 2];
        for i in 0..n {
            for j in i..n {
                let idx = m.index(i, j);
                assert!(!seen[idx], "duplicate index for ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn symmetric_set_get() {
        let mut m = LdMatrix::zeros(5);
        m.set(1, 3, 0.5);
        assert_eq!(m.get(1, 3), 0.5);
        assert_eq!(m.get(3, 1), 0.5);
        m.set(4, 2, 0.25);
        assert_eq!(m.get(2, 4), 0.25);
        assert_eq!(m.n_snps(), 5);
        assert_eq!(m.n_values(), 15);
    }

    #[test]
    fn iteration_counts() {
        let n = 6;
        let m = LdMatrix::zeros(n);
        assert_eq!(m.iter_upper().count(), n * (n + 1) / 2);
        assert_eq!(m.iter_pairs().count(), n * (n - 1) / 2);
    }

    #[test]
    fn threshold_filter_skips_nan() {
        let mut m = LdMatrix::zeros(3);
        m.set(0, 1, 0.9);
        m.set(0, 2, f64::NAN);
        m.set(1, 2, 0.3);
        let hits: Vec<_> = m.pairs_at_least(0.5).collect();
        assert_eq!(hits, vec![(0, 1, 0.9)]);
    }

    #[test]
    fn mean_ignores_nan() {
        let mut m = LdMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, f64::NAN);
        m.set(1, 2, 0.0);
        assert!((m.mean_offdiagonal() - 0.5).abs() < 1e-12);
        assert!(LdMatrix::zeros(1).mean_offdiagonal().is_nan());
    }

    #[test]
    fn dense_round_trip() {
        let mut m = LdMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(0, 1, 0.5);
        m.set(1, 2, 0.25);
        let d = m.to_dense();
        assert_eq!(d[1], 0.5); // (0, 1)
        assert_eq!(d[3], 0.5); // (1, 0), mirrored
        assert_eq!(d[2 * 3 + 1], 0.25); // (2, 1), mirrored
    }

    #[test]
    #[should_panic(expected = "packed length mismatch")]
    fn bad_packed_length_panics() {
        LdMatrix::from_packed(3, vec![0.0; 5]);
    }

    #[test]
    fn cross_matrix_access() {
        let c = CrossLdMatrix::from_dense(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(c.get(0, 2), 3.0);
        assert_eq!(c.get(1, 0), 4.0);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_cols(), 3);
        assert_eq!(c.iter().count(), 6);
    }
}
