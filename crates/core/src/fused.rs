//! The fused, tiled counts→statistic pipeline.
//!
//! The classical two-pass driver materializes the full `n × n` u32 counts
//! matrix (`SYRK` + mirror), then transforms it into the packed statistic
//! triangle — `4n²` bytes of transient memory and a full second sweep over
//! cold data. This module fuses the two:
//!
//! 1. a cheap standalone per-SNP popcount pass yields the diagonal (allele
//!    counts), from which the rank-1 correction tables `p` and
//!    `1/(p(1−p))` are built once;
//! 2. workers walk the upper triangle in bounded **row slabs**, dynamically
//!    grabbed off an atomic counter ([`ld_parallel::parallel_for_dynamic_init`]);
//! 3. each worker computes its slab's counts into per-thread scratch of at
//!    most `slab × n` u32 ([`ld_kernels::syrk_slab_counts`] — no global
//!    buffer, no mirror pass), then immediately applies the batched
//!    `D = H − p pᵀ` / `r²` transform from hot L2-resident scratch straight
//!    into the triangle-packed output.
//!
//! Peak transient memory is `O(threads × slab × n)` u32 instead of
//! `O(n²)`, and every count is consumed while still cache-hot.
//!
//! The same machinery powers the streaming visitors
//! ([`crate::LdEngine::stat_rows`], [`crate::LdEngine::for_each_tile`])
//! for chromosome-scale inputs where even the packed triangle is too big.

use crate::checkpoint::{matrix_fingerprint, CheckpointState, SlabRecord};
use crate::control::RunControl;
use crate::error::{fault, try_zeroed_vec, LdError};
use crate::stats::{stat_from_counts, LdStats, NanPolicy};
use ld_bitmat::BitMatrixView;
use ld_kernels::micro::Kernel;
use ld_kernels::{syrk_slab_counts, BlockSizes, KernelKind};
use ld_parallel::{scheduler_grain, try_parallel_for_dynamic_init_ctl, CancelToken, Deadline};
use ld_trace::recorder::{Span, SpanKind};
use ld_trace::{Counter, Stopwatch};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Poisoned-lock-tolerant lock (the panic trap already drains the region;
/// lock state after a contained panic is still consistent for our uses).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The concrete micro-kernel name the dispatcher would run — recorded in
/// checkpoint headers so a resume on a different kernel is rejected
/// explicitly instead of silently assumed equivalent.
pub(crate) fn resolved_kernel_name(kind: KernelKind) -> Result<&'static str, LdError> {
    Kernel::resolve(kind)
        .map(|k| k.kind().name())
        .map_err(|e| LdError::Checkpoint {
            message: format!("cannot resolve the micro-kernel for the checkpoint header: {e}"),
        })
}

/// Engine parameters threaded through the fused drivers.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FusedConfig {
    pub kind: KernelKind,
    pub blocks: BlockSizes,
    pub threads: usize,
    pub policy: NanPolicy,
    /// Row-slab height: bounds each worker's scratch to `slab × n` u32.
    pub slab: usize,
    /// Scheduler chunk size in *slabs*: each dynamic grab hands a worker
    /// `chunk` consecutive slabs, amortizing the atomic fetch without
    /// growing scratch (the worker still processes one slab at a time).
    /// `1` reproduces the historic slab-per-grab schedule exactly.
    pub chunk: usize,
}

/// Row offset of row `i` in the packed upper triangle of an `n × n`
/// symmetric matrix: `Σ_{t<i}(n−t) = i·n − i(i−1)/2` (underflow-free form).
#[inline]
pub(crate) fn packed_row_offset(n: usize, i: usize) -> usize {
    i * n - (i * i - i) / 2
}

/// Per-SNP transform tables, precomputed once from the standalone popcount
/// pass — the batched §II-B rank-1 correction.
pub(crate) struct Transform {
    stat: LdStats,
    policy: NanPolicy,
    inv_n: f64,
    /// Allele counts `|s_j|` (the SYRK diagonal, obtained without SYRK).
    diag: Vec<u32>,
    /// `p_j = |s_j|/N` (RSquared only).
    p: Vec<f64>,
    /// `1/(p_j(1−p_j))`, or NaN/0 per policy when monomorphic (RSquared only).
    inv_var: Vec<f64>,
}

impl Transform {
    /// Builds the tables for `stat` over the SNPs of `v`.
    ///
    /// # Panics
    /// If `v` has zero samples, or a per-SNP allele count exceeds
    /// `u32::MAX` (see [`Transform::try_new`]).
    pub fn new(v: &BitMatrixView<'_>, stat: LdStats, policy: NanPolicy) -> Self {
        match Self::try_new(v, stat, policy) {
            Ok(tr) => tr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Transform::new`]: zero samples is [`LdError::EmptyInput`];
    /// a per-SNP allele count above `u32::MAX` (a haplotype set too large
    /// for the u32 counts pipeline) is [`LdError::SizeOverflow`] instead of
    /// a silent `as u32` truncation; table allocation goes through
    /// `try_reserve`.
    pub fn try_new(
        v: &BitMatrixView<'_>,
        stat: LdStats,
        policy: NanPolicy,
    ) -> Result<Self, LdError> {
        let n_samples = v.n_samples();
        if n_samples == 0 {
            return Err(LdError::EmptyInput);
        }
        let n = v.n_snps();
        let mut diag: Vec<u32> = try_zeroed_vec(n, "per-SNP allele-count table")?;
        for (j, d) in diag.iter_mut().enumerate() {
            *d = u32::try_from(v.ones_in_snp(j)).map_err(|_| LdError::SizeOverflow {
                what: "per-SNP allele count (> u32::MAX haplotypes)",
            })?;
        }
        Self::try_from_diag(n_samples, diag, stat, policy)
    }

    /// Builds the tables from an already-collected per-SNP allele-count
    /// vector — the out-of-core driver gathers `diag` with one streaming
    /// pass over the tile store (it never holds the whole matrix) and
    /// lands on bit-identical tables, because the counts are exact `u32`s
    /// either way and every derived quantity is computed by this one body.
    pub fn try_from_diag(
        n_samples: usize,
        diag: Vec<u32>,
        stat: LdStats,
        policy: NanPolicy,
    ) -> Result<Self, LdError> {
        let mut tr = Self::empty(diag.len(), n_samples, stat, policy)?;
        tr.fill_span(0, &diag);
        Ok(tr)
    }

    /// All-zero tables for `n` SNPs, to be populated span-by-span with
    /// [`fill_span`] as allele counts become known. The out-of-core
    /// driver fills each store chunk's span when the chunk first streams
    /// past; [`try_from_diag`] (and through it [`try_new`]) is the
    /// everything-at-once case, so every construction path runs the same
    /// per-element arithmetic — the bit-identity argument needs exactly
    /// one body computing `p` and `1/(p(1−p))`.
    ///
    /// [`fill_span`]: Transform::fill_span
    /// [`try_from_diag`]: Transform::try_from_diag
    /// [`try_new`]: Transform::try_new
    pub fn empty(
        n: usize,
        n_samples: usize,
        stat: LdStats,
        policy: NanPolicy,
    ) -> Result<Self, LdError> {
        if n_samples == 0 {
            return Err(LdError::EmptyInput);
        }
        let inv_n = 1.0 / n_samples as f64;
        let diag: Vec<u32> = try_zeroed_vec(n, "per-SNP allele-count table")?;
        let (p, inv_var) = if stat == LdStats::RSquared {
            (
                try_zeroed_vec::<f64>(n, "allele-frequency table")?,
                try_zeroed_vec::<f64>(n, "reciprocal-variance table")?,
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(Self {
            stat,
            policy,
            inv_n,
            diag,
            p,
            inv_var,
        })
    }

    /// Populates columns `j0 .. j0 + diag_span.len()` of the tables from
    /// their allele counts. Idempotent (the values are pure functions of
    /// the counts), so re-filling a span a later slab streams past again
    /// is harmless.
    pub fn fill_span(&mut self, j0: usize, diag_span: &[u32]) {
        self.diag[j0..j0 + diag_span.len()].copy_from_slice(diag_span);
        if self.stat == LdStats::RSquared {
            let undef = match self.policy {
                NanPolicy::Propagate => f64::NAN,
                NanPolicy::Zero => 0.0,
            };
            for (t, &c) in diag_span.iter().enumerate() {
                let pj = c as f64 * self.inv_n;
                self.p[j0 + t] = pj;
                let var = pj * (1.0 - pj);
                self.inv_var[j0 + t] = if var > 0.0 {
                    1.0 / var
                } else {
                    undef // NaN/0 propagates through the products
                };
            }
        }
    }

    /// Number of SNPs covered by the tables.
    pub fn n_snps(&self) -> usize {
        self.diag.len()
    }

    /// Transforms one row of counts: `counts[t] = s_iᵀ s_{i+t}` for
    /// `t ∈ 0..len`, writing the statistic into `dst[t]`.
    ///
    /// The `r²` branch is the batched form — two multiplies and a subtract
    /// per pair, no divide, no branch — and is bit-identical to the
    /// two-pass driver's transform.
    #[inline]
    pub fn apply_row(&self, i: usize, counts: &[u32], dst: &mut [f64]) {
        self.apply_span(i, i, counts, dst);
    }

    /// Transforms a span of row `i`: `counts[t] = s_iᵀ s_{j0+t}` for
    /// `t ∈ 0..len`, writing the statistic into `dst[t]`. [`apply_row`]
    /// is the `j0 = i` case; the out-of-core driver uses arbitrary `j0`
    /// because a row's columns arrive one store chunk at a time. The
    /// expression order is identical, so chunked spans concatenate to a
    /// bit-identical row.
    ///
    /// [`apply_row`]: Transform::apply_row
    #[inline]
    pub fn apply_span(&self, i: usize, j0: usize, counts: &[u32], dst: &mut [f64]) {
        debug_assert_eq!(counts.len(), dst.len());
        match self.stat {
            LdStats::RSquared => {
                let (p_i, iv_i) = (self.p[i], self.inv_var[i]);
                for (t, (&c, d)) in counts.iter().zip(dst.iter_mut()).enumerate() {
                    let j = j0 + t;
                    let dev = c as f64 * self.inv_n - p_i * self.p[j];
                    *d = (dev * dev) * iv_i * self.inv_var[j];
                }
            }
            _ => {
                let c_ii = self.diag[i];
                for (t, (&c, d)) in counts.iter().zip(dst.iter_mut()).enumerate() {
                    *d = stat_from_counts(
                        self.stat,
                        c_ii,
                        self.diag[j0 + t],
                        c,
                        self.inv_n,
                        self.policy,
                    );
                }
            }
        }
    }

    /// Transforms a single pair `(i, j)` given its co-occurrence count —
    /// used by the banded driver, which picks pairs out of rectangular
    /// count blocks.
    #[inline]
    pub fn apply_pair(&self, i: usize, j: usize, c_ij: u32) -> f64 {
        match self.stat {
            LdStats::RSquared => {
                let dev = c_ij as f64 * self.inv_n - self.p[i] * self.p[j];
                (dev * dev) * self.inv_var[i] * self.inv_var[j]
            }
            _ => stat_from_counts(
                self.stat,
                self.diag[i],
                self.diag[j],
                c_ij,
                self.inv_n,
                self.policy,
            ),
        }
    }
}

/// A Send+Sync raw-pointer wrapper for handing disjoint subslices to a
/// worker team. Soundness argument: every use partitions the buffer by row
/// slab, and each slab index is grabbed by exactly one worker (the atomic
/// counter in `parallel_for_dynamic_init` hands out disjoint ranges).
///
/// Public so the baseline kernels in `ld-baselines`, which partition their
/// packed outputs the same way, can share one audited implementation.
pub struct SyncSlice(*mut f64, usize);
unsafe impl Send for SyncSlice {}
unsafe impl Sync for SyncSlice {}

impl SyncSlice {
    /// Captures `buf`'s pointer and length; the borrow ends here, so all
    /// aliasing discipline shifts to [`SyncSlice::slice`]'s contract.
    pub fn new(buf: &mut [f64]) -> Self {
        Self(buf.as_mut_ptr(), buf.len())
    }

    /// Reborrows the disjoint subrange `[off, off + len)`.
    ///
    /// # Safety
    /// Callers must guarantee no two live slices returned from this method
    /// overlap (the engine's slab partitioning does).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, off: usize, len: usize) -> &mut [f64] {
        debug_assert!(off + len <= self.1);
        std::slice::from_raw_parts_mut(self.0.add(off), len)
    }

    /// Read-only reborrow of `[off, off + len)` — used by the checkpoint
    /// writer to snapshot *completed* slab ranges while other workers are
    /// still writing *their own* (disjoint) ranges.
    ///
    /// # Safety
    /// The range must not overlap any live `&mut` from
    /// [`SyncSlice::slice`]; completed-slab ranges satisfy this because a
    /// slab's mutable slice is dropped before its done flag is released,
    /// and readers acquire that flag first.
    pub unsafe fn slice_ref(&self, off: usize, len: usize) -> &[f64] {
        debug_assert!(off + len <= self.1);
        std::slice::from_raw_parts(self.0.add(off), len)
    }
}

/// The fused all-pairs driver: fills the packed upper triangle of the
/// statistic matrix without ever materializing `n × n` counts.
///
/// Row slabs are contiguous in packed storage (`packed_row_offset(r0)` to
/// `packed_row_offset(r1)`), so each worker writes a disjoint range and the
/// transform streams from its hot scratch directly into the output.
#[cfg(test)]
pub(crate) fn stat_packed_fused(
    v: &BitMatrixView<'_>,
    stat: LdStats,
    cfg: &FusedConfig,
    packed: &mut [f64],
) {
    if let Err(e) = try_stat_packed_fused(v, stat, cfg, packed, &RunControl::new()) {
        panic!("{e}");
    }
}

/// Shared interruption state of one fused run: which slabs are done (for
/// checkpoint snapshots and resume skips) and how many this run computed.
struct SlabProgress {
    /// Per-slab completion flags. A worker stores `true` with `Release`
    /// *after* its packed writes; any reader `Acquire`-loads before
    /// touching the slab's bytes, establishing the happens-before that
    /// makes checkpoint snapshots of concurrent runs sound.
    done: Vec<AtomicBool>,
    /// Slabs computed by *this* run (excludes resumed slabs).
    computed: AtomicUsize,
}

impl SlabProgress {
    fn new(n_slabs: usize) -> Self {
        Self {
            done: (0..n_slabs).map(|_| AtomicBool::new(false)).collect(),
            computed: AtomicUsize::new(0),
        }
    }

    /// Completed slabs within `[lo, hi)` — the run's own shard window
    /// (the whole grid for an unsharded run).
    fn done_count(&self, lo: usize, hi: usize) -> usize {
        self.done[lo..hi]
            .iter()
            .filter(|d| d.load(Ordering::Acquire))
            .count()
    }

    /// True when every slab in `[lo, hi)` is done.
    fn all_done(&self, lo: usize, hi: usize) -> bool {
        self.done[lo..hi].iter().all(|d| d.load(Ordering::Acquire))
    }
}

/// Mutable checkpoint bookkeeping, serialized under one mutex (the write
/// itself is cold: at most once per `every_slabs` slabs or `every_secs`
/// seconds).
struct CkptCursor {
    /// Slabs completed since the last successful write.
    since_last: usize,
    last_write: Instant,
    /// First sink failure (sticky; also trips the run token).
    failed: Option<String>,
}

/// Immutable descriptor of the checkpoint target for one packed run.
struct CkptWriter<'a> {
    sink: &'a dyn crate::checkpoint::CheckpointSink,
    every_slabs: usize,
    every_secs: Option<f64>,
    header: CheckpointState,
}

impl CkptWriter<'_> {
    /// Snapshots every done slab into a checkpoint image and hands it to
    /// the sink. Called under the cursor mutex.
    ///
    /// # Safety-relevant invariant
    /// Reads only packed ranges whose done flag was `Acquire`-observed,
    /// which happens-after the owning worker's writes (see
    /// [`SlabProgress::done`]); those ranges have no live `&mut`.
    fn write_snapshot(
        &self,
        progress: &SlabProgress,
        out: &SyncSlice,
        n: usize,
        slab: usize,
        slab_window: (usize, usize),
    ) -> Result<(), String> {
        let mut state = self.header.clone();
        state.records.clear();
        let (lo, hi) = slab_window;
        for (off_k, flag) in progress.done[lo..hi].iter().enumerate() {
            let k = lo + off_k;
            if !flag.load(Ordering::Acquire) {
                continue;
            }
            let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
            let off = packed_row_offset(n, r0);
            let len = packed_row_offset(n, r1) - off;
            // SAFETY: done slab ⇒ writes finished (Release/Acquire pair)
            // and no live &mut covers this range.
            let values = unsafe { out.slice_ref(off, len) }.to_vec();
            state.records.push(SlabRecord {
                index: k as u64,
                start_row: r0 as u64,
                end_row: r1 as u64,
                values,
            });
        }
        let span = Span::begin(SpanKind::CheckpointFlush);
        let n_records = state.records.len() as u64;
        let r = self.sink.write_checkpoint(&state.to_bytes());
        span.end(n_records);
        r?;
        ld_trace::add(Counter::CheckpointsWritten, 1);
        Ok(())
    }
}

/// Converts a cancelled loop into the typed partial-progress error.
pub(crate) fn cancelled_error(token: Option<&CancelToken>, completed_slabs: usize) -> LdError {
    LdError::Cancelled {
        reason: token
            .and_then(CancelToken::reason)
            .unwrap_or_else(|| "cancelled".to_owned()),
        completed_slabs,
    }
}

/// Trips `token` when `deadline` has passed — the slab-granularity
/// deadline poll (one `Instant::now()` per slab, nothing per tile).
#[inline]
pub(crate) fn poll_deadline(deadline: Option<Deadline>, token: Option<&CancelToken>) {
    if let (Some(d), Some(t)) = (deadline, token) {
        if d.expired() && !t.is_cancelled() {
            t.cancel_with_reason("deadline exceeded");
        }
    }
}

/// Fallible [`stat_packed_fused`]: scratch buffers are preallocated on the
/// calling thread through `try_reserve` (one per worker, handed out via a
/// pool), and a panicking worker surfaces as [`LdError::Worker`] after the
/// team drains — no unwinding past this boundary, no hung join.
///
/// Interruption contract (`ctl`): the run token is polled once per slab
/// (plus by the scheduler before every chunk grab — zero cost inside the
/// micro-kernel loops); a trip drains the team at the next slab boundary
/// and returns [`LdError::Cancelled`] with the completed-slab count, after
/// flushing a final checkpoint when a sink is configured. A resume state
/// is validated field-by-field, its slabs are replayed into `packed`, and
/// only the incomplete slabs are recomputed — bit-identical to an
/// uninterrupted run because slab height never affects values.
pub(crate) fn try_stat_packed_fused(
    v: &BitMatrixView<'_>,
    stat: LdStats,
    cfg: &FusedConfig,
    packed: &mut [f64],
    ctl: &RunControl<'_>,
) -> Result<(), LdError> {
    let n = v.n_snps();
    debug_assert_eq!(packed.len(), n * (n + 1) / 2);
    if n == 0 {
        return Ok(());
    }
    let slab = cfg.slab.max(1).min(n);
    let n_slabs = n.div_ceil(slab);
    // Shard restriction: only the slabs in `[lo_slab, hi_slab)` are
    // computed — the row window starts on a slab boundary, so slab
    // indices (and checkpoint record geometry) stay on the global grid.
    let (lo_slab, hi_slab) = match ctl.shard {
        Some(r) => {
            if r.is_empty() || r.end > n_slabs {
                return Err(LdError::InvalidConfig {
                    message: "shard slab range does not fit the run's slab grid",
                });
            }
            (r.start, r.end)
        }
        None => (0, n_slabs),
    };
    let (row_lo, row_hi) = (lo_slab * slab, (hi_slab * slab).min(n));
    let run_token = ctl.run_token();
    let deadline = ctl.deadline;
    // An already-expired deadline stops the run before any chunk is
    // handed out (workers still honor claimed chunks, so without this
    // pre-trip up to `threads` slabs could run post-deadline).
    poll_deadline(deadline, run_token.as_ref());
    let progress = SlabProgress::new(n_slabs);
    // Resume: validate, replay completed slabs, mark them done.
    let mut resumed = 0usize;
    let ckpt = match &ctl.checkpoint {
        Some(plan) => {
            let kernel = resolved_kernel_name(cfg.kind)?;
            if let Some(state) = &plan.resume {
                state.validate_against(v, stat, cfg.policy, slab, kernel)?;
                for rec in &state.records {
                    let (r0, r1) = (rec.start_row as usize, rec.end_row as usize);
                    let k = rec.index as usize;
                    if k < lo_slab || k >= hi_slab {
                        return Err(LdError::Checkpoint {
                            message: format!(
                                "resume rejected: checkpoint slab {k} (rows {r0}..{r1}) \
                                 lies outside this shard's slab range {lo_slab}..{hi_slab}"
                            ),
                        });
                    }
                    let off = packed_row_offset(n, r0);
                    let len = packed_row_offset(n, r1) - off;
                    packed[off..off + len].copy_from_slice(&rec.values);
                    progress.done[rec.index as usize].store(true, Ordering::Release);
                    resumed += 1;
                }
                ld_trace::add(Counter::ResumeSlabsSkipped, resumed as u64);
            }
            Some(CkptWriter {
                sink: plan.sink,
                every_slabs: plan.every_slabs,
                every_secs: plan.every_secs,
                header: CheckpointState {
                    stat,
                    policy: cfg.policy,
                    n_snps: n as u64,
                    n_samples: v.n_samples() as u64,
                    matrix_hash: matrix_fingerprint(v),
                    slab: slab as u64,
                    n_slabs: n_slabs as u64,
                    kernel: kernel.to_owned(),
                    records: Vec::new(),
                },
            })
        }
        None => None,
    };
    let cursor = Mutex::new(CkptCursor {
        since_last: 0,
        last_write: Instant::now(),
        failed: None,
    });
    // Table construction (per-SNP allele counts via one popcount sweep)
    // is part of producing the statistic layer: charge it to
    // `transform_ns` so the profile's layer sum covers the setup cost.
    let span = Span::begin(SpanKind::Transform);
    let sw = Stopwatch::start();
    let tr = Transform::try_new(v, stat, cfg.policy)?;
    ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
    span.end(n as u64);
    // Bounded per-worker scratch: the widest slab (the first) spans all
    // n columns, so `slab × n` covers every slab a worker can grab. The
    // buffers are allocated fallibly *here*, on the calling thread, so an
    // allocation failure is a clean Err before any thread is spawned.
    // Zeroing the counts scratch belongs to the counts (kernel) layer.
    let span = Span::begin(SpanKind::Alloc);
    let sw = Stopwatch::start();
    let scratch_pool = ScratchPool::new(cfg.threads, || {
        try_zeroed_vec::<u32>(slab * n, "slab counts scratch")
    })?;
    ld_trace::add(Counter::KernelNs, sw.elapsed_ns());
    span.end((cfg.threads.max(1) * slab * n * 4) as u64);
    // Modeled transient footprint of this run: per-worker u32 scratch plus
    // the packed output and the transform tables (≤ 20 bytes/SNP). Recorded
    // as a high-water gauge so profiles can confirm the O(threads·slab·n)
    // memory claim without a global allocator hook.
    ld_trace::record_peak(
        Counter::AllocPeakBytes,
        (cfg.threads.max(1) * slab * n * 4 + packed.len() * 8 + 20 * n) as u64,
    );
    let out = SyncSlice::new(packed);
    let progress_ref = &progress;
    let token_ref = run_token.as_ref();
    let ckpt_ref = ckpt.as_ref();
    let cursor_ref = &cursor;
    try_parallel_for_dynamic_init_ctl(
        cfg.threads,
        // The scheduler iterates the shard's row window; `row_lo` is a
        // slab multiple, so offsetting keeps chunks slab-aligned.
        row_hi - row_lo,
        // Chunks start at multiples of the grain, and the grain is a
        // multiple of `slab`, so every slab inside a claimed chunk starts
        // at a multiple of `slab` — slab geometry (and thus checkpoint
        // record boundaries) is independent of the chunk size.
        scheduler_grain(slab, cfg.chunk),
        token_ref,
        |_tid| scratch_pool.take(),
        |scratch, rows| {
            // Walk the claimed chunk one slab at a time: scratch stays
            // `slab × n`, and every interruption/checkpoint decision keeps
            // its per-slab granularity.
            let mut s0 = row_lo + rows.start;
            let chunk_end = row_lo + rows.end;
            while s0 < chunk_end {
                let s1 = (s0 + slab).min(chunk_end);
                let slab_idx = s0 / slab;
                if progress_ref.done[slab_idx].load(Ordering::Acquire) {
                    // replayed from the checkpoint — skip without polling
                    s0 = s1;
                    continue;
                }
                // Slab-granular interruption points: the deadline→token
                // conversion and the poll accounting. The scheduler already
                // refused to hand out this chunk if the token was tripped;
                // nothing below ever checks mid-kernel. A token tripped
                // mid-chunk stops the *next* chunk grab, not this one —
                // claimed slabs always complete.
                poll_deadline(deadline, token_ref);
                ld_trace::add(Counter::CancelPolls, 1);
                fault::check_kernel_panic();
                let (r0, r1) = (s0, s1);
                let width = n - r0;
                let h = r1 - r0;
                syrk_slab_counts(
                    v,
                    r0..r1,
                    &mut scratch[..h * width],
                    width,
                    cfg.kind,
                    cfg.blocks,
                );
                let span = Span::begin(SpanKind::Transform);
                let sw = Stopwatch::start();
                for i in r0..r1 {
                    let local = (i - r0) * width + (i - r0);
                    let len = n - i;
                    // SAFETY: slabs own disjoint packed ranges (see SyncSlice).
                    let dst = unsafe { out.slice(packed_row_offset(n, i), len) };
                    tr.apply_row(i, &scratch[local..local + len], dst);
                }
                ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
                span.end(slab_idx as u64);
                ld_trace::add(Counter::SlabsEmitted, 1);
                ld_trace::recorder::instant(SpanKind::SlabEmit, slab_idx as u64);
                // Release *after* the packed writes above: the flag is the
                // publication point for checkpoint readers.
                progress_ref.done[slab_idx].store(true, Ordering::Release);
                progress_ref.computed.fetch_add(1, Ordering::Relaxed);
                if let Some(w) = ckpt_ref {
                    let mut cur = lock_ignore_poison(cursor_ref);
                    cur.since_last += 1;
                    let due = cur.since_last >= w.every_slabs
                        || w.every_secs
                            .is_some_and(|s| cur.last_write.elapsed().as_secs_f64() >= s);
                    if due && cur.failed.is_none() {
                        match w.write_snapshot(progress_ref, &out, n, slab, (lo_slab, hi_slab)) {
                            Ok(()) => {
                                cur.since_last = 0;
                                cur.last_write = Instant::now();
                            }
                            Err(msg) => {
                                // sticky failure: stop the run (no point
                                // computing unpersistable work) and surface
                                // the sink error after the drain
                                cur.failed = Some(msg);
                                if let Some(t) = token_ref {
                                    t.cancel_with_reason("checkpoint write failed");
                                }
                            }
                        }
                    }
                }
                s0 = s1;
            }
        },
    )?;
    // Post-join: judge by completeness, not token state — a token that
    // trips after the last slab finished changes nothing.
    if let Some(msg) = lock_ignore_poison(&cursor).failed.take() {
        return Err(LdError::Checkpoint {
            message: format!("checkpoint write failed mid-run: {msg}"),
        });
    }
    if progress.all_done(lo_slab, hi_slab) {
        return Ok(());
    }
    let completed = progress.done_count(lo_slab, hi_slab);
    // Final flush: make the partial run resumable before reporting it.
    if let Some(w) = &ckpt {
        if let Err(msg) = w.write_snapshot(&progress, &out, n, slab, (lo_slab, hi_slab)) {
            return Err(LdError::Checkpoint {
                message: format!("final checkpoint flush failed: {msg}"),
            });
        }
    }
    Err(cancelled_error(token_ref, completed))
}

/// A pool of per-worker scratch buffers, preallocated fallibly on the
/// calling thread and popped by workers in their init closure.
///
/// `parallel_for_dynamic_init` runs each worker's init exactly once and
/// spawns at most `threads` workers, so [`ScratchPool::take`] can never
/// run dry; the `unwrap_or_default` fallback exists only to keep the pop
/// panic-free by construction.
struct ScratchPool<S>(Mutex<Vec<S>>);

impl<S: Default> ScratchPool<S> {
    fn new(threads: usize, mut make: impl FnMut() -> Result<S, LdError>) -> Result<Self, LdError> {
        let workers = threads.max(1);
        let mut pool = Vec::new();
        // the pool spine itself is tiny (`workers` pointers) but stays on
        // the fallible path for uniformity
        pool.try_reserve_exact(workers)
            .map_err(|_| LdError::AllocationFailed {
                what: "scratch pool spine",
                bytes: workers * std::mem::size_of::<S>(),
            })?;
        for _ in 0..workers {
            pool.push(make()?);
        }
        Ok(Self(Mutex::new(pool)))
    }

    fn take(&self) -> S {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }
}

/// One row slab of a streamed LD computation (see
/// [`crate::LdEngine::stat_rows`]).
///
/// The slab covers rows `row_start..row_start + n_rows` of the upper
/// triangle; row `r` holds the statistics for SNP `row_start + r` against
/// every SNP `j ≥ row_start + r`.
#[derive(Debug)]
pub struct RowSlabVisit<'a> {
    pub(crate) row_start: usize,
    pub(crate) n_rows: usize,
    pub(crate) n_snps: usize,
    /// Stride between consecutive slab rows in `values`.
    pub(crate) ldv: usize,
    /// Slab-local values: row `r`, column `j` at
    /// `values[r · ldv + (j − row_start)]` for `j ≥ row_start + r`.
    pub(crate) values: &'a [f64],
}

impl RowSlabVisit<'_> {
    /// Global index of the first row SNP in this slab.
    pub fn row_start(&self) -> usize {
        self.row_start
    }

    /// Number of rows in this slab.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Total SNP count of the underlying matrix.
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// The statistic for slab row `r` (global SNP `row_start + r`) against
    /// global SNP `j`; requires `j ≥ row_start + r` (the slab stores only
    /// the upper triangle).
    pub fn value(&self, r: usize, j: usize) -> f64 {
        let i = self.row_start + r;
        assert!(r < self.n_rows, "slab row {r} out of range");
        assert!(
            i <= j && j < self.n_snps,
            "column {j} outside row {i}'s upper triangle"
        );
        self.values[r * self.ldv + (j - self.row_start)]
    }

    /// The statistics of slab row `r` (global SNP `row_start + r`) against
    /// SNPs `row_start + r ..= n_snps − 1`, in order; `row(r)[0]` is the
    /// diagonal entry.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.n_rows, "slab row {r} out of range");
        let start = r * self.ldv + r;
        &self.values[start..r * self.ldv + (self.n_snps - self.row_start)]
    }

    /// Iterates `(global_row, stats)` pairs over the slab's rows.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &[f64])> + '_ {
        (0..self.n_rows).map(move |r| (self.row_start + r, self.row(r)))
    }
}

/// The streaming row-slab driver: like [`stat_packed_fused`] but instead of
/// writing a packed matrix, each finished slab is handed to `visit`
/// (serialized under a mutex; slab order is unspecified under threading).
#[cfg(test)]
pub(crate) fn stat_rows_fused<F>(v: &BitMatrixView<'_>, stat: LdStats, cfg: &FusedConfig, visit: F)
where
    F: FnMut(&RowSlabVisit<'_>) + Send,
{
    if let Err(e) = try_stat_rows_fused(v, stat, cfg, visit, &RunControl::new()) {
        panic!("{e}");
    }
}

/// Fallible [`stat_rows_fused`] (see [`try_stat_packed_fused`] for the
/// allocation and panic-containment discipline).
///
/// Interruption contract: token and deadline are honored exactly as in
/// [`try_stat_packed_fused`] — polled once per slab, drained at slab
/// boundaries, surfaced as [`LdError::Cancelled`] with the count of slabs
/// already handed to `visit`. Checkpoint plans are **rejected**
/// ([`LdError::InvalidConfig`]): the streaming driver gives each slab to
/// the caller and keeps nothing, so there is no engine-owned state to
/// persist — callers streaming to durable storage already have their own
/// resume point.
pub(crate) fn try_stat_rows_fused<F>(
    v: &BitMatrixView<'_>,
    stat: LdStats,
    cfg: &FusedConfig,
    visit: F,
    ctl: &RunControl<'_>,
) -> Result<(), LdError>
where
    F: FnMut(&RowSlabVisit<'_>) + Send,
{
    if ctl.checkpoint.is_some() {
        return Err(LdError::InvalidConfig {
            message:
                "checkpointing requires the packed-matrix driver (streaming slabs are not retained)",
        });
    }
    let n = v.n_snps();
    if n == 0 {
        return Ok(());
    }
    let run_token = ctl.run_token();
    let deadline = ctl.deadline;
    poll_deadline(deadline, run_token.as_ref());
    let span = Span::begin(SpanKind::Transform);
    let sw = Stopwatch::start();
    let tr = Transform::try_new(v, stat, cfg.policy)?;
    ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
    span.end(n as u64);
    let slab = cfg.slab.max(1).min(n);
    let n_slabs = n.div_ceil(slab);
    // Shard restriction (see try_stat_packed_fused): only slabs in
    // `[lo_slab, hi_slab)` are computed and handed to `visit`.
    let (lo_slab, hi_slab) = match ctl.shard {
        Some(r) => {
            if r.is_empty() || r.end > n_slabs {
                return Err(LdError::InvalidConfig {
                    message: "shard slab range does not fit the run's slab grid",
                });
            }
            (r.start, r.end)
        }
        None => (0, n_slabs),
    };
    let (row_lo, row_hi) = (lo_slab * slab, (hi_slab * slab).min(n));
    let span = Span::begin(SpanKind::Alloc);
    let sw = Stopwatch::start();
    let scratch_pool = ScratchPool::new(cfg.threads, || {
        Ok((
            try_zeroed_vec::<u32>(slab * n, "slab counts scratch")?,
            try_zeroed_vec::<f64>(slab * n, "slab statistic scratch")?,
        ))
    })?;
    ld_trace::add(Counter::KernelNs, sw.elapsed_ns());
    span.end((cfg.threads.max(1) * slab * n * 12) as u64);
    // Modeled transient footprint: u32 counts + f64 values scratch per
    // worker, plus the transform tables (no packed output in the
    // streaming form).
    ld_trace::record_peak(
        Counter::AllocPeakBytes,
        (cfg.threads.max(1) * slab * n * 12 + 20 * n) as u64,
    );
    let visit = Mutex::new(visit);
    let completed = AtomicUsize::new(0);
    let token_ref = run_token.as_ref();
    let outcome = try_parallel_for_dynamic_init_ctl(
        cfg.threads,
        row_hi - row_lo,
        // Grain is a multiple of `slab` (see the packed driver): slab
        // boundaries — and therefore the slabs `visit` observes — do not
        // depend on the chunk size. `row_lo` is a slab multiple, so the
        // offset keeps chunks slab-aligned.
        scheduler_grain(slab, cfg.chunk),
        token_ref,
        |_tid| scratch_pool.take(),
        |(counts, values), rows| {
            let mut s0 = row_lo + rows.start;
            let chunk_end = row_lo + rows.end;
            while s0 < chunk_end {
                let s1 = (s0 + slab).min(chunk_end);
                poll_deadline(deadline, token_ref);
                ld_trace::add(Counter::CancelPolls, 1);
                fault::check_kernel_panic();
                let (r0, r1) = (s0, s1);
                let width = n - r0;
                let h = r1 - r0;
                syrk_slab_counts(
                    v,
                    r0..r1,
                    &mut counts[..h * width],
                    width,
                    cfg.kind,
                    cfg.blocks,
                );
                let span = Span::begin(SpanKind::Transform);
                let sw = Stopwatch::start();
                for i in r0..r1 {
                    let local = (i - r0) * width + (i - r0);
                    let len = n - i;
                    let (src, dst) = (&counts[local..local + len], &mut values[local..local + len]);
                    tr.apply_row(i, src, dst);
                }
                ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
                span.end((r0 / slab) as u64);
                ld_trace::add(Counter::SlabsEmitted, 1);
                ld_trace::recorder::instant(SpanKind::SlabEmit, (r0 / slab) as u64);
                let slab_visit = RowSlabVisit {
                    row_start: r0,
                    n_rows: h,
                    n_snps: n,
                    ldv: width,
                    values: &values[..h * width],
                };
                (visit
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner))(
                    &slab_visit
                );
                completed.fetch_add(1, Ordering::Relaxed);
                s0 = s1;
            }
        },
    )?;
    if outcome.is_complete() {
        Ok(())
    } else {
        Err(cancelled_error(
            token_ref,
            completed.load(Ordering::Relaxed),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::BitMatrix;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        let mut s = seed | 1;
        for j in 0..n_snps {
            for smp in 0..n_samples {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s.is_multiple_of(3) {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    fn cfg(threads: usize, slab: usize) -> FusedConfig {
        FusedConfig {
            kind: KernelKind::Auto,
            blocks: BlockSizes::default(),
            threads,
            policy: NanPolicy::Zero,
            slab,
            chunk: 1,
        }
    }

    #[test]
    fn packed_offsets_tile_the_triangle() {
        let n = 9;
        assert_eq!(packed_row_offset(n, 0), 0);
        assert_eq!(packed_row_offset(n, n), n * (n + 1) / 2);
        for i in 0..n {
            assert_eq!(
                packed_row_offset(n, i + 1) - packed_row_offset(n, i),
                n - i,
                "row {i}"
            );
        }
    }

    #[test]
    fn fused_matches_per_pair_reference() {
        let g = pseudo(90, 17, 3);
        let v = g.full_view();
        let n = 17usize;
        for stat in [LdStats::RSquared, LdStats::D, LdStats::DPrime] {
            for (threads, slab) in [(1usize, 4usize), (3, 5), (2, 17), (4, 1)] {
                let mut packed = vec![0.0f64; n * (n + 1) / 2];
                stat_packed_fused(&v, stat, &cfg(threads, slab), &mut packed);
                for i in 0..n {
                    for j in i..n {
                        let c_ij = ld_popcount::and_popcount(v.snp_words(i), v.snp_words(j));
                        let want = crate::stats::ld_pair_from_counts(
                            v.ones_in_snp(i),
                            v.ones_in_snp(j),
                            c_ij,
                            90,
                            NanPolicy::Zero,
                        );
                        let want = match stat {
                            LdStats::RSquared => want.r2,
                            LdStats::D => want.d,
                            LdStats::DPrime => want.d_prime,
                        };
                        let got = packed[packed_row_offset(n, i) + (j - i)];
                        assert!(
                            (got - want).abs() < 1e-10,
                            "{stat:?} t{threads} s{slab} ({i},{j}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_slab_visitor_covers_every_pair_once() {
        let g = pseudo(60, 13, 7);
        let v = g.full_view();
        let n = 13usize;
        for (threads, slab) in [(1usize, 3usize), (2, 4), (7, 1), (2, 100)] {
            let mut seen = vec![0u32; n * (n + 1) / 2];
            stat_rows_fused(&v, LdStats::RSquared, &cfg(threads, slab), |s| {
                for (i, row) in s.rows() {
                    assert_eq!(row.len(), n - i);
                    for t in 0..row.len() {
                        seen[packed_row_offset(n, i) + t] += 1;
                    }
                }
            });
            assert!(seen.iter().all(|&c| c == 1), "t{threads} s{slab}");
        }
    }

    #[test]
    fn transform_pair_matches_row() {
        let g = pseudo(50, 8, 11);
        let v = g.full_view();
        let tr = Transform::new(&v, LdStats::RSquared, NanPolicy::Propagate);
        assert_eq!(tr.n_snps(), 8);
        let c_03 = ld_popcount::and_popcount(v.snp_words(0), v.snp_words(3)) as u32;
        let mut row = vec![0.0f64; 8];
        let counts: Vec<u32> = (0..8)
            .map(|j| ld_popcount::and_popcount(v.snp_words(0), v.snp_words(j)) as u32)
            .collect();
        tr.apply_row(0, &counts, &mut row);
        let pair = tr.apply_pair(0, 3, c_03);
        assert_eq!(pair.to_bits(), row[3].to_bits());
    }
}
