//! The [`LdEngine`]: configuration + matrix-level drivers.

use crate::checkpoint::{matrix_fingerprint, CheckpointState, SlabRecord};
use crate::control::RunControl;
use crate::error::{
    checked_add, checked_mul, checked_triangle_len, try_zeroed_vec, LdError, MemoryBudget,
};
use crate::fused::{
    packed_row_offset, resolved_kernel_name, try_stat_packed_fused, try_stat_rows_fused,
    FusedConfig, RowSlabVisit, SyncSlice, Transform,
};
use crate::matrix::{CrossLdMatrix, LdMatrix};
use crate::outofcore::{try_stat_outofcore, SlabSink};
use crate::shard::{plan_shards, SlabRange};
use crate::stats::{ld_pair_from_counts, stat_from_counts, LdPair, LdStats, NanPolicy};
use crate::tilestore::{TileSource, TileStoreMeta};
use ld_bitmat::{BitMatrix, BitMatrixView};
use ld_kernels::{syrk_counts_buf, BlockSizes, KernelKind};
use ld_parallel::{available_threads, run_team, triangle_row_ranges, try_parallel_for};
use ld_popcount::and_popcount;

/// Configured entry point for all matrix-level LD computations.
///
/// ```
/// use ld_bitmat::BitMatrix;
/// use ld_core::LdEngine;
///
/// let g = BitMatrix::from_rows(4, 2, [[1u8, 1], [1, 1], [0, 0], [0, 0]]).unwrap();
/// let r2 = LdEngine::new().r2_matrix(&g);
/// assert!((r2.get(0, 1) - 1.0).abs() < 1e-12); // identical SNPs: perfect LD
/// ```
///
/// # Memory model
///
/// The all-pairs drivers ([`LdEngine::stat_matrix`] and friends) run the
/// *fused* counts→statistic pipeline: workers walk the upper triangle in
/// bounded row slabs, so transient memory is
/// `O(threads × slab × n)` u32 (see [`LdEngine::slab_rows`]) on top of the
/// `n(n+1)/2 × f64` packed result — never the `n × n` u32 counts matrix of
/// the classical two-pass formulation. When even the packed triangle is too
/// large, stream with [`LdEngine::stat_rows`] or
/// [`LdEngine::for_each_tile`] instead.
#[derive(Clone, Debug)]
pub struct LdEngine {
    pub(crate) kind: KernelKind,
    pub(crate) blocks: BlockSizes,
    pub(crate) threads: usize,
    pub(crate) policy: NanPolicy,
    pub(crate) slab: usize,
    pub(crate) chunk: usize,
    pub(crate) budget: MemoryBudget,
}

impl Default for LdEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Default row-slab height for the fused pipeline: tall enough to amortize
/// the SYRK rank-k setup per slab, small enough that per-worker scratch
/// (`slab × n × 4` bytes) stays cache-friendly for typical panel sizes.
pub(crate) const DEFAULT_SLAB_ROWS: usize = 64;

/// One tile of a streamed LD computation (see [`LdEngine::for_each_tile`]).
///
/// `values` is row-major `rows × cols`; entry `(r, c)` is the statistic for
/// the SNP pair `(row_start + r, col_start + c)`.
#[derive(Debug)]
pub struct TileVisit<'a> {
    /// Global index of the first row SNP in this tile.
    pub row_start: usize,
    /// Global index of the first column SNP in this tile.
    pub col_start: usize,
    /// Rows in this tile.
    pub rows: usize,
    /// Columns in this tile.
    pub cols: usize,
    /// Row-major statistic values.
    pub values: &'a [f64],
}

impl LdEngine {
    /// An engine with automatic kernel selection, default blocking, all
    /// available hardware threads and NaN propagation for monomorphic SNPs.
    pub fn new() -> Self {
        Self {
            kind: KernelKind::Auto,
            blocks: BlockSizes::default(),
            threads: available_threads(),
            policy: NanPolicy::default(),
            slab: DEFAULT_SLAB_ROWS,
            chunk: 1,
            budget: MemoryBudget::unlimited(),
        }
    }

    /// Selects the micro-kernel.
    pub fn kernel(mut self, kind: KernelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the cache-blocking parameters.
    pub fn blocks(mut self, blocks: BlockSizes) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the monomorphic-SNP reporting policy.
    pub fn nan_policy(mut self, policy: NanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps the transient memory of the fused pipeline (see
    /// [`MemoryBudget`]). The `try_` drivers shrink the slab height to fit
    /// the cap before failing with [`LdError::BudgetExceeded`]; results
    /// are bit-exact regardless of slab height. The infallible drivers
    /// honor the budget too (they panic where the `try_` form errors).
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The configured memory budget.
    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// Sets the row-slab height of the fused pipeline (clamped to ≥ 1).
    ///
    /// Each worker owns one scratch buffer of `slab × n_snps` u32 (plus the
    /// same in f64 for the streaming drivers), so peak transient memory is
    /// `threads × slab × n_snps × 4` bytes. Larger slabs amortize more SYRK
    /// setup per grab; smaller slabs bound memory and load-balance better.
    pub fn slab_rows(mut self, rows: usize) -> Self {
        self.slab = rows.max(1);
        self
    }

    /// Sets the scheduler chunk size in **slabs** (clamped to ≥ 1).
    ///
    /// The fused pipeline's dynamic scheduler hands each worker
    /// `chunk_slabs` consecutive slabs per claim. The default of 1
    /// reproduces the one-claim-per-slab schedule; larger chunks
    /// amortize scheduling overhead at some cost in load balance (the
    /// autotuner sweeps this). Per-worker scratch stays `slab × n` —
    /// workers walk a claimed chunk slab-by-slab — so results and
    /// memory are identical for every chunk size.
    pub fn chunk_slabs(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The configured kernel kind.
    pub fn kernel_kind(&self) -> KernelKind {
        self.kind
    }

    /// The configured thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured row-slab height (see [`LdEngine::slab_rows`]).
    pub fn slab_row_count(&self) -> usize {
        self.slab
    }

    /// The configured scheduler chunk size in slabs
    /// (see [`LdEngine::chunk_slabs`]).
    pub fn chunk_slab_count(&self) -> usize {
        self.chunk
    }

    /// The configured cache-blocking parameters.
    pub fn block_sizes(&self) -> BlockSizes {
        self.blocks
    }

    /// Bundles the fused-pipeline parameters.
    pub(crate) fn fused_config(&self) -> FusedConfig {
        FusedConfig {
            kind: self.kind,
            blocks: self.blocks,
            threads: self.threads,
            policy: self.policy,
            slab: self.slab,
            chunk: self.chunk,
        }
    }

    /// Validates the configured [`BlockSizes`] against the kernel's
    /// register tile at the fallible entry points: zero or
    /// `MR`/`NR`-incompatible blocks surface as
    /// [`LdError::InvalidConfig`] instead of a debug-assert deep in the
    /// drivers. An unresolvable kernel is left for the drivers to
    /// report (their error text names the kernel).
    fn validate_blocks(&self) -> Result<(), LdError> {
        if let Ok(k) = ld_kernels::Kernel::resolve(self.kind) {
            self.blocks
                .validate_for(k.mr(), k.nr())
                .map_err(|e| LdError::InvalidConfig { message: e.message })?;
        }
        Ok(())
    }

    /// Raw symmetric co-occurrence counts `C = GᵀG` (row-major `n × n`).
    /// `C[i,i]` is the derived-allele count of SNP `i`; `C[i,j]` the
    /// derived-derived haplotype count of the pair.
    ///
    /// This materializes the full `n × n` buffer — the all-pairs statistic
    /// drivers do *not* go through it (they use the fused slab pipeline);
    /// it exists for callers that want the raw integer counts.
    pub fn counts_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> Vec<u32> {
        match self.try_counts_matrix(g) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`LdEngine::counts_matrix`]: the `n × n` buffer size is
    /// computed with checked arithmetic and allocated via `try_reserve`.
    pub fn try_counts_matrix<'a>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
    ) -> Result<Vec<u32>, LdError> {
        self.validate_blocks()?;
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        let len = checked_mul(n, n, "n × n counts matrix")?;
        let mut c = try_zeroed_vec::<u32>(len, "n × n counts matrix")?;
        syrk_counts_buf(&v, &mut c, n, self.kind, self.blocks, self.threads);
        Ok(c)
    }

    /// Shrinks the configured slab height to fit the memory budget, given
    /// the fixed footprint `fixed` (output + tables, bytes) and the
    /// per-slab-row scratch cost `threads × n × per_elem` bytes. Errors
    /// with [`LdError::BudgetExceeded`] only when even one row over-runs.
    fn budgeted_slab(&self, n: usize, fixed: usize, per_elem: usize) -> Result<usize, LdError> {
        let want = self.slab.max(1).min(n.max(1));
        let Some(limit) = self.budget.limit() else {
            return Ok(want);
        };
        let per_row = checked_mul(
            checked_mul(self.threads.max(1), n.max(1), "slab scratch bytes")?,
            per_elem,
            "slab scratch bytes",
        )?;
        let min_required = checked_add(fixed, per_row, "minimum footprint")?;
        if min_required > limit {
            return Err(LdError::BudgetExceeded {
                required: min_required,
                budget: limit,
            });
        }
        let fit = (limit - fixed) / per_row.max(1);
        let got = want.min(fit.max(1));
        if got < want {
            // Budget forced the slab below the configured height — a
            // deterministic event worth counting: results stay bit-exact
            // but throughput changes, and a regression here means the
            // budget/shape mix drifted.
            ld_trace::add(ld_trace::Counter::BudgetShrinks, 1);
        }
        Ok(got)
    }

    /// Fixed (slab-independent) footprint of a fused run over `n` SNPs:
    /// optional packed output (`8·n(n+1)/2`) plus the transform tables
    /// (≤ `20n`: u32 diag + two f64 tables).
    fn fixed_footprint(n: usize, with_packed_output: bool) -> Result<usize, LdError> {
        let tables = checked_mul(n, 20, "transform tables bytes")?;
        if with_packed_output {
            let tri = checked_triangle_len(n)?;
            let out = checked_mul(tri, 8, "packed output bytes")?;
            checked_add(out, tables, "fixed footprint bytes")
        } else {
            Ok(tables)
        }
    }

    /// All-pairs statistic matrix (triangle-packed).
    ///
    /// Runs the fused counts→statistic pipeline: per-SNP allele counts from
    /// a standalone popcount pass seed the batched §II-B rank-1 correction
    /// (`D = H − p pᵀ`, then the `r²` normalization as precomputed
    /// reciprocal-variance products — no divide, no branch per pair);
    /// workers then grab bounded row slabs of the upper triangle, compute
    /// each slab's counts into per-thread scratch, and transform them into
    /// the packed output while still cache-hot. No `n × n` counts matrix is
    /// ever materialized and no mirror pass runs (see [`crate::fused`]).
    pub fn stat_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>, stat: LdStats) -> LdMatrix {
        match self.try_stat_matrix(g, stat) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`LdEngine::stat_matrix`] — the panic-free boundary for
    /// long-running services:
    ///
    /// * shape validation up front ([`LdError::EmptyInput`] for zero
    ///   samples, [`LdError::SizeOverflow`] when `n(n+1)/2` or any byte
    ///   count overflows `usize`);
    /// * the packed output and all scratch are allocated via `try_reserve`
    ///   ([`LdError::AllocationFailed`] instead of an abort);
    /// * the estimated transient footprint is held under the configured
    ///   [`MemoryBudget`] by shrinking the slab height (bit-exact — slab
    ///   height never affects values), failing with
    ///   [`LdError::BudgetExceeded`] only when one row is already too much;
    /// * a panicking worker drains the team and comes back as
    ///   [`LdError::Worker`] with the payload message preserved.
    pub fn try_stat_matrix<'a>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
    ) -> Result<LdMatrix, LdError> {
        self.try_stat_matrix_with(g, stat, &RunControl::new())
    }

    /// [`LdEngine::try_stat_matrix`] under a [`RunControl`]: the run honors
    /// a shared [`crate::CancelToken`], a monotonic [`crate::Deadline`] and
    /// an optional [`crate::CheckpointPlan`], all at **slab granularity** —
    /// the micro-kernel loops are never polled, so an inert control is
    /// exactly as fast as the plain form.
    ///
    /// * A token trip or deadline expiry drains the worker team at the next
    ///   slab boundary and returns [`LdError::Cancelled`] with the
    ///   completed-slab count; when a checkpoint sink is attached, a final
    ///   snapshot is flushed first, so the run is always resumable.
    /// * A checkpoint plan persists completed slabs every `K` slabs /
    ///   `T` seconds; [`crate::CheckpointPlan::resume_from`] validates the
    ///   stored header against this input + configuration, replays the
    ///   completed slabs, and recomputes only the rest — the resumed
    ///   triangle is **bit-identical** to an uninterrupted run.
    /// * A shard range ([`RunControl::with_shard`]) restricts the run to
    ///   one contiguous range of row slabs: only those slabs are
    ///   computed, checkpointed and counted; out-of-shard triangle
    ///   entries stay zero. Use [`LdEngine::try_stat_shard_with`] to get
    ///   the shard's spans in the merge-ready interchange form.
    pub fn try_stat_matrix_with<'a>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        ctl: &RunControl<'_>,
    ) -> Result<LdMatrix, LdError> {
        self.validate_blocks()?;
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        // overflow before emptiness: a size that cannot be represented is
        // reported even when the sample set is also degenerate
        let fixed = Self::fixed_footprint(n, true)?;
        if v.n_samples() == 0 {
            return Err(LdError::EmptyInput);
        }
        if n == 0 {
            return LdMatrix::try_zeros(0);
        }
        let slab = self.budgeted_slab(n, fixed, 4)?;
        // Materializing the packed output (a zeroed n(n+1)/2 f64 triangle)
        // is part of producing the statistic layer; charging it to
        // `transform_ns` keeps the profile's layer sum honest about where
        // the compute region's time actually goes.
        let span = ld_trace::recorder::Span::begin(ld_trace::recorder::SpanKind::Alloc);
        let sw = ld_trace::Stopwatch::start();
        let mut out = LdMatrix::try_zeros(n)?;
        ld_trace::add(ld_trace::Counter::TransformNs, sw.elapsed_ns());
        span.end((n * (n + 1) / 2 * 8) as u64);
        let cfg = FusedConfig {
            slab,
            ..self.fused_config()
        };
        try_stat_packed_fused(&v, stat, &cfg, out.packed_mut(), ctl)?;
        Ok(out)
    }

    /// The slab height the packed driver will actually use for an
    /// `n_snps`-row input after memory budgeting — the slab grid every
    /// shard plan and shard range must be built on. Shard processes must
    /// run with identical engine configuration so this value agrees
    /// across them; the checkpoint header records it, and the merge
    /// rejects inputs whose grids disagree.
    pub fn packed_slab_for(&self, n_snps: usize) -> Result<usize, LdError> {
        let fixed = Self::fixed_footprint(n_snps, true)?;
        self.budgeted_slab(n_snps, fixed, 4)
    }

    /// A work-balanced contiguous shard plan over the packed driver's
    /// slab grid: `[0, ⌈n_snps/slab⌉)` cut into `n_shards` ranges holding
    /// roughly equal numbers of *pair values* (see
    /// [`crate::shard::plan_shards`]). Feed each range to
    /// [`RunControl::with_shard`] + [`LdEngine::try_stat_shard_with`] in
    /// its own process, then stitch the outputs with
    /// [`crate::shard::merge_shard_states`].
    pub fn shard_plan(&self, n_snps: usize, n_shards: usize) -> Result<Vec<SlabRange>, LdError> {
        let slab = self.packed_slab_for(n_snps)?;
        plan_shards(n_snps, slab, n_shards)
    }

    /// Computes one shard of the all-pairs statistic and returns it in
    /// the shard interchange form: a [`CheckpointState`] whose records
    /// are exactly the shard's completed slabs (the header keeps the
    /// global slab grid, the matrix fingerprint, and the resolved kernel
    /// name, so merges can validate every input). Requires
    /// [`RunControl::with_shard`]; checkpointing/resume/cancellation
    /// behave as in [`LdEngine::try_stat_matrix_with`], scoped to the
    /// shard's slabs.
    pub fn try_stat_shard_with<'a>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        ctl: &RunControl<'_>,
    ) -> Result<CheckpointState, LdError> {
        let Some(range) = ctl.shard() else {
            return Err(LdError::InvalidConfig {
                message: "try_stat_shard_with requires a shard range (RunControl::with_shard)",
            });
        };
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        if n == 0 {
            return Err(LdError::InvalidConfig {
                message: "cannot shard an empty matrix",
            });
        }
        let m = self.try_stat_matrix_with(v, stat, ctl)?;
        // Recompute the grid the driver used (same budgeting path) and
        // lift the shard's slabs out of the packed triangle.
        let slab = self.packed_slab_for(n)?;
        let n_slabs = n.div_ceil(slab);
        let kernel = resolved_kernel_name(self.kind)?;
        let mut records = Vec::with_capacity(range.len());
        for k in range.start..range.end {
            let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
            let off = packed_row_offset(n, r0);
            let len = packed_row_offset(n, r1) - off;
            records.push(SlabRecord {
                index: k as u64,
                start_row: r0 as u64,
                end_row: r1 as u64,
                values: m.packed()[off..off + len].to_vec(),
            });
        }
        Ok(CheckpointState {
            stat,
            policy: self.policy,
            n_snps: n as u64,
            n_samples: v.n_samples() as u64,
            matrix_hash: matrix_fingerprint(&v),
            slab: slab as u64,
            n_slabs: n_slabs as u64,
            kernel: kernel.to_owned(),
            records,
        })
    }

    /// Like [`LdEngine::budgeted_slab`], but for the out-of-core driver,
    /// whose per-slab-row cost `per_row` is given directly in bytes and is
    /// **not** scaled by the thread count (the streamed GEMM threads
    /// internally over one shared counts block — extra threads add no
    /// buffers).
    fn budgeted_slab_units(
        &self,
        n: usize,
        fixed: usize,
        per_row: usize,
    ) -> Result<usize, LdError> {
        let want = self.slab.max(1).min(n.max(1));
        let Some(limit) = self.budget.limit() else {
            return Ok(want);
        };
        let min_required = checked_add(fixed, per_row, "minimum footprint")?;
        if min_required > limit {
            return Err(LdError::BudgetExceeded {
                required: min_required,
                budget: limit,
            });
        }
        let fit = (limit - fixed) / per_row.max(1);
        let got = want.min(fit.max(1));
        if got < want {
            ld_trace::add(ld_trace::Counter::BudgetShrinks, 1);
        }
        Ok(got)
    }

    /// The out-of-core memory model: `(fixed, per_slab_row)` bytes for a
    /// run streamed from `meta`'s store. Fixed covers the transform tables
    /// (and optionally the packed triangle) plus four chunk-sized buffers
    /// (compute + in-flight double buffer, and the A-panel's chunk-
    /// alignment slack); each slab row adds one panel row of packed words
    /// and one u32 row of the block-counts scratch (plus one f64 output
    /// row of width `n` for the streaming form).
    fn outofcore_footprint(
        meta: &TileStoreMeta,
        with_packed_output: bool,
    ) -> Result<(usize, usize), LdError> {
        let n = meta.n_snps;
        let chunk = meta.chunk_snps.min(n.max(1));
        let chunk_bytes = checked_mul(
            checked_mul(chunk, meta.words_per_snp, "chunk bytes")?,
            8,
            "chunk bytes",
        )?;
        let fixed = checked_add(
            Self::fixed_footprint(n, with_packed_output)?,
            checked_mul(chunk_bytes, 4, "chunk buffer bytes")?,
            "fixed footprint bytes",
        )?;
        let mut per_row = checked_add(
            checked_mul(meta.words_per_snp, 8, "panel row bytes")?,
            checked_mul(chunk, 4, "block counts row bytes")?,
            "slab row bytes",
        )?;
        if !with_packed_output {
            per_row = checked_add(
                per_row,
                checked_mul(n.max(1), 8, "slab values row bytes")?,
                "slab row bytes",
            )?;
        }
        Ok((fixed, per_row))
    }

    /// The slab height the out-of-core driver will use for a store with
    /// this geometry after memory budgeting — the slab grid out-of-core
    /// shard ranges and checkpoint resumes are built on. With no budget
    /// configured it equals [`LdEngine::packed_slab_for`]'s answer, so
    /// in-memory and streamed runs of the same configuration share one
    /// grid (and their checkpoints interoperate).
    pub fn outofcore_slab_for(
        &self,
        meta: &TileStoreMeta,
        with_packed_output: bool,
    ) -> Result<usize, LdError> {
        let (fixed, per_row) = Self::outofcore_footprint(meta, with_packed_output)?;
        self.budgeted_slab_units(meta.n_snps, fixed, per_row)
    }

    /// [`LdEngine::try_stat_matrix_with`], streamed from a chunked tile
    /// store instead of an in-memory matrix: the genotype panel is loaded
    /// slab-by-slab under the configured [`MemoryBudget`], with a prefetch
    /// thread double-buffering chunk reads against the GEMM (see
    /// [`crate::outofcore`]). The packed triangle it fills is
    /// **bit-identical** to the in-memory driver's for every chunk size,
    /// slab height and thread count; token / deadline / checkpoint / shard
    /// semantics are those of [`LdEngine::try_stat_matrix_with`], and a
    /// resumed run replays completed slabs without re-reading their
    /// chunks.
    pub fn try_stat_matrix_outofcore_with(
        &self,
        src: &dyn TileSource,
        stat: LdStats,
        ctl: &RunControl<'_>,
    ) -> Result<LdMatrix, LdError> {
        self.validate_blocks()?;
        let meta = src.meta();
        let n = meta.n_snps;
        // overflow before emptiness, as in the in-memory driver
        let (fixed, per_row) = Self::outofcore_footprint(meta, true)?;
        if meta.n_samples == 0 {
            return Err(LdError::EmptyInput);
        }
        if n == 0 {
            return LdMatrix::try_zeros(0);
        }
        let slab = self.budgeted_slab_units(n, fixed, per_row)?;
        let span = ld_trace::recorder::Span::begin(ld_trace::recorder::SpanKind::Alloc);
        let sw = ld_trace::Stopwatch::start();
        let mut out = LdMatrix::try_zeros(n)?;
        ld_trace::add(ld_trace::Counter::TransformNs, sw.elapsed_ns());
        span.end((n * (n + 1) / 2 * 8) as u64);
        let cfg = FusedConfig {
            slab,
            ..self.fused_config()
        };
        try_stat_outofcore(src, stat, &cfg, ctl, SlabSink::Packed(out.packed_mut()))?;
        Ok(out)
    }

    /// [`LdEngine::try_stat_rows_with`], streamed from a chunked tile
    /// store: row slabs of the upper triangle are computed from
    /// chunk-sized panel reads and handed to `visit` **in ascending row
    /// order** (the out-of-core driver is sequential over slabs; only the
    /// GEMM inside a slab is threaded). Peak memory is
    /// `O(slab × (panel_row + n))` plus chunk buffers — independent of
    /// holding the full genotype matrix. Checkpoint plans are rejected
    /// with [`LdError::InvalidConfig`] as in the in-memory streaming
    /// driver.
    pub fn try_stat_rows_outofcore_with<F>(
        &self,
        src: &dyn TileSource,
        stat: LdStats,
        mut visit: F,
        ctl: &RunControl<'_>,
    ) -> Result<(), LdError>
    where
        F: FnMut(&RowSlabVisit<'_>),
    {
        self.validate_blocks()?;
        let meta = src.meta();
        let n = meta.n_snps;
        let (fixed, per_row) = Self::outofcore_footprint(meta, false)?;
        if n == 0 {
            return Ok(());
        }
        if meta.n_samples == 0 {
            return Err(LdError::EmptyInput);
        }
        let slab = self.budgeted_slab_units(n, fixed, per_row)?;
        let len = checked_mul(slab, n, "slab values buffer")?;
        let mut values = try_zeroed_vec::<f64>(len, "slab values buffer")?;
        let cfg = FusedConfig {
            slab,
            ..self.fused_config()
        };
        try_stat_outofcore(
            src,
            stat,
            &cfg,
            ctl,
            SlabSink::Rows {
                values: &mut values,
                visit: &mut visit,
            },
        )
    }

    /// [`LdEngine::try_stat_shard_with`], streamed from a chunked tile
    /// store: computes one shard of the all-pairs statistic out-of-core
    /// and returns it in the shard interchange form. The header carries
    /// the store's manifest fingerprint — which equals the in-memory
    /// matrix fingerprint of the same data — so shards computed from the
    /// store and from RAM merge interchangeably when the slab grids
    /// agree.
    pub fn try_stat_shard_outofcore_with(
        &self,
        src: &dyn TileSource,
        stat: LdStats,
        ctl: &RunControl<'_>,
    ) -> Result<CheckpointState, LdError> {
        let Some(range) = ctl.shard() else {
            return Err(LdError::InvalidConfig {
                message:
                    "try_stat_shard_outofcore_with requires a shard range (RunControl::with_shard)",
            });
        };
        let meta = src.meta().clone();
        let n = meta.n_snps;
        if n == 0 {
            return Err(LdError::InvalidConfig {
                message: "cannot shard an empty matrix",
            });
        }
        let m = self.try_stat_matrix_outofcore_with(src, stat, ctl)?;
        // Recompute the grid the driver used (same budgeting path) and
        // lift the shard's slabs out of the packed triangle.
        let slab = self.outofcore_slab_for(&meta, true)?;
        let n_slabs = n.div_ceil(slab);
        let kernel = resolved_kernel_name(self.kind)?;
        let mut records = Vec::with_capacity(range.len());
        for k in range.start..range.end {
            let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
            let off = packed_row_offset(n, r0);
            let len = packed_row_offset(n, r1) - off;
            records.push(SlabRecord {
                index: k as u64,
                start_row: r0 as u64,
                end_row: r1 as u64,
                values: m.packed()[off..off + len].to_vec(),
            });
        }
        Ok(CheckpointState {
            stat,
            policy: self.policy,
            n_snps: n as u64,
            n_samples: meta.n_samples as u64,
            matrix_hash: meta.fingerprint,
            slab: slab as u64,
            n_slabs: n_slabs as u64,
            kernel: kernel.to_owned(),
            records,
        })
    }

    /// The classical two-pass driver: full `n × n` SYRK counts, then a
    /// separate transform sweep into the packed triangle.
    ///
    /// Kept as the **test oracle** for the fused pipeline (their `r²`
    /// transforms are the same batched operations, so results are
    /// bit-identical) and as the reference point for the memory/bandwidth
    /// comparison in `BENCH_fused`. Peak transient memory is `4n²` bytes;
    /// prefer [`LdEngine::stat_matrix`] everywhere else.
    ///
    /// The transform sweep is partitioned triangle-aware
    /// ([`ld_parallel::triangle_row_ranges`]): row `i` holds `n − i` pairs,
    /// so an even row split would give the first worker ~2× the work of the
    /// last.
    pub fn stat_matrix_twopass<'a>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
    ) -> LdMatrix {
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        assert!(v.n_samples() > 0, "cannot compute LD with zero samples");
        let counts = self.counts_matrix(v);
        let tr = Transform::new(&v, stat, self.policy);
        let mut out = LdMatrix::zeros(n);
        let packed = out.packed_mut();
        let out_ptr = SyncSlice::new(packed);
        let counts_ref = &counts;
        let tr_ref = &tr;
        let ranges = triangle_row_ranges(n, self.threads);
        run_team(self.threads, |tid| {
            let sw = ld_trace::Stopwatch::start();
            for i in ranges[tid].clone() {
                // SAFETY: workers own disjoint row ranges, and a row's
                // packed range is disjoint from every other row's.
                let dst = unsafe { out_ptr.slice(packed_row_offset(n, i), n - i) };
                tr_ref.apply_row(i, &counts_ref[i * n + i..i * n + n], dst);
            }
            ld_trace::add(ld_trace::Counter::TransformNs, sw.elapsed_ns());
        });
        out
    }

    /// All-pairs `r²` (Eq. 2) — the paper's headline output.
    pub fn r2_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> LdMatrix {
        self.stat_matrix(g, LdStats::RSquared)
    }

    /// Fallible all-pairs `r²` (see [`LdEngine::try_stat_matrix`]).
    pub fn try_r2_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> Result<LdMatrix, LdError> {
        self.try_stat_matrix(g, LdStats::RSquared)
    }

    /// All-pairs raw `D` (Eq. 5).
    pub fn d_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> LdMatrix {
        self.stat_matrix(g, LdStats::D)
    }

    /// All-pairs `D'`.
    pub fn d_prime_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> LdMatrix {
        self.stat_matrix(g, LdStats::DPrime)
    }

    /// Streams the all-pairs statistic as **row slabs** of the upper
    /// triangle without materializing any matrix — the lowest-overhead
    /// streaming form (each value is produced exactly once, no mirroring,
    /// no tile cutting).
    ///
    /// Slabs are produced by the same fused pipeline as
    /// [`LdEngine::stat_matrix`]; `visit` is called once per slab,
    /// serialized under a mutex. **Slab order is unspecified** when
    /// `threads > 1` (dynamic scheduling); rows within a slab are
    /// consecutive. Peak memory is `O(threads × slab × n)` scratch only.
    pub fn stat_rows<'a, F>(&self, g: impl Into<BitMatrixView<'a>>, stat: LdStats, visit: F)
    where
        F: FnMut(&RowSlabVisit<'_>) + Send,
    {
        if let Err(e) = self.try_stat_rows(g, stat, visit) {
            panic!("{e}");
        }
    }

    /// Fallible [`LdEngine::stat_rows`] (validation, budgeting and panic
    /// containment as in [`LdEngine::try_stat_matrix`]; the streaming form
    /// has no packed output, so its budget covers only tables + scratch —
    /// per-slab-row cost is `threads × n × 12` bytes: u32 counts plus f64
    /// values).
    pub fn try_stat_rows<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        visit: F,
    ) -> Result<(), LdError>
    where
        F: FnMut(&RowSlabVisit<'_>) + Send,
    {
        self.try_stat_rows_with(g, stat, visit, &RunControl::new())
    }

    /// [`LdEngine::try_stat_rows`] under a [`RunControl`]: token and
    /// deadline are honored at slab granularity (see
    /// [`LdEngine::try_stat_matrix_with`]); a trip stops the stream at the
    /// next slab boundary and returns [`LdError::Cancelled`] with the count
    /// of slabs already delivered to `visit`. Checkpoint plans are rejected
    /// with [`LdError::InvalidConfig`] — the streaming driver retains no
    /// state to persist (each slab is the caller's once visited).
    pub fn try_stat_rows_with<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        visit: F,
        ctl: &RunControl<'_>,
    ) -> Result<(), LdError>
    where
        F: FnMut(&RowSlabVisit<'_>) + Send,
    {
        self.validate_blocks()?;
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        let fixed = Self::fixed_footprint(n, false)?;
        if n == 0 {
            return Ok(());
        }
        if v.n_samples() == 0 {
            return Err(LdError::EmptyInput);
        }
        let slab = self.budgeted_slab(n, fixed, 12)?;
        let cfg = FusedConfig {
            slab,
            ..self.fused_config()
        };
        try_stat_rows_fused(&v, stat, &cfg, visit, ctl)
    }

    /// Streamed `r²` row slabs (see [`LdEngine::stat_rows`]).
    pub fn r2_rows<'a, F>(&self, g: impl Into<BitMatrixView<'a>>, visit: F)
    where
        F: FnMut(&RowSlabVisit<'_>) + Send,
    {
        self.stat_rows(g, LdStats::RSquared, visit)
    }

    /// Streams the all-pairs statistic in `tile × tile` blocks without ever
    /// materializing the full matrix — for SNP counts where `O(n²)` memory
    /// is prohibitive. Visits only tiles on or above the block diagonal
    /// (`col_start ≥ row_start`); within diagonal tiles the full square is
    /// reported by symmetry (callers that want strict pairs filter
    /// `i < j`).
    ///
    /// Tiles are cut from the fused pipeline's row slabs (slab height =
    /// `tile`), so the computation is threaded and its transient memory
    /// bounded; `visit` is serialized under a mutex. Within one row of
    /// tiles, `col_start` ascends; **the order of tile rows is
    /// unspecified** when `threads > 1`.
    pub fn for_each_tile<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        tile: usize,
        visit: F,
    ) where
        F: FnMut(&TileVisit<'_>) + Send,
    {
        if let Err(e) = self.try_for_each_tile(g, stat, tile, visit) {
            panic!("{e}");
        }
    }

    /// Fallible [`LdEngine::for_each_tile`]. A zero `tile` is
    /// [`LdError::InvalidConfig`]; the tiling invariant pins the slab
    /// height to `tile`, so the memory budget cannot auto-shrink here — a
    /// `tile` whose scratch over-runs the budget is
    /// [`LdError::BudgetExceeded`] (pick a smaller tile).
    pub fn try_for_each_tile<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        tile: usize,
        visit: F,
    ) -> Result<(), LdError>
    where
        F: FnMut(&TileVisit<'_>) + Send,
    {
        self.try_for_each_tile_with(g, stat, tile, visit, &RunControl::new())
    }

    /// [`LdEngine::try_for_each_tile`] under a [`RunControl`]: token and
    /// deadline stop the stream at the next slab (= tile-row) boundary with
    /// [`LdError::Cancelled`]; checkpoint plans are rejected with
    /// [`LdError::InvalidConfig`] as in [`LdEngine::try_stat_rows_with`].
    pub fn try_for_each_tile_with<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        tile: usize,
        mut visit: F,
        ctl: &RunControl<'_>,
    ) -> Result<(), LdError>
    where
        F: FnMut(&TileVisit<'_>) + Send,
    {
        self.validate_blocks()?;
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        if tile == 0 {
            return Err(LdError::InvalidConfig {
                message: "tile size must be positive",
            });
        }
        if n == 0 {
            return Ok(());
        }
        if v.n_samples() == 0 {
            return Err(LdError::EmptyInput);
        }
        let side = tile.min(n);
        // slab is pinned to `tile`: verify rather than shrink
        let tile_buf = checked_mul(checked_mul(side, side, "tile buffer")?, 8, "tile buffer")?;
        let fixed = checked_add(
            Self::fixed_footprint(n, false)?,
            tile_buf,
            "fixed footprint",
        )?;
        if let Some(limit) = self.budget.limit() {
            let per_row = checked_mul(
                checked_mul(self.threads.max(1), n, "slab scratch bytes")?,
                12,
                "slab scratch bytes",
            )?;
            let required = checked_add(
                fixed,
                checked_mul(per_row, side, "slab scratch bytes")?,
                "minimum footprint",
            )?;
            if required > limit {
                return Err(LdError::BudgetExceeded {
                    required,
                    budget: limit,
                });
            }
        }
        let cfg = FusedConfig {
            slab: tile,
            ..self.fused_config()
        };
        let mut buf = try_zeroed_vec::<f64>(side * side, "tile mirror buffer")?;
        try_stat_rows_fused(
            &v,
            stat,
            &cfg,
            move |s| {
                // Slabs start at multiples of `tile` (dynamic chunks are
                // grain-aligned), so each slab is exactly one row of tiles.
                let bi = s.row_start();
                let rows = s.n_rows();
                debug_assert_eq!(bi % tile, 0);
                let mut bj = bi;
                while bj < n {
                    let cols = tile.min(n - bj);
                    for r in 0..rows {
                        let i = bi + r;
                        for c in 0..cols {
                            let j = bj + c;
                            buf[r * cols + c] = if j >= i {
                                // slab row r stores columns row_start.. of row i
                                s.value(r, j)
                            } else {
                                // diagonal tile, below the diagonal: mirror the
                                // transpose entry (filled earlier since c < r)
                                buf[c * cols + r]
                            };
                        }
                    }
                    visit(&TileVisit {
                        row_start: bi,
                        col_start: bj,
                        rows,
                        cols,
                        values: &buf[..rows * cols],
                    });
                    bj += tile;
                }
            },
            ctl,
        )
    }

    /// Cross-matrix statistic between two SNP sets sharing the same sample
    /// set (Fig. 4: long-range LD, distant genes).
    pub fn cross_stat_matrix<'a, 'b>(
        &self,
        a: impl Into<BitMatrixView<'a>>,
        b: impl Into<BitMatrixView<'b>>,
        stat: LdStats,
    ) -> CrossLdMatrix {
        match self.try_cross_stat_matrix(a, b, stat) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`LdEngine::cross_stat_matrix`]: mismatched sample sets are
    /// [`LdError::DimensionMismatch`], `m × n` sizes are checked, the count
    /// and value buffers go through `try_reserve`, per-SNP allele counts
    /// are converted with `u32::try_from` (no silent truncation past
    /// `u32::MAX` haplotypes), and a panicking worker surfaces as
    /// [`LdError::Worker`].
    pub fn try_cross_stat_matrix<'a, 'b>(
        &self,
        a: impl Into<BitMatrixView<'a>>,
        b: impl Into<BitMatrixView<'b>>,
        stat: LdStats,
    ) -> Result<CrossLdMatrix, LdError> {
        self.validate_blocks()?;
        let va: BitMatrixView<'a> = a.into();
        let vb: BitMatrixView<'b> = b.into();
        if va.n_samples() != vb.n_samples() {
            return Err(LdError::DimensionMismatch {
                context: "sample sets must match",
                left: va.n_samples(),
                right: vb.n_samples(),
            });
        }
        let n_samples = va.n_samples();
        if n_samples == 0 {
            return Err(LdError::EmptyInput);
        }
        let (m, n) = (va.n_snps(), vb.n_snps());
        let len = checked_mul(m, n, "m × n cross matrix")?;
        let mut counts = try_zeroed_vec::<u32>(len, "m × n cross counts")?;
        ld_kernels::gemm_counts_mt(
            &va,
            &vb,
            &mut counts,
            n,
            self.kind,
            self.blocks,
            self.threads,
        );
        let snp_counts = |v: &BitMatrixView<'_>, k: usize| -> Result<Vec<u32>, LdError> {
            let mut out = try_zeroed_vec::<u32>(k, "per-SNP allele-count table")?;
            for (j, d) in out.iter_mut().enumerate() {
                *d = u32::try_from(v.ones_in_snp(j)).map_err(|_| LdError::SizeOverflow {
                    what: "per-SNP allele count (> u32::MAX haplotypes)",
                })?;
            }
            Ok(out)
        };
        let a_counts = snp_counts(&va, m)?;
        let b_counts = snp_counts(&vb, n)?;
        let inv_n = 1.0 / n_samples as f64;
        let mut values = try_zeroed_vec::<f64>(len, "m × n cross values")?;
        let policy = self.policy;
        {
            let counts_ref = &counts;
            let values_ptr = SyncSlice::new(&mut values);
            if stat == LdStats::RSquared {
                // batched rank-1 correction (see stat_matrix)
                let undef = match policy {
                    NanPolicy::Propagate => f64::NAN,
                    NanPolicy::Zero => 0.0,
                };
                let prep = |counts: &[u32]| -> (Vec<f64>, Vec<f64>) {
                    let p: Vec<f64> = counts.iter().map(|&c| c as f64 * inv_n).collect();
                    let iv = p
                        .iter()
                        .map(|&pj| {
                            let var = pj * (1.0 - pj);
                            if var > 0.0 {
                                1.0 / var
                            } else {
                                undef
                            }
                        })
                        .collect();
                    (p, iv)
                };
                let (pa, iva) = prep(&a_counts);
                let (pb, ivb) = prep(&b_counts);
                let (pa, iva, pb, ivb) = (&pa, &iva, &pb, &ivb);
                try_parallel_for(self.threads, m, |rows| {
                    for i in rows {
                        // SAFETY: disjoint row slices of `values`.
                        let dst = unsafe { values_ptr.slice(i * n, n) };
                        let (p_i, iv_i) = (pa[i], iva[i]);
                        let row = &counts_ref[i * n..i * n + n];
                        for j in 0..n {
                            let d = row[j] as f64 * inv_n - p_i * pb[j];
                            dst[j] = (d * d) * iv_i * ivb[j];
                        }
                    }
                })?;
            } else {
                let a_ref = &a_counts;
                let b_ref = &b_counts;
                try_parallel_for(self.threads, m, |rows| {
                    for i in rows {
                        // SAFETY: disjoint row slices of `values`.
                        let dst = unsafe { values_ptr.slice(i * n, n) };
                        for j in 0..n {
                            dst[j] = stat_from_counts(
                                stat,
                                a_ref[i],
                                b_ref[j],
                                counts_ref[i * n + j],
                                inv_n,
                                policy,
                            );
                        }
                    }
                })?;
            }
        }
        Ok(CrossLdMatrix::from_dense(m, n, values))
    }

    /// Cross-matrix `r²`.
    pub fn r2_cross<'a, 'b>(
        &self,
        a: impl Into<BitMatrixView<'a>>,
        b: impl Into<BitMatrixView<'b>>,
    ) -> CrossLdMatrix {
        self.cross_stat_matrix(a, b, LdStats::RSquared)
    }

    /// Statistics for a single SNP pair (no matrix materialized).
    pub fn ld_pair(&self, g: &BitMatrix, i: usize, j: usize) -> LdPair {
        let n = g.n_samples() as u64;
        let si = g.snp_words(i);
        let sj = g.snp_words(j);
        let c_ij = and_popcount(si, sj);
        ld_pair_from_counts(g.ones_in_snp(i), g.ones_in_snp(j), c_ij, n, self.policy)
    }

    /// Streams the all-pairs statistic in `tile × tile` blocks — alias of
    /// [`LdEngine::for_each_tile`], kept for API continuity.
    pub fn stat_tiled<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        tile: usize,
        visit: F,
    ) where
        F: FnMut(&TileVisit<'_>) + Send,
    {
        self.for_each_tile(g, stat, tile, visit)
    }

    /// Streamed `r²` tiles (see [`LdEngine::for_each_tile`]).
    pub fn r2_tiled<'a, F>(&self, g: impl Into<BitMatrixView<'a>>, tile: usize, visit: F)
    where
        F: FnMut(&TileVisit<'_>) + Send,
    {
        self.for_each_tile(g, LdStats::RSquared, tile, visit)
    }

    /// Derived-allele frequencies of every SNP (Eq. 3).
    pub fn allele_frequencies<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> Vec<f64> {
        let v: BitMatrixView<'a> = g.into();
        v.allele_frequencies()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BitMatrix {
        // 6 samples × 4 SNPs with known relationships:
        // snp0 == snp1 (perfect LD), snp2 independent-ish, snp3 complement of snp0
        BitMatrix::from_rows(
            6,
            4,
            [
                [1u8, 1, 1, 0],
                [1, 1, 0, 0],
                [1, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 1, 1],
                [0, 0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn r2_of_identical_snps_is_one() {
        let g = toy();
        let r2 = LdEngine::new().r2_matrix(&g);
        assert!((r2.get(0, 1) - 1.0).abs() < 1e-12);
        assert!(
            (r2.get(0, 3) - 1.0).abs() < 1e-12,
            "complement is also perfect r²"
        );
    }

    #[test]
    fn diagonal_is_one_for_polymorphic() {
        let g = toy();
        let r2 = LdEngine::new().r2_matrix(&g);
        for j in 0..4 {
            assert!((r2.get(j, j) - 1.0).abs() < 1e-12, "snp {j}");
        }
    }

    #[test]
    fn engine_matches_pairwise() {
        let g = toy();
        let e = LdEngine::new();
        let r2 = e.r2_matrix(&g);
        let d = e.d_matrix(&g);
        let dp = e.d_prime_matrix(&g);
        for i in 0..4 {
            for j in 0..4 {
                let p = e.ld_pair(&g, i, j);
                assert!((r2.get(i, j) - p.r2).abs() < 1e-12, "r2 ({i},{j})");
                assert!((d.get(i, j) - p.d).abs() < 1e-12, "d ({i},{j})");
                assert!((dp.get(i, j) - p.d_prime).abs() < 1e-12, "d' ({i},{j})");
            }
        }
    }

    #[test]
    fn counts_matrix_diagonal() {
        let g = toy();
        let c = LdEngine::new().counts_matrix(&g);
        assert_eq!(c[0], 3); // |snp0|
        assert_eq!(c[5], 3); // |snp1|
        assert_eq!(c[1], 3); // row 0, col 1: snp0 ∧ snp1
        assert_eq!(c[3], 0); // row 0, col 3: snp0 ∧ snp3 (complement)
    }

    #[test]
    fn monomorphic_snp_policy() {
        let g = BitMatrix::from_rows(4, 2, [[0u8, 1], [0, 0], [0, 1], [0, 0]]).unwrap();
        let nan = LdEngine::new().r2_matrix(&g);
        assert!(nan.get(0, 1).is_nan());
        let zero = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        assert_eq!(zero.get(0, 1), 0.0);
    }

    #[test]
    fn cross_matrix_consistent_with_square() {
        let g = toy();
        let e = LdEngine::new();
        let full = e.r2_matrix(&g);
        let a = g.view(0, 2);
        let b = g.view(2, 4);
        let cross = e.r2_cross(a, b);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (cross.get(i, j) - full.get(i, j + 2)).abs() < 1e-12,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn tiled_matches_full() {
        let g = toy();
        let e = LdEngine::new();
        let full = e.r2_matrix(&g);
        for tile in [1usize, 2, 3, 4, 7] {
            let mut seen = std::collections::HashMap::new();
            e.r2_tiled(&g, tile, |t| {
                for r in 0..t.rows {
                    for c in 0..t.cols {
                        seen.insert((t.row_start + r, t.col_start + c), t.values[r * t.cols + c]);
                    }
                }
            });
            for i in 0..4 {
                for j in i..4 {
                    let got = seen[&(i, j)];
                    let want = full.get(i, j);
                    assert!(
                        (got - want).abs() < 1e-12 || (got.is_nan() && want.is_nan()),
                        "tile={tile} ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_tiles_report_full_square() {
        // the sub-diagonal half of a diagonal tile is mirrored by symmetry
        let g = toy();
        LdEngine::new().r2_tiled(&g, 3, |t| {
            if t.row_start == t.col_start {
                for r in 0..t.rows {
                    for c in 0..t.cols {
                        let a = t.values[r * t.cols + c];
                        let b = t.values[c * t.cols + r];
                        assert!(a.to_bits() == b.to_bits(), "({r},{c}) {a} vs {b}");
                    }
                }
            }
        });
    }

    #[test]
    fn multithreaded_engine_matches_single() {
        let g = toy();
        let one = LdEngine::new().threads(1).r2_matrix(&g);
        let four = LdEngine::new().threads(4).r2_matrix(&g);
        assert_eq!(one.packed().len(), four.packed().len());
        for (a, b) in one.packed().iter().zip(four.packed()) {
            assert!((a - b).abs() < 1e-15 || (a.is_nan() && b.is_nan()));
        }
    }

    #[test]
    fn fused_matches_twopass_bit_exact() {
        let g = toy();
        for stat in [LdStats::RSquared, LdStats::D, LdStats::DPrime] {
            let e = LdEngine::new().threads(2).slab_rows(2);
            let fused = e.stat_matrix(&g, stat);
            let oracle = e.stat_matrix_twopass(&g, stat);
            for (a, b) in fused.packed().iter().zip(oracle.packed()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{stat:?}");
            }
        }
    }

    #[test]
    fn stat_rows_streams_every_row() {
        let g = toy();
        let e = LdEngine::new().slab_rows(2);
        let full = e.r2_matrix(&g);
        let mut seen = [false; 4];
        e.r2_rows(&g, |s| {
            for (i, row) in s.rows() {
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(row.len(), 4 - i);
                for (t, &v) in row.iter().enumerate() {
                    assert!((v - full.get(i, i + t)).abs() < 1e-15);
                }
            }
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn builder_accessors() {
        let e = LdEngine::new()
            .threads(3)
            .kernel(KernelKind::Scalar)
            .slab_rows(17)
            .chunk_slabs(4);
        assert_eq!(e.thread_count(), 3);
        assert_eq!(e.kernel_kind(), KernelKind::Scalar);
        assert_eq!(e.slab_row_count(), 17);
        assert_eq!(e.chunk_slab_count(), 4);
        assert_eq!(LdEngine::new().slab_rows(0).slab_row_count(), 1);
        assert_eq!(LdEngine::new().chunk_slabs(0).chunk_slab_count(), 1);
    }

    #[test]
    fn chunked_schedule_is_bit_identical() {
        let g = toy();
        let base = LdEngine::new().threads(2).slab_rows(1).r2_matrix(&g);
        for chunk in [2usize, 3, 100] {
            let chunked = LdEngine::new()
                .threads(2)
                .slab_rows(1)
                .chunk_slabs(chunk)
                .r2_matrix(&g);
            for (a, b) in base.packed().iter().zip(chunked.packed()) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk={chunk}");
            }
        }
    }

    #[test]
    fn invalid_blocks_are_typed_errors_not_panics() {
        let g = toy();
        // kc = 0 can never drive the rank-k loop.
        let e = LdEngine::new().blocks(BlockSizes::default().with_kc(0));
        match e.try_r2_matrix(&g) {
            Err(LdError::InvalidConfig { message }) => {
                assert!(message.contains("kc"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // mc incompatible with the 4-row register tile.
        let e = LdEngine::new()
            .kernel(KernelKind::Scalar)
            .blocks(BlockSizes::default().with_mc(6));
        assert!(matches!(
            e.try_counts_matrix(&g),
            Err(LdError::InvalidConfig { .. })
        ));
        // The streaming forms validate too.
        assert!(matches!(
            e.try_stat_rows(&g, LdStats::RSquared, |_| {}),
            Err(LdError::InvalidConfig { .. })
        ));
        assert!(matches!(
            e.try_cross_stat_matrix(&g, &g, LdStats::RSquared),
            Err(LdError::InvalidConfig { .. })
        ));
        // Valid overrides still pass.
        let ok = LdEngine::new()
            .kernel(KernelKind::Scalar)
            .blocks(BlockSizes::default().with_mc(8))
            .try_r2_matrix(&g);
        assert!(ok.is_ok());
    }

    #[test]
    fn allele_frequencies_match() {
        let g = toy();
        let p = LdEngine::new().allele_frequencies(&g);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn zero_samples_panics() {
        let g = BitMatrix::zeros(0, 3);
        LdEngine::new().r2_matrix(&g);
    }
}
