//! The [`LdEngine`]: configuration + matrix-level drivers.

use crate::matrix::{CrossLdMatrix, LdMatrix};
use crate::stats::{ld_pair_from_counts, stat_from_counts, LdPair, LdStats, NanPolicy};
use ld_bitmat::{BitMatrix, BitMatrixView};
use ld_kernels::{gemm_counts_buf, syrk_counts_buf, BlockSizes, KernelKind};
use ld_parallel::{available_threads, parallel_for};
use ld_popcount::and_popcount;

/// Configured entry point for all matrix-level LD computations.
///
/// ```
/// use ld_bitmat::BitMatrix;
/// use ld_core::LdEngine;
///
/// let g = BitMatrix::from_rows(4, 2, [[1u8, 1], [1, 1], [0, 0], [0, 0]]).unwrap();
/// let r2 = LdEngine::new().r2_matrix(&g);
/// assert!((r2.get(0, 1) - 1.0).abs() < 1e-12); // identical SNPs: perfect LD
/// ```
#[derive(Clone, Debug)]
pub struct LdEngine {
    kind: KernelKind,
    blocks: BlockSizes,
    threads: usize,
    policy: NanPolicy,
}

impl Default for LdEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// One tile of a streamed LD computation (see [`LdEngine::r2_tiled`]).
///
/// `values` is row-major `rows × cols`; entry `(r, c)` is the statistic for
/// the SNP pair `(row_start + r, col_start + c)`.
#[derive(Debug)]
pub struct TileVisit<'a> {
    /// Global index of the first row SNP in this tile.
    pub row_start: usize,
    /// Global index of the first column SNP in this tile.
    pub col_start: usize,
    /// Rows in this tile.
    pub rows: usize,
    /// Columns in this tile.
    pub cols: usize,
    /// Row-major statistic values.
    pub values: &'a [f64],
}

impl LdEngine {
    /// An engine with automatic kernel selection, default blocking, all
    /// available hardware threads and NaN propagation for monomorphic SNPs.
    pub fn new() -> Self {
        Self {
            kind: KernelKind::Auto,
            blocks: BlockSizes::default(),
            threads: available_threads(),
            policy: NanPolicy::default(),
        }
    }

    /// Selects the micro-kernel.
    pub fn kernel(mut self, kind: KernelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the cache-blocking parameters.
    pub fn blocks(mut self, blocks: BlockSizes) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the monomorphic-SNP reporting policy.
    pub fn nan_policy(mut self, policy: NanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured kernel kind.
    pub fn kernel_kind(&self) -> KernelKind {
        self.kind
    }

    /// The configured thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Raw symmetric co-occurrence counts `C = GᵀG` (row-major `n × n`).
    /// `C[i,i]` is the derived-allele count of SNP `i`; `C[i,j]` the
    /// derived-derived haplotype count of the pair.
    pub fn counts_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> Vec<u32> {
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        let mut c = vec![0u32; n * n];
        syrk_counts_buf(&v, &mut c, n, self.kind, self.blocks, self.threads);
        c
    }

    /// All-pairs statistic matrix (triangle-packed).
    ///
    /// The `r²` path implements the paper's §II-B formulation literally:
    /// after the counts GEMM, the allele-frequency correction
    /// `D = H − p pᵀ` and the `r²` normalization are *batched* vector
    /// operations — per-SNP frequencies and reciprocal variances are
    /// precomputed once, so the per-pair work is a handful of multiplies
    /// with no divide and no branch (unlike the per-pair scalar math the
    /// unblocked tools do, which the §VI comparison partly measures).
    pub fn stat_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>, stat: LdStats) -> LdMatrix {
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        let n_samples = v.n_samples();
        assert!(n_samples > 0, "cannot compute LD with zero samples");
        let counts = self.counts_matrix(v);
        let inv_n = 1.0 / n_samples as f64;
        let mut out = LdMatrix::zeros(n);
        let policy = self.policy;
        let packed = out.packed_mut();
        let row_offset = |i: usize| i * n - (i * i - i) / 2;
        let counts_ref = &counts;
        let packed_ptr = SyncSlice(packed.as_mut_ptr(), packed.len());

        match stat {
            LdStats::RSquared => {
                // batched rank-1 correction: p_i and 1/(p_i(1−p_i)) once
                let p: Vec<f64> =
                    (0..n).map(|j| counts_ref[j * n + j] as f64 * inv_n).collect();
                let undef = match policy {
                    NanPolicy::Propagate => f64::NAN,
                    NanPolicy::Zero => 0.0,
                };
                let inv_var: Vec<f64> = p
                    .iter()
                    .map(|&pj| {
                        let var = pj * (1.0 - pj);
                        if var > 0.0 {
                            1.0 / var
                        } else {
                            undef // NaN/0 propagates through the products
                        }
                    })
                    .collect();
                let p = &p;
                let inv_var = &inv_var;
                parallel_for(self.threads, n, |rows| {
                    for i in rows {
                        let off = row_offset(i);
                        // SAFETY: rows own disjoint packed ranges.
                        let dst = unsafe { packed_ptr.slice(off, n - i) };
                        let (p_i, iv_i) = (p[i], inv_var[i]);
                        let row = &counts_ref[i * n..i * n + n];
                        for (t, j) in (i..n).enumerate() {
                            let d = row[j] as f64 * inv_n - p_i * p[j];
                            dst[t] = (d * d) * iv_i * inv_var[j];
                        }
                    }
                });
            }
            _ => {
                parallel_for(self.threads, n, |rows| {
                    for i in rows {
                        let off = row_offset(i);
                        // SAFETY: rows own disjoint packed ranges.
                        let dst = unsafe { packed_ptr.slice(off, n - i) };
                        let c_ii = counts_ref[i * n + i];
                        for (t, j) in (i..n).enumerate() {
                            dst[t] = stat_from_counts(
                                stat,
                                c_ii,
                                counts_ref[j * n + j],
                                counts_ref[i * n + j],
                                inv_n,
                                policy,
                            );
                        }
                    }
                });
            }
        }
        out
    }

    /// All-pairs `r²` (Eq. 2) — the paper's headline output.
    pub fn r2_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> LdMatrix {
        self.stat_matrix(g, LdStats::RSquared)
    }

    /// All-pairs raw `D` (Eq. 5).
    pub fn d_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> LdMatrix {
        self.stat_matrix(g, LdStats::D)
    }

    /// All-pairs `D'`.
    pub fn d_prime_matrix<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> LdMatrix {
        self.stat_matrix(g, LdStats::DPrime)
    }

    /// Cross-matrix statistic between two SNP sets sharing the same sample
    /// set (Fig. 4: long-range LD, distant genes).
    pub fn cross_stat_matrix<'a, 'b>(
        &self,
        a: impl Into<BitMatrixView<'a>>,
        b: impl Into<BitMatrixView<'b>>,
        stat: LdStats,
    ) -> CrossLdMatrix {
        let va: BitMatrixView<'a> = a.into();
        let vb: BitMatrixView<'b> = b.into();
        assert_eq!(va.n_samples(), vb.n_samples(), "sample sets must match");
        let n_samples = va.n_samples();
        assert!(n_samples > 0, "cannot compute LD with zero samples");
        let (m, n) = (va.n_snps(), vb.n_snps());
        let mut counts = vec![0u32; m * n];
        ld_kernels::gemm_counts_mt(&va, &vb, &mut counts, n, self.kind, self.blocks, self.threads);
        let a_counts: Vec<u32> = (0..m).map(|i| va.ones_in_snp(i) as u32).collect();
        let b_counts: Vec<u32> = (0..n).map(|j| vb.ones_in_snp(j) as u32).collect();
        let inv_n = 1.0 / n_samples as f64;
        let mut values = vec![0.0f64; m * n];
        let policy = self.policy;
        {
            let counts_ref = &counts;
            let values_ptr = SyncSlice(values.as_mut_ptr(), values.len());
            if stat == LdStats::RSquared {
                // batched rank-1 correction (see stat_matrix)
                let undef = match policy {
                    NanPolicy::Propagate => f64::NAN,
                    NanPolicy::Zero => 0.0,
                };
                let prep = |counts: &[u32]| -> (Vec<f64>, Vec<f64>) {
                    let p: Vec<f64> = counts.iter().map(|&c| c as f64 * inv_n).collect();
                    let iv = p
                        .iter()
                        .map(|&pj| {
                            let var = pj * (1.0 - pj);
                            if var > 0.0 {
                                1.0 / var
                            } else {
                                undef
                            }
                        })
                        .collect();
                    (p, iv)
                };
                let (pa, iva) = prep(&a_counts);
                let (pb, ivb) = prep(&b_counts);
                let (pa, iva, pb, ivb) = (&pa, &iva, &pb, &ivb);
                parallel_for(self.threads, m, |rows| {
                    for i in rows {
                        // SAFETY: disjoint row slices of `values`.
                        let dst = unsafe { values_ptr.slice(i * n, n) };
                        let (p_i, iv_i) = (pa[i], iva[i]);
                        let row = &counts_ref[i * n..i * n + n];
                        for j in 0..n {
                            let d = row[j] as f64 * inv_n - p_i * pb[j];
                            dst[j] = (d * d) * iv_i * ivb[j];
                        }
                    }
                });
            } else {
                let a_ref = &a_counts;
                let b_ref = &b_counts;
                parallel_for(self.threads, m, |rows| {
                    for i in rows {
                        // SAFETY: disjoint row slices of `values`.
                        let dst = unsafe { values_ptr.slice(i * n, n) };
                        for j in 0..n {
                            dst[j] = stat_from_counts(
                                stat,
                                a_ref[i],
                                b_ref[j],
                                counts_ref[i * n + j],
                                inv_n,
                                policy,
                            );
                        }
                    }
                });
            }
        }
        CrossLdMatrix::from_dense(m, n, values)
    }

    /// Cross-matrix `r²`.
    pub fn r2_cross<'a, 'b>(
        &self,
        a: impl Into<BitMatrixView<'a>>,
        b: impl Into<BitMatrixView<'b>>,
    ) -> CrossLdMatrix {
        self.cross_stat_matrix(a, b, LdStats::RSquared)
    }

    /// Statistics for a single SNP pair (no matrix materialized).
    pub fn ld_pair(&self, g: &BitMatrix, i: usize, j: usize) -> LdPair {
        let n = g.n_samples() as u64;
        let si = g.snp_words(i);
        let sj = g.snp_words(j);
        let c_ij = and_popcount(si, sj);
        ld_pair_from_counts(g.ones_in_snp(i), g.ones_in_snp(j), c_ij, n, self.policy)
    }

    /// Streams the all-pairs statistic in `tile × tile` blocks without ever
    /// materializing the full matrix — for SNP counts where `O(n²)` memory
    /// is prohibitive. Visits only tiles on or above the block diagonal
    /// (`col_start ≥ row_start`); within diagonal tiles the full square is
    /// reported (callers that want strict pairs filter `i < j`).
    pub fn stat_tiled<'a, F>(
        &self,
        g: impl Into<BitMatrixView<'a>>,
        stat: LdStats,
        tile: usize,
        mut visit: F,
    ) where
        F: FnMut(&TileVisit<'_>),
    {
        let v: BitMatrixView<'a> = g.into();
        let n = v.n_snps();
        let n_samples = v.n_samples();
        assert!(tile > 0, "tile size must be positive");
        assert!(n_samples > 0, "cannot compute LD with zero samples");
        let inv_n = 1.0 / n_samples as f64;
        let diag: Vec<u32> = (0..n).map(|j| v.ones_in_snp(j) as u32).collect();
        let mut counts = vec![0u32; tile * tile];
        let mut values = vec![0.0f64; tile * tile];
        let mut bi = 0usize;
        while bi < n {
            let rows = tile.min(n - bi);
            let va = v.subview(bi, bi + rows);
            let mut bj = bi;
            while bj < n {
                let cols = tile.min(n - bj);
                let vb = v.subview(bj, bj + cols);
                gemm_counts_buf(
                    &va,
                    &vb,
                    &mut counts[..rows * cols],
                    cols,
                    self.kind,
                    self.blocks,
                );
                for r in 0..rows {
                    for c in 0..cols {
                        values[r * cols + c] = stat_from_counts(
                            stat,
                            diag[bi + r],
                            diag[bj + c],
                            counts[r * cols + c],
                            inv_n,
                            self.policy,
                        );
                    }
                }
                visit(&TileVisit {
                    row_start: bi,
                    col_start: bj,
                    rows,
                    cols,
                    values: &values[..rows * cols],
                });
                bj += tile;
            }
            bi += tile;
        }
    }

    /// Streamed `r²` tiles (see [`LdEngine::stat_tiled`]).
    pub fn r2_tiled<'a, F>(&self, g: impl Into<BitMatrixView<'a>>, tile: usize, visit: F)
    where
        F: FnMut(&TileVisit<'_>),
    {
        self.stat_tiled(g, LdStats::RSquared, tile, visit)
    }

    /// Derived-allele frequencies of every SNP (Eq. 3).
    pub fn allele_frequencies<'a>(&self, g: impl Into<BitMatrixView<'a>>) -> Vec<f64> {
        let v: BitMatrixView<'a> = g.into();
        v.allele_frequencies()
    }
}

/// A Send+Sync raw-pointer wrapper for handing disjoint row slices to the
/// worker team. Soundness argument: every use partitions the buffer by
/// row index, and each row index is visited by exactly one worker
/// (`parallel_for` ranges are disjoint).
struct SyncSlice(*mut f64, usize);
unsafe impl Send for SyncSlice {}
unsafe impl Sync for SyncSlice {}

impl SyncSlice {
    /// Reborrows the disjoint subrange `[off, off + len)`.
    ///
    /// # Safety
    /// Callers must guarantee no two live slices returned from this method
    /// overlap (the engine's row partitioning does).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, off: usize, len: usize) -> &mut [f64] {
        debug_assert!(off + len <= self.1);
        std::slice::from_raw_parts_mut(self.0.add(off), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BitMatrix {
        // 6 samples × 4 SNPs with known relationships:
        // snp0 == snp1 (perfect LD), snp2 independent-ish, snp3 complement of snp0
        BitMatrix::from_rows(
            6,
            4,
            [
                [1u8, 1, 1, 0],
                [1, 1, 0, 0],
                [1, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 1, 1],
                [0, 0, 0, 1],
            ],
        )
        .unwrap()
    }

    #[test]
    fn r2_of_identical_snps_is_one() {
        let g = toy();
        let r2 = LdEngine::new().r2_matrix(&g);
        assert!((r2.get(0, 1) - 1.0).abs() < 1e-12);
        assert!((r2.get(0, 3) - 1.0).abs() < 1e-12, "complement is also perfect r²");
    }

    #[test]
    fn diagonal_is_one_for_polymorphic() {
        let g = toy();
        let r2 = LdEngine::new().r2_matrix(&g);
        for j in 0..4 {
            assert!((r2.get(j, j) - 1.0).abs() < 1e-12, "snp {j}");
        }
    }

    #[test]
    fn engine_matches_pairwise() {
        let g = toy();
        let e = LdEngine::new();
        let r2 = e.r2_matrix(&g);
        let d = e.d_matrix(&g);
        let dp = e.d_prime_matrix(&g);
        for i in 0..4 {
            for j in 0..4 {
                let p = e.ld_pair(&g, i, j);
                assert!((r2.get(i, j) - p.r2).abs() < 1e-12, "r2 ({i},{j})");
                assert!((d.get(i, j) - p.d).abs() < 1e-12, "d ({i},{j})");
                assert!((dp.get(i, j) - p.d_prime).abs() < 1e-12, "d' ({i},{j})");
            }
        }
    }

    #[test]
    fn counts_matrix_diagonal() {
        let g = toy();
        let c = LdEngine::new().counts_matrix(&g);
        assert_eq!(c[0], 3); // |snp0|
        assert_eq!(c[5], 3); // |snp1|
        assert_eq!(c[0 * 4 + 1], 3); // snp0 ∧ snp1
        assert_eq!(c[0 * 4 + 3], 0); // snp0 ∧ snp3 (complement)
    }

    #[test]
    fn monomorphic_snp_policy() {
        let g = BitMatrix::from_rows(4, 2, [[0u8, 1], [0, 0], [0, 1], [0, 0]]).unwrap();
        let nan = LdEngine::new().r2_matrix(&g);
        assert!(nan.get(0, 1).is_nan());
        let zero = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        assert_eq!(zero.get(0, 1), 0.0);
    }

    #[test]
    fn cross_matrix_consistent_with_square() {
        let g = toy();
        let e = LdEngine::new();
        let full = e.r2_matrix(&g);
        let a = g.view(0, 2);
        let b = g.view(2, 4);
        let cross = e.r2_cross(a, b);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (cross.get(i, j) - full.get(i, j + 2)).abs() < 1e-12,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn tiled_matches_full() {
        let g = toy();
        let e = LdEngine::new();
        let full = e.r2_matrix(&g);
        for tile in [1usize, 2, 3, 4, 7] {
            let mut seen = std::collections::HashMap::new();
            e.r2_tiled(&g, tile, |t| {
                for r in 0..t.rows {
                    for c in 0..t.cols {
                        seen.insert((t.row_start + r, t.col_start + c), t.values[r * t.cols + c]);
                    }
                }
            });
            for i in 0..4 {
                for j in i..4 {
                    let got = seen[&(i, j)];
                    let want = full.get(i, j);
                    assert!(
                        (got - want).abs() < 1e-12 || (got.is_nan() && want.is_nan()),
                        "tile={tile} ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn multithreaded_engine_matches_single() {
        let g = toy();
        let one = LdEngine::new().threads(1).r2_matrix(&g);
        let four = LdEngine::new().threads(4).r2_matrix(&g);
        assert_eq!(one.packed().len(), four.packed().len());
        for (a, b) in one.packed().iter().zip(four.packed()) {
            assert!((a - b).abs() < 1e-15 || (a.is_nan() && b.is_nan()));
        }
    }

    #[test]
    fn builder_accessors() {
        let e = LdEngine::new().threads(3).kernel(KernelKind::Scalar);
        assert_eq!(e.thread_count(), 3);
        assert_eq!(e.kernel_kind(), KernelKind::Scalar);
    }

    #[test]
    fn allele_frequencies_match() {
        let g = toy();
        let p = LdEngine::new().allele_frequencies(&g);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn zero_samples_panics() {
        let g = BitMatrix::zeros(0, 3);
        LdEngine::new().r2_matrix(&g);
    }
}
