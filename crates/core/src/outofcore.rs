//! The out-of-core fused driver: slab×panel streaming of `GᵀG` from a
//! chunked tile store.
//!
//! The in-memory fused pipeline ([`crate::fused`]) assumes the packed
//! genotype matrix `G` sits in RAM. This driver lifts that assumption:
//! `G` lives in a [`TileSource`] (a directory of CRC-checked chunks, or
//! the in-memory store) and only a bounded working set is ever resident —
//!
//! * the **A-panel**: the `slab` SNP columns whose rows are being
//!   computed, assembled from the chunks that cover them;
//! * one **column chunk** in compute plus one in flight: a dedicated
//!   prefetch thread reads and CRC-verifies the next chunk while the
//!   current one is multiplied on the `ld-parallel` pool
//!   ([`ld_kernels::gemm_counts_mt`]), a classic double buffer;
//! * a `slab × chunk` u32 counts scratch and the `O(n)` transform
//!   tables, filled span-by-span as chunks first stream past
//!   ([`Transform::fill_span`]).
//!
//! Per slab `[r0, r1)` the column stream covers chunks from the one
//! containing `r0` to the end (rows of the upper triangle need columns
//! `j ≥ r0`), so a slab's own stream also supplies every allele count
//! its transform needs. Counts are exact `u32`s and every statistic is
//! produced by the same [`Transform`] arithmetic as the in-memory path,
//! so the output is **bit-identical** to [`crate::fused`] for every
//! chunk size, slab height and thread count.
//!
//! Interruption, checkpointing and sharding mirror the fused driver:
//! the token/deadline is polled exactly once per *computed* slab, the
//! completed-slab ledger replays resumed slabs without re-reading their
//! chunks (the `chunks_read` counter is the proof), and a
//! [`RunControl::with_shard`] window restricts the slab grid exactly as
//! in [`crate::fused::try_stat_packed_fused`].
//!
//! [`RunControl::with_shard`]: crate::control::RunControl::with_shard

use crate::checkpoint::{CheckpointState, SlabRecord};
use crate::control::RunControl;
use crate::error::LdError;
use crate::fused::{
    cancelled_error, packed_row_offset, poll_deadline, resolved_kernel_name, FusedConfig,
    RowSlabVisit, Transform,
};
use crate::stats::LdStats;
use crate::tilestore::{TileSource, TileStoreMeta};
use ld_bitmat::{AlignedWords, BitMatrix};
use ld_kernels::gemm_counts_mt;
use ld_trace::recorder::{Span, SpanKind};
use ld_trace::{Counter, Stopwatch};
use std::sync::mpsc;
use std::time::Instant;

fn store_err(message: String) -> LdError {
    LdError::TileStore { message }
}

/// Where a finished slab's statistics go.
pub(crate) enum SlabSink<'a> {
    /// Write into the packed upper triangle (the matrix driver).
    Packed(&'a mut [f64]),
    /// Write into a reusable `slab × n` buffer and hand each slab to the
    /// visitor (the streaming driver; never checkpointed).
    Rows {
        /// Scratch of at least `slab × n` f64 (row stride is `n − r0`).
        values: &'a mut [f64],
        /// Per-slab visitor, called on the driver's thread.
        visit: &'a mut dyn FnMut(&RowSlabVisit<'_>),
    },
}

/// Sequential checkpoint bookkeeping (the driver computes slabs in
/// order on one thread; only the GEMM inside a slab is parallel).
struct OocCkpt<'a> {
    sink: &'a dyn crate::checkpoint::CheckpointSink,
    every_slabs: usize,
    every_secs: Option<f64>,
    header: CheckpointState,
    since_last: usize,
    last_write: Instant,
}

impl OocCkpt<'_> {
    /// Snapshots every done slab of the window into a checkpoint image.
    fn write_snapshot(
        &self,
        done: &[bool],
        packed: &[f64],
        n: usize,
        slab: usize,
        window: (usize, usize),
    ) -> Result<(), String> {
        let mut state = self.header.clone();
        state.records.clear();
        for (k, &slab_done) in done.iter().enumerate().take(window.1).skip(window.0) {
            if !slab_done {
                continue;
            }
            let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
            let off = packed_row_offset(n, r0);
            let len = packed_row_offset(n, r1) - off;
            state.records.push(SlabRecord {
                index: k as u64,
                start_row: r0 as u64,
                end_row: r1 as u64,
                values: packed[off..off + len].to_vec(),
            });
        }
        let span = Span::begin(SpanKind::CheckpointFlush);
        let n_records = state.records.len() as u64;
        let r = self.sink.write_checkpoint(&state.to_bytes());
        span.end(n_records);
        r?;
        ld_trace::add(Counter::CheckpointsWritten, 1);
        Ok(())
    }
}

/// Counts the verified read of chunk `index` and, on first sight, folds
/// its per-SNP allele counts into the transform tables.
fn ingest_chunk(
    tr: &mut Transform,
    tabled: &mut [bool],
    meta: &TileStoreMeta,
    index: usize,
    words: &[u64],
) -> Result<(), LdError> {
    ld_trace::add(Counter::ChunksRead, 1);
    ld_trace::add(Counter::StoreBytesRead, meta.chunk_bytes(index) as u64);
    if tabled[index] {
        return Ok(());
    }
    let (s, e) = meta.chunk_span(index);
    let wps = meta.words_per_snp;
    let mut diag = Vec::with_capacity(e - s);
    for j in 0..(e - s) {
        let ones: u64 = words[j * wps..(j + 1) * wps]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        diag.push(u32::try_from(ones).map_err(|_| LdError::SizeOverflow {
            what: "per-SNP allele count (> u32::MAX haplotypes)",
        })?);
    }
    let sw = Stopwatch::start();
    tr.fill_span(s, &diag);
    ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
    tabled[index] = true;
    Ok(())
}

/// Assembles the A-panel for rows `[r0, r1)`: reads the chunks covering
/// the span, concatenates their words into one chunk-aligned matrix, and
/// returns it with the row span's offset inside it.
fn assemble_panel(
    src: &dyn TileSource,
    tr: &mut Transform,
    tabled: &mut [bool],
    r0: usize,
    r1: usize,
) -> Result<(BitMatrix, usize), LdError> {
    let meta = src.meta();
    let (first, last) = match meta.chunks_covering(r0, r1) {
        Some(range) => range,
        None => unreachable!("slab row spans are non-empty"),
    };
    let base = first * meta.chunk_snps;
    let cols = ((last + 1) * meta.chunk_snps).min(meta.n_snps) - base;
    let wps = meta.words_per_snp;
    let mut panel = AlignedWords::zeroed(cols * wps);
    for c in first..=last {
        let words = src.read_chunk(c)?;
        ingest_chunk(tr, tabled, meta, c, &words)?;
        let (cs, _) = meta.chunk_span(c);
        let off = (cs - base) * wps;
        panel[off..off + words.len()].copy_from_slice(&words);
    }
    let panel = BitMatrix::from_words(meta.n_samples, cols, panel)
        .map_err(|e| store_err(format!("panel rows {r0}..{r1}: damaged packed words: {e}")))?;
    Ok((panel, r0 - base))
}

/// The out-of-core slab driver. See the module docs for the streaming
/// scheme; `cfg.slab` must already be budget-adjusted by the engine.
///
/// Checkpoint plans are honored only in [`SlabSink::Packed`] mode — the
/// engine rejects them for the streaming form before calling here, same
/// as the in-memory rows driver.
pub(crate) fn try_stat_outofcore(
    src: &dyn TileSource,
    stat: LdStats,
    cfg: &FusedConfig,
    ctl: &RunControl<'_>,
    mut out: SlabSink<'_>,
) -> Result<(), LdError> {
    if ctl.checkpoint.is_some() && matches!(out, SlabSink::Rows { .. }) {
        return Err(LdError::InvalidConfig {
            message:
                "checkpointing requires the packed-matrix driver (streaming slabs are not retained)",
        });
    }
    let meta = src.meta().clone();
    let n = meta.n_snps;
    if n == 0 {
        return Ok(());
    }
    // Validate the kernel up front: the GEMM entry point would otherwise
    // panic on an unsupported CPU after chunks were already read.
    let kernel = resolved_kernel_name(cfg.kind)?;
    let slab = cfg.slab.max(1).min(n);
    let n_slabs = n.div_ceil(slab);
    let (lo_slab, hi_slab) = match ctl.shard {
        Some(r) => {
            if r.is_empty() || r.end > n_slabs {
                return Err(LdError::InvalidConfig {
                    message: "shard slab range does not fit the run's slab grid",
                });
            }
            (r.start, r.end)
        }
        None => (0, n_slabs),
    };
    let run_token = ctl.run_token();
    let deadline = ctl.deadline;
    let token_ref = run_token.as_ref();
    // Pre-trip: an already-expired deadline stops the run before any
    // chunk is read (see try_stat_packed_fused).
    poll_deadline(deadline, token_ref);
    // Transform tables start empty and are filled chunk-by-chunk as the
    // store streams past; allocation is the O(n) fixed overhead.
    let span = Span::begin(SpanKind::Transform);
    let sw = Stopwatch::start();
    let mut tr = Transform::empty(n, meta.n_samples, stat, cfg.policy)?;
    ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
    span.end(n as u64);
    let mut tabled = vec![false; meta.n_chunks()];
    let mut done = vec![false; n_slabs];
    // Resume (packed mode only): validate against the *store's* identity
    // — the manifest fingerprint equals the in-memory matrix fingerprint,
    // so no chunk needs to be re-read just to hash the input.
    let mut ckpt = match (&ctl.checkpoint, &mut out) {
        (Some(plan), SlabSink::Packed(packed)) => {
            if let Some(state) = &plan.resume {
                state.validate_against_meta(
                    n as u64,
                    meta.n_samples as u64,
                    meta.fingerprint,
                    stat,
                    cfg.policy,
                    slab,
                    kernel,
                )?;
                let mut resumed = 0usize;
                for rec in &state.records {
                    let (r0, r1) = (rec.start_row as usize, rec.end_row as usize);
                    let k = rec.index as usize;
                    if k < lo_slab || k >= hi_slab {
                        return Err(LdError::Checkpoint {
                            message: format!(
                                "resume rejected: checkpoint slab {k} (rows {r0}..{r1}) \
                                 lies outside this shard's slab range {lo_slab}..{hi_slab}"
                            ),
                        });
                    }
                    let off = packed_row_offset(n, r0);
                    let len = packed_row_offset(n, r1) - off;
                    packed[off..off + len].copy_from_slice(&rec.values);
                    done[k] = true;
                    resumed += 1;
                }
                ld_trace::add(Counter::ResumeSlabsSkipped, resumed as u64);
            }
            Some(OocCkpt {
                sink: plan.sink,
                every_slabs: plan.every_slabs,
                every_secs: plan.every_secs,
                header: CheckpointState {
                    stat,
                    policy: cfg.policy,
                    n_snps: n as u64,
                    n_samples: meta.n_samples as u64,
                    matrix_hash: meta.fingerprint,
                    slab: slab as u64,
                    n_slabs: n_slabs as u64,
                    kernel: kernel.to_owned(),
                    records: Vec::new(),
                },
                since_last: 0,
                last_write: Instant::now(),
            })
        }
        _ => None,
    };
    // Counts scratch: one slab × one chunk — the block the GEMM fills
    // per streamed chunk. Reused across the whole run.
    let span = Span::begin(SpanKind::Alloc);
    let sw = Stopwatch::start();
    let mut counts =
        crate::error::try_zeroed_vec::<u32>(slab * meta.chunk_snps.min(n), "block counts scratch")?;
    ld_trace::add(Counter::KernelNs, sw.elapsed_ns());
    span.end((counts.len() * 4) as u64);
    // Modeled transient footprint: A-panel (chunk-aligned), two chunk
    // buffers (compute + in-flight), block counts, transform tables, and
    // the output (packed triangle, or the slab values buffer).
    let chunk_bytes = meta.chunk_snps.min(n.max(1)) * meta.words_per_snp * 8;
    let out_bytes = match &out {
        SlabSink::Packed(p) => p.len() * 8,
        SlabSink::Rows { values, .. } => values.len() * 8,
    };
    ld_trace::record_peak(
        Counter::AllocPeakBytes,
        ((slab + 2 * meta.chunk_snps) * meta.words_per_snp * 8
            + 2 * chunk_bytes
            + counts.len() * 4
            + 20 * n
            + out_bytes) as u64,
    );
    let n_chunks = meta.n_chunks();
    let mut interrupted = false;
    for slab_idx in lo_slab..hi_slab {
        if done[slab_idx] {
            // replayed from the checkpoint — skipped without polling and
            // without touching the store
            continue;
        }
        if token_ref.is_some_and(|t| t.is_cancelled()) {
            interrupted = true;
            break;
        }
        // Slab-granular interruption point, mirroring the fused driver:
        // one poll per *computed* slab (a deadline tripping here still
        // lets the current slab finish — claimed slabs always complete).
        poll_deadline(deadline, token_ref);
        ld_trace::add(Counter::CancelPolls, 1);
        let (r0, r1) = (slab_idx * slab, ((slab_idx + 1) * slab).min(n));
        let h = r1 - r0;
        let (panel, panel_off) = assemble_panel(src, &mut tr, &mut tabled, r0, r1)?;
        let a_view = panel.view(panel_off, panel_off + h);
        let width = n - r0;
        // Column stream: every chunk from the one containing r0 to the
        // end, read one ahead of compute by the prefetch thread.
        let first_chunk = r0 / meta.chunk_snps;
        std::thread::scope(|scope| -> Result<(), LdError> {
            let (tx, rx) = mpsc::sync_channel::<Result<(usize, AlignedWords), LdError>>(1);
            scope.spawn(move || {
                for c in first_chunk..n_chunks {
                    let msg = src.read_chunk(c).map(|w| (c, w));
                    let stop = msg.is_err();
                    if tx.send(msg).is_err() || stop {
                        return;
                    }
                }
            });
            for c in first_chunk..n_chunks {
                let msg = match rx.try_recv() {
                    Ok(m) => {
                        ld_trace::add(Counter::PrefetchHits, 1);
                        m
                    }
                    Err(mpsc::TryRecvError::Empty) => {
                        let sw = Stopwatch::start();
                        let m = rx.recv().map_err(|_| {
                            store_err(format!("chunk {c}: prefetch thread terminated early"))
                        })?;
                        ld_trace::add(Counter::PrefetchStallNs, sw.elapsed_ns());
                        m
                    }
                    Err(mpsc::TryRecvError::Disconnected) => {
                        return Err(store_err(format!(
                            "chunk {c}: prefetch thread terminated early"
                        )))
                    }
                };
                let (idx, words) = msg?;
                debug_assert_eq!(idx, c);
                ingest_chunk(&mut tr, &mut tabled, &meta, c, &words)?;
                let (c0, c1) = meta.chunk_span(c);
                let cc = c1 - c0;
                let b = BitMatrix::from_words(meta.n_samples, cc, words)
                    .map_err(|e| store_err(format!("chunk {c}: damaged packed words: {e}")))?;
                gemm_counts_mt(
                    &a_view,
                    &b.full_view(),
                    &mut counts[..h * cc],
                    cc,
                    cfg.kind,
                    cfg.blocks,
                    cfg.threads,
                );
                let span = Span::begin(SpanKind::Transform);
                let sw = Stopwatch::start();
                for r in 0..h {
                    let i = r0 + r;
                    let j_start = c0.max(i);
                    if j_start >= c1 {
                        continue;
                    }
                    let src_slice = &counts[r * cc + (j_start - c0)..r * cc + cc];
                    match &mut out {
                        SlabSink::Packed(packed) => {
                            let off = packed_row_offset(n, i) + (j_start - i);
                            tr.apply_span(
                                i,
                                j_start,
                                src_slice,
                                &mut packed[off..off + (c1 - j_start)],
                            );
                        }
                        SlabSink::Rows { values, .. } => {
                            let off = r * width + (j_start - r0);
                            tr.apply_span(
                                i,
                                j_start,
                                src_slice,
                                &mut values[off..off + (c1 - j_start)],
                            );
                        }
                    }
                }
                ld_trace::add(Counter::TransformNs, sw.elapsed_ns());
                span.end(slab_idx as u64);
            }
            Ok(())
        })?;
        ld_trace::add(Counter::SlabsEmitted, 1);
        ld_trace::recorder::instant(SpanKind::SlabEmit, slab_idx as u64);
        done[slab_idx] = true;
        match &mut out {
            SlabSink::Packed(packed) => {
                if let Some(ck) = ckpt.as_mut() {
                    ck.since_last += 1;
                    let due = ck.since_last >= ck.every_slabs
                        || ck
                            .every_secs
                            .is_some_and(|s| ck.last_write.elapsed().as_secs_f64() >= s);
                    if due {
                        ck.write_snapshot(&done, packed, n, slab, (lo_slab, hi_slab))
                            .map_err(|msg| LdError::Checkpoint {
                                message: format!("checkpoint write failed mid-run: {msg}"),
                            })?;
                        ck.since_last = 0;
                        ck.last_write = Instant::now();
                    }
                }
            }
            SlabSink::Rows { values, visit } => {
                let slab_visit = RowSlabVisit {
                    row_start: r0,
                    n_rows: h,
                    n_snps: n,
                    ldv: width,
                    values: &values[..h * width],
                };
                visit(&slab_visit);
            }
        }
    }
    if !interrupted && done[lo_slab..hi_slab].iter().all(|&d| d) {
        return Ok(());
    }
    let completed = done[lo_slab..hi_slab].iter().filter(|&&d| d).count();
    // Final flush: make the partial run resumable before reporting it.
    if let (Some(ck), SlabSink::Packed(packed)) = (&ckpt, &out) {
        if let Err(msg) = ck.write_snapshot(&done, packed, n, slab, (lo_slab, hi_slab)) {
            return Err(LdError::Checkpoint {
                message: format!("final checkpoint flush failed: {msg}"),
            });
        }
    }
    Err(cancelled_error(token_ref, completed))
}
