//! Chunked tile store: the serialization format that feeds the
//! out-of-core driver.
//!
//! A store is a sequence of fixed-size **chunks** — `chunk_snps`
//! consecutive SNP columns in the same packed SNP-major word layout the
//! in-memory [`BitMatrix`] uses — plus a small versioned JSON
//! **manifest** describing the geometry. Because a chunk is a verbatim
//! slice of the packed layout, loading one is a copy, not a re-pack, and
//! the out-of-core GEMM sees bit-identical operands to the in-memory
//! path.
//!
//! Chunk wire format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "LDTILE01"
//! 8       8     chunk index (u64)
//! 16      8     first SNP covered (u64)
//! 24      8     SNPs in this chunk (u64)
//! 32      8     n_samples (u64)
//! 40      8     words_per_snp (u64)
//! 48      8·w   packed words (snps × words_per_snp u64s)
//! 48+8·w  4     CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! The header pins the chunk to its position *and* store geometry, so a
//! chunk file moved between stores (or renamed) is rejected even when
//! its CRC is intact. The manifest records each chunk's trailer CRC and
//! encoded size, and carries the whole-matrix [`Fingerprinter`] hash —
//! the exact value [`matrix_fingerprint`] computes in memory — so
//! checkpoints taken against a store validate against the equivalent
//! in-memory matrix and vice versa.
//!
//! The manifest itself is damage-proofed the same way the tuned CPU
//! profile is: a `crc32` field over the exact byte span of the `payload`
//! value as serialized. Any truncation or bit flip of either a chunk or
//! the manifest surfaces as a typed [`LdError::TileStore`] naming the
//! offending piece — a damaged store must never decode into a silently
//! wrong panel.
//!
//! This module owns the *format* and the in-memory backend
//! ([`MemoryTileStore`]); the file-backed directory store lives in
//! `ld-io` (`ld_io::tilestore`), which layers atomic writes and
//! filesystem error reporting on the byte-level codec here.
//!
//! [`matrix_fingerprint`]: crate::checkpoint::matrix_fingerprint

use crate::checkpoint::{crc32, Fingerprinter};
use crate::error::LdError;
use ld_bitmat::{words_for, AlignedWords, BitMatrix};

/// Magic bytes opening every chunk (format version baked in).
pub const CHUNK_MAGIC: &[u8; 8] = b"LDTILE01";

/// Bytes of the fixed chunk header preceding the packed words.
pub const CHUNK_HEADER_BYTES: usize = 48;

/// Bytes of the CRC-32 trailer closing every chunk.
pub const CHUNK_TRAILER_BYTES: usize = 4;

/// Manifest format version this build reads and writes.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// Default chunk width (SNP columns per chunk) used by the CLI importer.
pub const DEFAULT_CHUNK_SNPS: usize = 1024;

fn store_err(message: String) -> LdError {
    LdError::TileStore { message }
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

/// The geometry and identity of a tile store: everything the out-of-core
/// driver needs to plan a run before reading a single chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileStoreMeta {
    /// Samples per SNP (the `k` dimension).
    pub n_samples: usize,
    /// Total SNP columns across all chunks.
    pub n_snps: usize,
    /// SNP columns per chunk (the last chunk may be shorter).
    pub chunk_snps: usize,
    /// `u64` words per packed SNP column (`words_for(n_samples)`).
    pub words_per_snp: usize,
    /// Whole-matrix FNV-1a fingerprint — equals
    /// [`matrix_fingerprint`](crate::checkpoint::matrix_fingerprint) of
    /// the matrix the store was imported from.
    pub fingerprint: u64,
}

impl TileStoreMeta {
    /// Number of chunks in the store.
    pub fn n_chunks(&self) -> usize {
        if self.n_snps == 0 {
            0
        } else {
            self.n_snps.div_ceil(self.chunk_snps.max(1))
        }
    }

    /// Half-open SNP span `[start, end)` covered by chunk `index`.
    pub fn chunk_span(&self, index: usize) -> (usize, usize) {
        let start = index * self.chunk_snps;
        (start, (start + self.chunk_snps).min(self.n_snps))
    }

    /// SNP columns in chunk `index`.
    pub fn chunk_len(&self, index: usize) -> usize {
        let (s, e) = self.chunk_span(index);
        e - s
    }

    /// Encoded byte size of chunk `index` (header + words + trailer).
    pub fn chunk_bytes(&self, index: usize) -> usize {
        CHUNK_HEADER_BYTES + self.chunk_len(index) * self.words_per_snp * 8 + CHUNK_TRAILER_BYTES
    }

    /// Canonical file name of chunk `index` in a directory store.
    pub fn chunk_file(index: usize) -> String {
        format!("chunk_{index:06}.bin")
    }

    /// The chunk range `[first, last]` that covers SNP span
    /// `[snp_lo, snp_hi)`; `None` when the span is empty.
    pub fn chunks_covering(&self, snp_lo: usize, snp_hi: usize) -> Option<(usize, usize)> {
        if snp_lo >= snp_hi || self.chunk_snps == 0 {
            return None;
        }
        Some((snp_lo / self.chunk_snps, (snp_hi - 1) / self.chunk_snps))
    }
}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// A readable tile store. `Sync` because the out-of-core driver reads
/// from a prefetch thread while compute runs on the caller's thread.
///
/// `read_chunk` must be *verified*: implementations return the decoded
/// packed words only after every integrity check (CRC, header geometry)
/// passes, and a typed [`LdError::TileStore`] naming the chunk
/// otherwise.
pub trait TileSource: Sync {
    /// The store's geometry and identity.
    fn meta(&self) -> &TileStoreMeta;

    /// Reads, verifies and decodes chunk `index`, returning its packed
    /// words (`chunk_len(index) × words_per_snp` u64s).
    fn read_chunk(&self, index: usize) -> Result<AlignedWords, LdError>;
}

/// A writable tile store backend: receives already-encoded chunk bytes
/// in index order, then the finished manifest. [`export_matrix`] drives
/// the encoding; implementations only place bytes (a `Vec` push for the
/// in-memory store, an atomic file write for the directory store).
pub trait TileSink {
    /// Persists the encoded bytes of chunk `index`.
    fn write_chunk(&mut self, index: usize, bytes: &[u8]) -> Result<(), LdError>;

    /// Persists the manifest after every chunk has been written.
    fn finish(&mut self, manifest_json: &str) -> Result<(), LdError>;
}

// ---------------------------------------------------------------------------
// Chunk codec
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_le_bytes(b)
}

/// Encodes chunk `index` of a store with geometry `meta` from its packed
/// `words` (length must be `chunk_len(index) × words_per_snp`).
pub fn encode_chunk(meta: &TileStoreMeta, index: usize, words: &[u64]) -> Vec<u8> {
    let (start, _) = meta.chunk_span(index);
    let snps = meta.chunk_len(index);
    debug_assert_eq!(words.len(), snps * meta.words_per_snp);
    let mut out = Vec::with_capacity(meta.chunk_bytes(index));
    out.extend_from_slice(CHUNK_MAGIC);
    put_u64(&mut out, index as u64);
    put_u64(&mut out, start as u64);
    put_u64(&mut out, snps as u64);
    put_u64(&mut out, meta.n_samples as u64);
    put_u64(&mut out, meta.words_per_snp as u64);
    for &w in words {
        put_u64(&mut out, w);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The CRC-32 a well-formed encoding of chunk `index` carries in its
/// trailer (recorded in the manifest so tools can audit chunk files
/// without decoding them).
pub fn chunk_trailer_crc(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < CHUNK_TRAILER_BYTES {
        return None;
    }
    let tail = &bytes[bytes.len() - CHUNK_TRAILER_BYTES..];
    Some(u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]))
}

/// Verifies and decodes chunk `index`: magic, every header field against
/// `meta`, exact length, and the CRC-32 trailer. Any mismatch is a
/// [`LdError::TileStore`] whose message starts with `chunk {index}:` —
/// file-backed stores prepend the file name.
pub fn decode_chunk(
    meta: &TileStoreMeta,
    index: usize,
    bytes: &[u8],
) -> Result<AlignedWords, LdError> {
    let fail = |what: String| store_err(format!("chunk {index}: {what}"));
    let expected = meta.chunk_bytes(index);
    if bytes.len() != expected {
        return Err(fail(format!(
            "truncated or oversized ({} bytes, expected {expected})",
            bytes.len()
        )));
    }
    let crc_stored = match chunk_trailer_crc(bytes) {
        Some(c) => c,
        None => return Err(fail("missing CRC trailer".to_owned())),
    };
    let body = &bytes[..bytes.len() - CHUNK_TRAILER_BYTES];
    let crc_actual = crc32(body);
    if crc_stored != crc_actual {
        return Err(fail(format!(
            "CRC-32 mismatch (stored {crc_stored:#010x}, computed {crc_actual:#010x})"
        )));
    }
    if &bytes[..8] != CHUNK_MAGIC {
        return Err(fail(
            "bad magic (not a tile chunk, or an unknown format version)".to_owned(),
        ));
    }
    let (start, _) = meta.chunk_span(index);
    let snps = meta.chunk_len(index);
    let header = [
        ("chunk index", read_u64(bytes, 8), index as u64),
        ("first SNP", read_u64(bytes, 16), start as u64),
        ("SNP count", read_u64(bytes, 24), snps as u64),
        ("n_samples", read_u64(bytes, 32), meta.n_samples as u64),
        (
            "words_per_snp",
            read_u64(bytes, 40),
            meta.words_per_snp as u64,
        ),
    ];
    for (field, got, want) in header {
        if got != want {
            return Err(fail(format!(
                "header {field} is {got} but the manifest says {want} \
                 (chunk belongs to a different store or position)"
            )));
        }
    }
    let n_words = snps * meta.words_per_snp;
    let mut words = AlignedWords::zeroed(n_words);
    for (t, w) in words.iter_mut().enumerate() {
        *w = read_u64(bytes, CHUNK_HEADER_BYTES + t * 8);
    }
    Ok(words)
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One chunk's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Chunk index (also its position in the manifest list).
    pub index: usize,
    /// File name relative to the store directory.
    pub file: String,
    /// SNP columns in the chunk.
    pub snps: usize,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// The chunk's CRC-32 trailer value.
    pub crc32: u32,
}

/// The parsed (or about-to-be-serialized) store manifest: geometry plus
/// one entry per chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileManifest {
    /// Store geometry and identity.
    pub meta: TileStoreMeta,
    /// Per-chunk entries, in index order.
    pub chunks: Vec<ChunkEntry>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let mut buf = String::new();
                use std::fmt::Write as _;
                let _ = write!(buf, "\\u{:04x}", c as u32);
                out.push_str(&buf);
            }
            c => out.push(c),
        }
    }
    out
}

impl TileManifest {
    /// Serializes the manifest, computing the payload CRC over the exact
    /// byte span of the `payload` value.
    pub fn to_json(&self) -> String {
        let m = &self.meta;
        let mut chunks = String::new();
        for (t, c) in self.chunks.iter().enumerate() {
            use std::fmt::Write as _;
            if t > 0 {
                chunks.push(',');
            }
            let _ = write!(
                chunks,
                "{{\"index\":{},\"file\":\"{}\",\"snps\":{},\"bytes\":{},\"crc32\":{}}}",
                c.index,
                escape(&c.file),
                c.snps,
                c.bytes,
                c.crc32
            );
        }
        let payload = format!(
            concat!(
                "{{\"n_samples\":{},\"n_snps\":{},\"chunk_snps\":{},",
                "\"words_per_snp\":{},\"fingerprint\":\"{:#018x}\",\"chunks\":[{}]}}"
            ),
            m.n_samples, m.n_snps, m.chunk_snps, m.words_per_snp, m.fingerprint, chunks
        );
        format!(
            "{{\"schema_version\":{},\"crc32\":{},\"payload\":{}}}\n",
            MANIFEST_SCHEMA_VERSION,
            crc32(payload.as_bytes()),
            payload
        )
    }

    /// Parses and fully validates a manifest: JSON structure, schema
    /// version, payload CRC over the raw byte span, field types, and the
    /// internal consistency of the geometry (chunk count, per-chunk SNP
    /// spans and encoded sizes). Every failure is a typed
    /// [`LdError::TileStore`].
    pub fn from_json(text: &str) -> Result<Self, LdError> {
        let fail = |what: String| store_err(format!("manifest: {what}"));
        // The writer always ends the document with a single newline;
        // demanding it back makes *every* truncation detectable (dropping
        // only the final byte would otherwise still parse).
        let Some(text) = text.strip_suffix('\n') else {
            return Err(fail(
                "missing trailing newline (file truncated?)".to_owned(),
            ));
        };
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        let (root, _) = p.value().map_err(|e| fail(format!("invalid JSON: {e}")))?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(fail(format!("trailing garbage at byte {}", p.pos)));
        }
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing or ill-typed schema_version".to_owned()))?;
        if version != MANIFEST_SCHEMA_VERSION {
            return Err(fail(format!(
                "schema_version is {version} (this build reads {MANIFEST_SCHEMA_VERSION})"
            )));
        }
        let crc_stored = root
            .get("crc32")
            .and_then(Json::as_u64)
            .and_then(|c| u32::try_from(c).ok())
            .ok_or_else(|| fail("missing or ill-typed crc32".to_owned()))?;
        let (span_lo, span_hi) = root
            .span("payload")
            .ok_or_else(|| fail("missing payload".to_owned()))?;
        let crc_actual = crc32(&bytes[span_lo..span_hi]);
        if crc_stored != crc_actual {
            return Err(fail(format!(
                "payload CRC-32 mismatch (stored {crc_stored:#010x}, computed {crc_actual:#010x}) \
                 — the manifest is damaged"
            )));
        }
        let payload = root
            .get("payload")
            .ok_or_else(|| fail("missing payload".to_owned()))?;
        let field = |name: &str| -> Result<usize, LdError> {
            payload
                .get(name)
                .and_then(Json::as_u64)
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| fail(format!("missing or ill-typed {name}")))
        };
        let n_samples = field("n_samples")?;
        let n_snps = field("n_snps")?;
        let chunk_snps = field("chunk_snps")?;
        let words_per_snp = field("words_per_snp")?;
        let fp_str = payload
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing or ill-typed fingerprint".to_owned()))?;
        let fingerprint = fp_str
            .strip_prefix("0x")
            .filter(|h| h.len() == 16)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| {
                fail(format!(
                    "fingerprint must be \"0x\" + 16 hex digits, got {fp_str:?}"
                ))
            })?;
        if chunk_snps == 0 {
            return Err(fail("chunk_snps must be at least 1".to_owned()));
        }
        if words_per_snp != words_for(n_samples) {
            return Err(fail(format!(
                "words_per_snp is {words_per_snp} but {n_samples} samples pack into {} words",
                words_for(n_samples)
            )));
        }
        let meta = TileStoreMeta {
            n_samples,
            n_snps,
            chunk_snps,
            words_per_snp,
            fingerprint,
        };
        let list = match payload.get("chunks") {
            Some(Json::Arr(items)) => items,
            _ => return Err(fail("missing or ill-typed chunks list".to_owned())),
        };
        if list.len() != meta.n_chunks() {
            return Err(fail(format!(
                "{} chunk entries but the geometry needs {}",
                list.len(),
                meta.n_chunks()
            )));
        }
        let mut chunks = Vec::with_capacity(list.len());
        for (t, item) in list.iter().enumerate() {
            let cfield = |name: &str| -> Result<u64, LdError> {
                item.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail(format!("chunk entry {t}: missing or ill-typed {name}")))
            };
            let index = cfield("index")? as usize;
            if index != t {
                return Err(fail(format!(
                    "chunk entry {t} has index {index} (entries must be in order)"
                )));
            }
            let file = item
                .get("file")
                .and_then(Json::as_str)
                .filter(|f| !f.is_empty())
                .ok_or_else(|| fail(format!("chunk entry {t}: missing or empty file")))?
                .to_owned();
            let snps = cfield("snps")? as usize;
            if snps != meta.chunk_len(t) {
                return Err(fail(format!(
                    "chunk entry {t} covers {snps} SNPs but the geometry says {}",
                    meta.chunk_len(t)
                )));
            }
            let nbytes = cfield("bytes")?;
            if nbytes != meta.chunk_bytes(t) as u64 {
                return Err(fail(format!(
                    "chunk entry {t} is {nbytes} bytes but the geometry says {}",
                    meta.chunk_bytes(t)
                )));
            }
            let crc = cfield("crc32").and_then(|c| {
                u32::try_from(c)
                    .map_err(|_| fail(format!("chunk entry {t}: crc32 out of u32 range")))
            })?;
            chunks.push(ChunkEntry {
                index,
                file,
                snps,
                bytes: nbytes,
                crc32: crc,
            });
        }
        Ok(TileManifest { meta, chunks })
    }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// Streams `m` into `sink` as `chunk_snps`-column chunks plus a
/// manifest, returning the store's metadata. The fingerprint recorded in
/// the manifest equals
/// [`matrix_fingerprint`](crate::checkpoint::matrix_fingerprint) of `m`,
/// computed incrementally chunk by chunk.
pub fn export_matrix(
    m: &BitMatrix,
    chunk_snps: usize,
    sink: &mut dyn TileSink,
) -> Result<TileStoreMeta, LdError> {
    if chunk_snps == 0 {
        return Err(LdError::InvalidConfig {
            message: "tile-store chunk size must be at least one SNP",
        });
    }
    let n_snps = m.n_snps();
    let mut fp = Fingerprinter::new(n_snps as u64, m.n_samples() as u64);
    for j in 0..n_snps {
        fp.eat_words(m.full_view().snp_words(j));
    }
    let meta = TileStoreMeta {
        n_samples: m.n_samples(),
        n_snps,
        chunk_snps,
        words_per_snp: m.words_per_snp(),
        fingerprint: fp.finish(),
    };
    let mut chunks = Vec::with_capacity(meta.n_chunks());
    for index in 0..meta.n_chunks() {
        let (s, e) = meta.chunk_span(index);
        let encoded = encode_chunk(&meta, index, m.view(s, e).words());
        let crc = match chunk_trailer_crc(&encoded) {
            Some(c) => c,
            None => {
                return Err(store_err(format!(
                    "chunk {index}: encoder produced a trailerless chunk"
                )))
            }
        };
        chunks.push(ChunkEntry {
            index,
            file: TileStoreMeta::chunk_file(index),
            snps: e - s,
            bytes: encoded.len() as u64,
            crc32: crc,
        });
        sink.write_chunk(index, &encoded)?;
    }
    let manifest = TileManifest {
        meta: meta.clone(),
        chunks,
    };
    sink.finish(&manifest.to_json())?;
    Ok(meta)
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// The in-memory tile store: encoded chunks plus a manifest held in
/// RAM. It goes through the exact same codec as the directory store —
/// reads decode and CRC-check the encoded bytes — so format-level tests
/// (and the fault-injection corpus) run without touching a filesystem.
#[derive(Debug, Default)]
pub struct MemoryTileStore {
    meta: Option<TileStoreMeta>,
    chunks: Vec<Vec<u8>>,
    manifest_json: String,
}

impl MemoryTileStore {
    /// An empty store, ready to be filled as a [`TileSink`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Imports `m` into a fresh in-memory store.
    pub fn from_matrix(m: &BitMatrix, chunk_snps: usize) -> Result<Self, LdError> {
        let mut store = Self::new();
        let meta = export_matrix(m, chunk_snps, &mut store)?;
        store.meta = Some(meta);
        Ok(store)
    }

    /// Opens a store from raw parts (a parsed-and-validated manifest
    /// plus encoded chunk buffers) — the corruption corpus rebuilds
    /// stores from damaged bytes through this.
    pub fn open(manifest_json: &str, chunks: Vec<Vec<u8>>) -> Result<Self, LdError> {
        let manifest = TileManifest::from_json(manifest_json)?;
        if chunks.len() != manifest.chunks.len() {
            return Err(store_err(format!(
                "store holds {} chunks but the manifest lists {}",
                chunks.len(),
                manifest.chunks.len()
            )));
        }
        Ok(Self {
            meta: Some(manifest.meta),
            chunks,
            manifest_json: manifest_json.to_owned(),
        })
    }

    /// The manifest as serialized (or received) JSON.
    pub fn manifest_json(&self) -> &str {
        &self.manifest_json
    }

    /// Borrowed encoded bytes of chunk `index` (for tests and audits).
    pub fn chunk_bytes(&self, index: usize) -> &[u8] {
        &self.chunks[index]
    }
}

impl TileSink for MemoryTileStore {
    fn write_chunk(&mut self, index: usize, bytes: &[u8]) -> Result<(), LdError> {
        if index != self.chunks.len() {
            return Err(store_err(format!(
                "chunk {index}: written out of order (expected {})",
                self.chunks.len()
            )));
        }
        self.chunks.push(bytes.to_vec());
        Ok(())
    }

    fn finish(&mut self, manifest_json: &str) -> Result<(), LdError> {
        self.manifest_json = manifest_json.to_owned();
        Ok(())
    }
}

impl TileSource for MemoryTileStore {
    fn meta(&self) -> &TileStoreMeta {
        match &self.meta {
            Some(m) => m,
            None => unreachable!("MemoryTileStore used as a source before import finished"),
        }
    }

    fn read_chunk(&self, index: usize) -> Result<AlignedWords, LdError> {
        let bytes = self.chunks.get(index).ok_or_else(|| {
            store_err(format!(
                "chunk {index}: missing (store holds {} chunks)",
                self.chunks.len()
            ))
        })?;
        decode_chunk(self.meta(), index, bytes)
    }
}

// ---------------------------------------------------------------------------
// Minimal span-tracking JSON parser (same idiom as the tuned-profile
// loader in `ld-kernels`: the workspace builds with no external crates,
// and tracking byte spans lets the CRC be verified over the payload
// exactly as it sits in the file).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json, (usize, usize))>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _, _)| k == key).map(|(_, v, _)| v),
            _ => None,
        }
    }

    fn span(&self, key: &str) -> Option<(usize, usize)> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _, _)| k == key).map(|&(_, _, s)| s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => Some(n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(Json, (usize, usize)), String> {
        self.skip_ws();
        let start = self.pos;
        let v = match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object()?,
            b'[' => self.array()?,
            b'"' => Json::Str(self.string()?),
            b't' => self.literal(b"true", Json::Bool(true))?,
            b'f' => self.literal(b"false", Json::Bool(false))?,
            b'n' => self.literal(b"null", Json::Null)?,
            _ => self.number()?,
        };
        Ok((v, (start, self.pos)))
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected a value"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let (val, span) = self.value()?;
            fields.push((key, val, span));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            let (val, _) = self.value()?;
            items.push(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::matrix_fingerprint;
    use ld_rng::SmallRng;

    fn random_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for s in 0..n_samples {
                if rng.next_u64() % 10 < 4 {
                    m.set(s, j, true);
                }
            }
        }
        m
    }

    #[test]
    fn geometry_helpers() {
        let meta = TileStoreMeta {
            n_samples: 100,
            n_snps: 10,
            chunk_snps: 4,
            words_per_snp: 2,
            fingerprint: 7,
        };
        assert_eq!(meta.n_chunks(), 3);
        assert_eq!(meta.chunk_span(0), (0, 4));
        assert_eq!(meta.chunk_span(2), (8, 10));
        assert_eq!(meta.chunk_len(2), 2);
        assert_eq!(meta.chunk_bytes(0), 48 + 4 * 2 * 8 + 4);
        assert_eq!(meta.chunks_covering(0, 10), Some((0, 2)));
        assert_eq!(meta.chunks_covering(4, 5), Some((1, 1)));
        assert_eq!(meta.chunks_covering(3, 3), None);
        assert_eq!(TileStoreMeta::chunk_file(3), "chunk_000003.bin");
    }

    #[test]
    fn chunk_roundtrip_all_geometries() {
        for (k, n, c) in [(1, 1, 1), (64, 7, 3), (65, 12, 5), (130, 9, 9), (3, 16, 4)] {
            let m = random_matrix(k, n, (k * 1000 + n * 10 + c) as u64);
            let store = MemoryTileStore::from_matrix(&m, c).unwrap();
            assert_eq!(store.meta().fingerprint, matrix_fingerprint(&m.full_view()));
            let mut words = Vec::new();
            for i in 0..store.meta().n_chunks() {
                words.extend_from_slice(&store.read_chunk(i).unwrap());
            }
            assert_eq!(&words[..], m.full_view().words());
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = random_matrix(33, 11, 99);
        let store = MemoryTileStore::from_matrix(&m, 4).unwrap();
        let parsed = TileManifest::from_json(store.manifest_json()).unwrap();
        assert_eq!(&parsed.meta, store.meta());
        assert_eq!(parsed.chunks.len(), 3);
        for (i, c) in parsed.chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.bytes as usize, store.chunk_bytes(i).len());
            assert_eq!(Some(c.crc32), chunk_trailer_crc(store.chunk_bytes(i)));
        }
        // reopen from parts
        let chunks: Vec<Vec<u8>> = (0..3).map(|i| store.chunk_bytes(i).to_vec()).collect();
        let reopened = MemoryTileStore::open(store.manifest_json(), chunks).unwrap();
        for i in 0..3 {
            assert_eq!(
                &reopened.read_chunk(i).unwrap()[..],
                &store.read_chunk(i).unwrap()[..]
            );
        }
    }

    #[test]
    fn chunk_rejects_every_truncation() {
        let m = random_matrix(65, 6, 5);
        let store = MemoryTileStore::from_matrix(&m, 4).unwrap();
        let good = store.chunk_bytes(1).to_vec();
        for len in 0..good.len() {
            let err = decode_chunk(store.meta(), 1, &good[..len]).unwrap_err();
            match err {
                LdError::TileStore { message } => {
                    assert!(message.starts_with("chunk 1:"), "{message}")
                }
                other => panic!("wrong error for truncation at {len}: {other}"),
            }
        }
    }

    #[test]
    fn chunk_rejects_every_bit_flip() {
        let m = random_matrix(65, 6, 6);
        let store = MemoryTileStore::from_matrix(&m, 4).unwrap();
        let good = store.chunk_bytes(0).to_vec();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        decode_chunk(store.meta(), 0, &bad),
                        Err(LdError::TileStore { .. })
                    ),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn chunk_rejects_transplants() {
        // an intact chunk presented at the wrong index, or against a
        // store with different geometry, is refused by its header
        let m = random_matrix(64, 8, 7);
        let store = MemoryTileStore::from_matrix(&m, 4).unwrap();
        let c0 = store.chunk_bytes(0).to_vec();
        let err = decode_chunk(store.meta(), 1, &c0).unwrap_err();
        assert!(err.to_string().contains("chunk 1"), "{err}");
        let mut other = store.meta().clone();
        other.n_samples = 128;
        other.words_per_snp = 2;
        assert!(decode_chunk(&other, 0, &c0).is_err());
    }

    #[test]
    fn manifest_rejects_every_truncation_and_bit_flip() {
        let m = random_matrix(9, 5, 8);
        let store = MemoryTileStore::from_matrix(&m, 2).unwrap();
        let good = store.manifest_json().to_owned();
        for len in 0..good.len() {
            if !good.is_char_boundary(len) {
                continue;
            }
            assert!(
                TileManifest::from_json(&good[..len]).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
        let bytes = good.as_bytes();
        let mut accepted = 0usize;
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.to_vec();
                bad[byte] ^= 1 << bit;
                let Ok(text) = String::from_utf8(bad) else {
                    continue; // not valid UTF-8: unreadable before parsing
                };
                if TileManifest::from_json(&text).is_ok() {
                    accepted += 1;
                }
            }
        }
        assert_eq!(accepted, 0, "some single-bit flips were accepted");
    }

    #[test]
    fn missing_chunk_is_named() {
        let m = random_matrix(10, 6, 9);
        let store = MemoryTileStore::from_matrix(&m, 2).unwrap();
        let err = store.read_chunk(17).unwrap_err();
        assert!(err.to_string().contains("chunk 17"), "{err}");
    }

    #[test]
    fn open_rejects_chunk_count_mismatch() {
        let m = random_matrix(10, 6, 10);
        let store = MemoryTileStore::from_matrix(&m, 2).unwrap();
        let err = MemoryTileStore::open(store.manifest_json(), vec![vec![]; 2]).unwrap_err();
        assert!(matches!(err, LdError::TileStore { .. }), "{err}");
    }

    #[test]
    fn export_rejects_zero_chunk() {
        let m = random_matrix(4, 4, 11);
        assert!(matches!(
            MemoryTileStore::from_matrix(&m, 0),
            Err(LdError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_matrix_has_no_chunks() {
        let m = BitMatrix::zeros(5, 0);
        let store = MemoryTileStore::from_matrix(&m, 4).unwrap();
        assert_eq!(store.meta().n_chunks(), 0);
        let parsed = TileManifest::from_json(store.manifest_json()).unwrap();
        assert!(parsed.chunks.is_empty());
    }
}
