//! Haplotype-block detection ("solid spine of LD", Haploview-style).
//!
//! A haplotype block is a run of SNPs inherited together — the structure
//! GWAS tag-SNP selection exploits. The *solid spine* definition
//! (Barrett et al., Haploview): `[a, b]` is a block when the first and
//! last SNPs are in strong LD with every SNP between them,
//!
//! ```text
//! D'(a, k) ≥ t  and  D'(k, b) ≥ t     for all a < k < b,
//! ```
//!
//! which tolerates historical recombination *within* the block while the
//! spine holds it together. Finding all maximal blocks needs the `D'`
//! band — another consumer of the GEMM engine's batched statistics.

use crate::{LdEngine, LdMatrix, LdStats};
use ld_bitmat::BitMatrix;
use std::ops::Range;

/// Maximum block extent the default searcher considers (Haploview bounds
/// block size for the same O(n·maxblock²) reason).
pub const DEFAULT_MAX_BLOCK: usize = 128;

/// Finds maximal solid-spine blocks in a `D'` matrix, blocks bounded by
/// [`DEFAULT_MAX_BLOCK`] SNPs.
pub fn solid_spine_blocks(dprime: &LdMatrix, threshold: f64) -> Vec<Range<usize>> {
    solid_spine_blocks_bounded(dprime, threshold, DEFAULT_MAX_BLOCK)
}

/// Finds maximal solid-spine blocks with an explicit block-size bound.
///
/// Greedy left-to-right: from each start `a`, every candidate end up to
/// `a + max_block` is validated in full — a spine that fails at one end
/// can hold at a larger one (internal pairs are unconstrained), so no
/// early exit is sound. The longest valid block wins; search resumes after
/// it. Singletons are not reported; NaN `D'` never satisfies the spine.
pub fn solid_spine_blocks_bounded(
    dprime: &LdMatrix,
    threshold: f64,
    max_block: usize,
) -> Vec<Range<usize>> {
    let n = dprime.n_snps();
    let max_block = max_block.max(2);
    let mut out = Vec::new();
    let mut a = 0usize;
    while a + 1 < n {
        let mut best_end = a; // inclusive end of the best block found
        let e_cap = (a + max_block).min(n);
        for e in a + 1..e_cap {
            // spine for [a, e]: left edge to every interior + right edge
            // from every interior, plus the edge pair itself. NaN edges
            // (monomorphic SNPs under `NanPolicy::Propagate`) never extend
            // a block, hence the explicit is_nan arm.
            let edge = dprime.get(a, e);
            if edge.is_nan() || edge < threshold {
                continue;
            }
            let ok =
                (a + 1..e).all(|k| dprime.get(a, k) >= threshold && dprime.get(k, e) >= threshold);
            if ok {
                best_end = e;
            }
        }
        if best_end > a {
            out.push(a..best_end + 1);
            a = best_end + 1;
        } else {
            a += 1;
        }
    }
    out
}

/// Convenience: computes `D'` with `engine` and returns the solid-spine
/// blocks of `g` at `threshold` (0.8 is the conventional cut).
pub fn haplotype_blocks(engine: &LdEngine, g: &BitMatrix, threshold: f64) -> Vec<Range<usize>> {
    let dp = engine.stat_matrix(g, LdStats::DPrime);
    solid_spine_blocks(&dp, threshold)
}

/// Picks one tag SNP per block (the SNP with the highest mean `r²` to the
/// rest of its block) plus every SNP outside any block — a minimal panel
/// that still "sees" every block.
pub fn tag_snps(r2: &LdMatrix, blocks: &[Range<usize>]) -> Vec<usize> {
    let n = r2.n_snps();
    let mut in_block = vec![false; n];
    let mut tags = Vec::new();
    for b in blocks {
        for i in b.clone() {
            in_block[i] = true;
        }
        let best = b.clone().max_by(|&x, &y| {
            let score = |i: usize| -> f64 {
                b.clone()
                    .filter(|&j| j != i)
                    .map(|j| {
                        let v = r2.get(i, j);
                        if v.is_nan() {
                            0.0
                        } else {
                            v
                        }
                    })
                    .sum()
            };
            score(x)
                .partial_cmp(&score(y))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // an empty block contributes no tag (max_by of an empty range)
        if let Some(best) = best {
            tags.push(best);
        }
    }
    for (i, covered) in in_block.iter().enumerate() {
        if !covered {
            tags.push(i);
        }
    }
    tags.sort_unstable();
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NanPolicy;

    fn dp(n: usize, entries: &[(usize, usize, f64)]) -> LdMatrix {
        let mut m = LdMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        for &(i, j, v) in entries {
            m.set(i, j, v);
        }
        m
    }

    #[test]
    fn single_clean_block() {
        // SNPs 1..=3 fully connected at D' = 1
        let m = dp(6, &[(1, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        let blocks = solid_spine_blocks(&m, 0.8);
        assert_eq!(blocks, vec![1..4]);
    }

    #[test]
    fn spine_tolerates_internal_weakness() {
        // edge pairs strong; the internal pair (2,3) weak — still a block,
        // because the spine only constrains pairs touching the edges.
        let m = dp(
            5,
            &[
                (1, 2, 0.9),
                (1, 3, 0.9),
                (1, 4, 0.9),
                (2, 4, 0.9),
                (3, 4, 0.9),
                (2, 3, 0.1),
            ],
        );
        let blocks = solid_spine_blocks(&m, 0.8);
        assert_eq!(blocks, vec![1..5]);
    }

    #[test]
    fn broken_spine_splits_blocks() {
        let m = dp(
            6,
            &[
                (0, 1, 0.9),
                (1, 2, 0.9),
                (0, 2, 0.2),
                (3, 4, 0.9),
                (4, 5, 0.9),
                (3, 5, 0.9),
            ],
        );
        let blocks = solid_spine_blocks(&m, 0.8);
        // 0..2 can't extend to 2 (D'(0,2) low) -> block {0,1}; then {3,4,5}
        assert_eq!(blocks, vec![0..2, 3..6]);
    }

    #[test]
    fn nan_never_joins() {
        let m = dp(3, &[(0, 1, f64::NAN), (1, 2, 0.9), (0, 2, 0.9)]);
        let blocks = solid_spine_blocks(&m, 0.8);
        assert_eq!(blocks, vec![1..3]);
    }

    #[test]
    fn end_to_end_on_simulated_blocks() {
        // 3 blocks of 6 identical SNPs each, decorrelated across blocks
        let n_samples = 96;
        let mut g = BitMatrix::zeros(n_samples, 18);
        let mut s = 31u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for block in 0..3 {
            let pattern: Vec<bool> = (0..n_samples).map(|_| next() % 2 == 0).collect();
            for j in block * 6..(block + 1) * 6 {
                for (smp, &bit) in pattern.iter().enumerate() {
                    g.set(smp, j, bit);
                }
            }
        }
        let engine = LdEngine::new().nan_policy(NanPolicy::Zero);
        let blocks = haplotype_blocks(&engine, &g, 0.8);
        assert_eq!(blocks, vec![0..6, 6..12, 12..18]);

        // tagging: one SNP per block
        let r2 = engine.r2_matrix(&g);
        let tags = tag_snps(&r2, &blocks);
        assert_eq!(tags.len(), 3);
        for (t, b) in tags.iter().zip(&blocks) {
            assert!(b.contains(t));
        }
    }

    #[test]
    fn no_blocks_in_equilibrium_data() {
        let m = dp(5, &[(0, 1, 0.1), (1, 2, 0.2), (2, 3, 0.1), (3, 4, 0.3)]);
        assert!(solid_spine_blocks(&m, 0.8).is_empty());
        // tag set = every SNP
        let r2 = dp(5, &[]);
        assert_eq!(tag_snps(&r2, &[]), vec![0, 1, 2, 3, 4]);
    }
}
