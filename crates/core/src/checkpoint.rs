//! Versioned, checksummed checkpoints for interruptible LD runs.
//!
//! A multi-hour `n²/2` scan killed at 90% is a total loss unless its
//! completed slabs can be replayed. This module defines the **format** —
//! serialization, parsing, CRC discipline, and resume validation — while
//! the file side (atomic temp+fsync+rename writes) lives in `ld-io`
//! behind the [`CheckpointSink`] trait, keeping the dependency direction
//! `ld-io → ld-core` intact.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic    8  b"LDCKPT01"
//! version  4  FORMAT_VERSION
//! stat     1  0 = r², 1 = D, 2 = D'
//! policy   1  0 = propagate NaN, 1 = zero
//! reserved 2  must be 0
//! n_snps        8
//! n_samples     8
//! matrix_hash   8  FNV-1a over dims + every SNP's packed words
//! slab          8  effective row-slab height of the interrupted run
//! n_slabs       8  ⌈n_snps / slab⌉
//! kernel_len    4  followed by the resolved kernel name (UTF-8)
//! n_records     8
//! header_crc    4  CRC32 (IEEE) of every byte above
//! --- body: n_records × ---
//! index      8   slab index k
//! start_row  8   k·slab
//! end_row    8   min((k+1)·slab, n_snps)
//! n_values   8   packed-triangle span of rows start..end
//! values     8·n_values   f64 bit patterns
//! --- then ---
//! body_crc   4  CRC32 of all record bytes
//! ```
//!
//! Every parse failure is a located [`LdError::Checkpoint`] (byte offset +
//! field name); a resumed run validates the header against the actual
//! input and engine configuration field-by-field, so a checkpoint from a
//! different matrix, statistic, NaN policy, slab geometry or kernel is
//! rejected with a message naming the mismatch instead of silently
//! producing a wrong triangle.

use crate::error::LdError;
use crate::stats::{LdStats, NanPolicy};
use ld_bitmat::BitMatrixView;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: &[u8; 8] = b"LDCKPT01";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — in-repo, table-driven; the workspace
// builds offline with no external deps.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum guarding both checkpoint
/// sections. Public so `ld-io` and the corruption-corpus tests can
/// recompute it.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// FNV-1a (64-bit) content fingerprint of a genotype matrix: dimensions
/// followed by every SNP's packed words. Cheap (one linear pass over data
/// that is about to be swept anyway) and sensitive to any bit flip, so a
/// checkpoint cannot silently resume against a different input.
pub fn matrix_fingerprint(v: &BitMatrixView<'_>) -> u64 {
    let mut f = Fingerprinter::new(v.n_snps() as u64, v.n_samples() as u64);
    for j in 0..v.n_snps() {
        f.eat_words(v.snp_words(j));
    }
    f.finish()
}

/// Incremental form of [`matrix_fingerprint`] for producers that never
/// hold the whole matrix — a tile-store import streams each chunk's
/// packed words through this and lands on the exact same hash the
/// in-memory path computes, so checkpoints taken against a store resume
/// cleanly against the equivalent in-memory matrix (and vice versa).
///
/// Feed every SNP's words in column order via [`eat_words`]; the header
/// (dimensions) is folded in by [`new`].
///
/// [`new`]: Fingerprinter::new
/// [`eat_words`]: Fingerprinter::eat_words
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    h: u64,
}

impl Fingerprinter {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fingerprint for an `n_samples × n_snps` matrix.
    pub fn new(n_snps: u64, n_samples: u64) -> Self {
        let mut f = Self { h: Self::OFFSET };
        f.eat(n_snps);
        f.eat(n_samples);
        f
    }

    fn eat(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds in packed words (consecutive SNP columns, in order).
    pub fn eat_words(&mut self, words: &[u64]) {
        for &w in words {
            self.eat(w);
        }
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// One completed row slab: rows `start_row..end_row` of the packed upper
/// triangle, stored as the contiguous packed span those rows occupy.
#[derive(Clone, Debug, PartialEq)]
pub struct SlabRecord {
    /// Slab index `k` (rows `k·slab .. min((k+1)·slab, n)`).
    pub index: u64,
    /// First row covered by this slab.
    pub start_row: u64,
    /// One past the last row covered by this slab.
    pub end_row: u64,
    /// The packed-triangle values of those rows, in storage order.
    pub values: Vec<f64>,
}

/// A parsed (or about-to-be-serialized) checkpoint: the validated header
/// plus every completed-slab record.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointState {
    /// Statistic the interrupted run was computing.
    pub stat: LdStats,
    /// Monomorphic-SNP policy of the interrupted run.
    pub policy: NanPolicy,
    /// SNP count of the input matrix.
    pub n_snps: u64,
    /// Sample count of the input matrix.
    pub n_samples: u64,
    /// [`matrix_fingerprint`] of the input matrix.
    pub matrix_hash: u64,
    /// Effective row-slab height of the interrupted run.
    pub slab: u64,
    /// Total slab count `⌈n_snps / slab⌉`.
    pub n_slabs: u64,
    /// Resolved micro-kernel name of the interrupted run.
    pub kernel: String,
    /// Completed slabs, in ascending `index` order.
    pub records: Vec<SlabRecord>,
}

fn stat_code(s: LdStats) -> u8 {
    match s {
        LdStats::RSquared => 0,
        LdStats::D => 1,
        LdStats::DPrime => 2,
    }
}

fn stat_from_code(c: u8) -> Option<LdStats> {
    match c {
        0 => Some(LdStats::RSquared),
        1 => Some(LdStats::D),
        2 => Some(LdStats::DPrime),
        _ => None,
    }
}

fn policy_code(p: NanPolicy) -> u8 {
    match p {
        NanPolicy::Propagate => 0,
        NanPolicy::Zero => 1,
    }
}

fn policy_from_code(c: u8) -> Option<NanPolicy> {
    match c {
        0 => Some(NanPolicy::Propagate),
        1 => Some(NanPolicy::Zero),
        _ => None,
    }
}

fn located(message: String) -> LdError {
    LdError::Checkpoint { message }
}

/// A little-endian cursor with located errors: every read that runs past
/// the buffer reports its byte offset and the field it was decoding.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize, field: &str) -> Result<&'a [u8], LdError> {
        let end = self.pos.checked_add(len).ok_or_else(|| {
            located(format!(
                "length overflow at byte {} reading {field}",
                self.pos
            ))
        })?;
        if end > self.bytes.len() {
            return Err(located(format!(
                "truncated at byte {} (need {} more for {field}, {} available)",
                self.pos,
                len,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, field: &str) -> Result<u8, LdError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &str) -> Result<u16, LdError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &str) -> Result<u32, LdError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &str) -> Result<u64, LdError> {
        let b = self.take(8, field)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

impl CheckpointState {
    /// Serializes to the on-disk layout (header CRC + body CRC appended).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.kernel.len()
                + self
                    .records
                    .iter()
                    .map(|r| 32 + 8 * r.values.len())
                    .sum::<usize>(),
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(stat_code(self.stat));
        out.push(policy_code(self.policy));
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.n_snps.to_le_bytes());
        out.extend_from_slice(&self.n_samples.to_le_bytes());
        out.extend_from_slice(&self.matrix_hash.to_le_bytes());
        out.extend_from_slice(&self.slab.to_le_bytes());
        out.extend_from_slice(&self.n_slabs.to_le_bytes());
        out.extend_from_slice(&(self.kernel.len() as u32).to_le_bytes());
        out.extend_from_slice(self.kernel.as_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        let body_start = out.len();
        for r in &self.records {
            out.extend_from_slice(&r.index.to_le_bytes());
            out.extend_from_slice(&r.start_row.to_le_bytes());
            out.extend_from_slice(&r.end_row.to_le_bytes());
            out.extend_from_slice(&(r.values.len() as u64).to_le_bytes());
            for v in &r.values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let body_crc = crc32(&out[body_start..]);
        out.extend_from_slice(&body_crc.to_le_bytes());
        out
    }

    /// Parses and verifies a checkpoint. Every failure mode — bad magic,
    /// unknown version, truncation anywhere, CRC mismatch in either
    /// section, out-of-range enum codes, record-geometry nonsense — is a
    /// located [`LdError::Checkpoint`]; this function never panics on any
    /// byte string.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LdError> {
        let mut c = Cursor::new(bytes);
        let magic = c.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(located(format!(
                "bad magic at byte 0: expected {MAGIC:?}, found {magic:?} (not an LD checkpoint?)"
            )));
        }
        let version = c.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(located(format!(
                "unsupported checkpoint version {version} at byte 8 (this build reads version {FORMAT_VERSION})"
            )));
        }
        let stat_byte = c.u8("stat code")?;
        let stat = stat_from_code(stat_byte)
            .ok_or_else(|| located(format!("unknown statistic code {stat_byte} at byte 12")))?;
        let policy_byte = c.u8("policy code")?;
        let policy = policy_from_code(policy_byte)
            .ok_or_else(|| located(format!("unknown NaN-policy code {policy_byte} at byte 13")))?;
        let reserved = c.u16("reserved")?;
        if reserved != 0 {
            return Err(located(format!(
                "reserved field at byte 14 must be 0, found {reserved}"
            )));
        }
        let n_snps = c.u64("n_snps")?;
        let n_samples = c.u64("n_samples")?;
        let matrix_hash = c.u64("matrix_hash")?;
        let slab = c.u64("slab")?;
        let n_slabs = c.u64("n_slabs")?;
        let kernel_len = c.u32("kernel name length")? as usize;
        if kernel_len > 256 {
            return Err(located(format!(
                "kernel name length {kernel_len} at byte 56 exceeds the 256-byte cap"
            )));
        }
        let kernel_pos = c.pos;
        let kernel_bytes = c.take(kernel_len, "kernel name")?;
        let kernel = std::str::from_utf8(kernel_bytes)
            .map_err(|e| {
                located(format!(
                    "kernel name at byte {kernel_pos} is not UTF-8: {e}"
                ))
            })?
            .to_owned();
        let n_records = c.u64("record count")?;
        let header_end = c.pos;
        let stored_header_crc = c.u32("header CRC")?;
        let actual_header_crc = crc32(&bytes[..header_end]);
        if stored_header_crc != actual_header_crc {
            return Err(located(format!(
                "header CRC mismatch at byte {header_end}: stored {stored_header_crc:#010x}, computed {actual_header_crc:#010x}"
            )));
        }
        // geometry sanity before trusting record loops
        if slab == 0 && n_snps != 0 {
            return Err(located("header slab height is 0".to_owned()));
        }
        let expect_slabs = if n_snps == 0 {
            0
        } else {
            n_snps.div_ceil(slab)
        };
        if n_slabs != expect_slabs {
            return Err(located(format!(
                "header n_slabs {n_slabs} disagrees with ⌈{n_snps}/{slab}⌉ = {expect_slabs}"
            )));
        }
        if n_records > n_slabs {
            return Err(located(format!(
                "record count {n_records} exceeds total slab count {n_slabs}"
            )));
        }
        let body_start = c.pos;
        let mut records = Vec::with_capacity(n_records.min(4096) as usize);
        for r in 0..n_records {
            let rec_pos = c.pos;
            let index = c.u64("record index")?;
            let start_row = c.u64("record start_row")?;
            let end_row = c.u64("record end_row")?;
            let n_values = c.u64("record value count")?;
            if index >= n_slabs {
                return Err(located(format!(
                    "record {r} at byte {rec_pos}: slab index {index} out of range (n_slabs = {n_slabs})"
                )));
            }
            if start_row != index * slab
                || end_row != ((index + 1) * slab).min(n_snps)
                || end_row <= start_row
            {
                return Err(located(format!(
                    "record {r} at byte {rec_pos}: rows {start_row}..{end_row} do not match slab {index} of height {slab} over {n_snps} SNPs"
                )));
            }
            // packed span of rows start..end: Σ (n − i)
            let span: u64 = (start_row..end_row).map(|i| n_snps - i).sum();
            if n_values != span {
                return Err(located(format!(
                    "record {r} at byte {rec_pos}: {n_values} values but rows {start_row}..{end_row} pack {span}"
                )));
            }
            let vbytes = n_values
                .checked_mul(8)
                .and_then(|b| usize::try_from(b).ok())
                .ok_or_else(|| {
                    located(format!(
                        "record {r} at byte {rec_pos}: value byte count overflows"
                    ))
                })?;
            let raw = c.take(vbytes, "record values")?;
            let mut values = Vec::with_capacity(n_values as usize);
            for chunk in raw.chunks_exact(8) {
                let mut a = [0u8; 8];
                a.copy_from_slice(chunk);
                values.push(f64::from_bits(u64::from_le_bytes(a)));
            }
            if records.iter().any(|prev: &SlabRecord| prev.index == index) {
                return Err(located(format!(
                    "record {r} at byte {rec_pos}: duplicate slab index {index}"
                )));
            }
            records.push(SlabRecord {
                index,
                start_row,
                end_row,
                values,
            });
        }
        let body_end = c.pos;
        let stored_body_crc = c.u32("body CRC")?;
        let actual_body_crc = crc32(&bytes[body_start..body_end]);
        if stored_body_crc != actual_body_crc {
            return Err(located(format!(
                "body CRC mismatch at byte {body_end}: stored {stored_body_crc:#010x}, computed {actual_body_crc:#010x}"
            )));
        }
        if c.pos != bytes.len() {
            return Err(located(format!(
                "{} trailing byte(s) after body CRC at byte {}",
                bytes.len() - c.pos,
                c.pos
            )));
        }
        Ok(Self {
            stat,
            policy,
            n_snps,
            n_samples,
            matrix_hash,
            slab,
            n_slabs,
            kernel,
            records,
        })
    }

    /// Validates this checkpoint against the matrix and engine
    /// configuration of the run about to resume. Every mismatch is a
    /// located [`LdError::Checkpoint`] naming the field, the stored value
    /// and the actual value — a checkpoint must only ever restart the
    /// *identical* computation (that is the bit-exactness argument:
    /// replayed slab bytes + identically-configured recomputation of the
    /// rest ≡ one uninterrupted run).
    pub fn validate_against(
        &self,
        v: &BitMatrixView<'_>,
        stat: LdStats,
        policy: NanPolicy,
        slab: usize,
        kernel: &str,
    ) -> Result<(), LdError> {
        self.validate_against_meta(
            v.n_snps() as u64,
            v.n_samples() as u64,
            matrix_fingerprint(v),
            stat,
            policy,
            slab,
            kernel,
        )
    }

    /// [`validate_against`] for callers that already know the input's
    /// dimensions and fingerprint without holding the matrix — the
    /// out-of-core driver validates against the tile-store manifest
    /// (whose fingerprint was streamed at import time) instead of
    /// re-reading every chunk just to hash it.
    ///
    /// [`validate_against`]: CheckpointState::validate_against
    #[allow(clippy::too_many_arguments)]
    pub fn validate_against_meta(
        &self,
        n_snps: u64,
        n_samples: u64,
        fingerprint: u64,
        stat: LdStats,
        policy: NanPolicy,
        slab: usize,
        kernel: &str,
    ) -> Result<(), LdError> {
        let mismatch = |field: &str, stored: String, actual: String| {
            Err(located(format!(
                "resume rejected: checkpoint {field} is {stored} but the current run has {actual}"
            )))
        };
        if self.n_snps != n_snps {
            return mismatch("n_snps", self.n_snps.to_string(), n_snps.to_string());
        }
        if self.n_samples != n_samples {
            return mismatch(
                "n_samples",
                self.n_samples.to_string(),
                n_samples.to_string(),
            );
        }
        let hash = fingerprint;
        if self.matrix_hash != hash {
            return mismatch(
                "matrix fingerprint",
                format!("{:#018x}", self.matrix_hash),
                format!("{hash:#018x} (the input changed since the checkpoint)"),
            );
        }
        if self.stat != stat {
            return mismatch("statistic", format!("{:?}", self.stat), format!("{stat:?}"));
        }
        if self.policy != policy {
            return mismatch(
                "NaN policy",
                format!("{:?}", self.policy),
                format!("{policy:?}"),
            );
        }
        if self.slab != slab as u64 {
            return mismatch(
                "slab height",
                self.slab.to_string(),
                format!("{slab} (slab geometry must match for slab-aligned replay)"),
            );
        }
        if self.kernel != kernel {
            return mismatch("kernel", self.kernel.clone(), kernel.to_owned());
        }
        Ok(())
    }
}

/// Where checkpoint bytes go. `ld-io` provides the production
/// implementation (atomic temp + fsync + rename file writes); tests use
/// in-memory sinks to cancel deterministically at slab boundaries.
///
/// Implementations must be callable from any worker thread (the fused
/// driver serializes calls under its progress mutex, but which thread
/// crosses the write threshold is scheduling-dependent).
pub trait CheckpointSink: Sync {
    /// Persists one complete checkpoint image. Errors are human-readable
    /// strings; the driver wraps them in [`LdError::Checkpoint`], trips
    /// the run's cancellation token, and surfaces the error after the
    /// team drains.
    fn write_checkpoint(&self, bytes: &[u8]) -> Result<(), String>;
}

/// An in-memory [`CheckpointSink`] holding the latest image — the test
/// harness's deterministic stand-in for a checkpoint file, also usable as
/// a building block by embedders.
#[derive(Debug, Default)]
pub struct MemorySink {
    latest: std::sync::Mutex<Option<Vec<u8>>>,
    writes: std::sync::atomic::AtomicUsize,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently written checkpoint image, if any.
    pub fn latest(&self) -> Option<Vec<u8>> {
        self.latest
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// How many checkpoint images have been written.
    pub fn writes(&self) -> usize {
        self.writes.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl CheckpointSink for MemorySink {
    fn write_checkpoint(&self, bytes: &[u8]) -> Result<(), String> {
        *self
            .latest
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(bytes.to_vec());
        self.writes
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::BitMatrix;

    fn sample_state() -> CheckpointState {
        CheckpointState {
            stat: LdStats::RSquared,
            policy: NanPolicy::Zero,
            n_snps: 7,
            n_samples: 20,
            matrix_hash: 0xDEAD_BEEF_CAFE_F00D,
            slab: 3,
            n_slabs: 3,
            kernel: "scalar-4x4".to_owned(),
            records: vec![
                SlabRecord {
                    index: 0,
                    start_row: 0,
                    end_row: 3,
                    values: (0..(7 + 6 + 5)).map(|i| i as f64 * 0.5).collect(),
                },
                SlabRecord {
                    index: 2,
                    start_row: 6,
                    end_row: 7,
                    values: vec![1.25],
                },
            ],
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // the classic check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let s = sample_state();
        let bytes = s.to_bytes();
        let back = CheckpointState::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn empty_records_roundtrip() {
        let mut s = sample_state();
        s.records.clear();
        let back = CheckpointState::from_bytes(&s.to_bytes()).expect("roundtrip");
        assert!(back.records.is_empty());
    }

    #[test]
    fn every_truncation_is_located_and_no_panic() {
        let bytes = sample_state().to_bytes();
        for cut in 0..bytes.len() {
            let err = CheckpointState::from_bytes(&bytes[..cut]).expect_err("truncation must fail");
            let msg = err.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("magic"),
                "cut={cut}: {msg}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = sample_state().to_bytes();
        // flip one bit in every byte; each corruption must be caught (CRC
        // or a structural check), never accepted, never a panic
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x40;
            assert!(
                CheckpointState::from_bytes(&c).is_err(),
                "bit flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_state().to_bytes();
        bytes.push(0);
        let msg = CheckpointState::from_bytes(&bytes).unwrap_err().to_string();
        assert!(msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut bytes = sample_state().to_bytes();
        bytes[0] = b'X';
        assert!(CheckpointState::from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut bytes = sample_state().to_bytes();
        bytes[8] = 99; // version — header CRC also breaks, but version is read first
        let msg = CheckpointState::from_bytes(&bytes).unwrap_err().to_string();
        assert!(msg.contains("version"), "{msg}");
    }

    #[test]
    fn validate_against_catches_every_field() {
        let g = BitMatrix::from_rows(3, 2, [[1u8, 0], [0, 1], [1, 1]]).unwrap();
        let v = g.full_view();
        let base = CheckpointState {
            stat: LdStats::D,
            policy: NanPolicy::Propagate,
            n_snps: 2,
            n_samples: 3,
            matrix_hash: matrix_fingerprint(&v),
            slab: 1,
            n_slabs: 2,
            kernel: "scalar-4x4".to_owned(),
            records: vec![],
        };
        assert!(base
            .validate_against(&v, LdStats::D, NanPolicy::Propagate, 1, "scalar-4x4")
            .is_ok());
        let cases: Vec<(CheckpointState, &str)> = vec![
            (
                CheckpointState {
                    n_snps: 5,
                    ..base.clone()
                },
                "n_snps",
            ),
            (
                CheckpointState {
                    n_samples: 9,
                    ..base.clone()
                },
                "n_samples",
            ),
            (
                CheckpointState {
                    matrix_hash: 1,
                    ..base.clone()
                },
                "fingerprint",
            ),
            (
                CheckpointState {
                    stat: LdStats::RSquared,
                    ..base.clone()
                },
                "statistic",
            ),
            (
                CheckpointState {
                    policy: NanPolicy::Zero,
                    ..base.clone()
                },
                "policy",
            ),
            (
                CheckpointState {
                    slab: 2,
                    n_slabs: 1,
                    ..base.clone()
                },
                "slab",
            ),
            (
                CheckpointState {
                    kernel: "avx512-vpopcnt".to_owned(),
                    ..base.clone()
                },
                "kernel",
            ),
        ];
        for (state, needle) in cases {
            let msg = state
                .validate_against(&v, LdStats::D, NanPolicy::Propagate, 1, "scalar-4x4")
                .unwrap_err()
                .to_string();
            assert!(msg.contains(needle), "wanted {needle} in: {msg}");
            assert!(msg.contains("resume rejected"), "{msg}");
        }
    }

    #[test]
    fn validate_against_rejects_shard_shaped_mismatches() {
        // A shard output file is a checkpoint whose records cover one
        // contiguous slab range of the *global* grid. Feeding one back as
        // a resume snapshot must hit the same validation wall as any other
        // checkpoint: same matrix but different slab geometry, or a
        // different statistic, are located rejections — not silent
        // acceptance of mismatched spans.
        let g = BitMatrix::from_rows(4, 6, [[1u8, 0, 1, 0, 1, 1]; 4]).unwrap();
        let v = g.full_view();
        let shard_state = CheckpointState {
            stat: LdStats::RSquared,
            policy: NanPolicy::Propagate,
            n_snps: 6,
            n_samples: 4,
            matrix_hash: matrix_fingerprint(&v),
            slab: 2,
            n_slabs: 3,
            kernel: "scalar-4x4".to_owned(),
            // shard 1/3 of a slab-2 grid: records for slab 1 only
            records: vec![SlabRecord {
                index: 1,
                start_row: 2,
                end_row: 4,
                values: vec![0.0; 4 + 3],
            }],
        };
        // identical matrix + identical geometry: accepted
        assert!(shard_state
            .validate_against(&v, LdStats::RSquared, NanPolicy::Propagate, 2, "scalar-4x4")
            .is_ok());
        // same matrix, different slab height (e.g. a shard produced under
        // another memory budget): rejected, naming the slab field
        let msg = shard_state
            .validate_against(&v, LdStats::RSquared, NanPolicy::Propagate, 3, "scalar-4x4")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("slab"), "{msg}");
        assert!(msg.contains("resume rejected"), "{msg}");
        // same matrix + geometry, different statistic kind: rejected
        let msg = shard_state
            .validate_against(&v, LdStats::D, NanPolicy::Propagate, 2, "scalar-4x4")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("statistic"), "{msg}");
        // a shard of a *different* matrix with the same shape: the
        // fingerprint catches it even though every geometry field agrees
        let other = BitMatrix::zeros(4, 6);
        let msg = shard_state
            .validate_against(
                &other.full_view(),
                LdStats::RSquared,
                NanPolicy::Propagate,
                2,
                "scalar-4x4",
            )
            .unwrap_err()
            .to_string();
        assert!(msg.contains("fingerprint"), "{msg}");
    }

    #[test]
    fn fingerprint_sensitive_to_any_bit() {
        let mut g = BitMatrix::zeros(10, 4);
        let before = matrix_fingerprint(&g.full_view());
        g.set(3, 2, true);
        let after = matrix_fingerprint(&g.full_view());
        assert_ne!(before, after);
        // shape matters even with identical (all-zero) content
        let a = matrix_fingerprint(&BitMatrix::zeros(8, 4).full_view());
        let b = matrix_fingerprint(&BitMatrix::zeros(4, 8).full_view());
        assert_ne!(a, b);
    }

    #[test]
    fn memory_sink_stores_latest() {
        let s = MemorySink::new();
        assert!(s.latest().is_none());
        s.write_checkpoint(b"one").unwrap();
        s.write_checkpoint(b"two").unwrap();
        assert_eq!(s.latest().as_deref(), Some(&b"two"[..]));
        assert_eq!(s.writes(), 2);
    }
}
