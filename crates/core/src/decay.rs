//! LD decay profiles — mean `r²` as a function of SNP distance.
//!
//! The canonical population-genetics summary of an LD matrix: with
//! recombination, `E[r²]` falls with distance (≈ `1/(1 + 4Nc)` under
//! neutrality). Computing it needs only a *band* of the pair matrix, so
//! this module walks the band in chunks of cross-GEMMs rather than
//! materializing all `N(N+1)/2` values — the `O(n·band)` counterpart of
//! the full engine.

use crate::{LdEngine, LdStats};
use ld_bitmat::BitMatrix;

/// One distance bin of a decay profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecayBin {
    /// Smallest SNP-index distance in this bin (inclusive).
    pub min_dist: usize,
    /// Largest distance in this bin (inclusive).
    pub max_dist: usize,
    /// Mean of the defined `r²` values.
    pub mean_r2: f64,
    /// Number of pairs aggregated.
    pub count: u64,
}

/// Mean `r²` by SNP distance, out to `max_dist`.
#[derive(Clone, Debug)]
pub struct DecayProfile {
    bins: Vec<DecayBin>,
    bin_width: usize,
}

impl DecayProfile {
    /// Computes the profile for distances `1..=max_dist`, aggregated into
    /// bins of `bin_width` distances each.
    ///
    /// The band is processed in chunks: each chunk of rows does one
    /// rectangular cross-`r²` against the following `max_dist` columns, so
    /// memory stays `O(chunk · max_dist)` regardless of `n`.
    pub fn compute(engine: &LdEngine, g: &BitMatrix, max_dist: usize, bin_width: usize) -> Self {
        assert!(max_dist >= 1, "need at least distance 1");
        let bin_width = bin_width.max(1);
        let n = g.n_snps();
        let n_bins = max_dist.div_ceil(bin_width);
        let mut sums = vec![0.0f64; n_bins];
        let mut counts = vec![0u64; n_bins];

        let chunk = 512usize.max(max_dist / 4).min(n.max(1));
        let mut start = 0usize;
        while start < n {
            let rows_end = (start + chunk).min(n);
            let cols_end = (rows_end + max_dist).min(n);
            if start + 1 >= cols_end {
                break;
            }
            let cross = engine.cross_stat_matrix(
                g.view(start, rows_end),
                g.view(start, cols_end),
                LdStats::RSquared,
            );
            for i in 0..rows_end - start {
                let gi = start + i;
                for d in 1..=max_dist {
                    let gj = gi + d;
                    if gj >= cols_end {
                        break;
                    }
                    let v = cross.get(i, gj - start);
                    if !v.is_nan() {
                        let b = (d - 1) / bin_width;
                        sums[b] += v;
                        counts[b] += 1;
                    }
                }
            }
            start = rows_end;
        }

        let bins = (0..n_bins)
            .map(|b| DecayBin {
                min_dist: b * bin_width + 1,
                max_dist: ((b + 1) * bin_width).min(max_dist),
                mean_r2: if counts[b] > 0 {
                    sums[b] / counts[b] as f64
                } else {
                    f64::NAN
                },
                count: counts[b],
            })
            .collect();
        Self { bins, bin_width }
    }

    /// The distance bins, nearest first.
    pub fn bins(&self) -> &[DecayBin] {
        &self.bins
    }

    /// Bin width used.
    pub fn bin_width(&self) -> usize {
        self.bin_width
    }

    /// Mean `r²` of the nearest bin (the short-range LD level).
    pub fn near_r2(&self) -> f64 {
        self.bins.first().map(|b| b.mean_r2).unwrap_or(f64::NAN)
    }

    /// The first distance (bin midpoint) at which mean `r²` drops to half
    /// the nearest bin's level; `None` if it never does within the band.
    pub fn half_distance(&self) -> Option<usize> {
        let target = self.near_r2() / 2.0;
        if !target.is_finite() {
            return None;
        }
        self.bins
            .iter()
            .find(|b| !b.mean_r2.is_nan() && b.mean_r2 <= target)
            .map(|b| (b.min_dist + b.max_dist) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NanPolicy;

    /// Blocks of 8 identical SNPs: r² = 1 inside a block, ~0 across.
    fn blocky(n_samples: usize, n_snps: usize) -> BitMatrix {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        let mut s = 777u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pattern: Vec<bool> = (0..n_samples).map(|_| next() % 2 == 0).collect();
        for j in 0..n_snps {
            if j % 8 == 0 {
                pattern = (0..n_samples).map(|_| next() % 2 == 0).collect();
            }
            for (smp, &bit) in pattern.iter().enumerate() {
                g.set(smp, j, bit);
            }
        }
        g
    }

    fn engine() -> LdEngine {
        LdEngine::new().nan_policy(NanPolicy::Zero)
    }

    #[test]
    fn decay_profile_matches_brute_force() {
        let g = blocky(96, 64);
        let profile = DecayProfile::compute(&engine(), &g, 16, 1);
        let full = engine().r2_matrix(&g);
        for bin in profile.bins() {
            let d = bin.min_dist;
            let mut sum = 0.0;
            let mut count = 0u64;
            for i in 0..64 {
                if i + d < 64 {
                    let v = full.get(i, i + d);
                    if !v.is_nan() {
                        sum += v;
                        count += 1;
                    }
                }
            }
            assert_eq!(bin.count, count, "bin d={d}");
            if count > 0 {
                assert!(
                    (bin.mean_r2 - sum / count as f64).abs() < 1e-10,
                    "bin d={d}"
                );
            }
        }
    }

    #[test]
    fn blocky_data_decays() {
        let g = blocky(128, 120);
        let profile = DecayProfile::compute(&engine(), &g, 20, 1);
        // distance 1 pairs are mostly within blocks -> high; distance 10+
        // pairs straddle blocks -> low
        assert!(profile.near_r2() > 0.5, "near r² = {}", profile.near_r2());
        let far = profile.bins()[14].mean_r2;
        assert!(far < 0.3, "far r² = {far}");
        assert!(profile.half_distance().is_some());
    }

    #[test]
    fn chunking_is_invisible() {
        // force multiple chunks by n > chunk floor — compare two band widths
        let g = blocky(64, 2000);
        let a = DecayProfile::compute(&engine(), &g, 12, 3);
        for bin in a.bins() {
            assert!(bin.count > 0);
            assert_eq!(a.bin_width(), 3);
        }
        // distance binning covers exactly 1..=12
        assert_eq!(a.bins().first().unwrap().min_dist, 1);
        assert_eq!(a.bins().last().unwrap().max_dist, 12);
    }

    #[test]
    fn band_larger_than_matrix_is_fine() {
        let g = blocky(32, 10);
        let profile = DecayProfile::compute(&engine(), &g, 50, 10);
        let total: u64 = profile.bins().iter().map(|b| b.count).sum();
        assert_eq!(total, (10 * 9 / 2) as u64); // all strict pairs counted once
    }
}
