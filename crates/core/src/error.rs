//! The unified error taxonomy and memory budgeting for the fallible API.
//!
//! The ROADMAP north-star is a production LD service running long batch
//! scans; those cannot afford a process abort on a malformed input, an
//! `n(n+1)/2` triangle index that overflows `usize`, an allocation failure
//! in the slab scratch, or a panicking worker. Every matrix-level driver on
//! [`crate::LdEngine`] therefore has a `try_` form returning
//! `Result<_, LdError>`:
//!
//! * shapes are validated up front ([`LdError::DimensionMismatch`],
//!   [`LdError::EmptyInput`]);
//! * all `n²` / triangle-size arithmetic is checked
//!   ([`LdError::SizeOverflow`]);
//! * large buffers are allocated with `try_reserve`
//!   ([`LdError::AllocationFailed`]);
//! * the estimated transient footprint is held under a configurable
//!   [`MemoryBudget`] — the slab height auto-shrinks to fit before the
//!   engine gives up ([`LdError::BudgetExceeded`]);
//! * worker panics are contained by `ld-parallel` and surface as
//!   [`LdError::Worker`] instead of unwinding the caller.
//!
//! The historical infallible entry points are thin wrappers that panic with
//! the error's `Display` message, preserving their documented behavior.

use std::fmt;

pub use ld_parallel::WorkerPanic;

/// Everything that can go wrong in a fallible LD computation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LdError {
    /// Two operands disagree on a dimension that must match.
    DimensionMismatch {
        /// What was being matched (e.g. "sample sets must match").
        context: &'static str,
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// A size computation (`n²`, `n(n+1)/2`, byte counts) overflowed
    /// the machine's address arithmetic.
    SizeOverflow {
        /// The quantity that overflowed (e.g. "packed triangle size").
        what: &'static str,
    },
    /// The allocator refused a buffer of `bytes` bytes.
    AllocationFailed {
        /// What the buffer was for (e.g. "slab counts scratch").
        what: &'static str,
        /// Requested size in bytes.
        bytes: usize,
    },
    /// The estimated footprint exceeds the configured [`MemoryBudget`]
    /// even at the minimum slab height of one row.
    BudgetExceeded {
        /// Minimum bytes the computation needs.
        required: usize,
        /// The configured budget in bytes.
        budget: usize,
    },
    /// A worker thread panicked inside a parallel region; the region was
    /// drained and joined, and the first panic payload is preserved here.
    Worker(WorkerPanic),
    /// A configuration value is unusable (e.g. a zero tile size).
    InvalidConfig {
        /// Human-readable description of the bad parameter.
        message: &'static str,
    },
    /// The genotype matrix has zero samples (or zero SNPs where at least
    /// one is required) — no frequency is defined.
    EmptyInput,
    /// The run was cancelled cooperatively (token trip, deadline expiry,
    /// SIGINT) before covering the whole iteration space. Completed slabs
    /// stay consistent — cancellation lands on slab boundaries, never
    /// mid-kernel — and when a checkpoint sink was configured, a final
    /// snapshot of the completed slabs was flushed before this error was
    /// returned.
    Cancelled {
        /// The recorded cancellation reason (e.g. `"deadline exceeded"`).
        reason: String,
        /// Row slabs fully computed (and checkpointable) before the stop.
        completed_slabs: usize,
    },
    /// A checkpoint could not be written, read, or validated. The message
    /// locates the failure (byte offset for parse errors, the mismatching
    /// field for resume-validation errors).
    Checkpoint {
        /// Located, human-readable description of the failure.
        message: String,
    },
    /// Shard inputs are mutually inconsistent — different matrix
    /// fingerprints, headers, or overlapping slab spans. Merging them
    /// would corrupt the panel, so the merge refuses instead (see
    /// [`crate::shard::merge_shard_states`]).
    ShardMismatch {
        /// Which inputs disagree and on what field.
        message: String,
    },
    /// A shard merge found gaps: the inputs do not cover every row slab
    /// of the run. The error carries the gap report — which slab spans
    /// are absent — so the caller can name the shards to re-run instead
    /// of writing a silently truncated panel.
    IncompleteShardSet {
        /// Half-open `[start, end)` slab-index spans with no records.
        missing: Vec<(u64, u64)>,
        /// Total slab count of the run being merged.
        n_slabs: u64,
    },
    /// A tile store chunk or manifest is missing, truncated, damaged or
    /// inconsistent with the run. The message names the offending chunk
    /// (index and, for file-backed stores, the file) and what failed —
    /// a damaged store must never decode into a silently wrong panel.
    TileStore {
        /// Which chunk/manifest failed and how.
        message: String,
    },
}

impl fmt::Display for LdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch {
                context,
                left,
                right,
            } => {
                write!(f, "dimension mismatch: {context} ({left} vs {right})")
            }
            Self::SizeOverflow { what } => {
                write!(f, "size overflow computing {what}")
            }
            Self::AllocationFailed { what, bytes } => {
                write!(f, "allocation of {bytes} bytes failed for {what}")
            }
            Self::BudgetExceeded { required, budget } => {
                write!(
                    f,
                    "memory budget exceeded: needs at least {required} bytes, budget is {budget}"
                )
            }
            Self::Worker(p) => write!(f, "{p}"),
            Self::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            Self::EmptyInput => write!(f, "cannot compute LD with zero samples"),
            Self::Cancelled {
                reason,
                completed_slabs,
            } => {
                write!(
                    f,
                    "run cancelled ({reason}) after {completed_slabs} completed slab(s)"
                )
            }
            Self::Checkpoint { message } => write!(f, "checkpoint error: {message}"),
            Self::ShardMismatch { message } => write!(f, "shard mismatch: {message}"),
            Self::TileStore { message } => write!(f, "tile store error: {message}"),
            Self::IncompleteShardSet { missing, n_slabs } => {
                let gap: u64 = missing.iter().map(|&(a, b)| b - a).sum();
                write!(
                    f,
                    "incomplete shard set: missing {gap} of {n_slabs} slab(s) \
                     (slab spans {}); re-run the shards covering these spans, \
                     then merge again",
                    crate::shard::format_spans(missing)
                )
            }
        }
    }
}

impl std::error::Error for LdError {}

impl From<WorkerPanic> for LdError {
    fn from(p: WorkerPanic) -> Self {
        Self::Worker(p)
    }
}

/// A cap on the *transient* memory of a fused-pipeline run.
///
/// The footprint model (see DESIGN.md "Error handling & resource limits"):
/// fixed cost `F` = packed output (`8·n(n+1)/2` bytes, matrix form only)
/// plus the transform tables (≤ `20·n` bytes), and a per-slab-row cost
/// `R = threads × n × e` bytes where `e` is 4 (u32 counts scratch) for the
/// packed driver and 12 (u32 + f64) for the streaming drivers. Given a
/// budget `B`, the engine shrinks the slab height to
/// `min(configured, ⌊(B − F) / R⌋)` and fails with
/// [`LdError::BudgetExceeded`] only when even one row does not fit.
/// Results are bit-exact regardless of the slab height chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MemoryBudget {
    limit: Option<usize>,
}

impl MemoryBudget {
    /// No cap (the default): slab height is taken as configured.
    pub const fn unlimited() -> Self {
        Self { limit: None }
    }

    /// Caps transient memory at `n` bytes.
    pub const fn bytes(n: usize) -> Self {
        Self { limit: Some(n) }
    }

    /// Caps transient memory at `n` MiB (saturating).
    pub const fn mib(n: usize) -> Self {
        Self {
            limit: Some(n.saturating_mul(1024 * 1024)),
        }
    }

    /// The cap in bytes, or `None` when unlimited.
    pub const fn limit(&self) -> Option<usize> {
        self.limit
    }
}

/// Allocates a zero-initialized `Vec<T>` through the *fallible* reserve
/// path, so allocator failure comes back as [`LdError::AllocationFailed`]
/// instead of aborting the process.
///
/// The allocation is flagged via [`fault::in_fallible_alloc`] so the
/// fault-injection harness can target exactly these sites.
pub(crate) fn try_zeroed_vec<T: Copy + Default>(
    len: usize,
    what: &'static str,
) -> Result<Vec<T>, LdError> {
    let bytes = len.saturating_mul(std::mem::size_of::<T>());
    let _guard = fault::FallibleAllocGuard::new();
    let mut v: Vec<T> = Vec::new();
    v.try_reserve_exact(len)
        .map_err(|_| LdError::AllocationFailed { what, bytes })?;
    v.resize(len, T::default());
    Ok(v)
}

/// The packed-triangle length `n(n+1)/2`, checked against `usize`.
pub(crate) fn checked_triangle_len(n: usize) -> Result<usize, LdError> {
    let tri = (n as u128) * (n as u128 + 1) / 2;
    usize::try_from(tri).map_err(|_| LdError::SizeOverflow {
        what: "packed triangle size n(n+1)/2",
    })
}

/// `a × b` with overflow surfaced as a typed error.
pub(crate) fn checked_mul(a: usize, b: usize, what: &'static str) -> Result<usize, LdError> {
    a.checked_mul(b).ok_or(LdError::SizeOverflow { what })
}

/// `a + b` with overflow surfaced as a typed error.
pub(crate) fn checked_add(a: usize, b: usize, what: &'static str) -> Result<usize, LdError> {
    a.checked_add(b).ok_or(LdError::SizeOverflow { what })
}

/// Hooks for the fault-injection test harness. **Not a public API** — the
/// shape of this module may change at any time.
#[doc(hidden)]
pub mod fault {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, Ordering};

    thread_local! {
        static IN_FALLIBLE_ALLOC: Cell<u32> = const { Cell::new(0) };
    }

    /// True while the current thread is inside a `try_reserve`-backed
    /// allocation — the only allocations a failure-injecting test
    /// allocator may refuse without aborting the process.
    pub fn in_fallible_alloc() -> bool {
        IN_FALLIBLE_ALLOC.with(|c| c.get()) > 0
    }

    /// RAII marker delimiting a fallible-allocation scope.
    pub(crate) struct FallibleAllocGuard;

    impl FallibleAllocGuard {
        pub(crate) fn new() -> Self {
            IN_FALLIBLE_ALLOC.with(|c| c.set(c.get() + 1));
            Self
        }
    }

    impl Drop for FallibleAllocGuard {
        fn drop(&mut self) {
            IN_FALLIBLE_ALLOC.with(|c| c.set(c.get().saturating_sub(1)));
        }
    }

    static KERNEL_PANIC: AtomicBool = AtomicBool::new(false);

    /// Arms (or disarms) a deliberate panic in the fused kernel workers —
    /// lets tests induce a mid-scan worker panic without a special build.
    pub fn arm_kernel_panic(on: bool) {
        KERNEL_PANIC.store(on, Ordering::SeqCst);
    }

    /// Checked by the fused workers; panics when armed.
    #[inline]
    pub fn check_kernel_panic() {
        if KERNEL_PANIC.load(Ordering::Relaxed) {
            panic!("injected kernel panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LdError::EmptyInput.to_string(),
            "cannot compute LD with zero samples"
        );
        let e = LdError::DimensionMismatch {
            context: "sample sets must match",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("sample sets must match"));
        assert!(LdError::SizeOverflow {
            what: "packed triangle size n(n+1)/2"
        }
        .to_string()
        .contains("overflow"));
        let b = LdError::BudgetExceeded {
            required: 100,
            budget: 10,
        };
        assert!(b.to_string().contains("budget"));
    }

    #[test]
    fn triangle_len_checked() {
        assert_eq!(checked_triangle_len(0).ok(), Some(0));
        assert_eq!(checked_triangle_len(4).ok(), Some(10));
        assert!(checked_triangle_len(usize::MAX).is_err());
        // n(n+1) overflows usize but the triangle itself still must fail
        assert!(checked_triangle_len(1 << 40).is_err());
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(MemoryBudget::default(), MemoryBudget::unlimited());
        assert_eq!(MemoryBudget::bytes(10).limit(), Some(10));
        assert_eq!(MemoryBudget::mib(2).limit(), Some(2 * 1024 * 1024));
        assert_eq!(MemoryBudget::unlimited().limit(), None);
    }

    #[test]
    fn try_zeroed_vec_ok() {
        let v = try_zeroed_vec::<u32>(16, "test").expect("small alloc");
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&x| x == 0));
        assert!(!fault::in_fallible_alloc());
    }

    #[test]
    fn worker_panic_converts() {
        let p = WorkerPanic {
            message: "boom".into(),
            worker: 2,
        };
        let e: LdError = p.into();
        assert!(e.to_string().contains("boom"));
    }
}
