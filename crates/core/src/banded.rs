//! Banded LD matrices — chromosome-scale windowed computation.
//!
//! Whole-chromosome panels (10⁵–10⁷ SNPs) cannot afford `O(n²)` storage,
//! and biology rarely needs it: LD decays with distance, so production
//! pipelines (PLINK's `--ld-window`, OmegaPlus's max-window) compute only
//! pairs within a *band* `|i − j| ≤ w`. [`BandedLdMatrix`] stores exactly
//! those `n·w` values, and [`BandedLdMatrix::compute`] fills them with
//! chunked rectangular GEMMs — the same blocked kernels, `O(chunk·w)`
//! transient memory.

use crate::engine::LdEngine;
use crate::fused::Transform;
use crate::stats::LdStats;
use ld_bitmat::BitMatrix;
use ld_kernels::gemm_counts_mt;

/// A symmetric matrix restricted to the band `1 ≤ j − i ≤ band`.
///
/// Storage is row-major: slot `(i, d)` holds the value for pair
/// `(i, i + d + 1)`; slots that would cross the right edge are NaN.
#[derive(Clone, Debug)]
pub struct BandedLdMatrix {
    n: usize,
    band: usize,
    values: Vec<f64>,
}

impl BandedLdMatrix {
    /// Computes the banded statistic for `g` with the given engine.
    ///
    /// Runs chunked rectangular count GEMMs into one **reused** scratch
    /// buffer (`O(chunk · (chunk + band))` u32, allocated once), then picks
    /// the in-band pairs out of each block through the engine's precomputed
    /// [`Transform`] tables — the same batched rank-1 correction the fused
    /// all-pairs pipeline applies, so banded values are bit-identical to
    /// the full matrix. No per-chunk statistic matrix is materialized.
    pub fn compute(engine: &LdEngine, g: &BitMatrix, band: usize, stat: LdStats) -> Self {
        let n = g.n_snps();
        let band = band.max(1).min(n.saturating_sub(1).max(1));
        let mut values = vec![f64::NAN; n * band];
        if n >= 2 {
            let v = g.full_view();
            // global-index tables: p / 1/(p(1−p)) computed once for all chunks
            let tr = Transform::new(&v, stat, engine.policy);
            debug_assert_eq!(tr.n_snps(), n);
            // chunk rows; each chunk needs columns [start, chunk_end + band)
            let chunk = 1024usize.max(band).min(n);
            let mut counts = vec![0u32; chunk * (chunk + band).min(n)];
            let mut start = 0usize;
            while start < n {
                let rows_end = (start + chunk).min(n);
                let cols_end = (rows_end + band).min(n);
                if start + 1 >= cols_end {
                    break;
                }
                let (rows, cols) = (rows_end - start, cols_end - start);
                let va = v.subview(start, rows_end);
                let vb = v.subview(start, cols_end);
                gemm_counts_mt(
                    &va,
                    &vb,
                    &mut counts[..rows * cols],
                    cols,
                    engine.kind,
                    engine.blocks,
                    engine.threads,
                );
                let sw = ld_trace::Stopwatch::start();
                for i in 0..rows {
                    let gi = start + i;
                    for d in 0..band {
                        let gj = gi + d + 1;
                        if gj >= cols_end {
                            break;
                        }
                        values[gi * band + d] =
                            tr.apply_pair(gi, gj, counts[i * cols + (gj - start)]);
                    }
                }
                ld_trace::add(ld_trace::Counter::TransformNs, sw.elapsed_ns());
                start = rows_end;
            }
        }
        Self { n, band, values }
    }

    /// Number of SNPs.
    pub fn n_snps(&self) -> usize {
        self.n
    }

    /// Band width (maximum stored `j − i`).
    pub fn band(&self) -> usize {
        self.band
    }

    /// The value for `(i, j)` if the pair is inside the band (either
    /// argument order); `None` outside. The diagonal is not stored.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        if i == j || j - i > self.band || j >= self.n {
            return None;
        }
        Some(self.values[i * self.band + (j - i - 1)])
    }

    /// Iterates stored pairs `(i, j, value)` with `i < j`, skipping NaN
    /// edge slots.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.band).filter_map(move |d| {
                let j = i + d + 1;
                if j < self.n {
                    Some((i, j, self.values[i * self.band + d]))
                } else {
                    None
                }
            })
        })
    }

    /// Number of stored (in-range) pairs.
    pub fn n_pairs(&self) -> usize {
        self.iter_pairs().count()
    }

    /// Bytes of storage — `n·band·8`, vs `4(n²+n)` for the full triangle.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NanPolicy;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        let mut s = seed | 1;
        for j in 0..n_snps {
            for smp in 0..n_samples {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s.is_multiple_of(3) {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    fn engine() -> LdEngine {
        LdEngine::new().nan_policy(NanPolicy::Zero)
    }

    #[test]
    fn band_matches_full_matrix() {
        let g = pseudo(128, 50, 1);
        let full = engine().r2_matrix(&g);
        let banded = BandedLdMatrix::compute(&engine(), &g, 7, LdStats::RSquared);
        for i in 0..50 {
            for j in 0..50 {
                match banded.get(i, j) {
                    Some(v) => {
                        assert!((v - full.get(i, j)).abs() < 1e-12, "({i},{j})");
                        assert!(i.abs_diff(j) <= 7 && i != j);
                    }
                    None => assert!(i == j || i.abs_diff(j) > 7),
                }
            }
        }
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        // n > chunk forces multiple chunks; compare against one-shot full
        let g = pseudo(64, 2100, 2);
        let banded = BandedLdMatrix::compute(&engine(), &g, 5, LdStats::RSquared);
        // probe pairs straddling the 1024-row chunk boundary
        for i in 1020..1030 {
            for d in 1..=5 {
                let j = i + d;
                let direct = engine().ld_pair(&g, i, j).r2;
                let got = banded.get(i, j).unwrap();
                assert!(
                    (got - direct).abs() < 1e-12 || (got.is_nan() && direct.is_nan()),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn pair_count_and_storage() {
        let g = pseudo(32, 20, 3);
        let banded = BandedLdMatrix::compute(&engine(), &g, 4, LdStats::RSquared);
        // pairs: Σ_i min(band, n-1-i) = 4*16 + 3+2+1 = 70
        assert_eq!(banded.n_pairs(), 70);
        assert_eq!(banded.band(), 4);
        assert_eq!(banded.n_snps(), 20);
        assert_eq!(banded.storage_bytes(), 20 * 4 * 8);
    }

    #[test]
    fn band_wider_than_matrix_clamps() {
        let g = pseudo(32, 6, 4);
        let banded = BandedLdMatrix::compute(&engine(), &g, 100, LdStats::RSquared);
        assert_eq!(banded.band(), 5);
        assert_eq!(banded.n_pairs(), 15); // all C(6,2) pairs
        let full = engine().r2_matrix(&g);
        for (i, j, v) in banded.iter_pairs() {
            assert!((v - full.get(i, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn other_stats_work() {
        let g = pseudo(64, 15, 5);
        let banded = BandedLdMatrix::compute(&engine(), &g, 3, LdStats::DPrime);
        let full = engine().d_prime_matrix(&g);
        for (i, j, v) in banded.iter_pairs() {
            assert!((v - full.get(i, j)).abs() < 1e-12, "({i},{j})");
        }
    }
}
