//! Run control: cancellation tokens, deadlines and checkpoint plans for
//! the `_with` driver entry points.
//!
//! A [`RunControl`] bundles the three interruption concerns the fused
//! pipeline honors **between slabs** (never mid-kernel):
//!
//! * a shared [`CancelToken`] — trip it from a signal handler, a service
//!   request scope, or a test, and the dynamic scheduler stops handing
//!   out slabs at the next chunk boundary;
//! * a monotonic [`Deadline`] — the driver converts expiry into a token
//!   trip (reason `"deadline exceeded"`), so everything downstream reacts
//!   to one mechanism;
//! * a [`CheckpointPlan`] — where and how often to persist completed
//!   slabs, and optionally a parsed [`CheckpointState`] to resume from.
//!
//! Cancellation surfaces as [`crate::LdError::Cancelled`] carrying the
//! reason and the completed-slab count; with a checkpoint plan a final
//! snapshot is flushed before that error returns, so the run is always
//! resumable.

use crate::checkpoint::{CheckpointSink, CheckpointState};
use crate::shard::SlabRange;
pub use ld_parallel::{CancelToken, Deadline};

/// How often — and where — a run persists its completed slabs, plus the
/// optional prior state to resume from.
pub struct CheckpointPlan<'a> {
    pub(crate) sink: &'a dyn CheckpointSink,
    /// Write after this many newly completed slabs (`K`); `usize::MAX`
    /// disables the count trigger (final flush still happens).
    pub(crate) every_slabs: usize,
    /// Also write when this much wall time passed since the last write.
    pub(crate) every_secs: Option<f64>,
    pub(crate) resume: Option<CheckpointState>,
}

impl std::fmt::Debug for CheckpointPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointPlan")
            .field("every_slabs", &self.every_slabs)
            .field("every_secs", &self.every_secs)
            .field("resume", &self.resume.as_ref().map(|r| r.records.len()))
            .finish_non_exhaustive()
    }
}

impl<'a> CheckpointPlan<'a> {
    /// A plan writing to `sink` every 16 completed slabs (and always once
    /// more on cancellation).
    pub fn new(sink: &'a dyn CheckpointSink) -> Self {
        Self {
            sink,
            every_slabs: 16,
            every_secs: None,
            resume: None,
        }
    }

    /// Sets the slab-count trigger `K` (clamped to ≥ 1): a checkpoint is
    /// written whenever `K` slabs completed since the last write.
    pub fn every_slabs(mut self, k: usize) -> Self {
        self.every_slabs = k.max(1);
        self
    }

    /// Adds a wall-clock trigger `T`: also write when `T` seconds passed
    /// since the last write (checked when a slab completes — the trigger
    /// cannot fire mid-kernel).
    pub fn every_secs(mut self, secs: f64) -> Self {
        self.every_secs = Some(secs.max(0.0));
        self
    }

    /// Resumes from a previously parsed checkpoint: its header is
    /// validated against the input and configuration, its completed slabs
    /// are replayed into the output, and the driver re-enters at the first
    /// incomplete slab. The resumed triangle is bit-identical to an
    /// uninterrupted run.
    pub fn resume_from(mut self, state: CheckpointState) -> Self {
        self.resume = Some(state);
        self
    }
}

/// Interruption controls threaded through the `_with` drivers
/// ([`crate::LdEngine::try_stat_matrix_with`] and friends). The default
/// value is fully inert: no token, no deadline, no checkpointing — the
/// plain `try_` entry points use exactly that.
#[derive(Debug, Default)]
pub struct RunControl<'a> {
    pub(crate) token: Option<CancelToken>,
    pub(crate) deadline: Option<Deadline>,
    pub(crate) checkpoint: Option<CheckpointPlan<'a>>,
    pub(crate) shard: Option<SlabRange>,
}

impl<'a> RunControl<'a> {
    /// An inert control: never cancels, never checkpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes `token`: when it (or an ancestor) trips, the run stops at
    /// the next slab boundary with [`crate::LdError::Cancelled`]. The
    /// token is cheaply cloned (shared state).
    pub fn with_token(mut self, token: &CancelToken) -> Self {
        self.token = Some(token.clone());
        self
    }

    /// Imposes a monotonic deadline; expiry trips the run's token with
    /// reason `"deadline exceeded"`. Because the caller's token is never
    /// tripped by the driver, a deadline on one run cannot cancel sibling
    /// runs sharing the same token.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a checkpoint plan (periodic persistence + optional
    /// resume). Only the packed-matrix driver supports checkpointing —
    /// the streaming drivers hand slabs to the caller instead of keeping
    /// them, so there is nothing for the engine to persist.
    pub fn with_checkpoint(mut self, plan: CheckpointPlan<'a>) -> Self {
        self.checkpoint = Some(plan);
        self
    }

    /// Restricts the run to one shard: only the slabs in `range` (indices
    /// on the run's global slab grid) are computed, checkpointed and
    /// counted. The drivers validate the range against the actual slab
    /// grid and reject resume snapshots whose spans fall outside it; the
    /// packed driver leaves out-of-shard triangle entries at zero. See
    /// [`crate::shard`] for the plan/merge machinery built on top.
    pub fn with_shard(mut self, range: SlabRange) -> Self {
        self.shard = Some(range);
        self
    }

    /// The shard restriction, if any.
    pub fn shard(&self) -> Option<SlabRange> {
        self.shard
    }

    /// The observed token, if any.
    pub fn token(&self) -> Option<&CancelToken> {
        self.token.as_ref()
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// The run-scoped token the driver should poll: the caller's token
    /// when only external cancellation is possible; a *child* of it (or a
    /// fresh token) whenever the driver itself may trip — deadline expiry
    /// or a failing checkpoint sink — so an internal trip never cancels
    /// sibling runs sharing the caller's token; `None` when the control
    /// is fully inert.
    pub(crate) fn run_token(&self) -> Option<CancelToken> {
        let internal_trips = self.deadline.is_some() || self.checkpoint.is_some();
        match (&self.token, internal_trips) {
            (Some(t), true) => Some(t.child()),
            (Some(t), false) => Some(t.clone()),
            (None, true) => Some(CancelToken::new()),
            (None, false) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemorySink;
    use std::time::Duration;

    #[test]
    fn default_is_inert() {
        let c = RunControl::new();
        assert!(c.token().is_none());
        assert!(c.deadline().is_none());
        assert!(c.checkpoint.is_none());
        assert!(c.shard().is_none());
        assert!(c.run_token().is_none());
    }

    #[test]
    fn run_token_shares_caller_token_without_deadline() {
        let t = CancelToken::new();
        let c = RunControl::new().with_token(&t);
        let rt = c.run_token().expect("token present");
        t.cancel_with_reason("outer");
        assert!(rt.is_cancelled());
        assert_eq!(rt.reason().as_deref(), Some("outer"));
    }

    #[test]
    fn deadline_gets_a_child_token_that_does_not_bubble_up() {
        let t = CancelToken::new();
        let c = RunControl::new()
            .with_token(&t)
            .with_deadline(Deadline::after(Duration::from_secs(3600)));
        let rt = c.run_token().expect("token present");
        rt.cancel_with_reason("deadline exceeded");
        assert!(!t.is_cancelled(), "driver trip must not cancel the caller");
        // but the caller still cancels the run
        let rt2 = c.run_token().expect("token present");
        t.cancel();
        assert!(rt2.is_cancelled());
    }

    #[test]
    fn plan_builder_clamps_and_records() {
        let sink = MemorySink::new();
        let p = CheckpointPlan::new(&sink).every_slabs(0).every_secs(-1.0);
        assert_eq!(p.every_slabs, 1);
        assert_eq!(p.every_secs, Some(0.0));
        let dbg = format!("{p:?}");
        assert!(dbg.contains("CheckpointPlan"));
    }
}
