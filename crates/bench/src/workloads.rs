//! Synthetic workload construction shared by the benchmark binaries.

use ld_bitmat::BitMatrix;

/// A fast xorshift generator for bulk random bit matrices — benchmark
/// inputs only need plausible density, not population-genetic structure
/// (the `tables` binary uses `ld-data`'s simulator for that).
pub struct XorShift(u64);

impl XorShift {
    /// Seeded generator (seed is made odd to avoid the zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A random bit matrix with roughly `density` fraction of derived alleles.
pub fn random_matrix(n_samples: usize, n_snps: usize, density: f64, seed: u64) -> BitMatrix {
    let mut rng = XorShift::new(seed);
    let threshold = (density.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    let wps = g.words_per_snp();
    let tail = ld_bitmat::tail_mask(n_samples);
    for j in 0..n_snps {
        let col = g.snp_words_mut(j);
        for (w, word) in col.iter_mut().enumerate() {
            let mut v = 0u64;
            for bit in 0..64 {
                if rng.next_u64() <= threshold {
                    v |= 1 << bit;
                }
            }
            if w + 1 == wps {
                v &= tail;
            }
            *word = v;
        }
    }
    g
}

/// Useful word-pair count for an `m × n` output over `k_words` — the unit
/// of the %-peak metric (§IV-B: one AND+POPCNT+ADD triple per word pair).
pub fn word_pairs(m: usize, n: usize, k_words: usize) -> f64 {
    m as f64 * n as f64 * k_words as f64
}

/// Number of distinct LD values in the triangular all-pairs case,
/// `N(N+1)/2` (what the paper counts for "LDs per second").
pub fn triangle_pairs(n: usize) -> f64 {
    n as f64 * (n as f64 + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_respected() {
        let g = random_matrix(640, 32, 0.25, 42);
        let d = g.density();
        assert!((d - 0.25).abs() < 0.03, "density {d}");
        g.check_padding().unwrap();
    }

    #[test]
    fn deterministic_by_seed() {
        let a = random_matrix(100, 10, 0.5, 7);
        let b = random_matrix(100, 10, 0.5, 7);
        let c = random_matrix(100, 10, 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pair_counters() {
        assert_eq!(triangle_pairs(10_000), 50_005_000.0);
        assert_eq!(word_pairs(4, 5, 6), 120.0);
    }
}
