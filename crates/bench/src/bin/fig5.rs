//! **Figure 5** — LD throughput of the three implementations on Dataset C
//! as the thread count grows **beyond the physical cores**.
//!
//! The paper's reading: the GEMM implementation saturates at the physical
//! core count (each thread already runs near per-core peak) and *degrades*
//! with oversubscription, while PLINK 1.9 and OmegaPlus keep gaining from
//! SMT because their per-core utilization is low.
//!
//! Usage: `fig5 [--scale N | --full] [--threads 1,2,...]`
//! (default thread sweep: 1..2× the paper's 12-core platform, i.e. up to 24)

use ld_baselines::{OmegaPlusKernel, PlinkKernel};
use ld_bench::report::Table;
use ld_bench::runner::BenchOpts;
use ld_bench::workloads::triangle_pairs;
use ld_core::{LdEngine, NanPolicy};
use ld_data::datasets::{build, genotypes_for, Dataset};
use ld_kernels::KernelKind;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let scale = if opts.full {
        1
    } else {
        opts.get("scale").and_then(|s| s.parse().ok()).unwrap_or(10)
    };
    let threads = opts
        .threads
        .clone()
        .unwrap_or_else(|| vec![1, 2, 4, 6, 8, 10, 12, 16, 20, 24]);

    let hw = ld_parallel::available_threads();
    let (n_snps, n_samples) = Dataset::C.scaled_shape(scale);
    println!("# Figure 5: thread scaling on Dataset C ({n_snps} SNPs x {n_samples} samples, scale {scale})");
    println!(
        "# this machine exposes {hw} hardware thread(s); scaling beyond that is the Figure's point"
    );
    let haps = build(Dataset::C, scale, 42);
    let genos = genotypes_for(&haps);
    let pairs = triangle_pairs(n_snps);

    let mut table = Table::new(["Threads", "PLINK MLD/s", "OmegaPlus MLD/s", "GEMM MLD/s"]);
    for &t in &threads {
        let t0 = Instant::now();
        let _ = PlinkKernel::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&genos, t);
        let plink_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _ = OmegaPlusKernel::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&haps.full_view(), t);
        let omega_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _ = LdEngine::new()
            .kernel(KernelKind::Scalar)
            .threads(t)
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&haps);
        let gemm_s = t0.elapsed().as_secs_f64();

        table.row([
            t.to_string(),
            format!("{:.2}", pairs / plink_s / 1e6),
            format!("{:.2}", pairs / omega_s / 1e6),
            format!("{:.2}", pairs / gemm_s / 1e6),
        ]);
    }
    println!("{}", table.render());
}
