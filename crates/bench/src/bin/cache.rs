//! **Cache-hierarchy ablation** — the mechanism behind the paper's
//! OmegaPlus-vs-GEMM gap.
//!
//! The paper's test platform had a 15 MB L3; Datasets B/C (12.5–125 MB
//! packed) did not fit, so the unblocked pairwise kernel paid memory
//! latency on every column re-stream while the GotoBLAS blocking kept its
//! working set cache-resident — that is where the 4–4.7× OmegaPlus gap of
//! Tables II/III comes from. Machines with very large LLCs (or scaled-down
//! benchmarks) hide the effect: both kernels run near 1 word/cycle and the
//! gap shrinks toward the per-pair-overhead ratio.
//!
//! This binary sweeps the packed working-set size across the reported LLC
//! boundary and prints words/cycle for the blocked and unblocked kernels,
//! making the crossover (or its absence) measurable on any machine.
//!
//! Usage: `cache [--threads 1] [--max-mb 512]`

use ld_baselines::OmegaPlusKernel;
use ld_bench::report::Table;
use ld_bench::runner::BenchOpts;
use ld_bench::workloads::random_matrix;
use ld_core::{LdEngine, NanPolicy};
use ld_kernels::clock::tsc_hz;
use ld_kernels::KernelKind;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let max_mb: usize = opts
        .get("max-mb")
        .and_then(|s| s.parse().ok())
        .unwrap_or(384);
    let hz = tsc_hz().unwrap_or(2.1e9);
    println!("# Working-set sweep: blocked GEMM vs unblocked pairwise (both scalar POPCNT)");
    println!("# reported caches: see lscpu; TSC {:.2} GHz", hz / 1e9);
    println!("# words/cycle peak = 1.0 for the scalar kernel\n");

    let mut table = Table::new([
        "packed MB",
        "SNPs",
        "samples",
        "GEMM w/c",
        "unblocked w/c",
        "GEMM speedup",
    ]);
    // Fixed SNP count, growing sample dimension: pair count constant, so
    // run time scales linearly and the per-pair overheads stay fixed.
    let n_snps = 1024usize;
    let mut samples = 16_384usize;
    loop {
        let packed_mb = n_snps * samples.div_ceil(64) * 8 / (1 << 20);
        if packed_mb > max_mb {
            break;
        }
        let g = random_matrix(samples, n_snps, 0.3, samples as u64);
        let k_words = g.words_per_snp();
        let word_pairs = (n_snps * (n_snps + 1) / 2) as f64 * k_words as f64;

        let engine = LdEngine::new()
            .kernel(KernelKind::Scalar)
            .threads(1)
            .nan_policy(NanPolicy::Zero);
        let t0 = Instant::now();
        let _ = engine.r2_matrix(&g);
        let gemm_s = t0.elapsed().as_secs_f64();

        let omega = OmegaPlusKernel::new().nan_policy(NanPolicy::Zero);
        let t0 = Instant::now();
        let _ = omega.r2_matrix(&g.full_view(), 1);
        let unblocked_s = t0.elapsed().as_secs_f64();

        table.row([
            packed_mb.to_string(),
            n_snps.to_string(),
            samples.to_string(),
            format!("{:.2}", word_pairs / (gemm_s * hz)),
            format!("{:.2}", word_pairs / (unblocked_s * hz)),
            format!("{:.2}x", unblocked_s / gemm_s),
        ]);
        samples *= 2;
    }
    println!("{}", table.render());
    println!("Reading: once the packed matrix outgrows the LLC, the unblocked kernel's");
    println!("words/cycle collapses (every pair re-streams a column from DRAM) while the");
    println!("blocked kernel holds steady — the paper's Tables II/III mechanism.");
}
