//! Fused slab pipeline vs the classical two-pass driver.
//!
//! Measures the tentpole trade of `ld-core::fused`: identical (bit-exact)
//! output, but `O(threads × slab × n)` transient memory instead of the
//! `4n²`-byte counts matrix, and one cache-hot sweep instead of two.
//!
//! Emits `BENCH_fused.json` (wall time + peak RSS per size) next to the
//! working directory and a human-readable table on stdout.
//!
//! ```sh
//! cargo run --release -p ld-bench --bin fused           # n ∈ {2000, 8000}
//! cargo run --release -p ld-bench --bin fused -- --full # paper-sized samples
//! ```

use ld_bench::report::{fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::random_matrix;
use ld_core::{LdEngine, LdStats, NanPolicy};

/// Peak resident set size of this process so far, in kB (`VmHWM` from
/// `/proc/self/status`); 0 when unavailable. Monotonic — callers must
/// order phases from small to large to attribute the high-water mark.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

struct SizeResult {
    n_snps: usize,
    fused_secs: f64,
    twopass_secs: f64,
    hwm_after_fused_kb: u64,
    hwm_after_twopass_kb: u64,
    packed_mb: f64,
    counts_mb: f64,
    scratch_mb: f64,
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let n_samples = if opts.full { 2504 } else { 512 };
    let sizes = [2000usize, 8000];
    let threads = opts.thread_list().into_iter().next().unwrap_or(1).max(1);
    let slab = 64usize;
    let (budget, max_reps) = if opts.full { (2.0, 5) } else { (0.5, 3) };

    let engine = LdEngine::new()
        .threads(threads)
        .slab_rows(slab)
        .nan_policy(NanPolicy::Zero);

    println!(
        "fused vs two-pass: {n_samples} samples, threads={threads}, slab={slab} \
         (best of <= {max_reps} reps, {budget:.1}s budget)"
    );
    let mut table = Table::new([
        "n_snps",
        "pairs",
        "fused",
        "two-pass",
        "ratio",
        "RSS@fused",
        "RSS@two-pass",
        "scratch(model)",
        "counts(model)",
    ]);

    let mut results: Vec<SizeResult> = Vec::new();
    // ascending sizes + fused before two-pass: VmHWM is monotonic, so each
    // reading is attributable to the largest phase completed so far
    for &n in &sizes {
        let g = random_matrix(n_samples, n, 0.3, 0x5eed ^ n as u64);

        let mut fused = None;
        let fused_secs = time_best(
            || fused = Some(engine.stat_matrix(&g, LdStats::RSquared)),
            budget,
            max_reps,
        );
        let hwm_after_fused_kb = vm_hwm_kb();

        let mut twopass = None;
        let twopass_secs = time_best(
            || twopass = Some(engine.stat_matrix_twopass(&g, LdStats::RSquared)),
            budget,
            max_reps,
        );
        let hwm_after_twopass_kb = vm_hwm_kb();

        // both paths must agree to the bit — this is a benchmark of two
        // implementations of the same function, so check it
        let (a, b) = (fused.unwrap(), twopass.unwrap());
        let mismatches = a
            .packed()
            .iter()
            .zip(b.packed())
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(mismatches, 0, "fused and two-pass disagree at n={n}");

        let packed_mb = (n * (n + 1) / 2 * 8) as f64 / 1e6;
        let counts_mb = (n * n * 4) as f64 / 1e6;
        let scratch_mb = (threads * slab * n * 4) as f64 / 1e6;
        table.row([
            n.to_string(),
            format!("{:.1}M", (n * (n + 1) / 2) as f64 / 1e6),
            fmt_secs(fused_secs),
            fmt_secs(twopass_secs),
            format!("{:.2}x", twopass_secs / fused_secs),
            format!("{:.0} MB", hwm_after_fused_kb as f64 / 1e3),
            format!("{:.0} MB", hwm_after_twopass_kb as f64 / 1e3),
            format!("{scratch_mb:.1} MB"),
            format!("{counts_mb:.0} MB"),
        ]);
        results.push(SizeResult {
            n_snps: n,
            fused_secs,
            twopass_secs,
            hwm_after_fused_kb,
            hwm_after_twopass_kb,
            packed_mb,
            counts_mb,
            scratch_mb,
        });
    }

    println!("{}", table.render());
    println!(
        "model: fused transient = threads x slab x n x 4 B; two-pass transient = 4n^2 B.\n\
         RSS columns are process high-water marks (monotonic): the jump from the\n\
         fused column to the two-pass column is the counts matrix the fused path never pays."
    );

    // hand-rolled JSON (no external deps in this workspace)
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fused\",\n");
    json.push_str(&format!("  \"n_samples\": {n_samples},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"slab_rows\": {slab},\n"));
    json.push_str("  \"results\": [\n");
    for (k, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n_snps\": {}, \"fused_secs\": {:.6}, \"twopass_secs\": {:.6}, \
             \"vm_hwm_after_fused_kb\": {}, \"vm_hwm_after_twopass_kb\": {}, \
             \"packed_mb\": {:.3}, \"counts_model_mb\": {:.3}, \"scratch_model_mb\": {:.3}}}{}\n",
            r.n_snps,
            r.fused_secs,
            r.twopass_secs,
            r.hwm_after_fused_kb,
            r.hwm_after_twopass_kb,
            r.packed_mb,
            r.counts_mb,
            r.scratch_mb,
            if k + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_fused.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
