//! Fused slab pipeline vs the classical two-pass driver.
//!
//! Measures the tentpole trade of `ld-core::fused`: identical (bit-exact)
//! output, but `O(threads × slab × n)` transient memory instead of the
//! `4n²`-byte counts matrix, and one cache-hot sweep instead of two.
//!
//! Emits `BENCH_fused.json` (wall time + peak RSS per size) next to the
//! working directory and a human-readable table on stdout.
//!
//! ```sh
//! cargo run --release -p ld-bench --bin fused           # n ∈ {2000, 8000}
//! cargo run --release -p ld-bench --bin fused -- --full # paper-sized samples
//! ```

use ld_bench::report::{fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::random_matrix;
use ld_core::{LdEngine, LdStats, NanPolicy};

/// Peak resident set size of this process so far, in kB (`VmHWM` from
/// `/proc/self/status`); 0 when unavailable. Monotonic — callers must
/// order phases from small to large to attribute the high-water mark.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

struct SizeResult {
    n_snps: usize,
    fused_secs: f64,
    twopass_secs: f64,
    hwm_after_fused_kb: u64,
    hwm_after_twopass_kb: u64,
    packed_mb: f64,
    counts_mb: f64,
    scratch_mb: f64,
    /// Per-layer breakdown of one instrumented fused run (None when the
    /// harness is built without the `metrics` feature).
    layers: Option<LayerBreakdown>,
}

/// One instrumented fused run's per-layer nanoseconds (see DESIGN.md §8).
struct LayerBreakdown {
    wall_ns: u64,
    pack_a_ns: u64,
    pack_b_ns: u64,
    kernel_ns: u64,
    transform_ns: u64,
    coverage: Option<f64>,
}

/// Runs the fused driver once with fresh counters and captures the
/// per-layer split. Separate from the `time_best` loop so the breakdown
/// is attributable to exactly one run. When `trace_out` is set the run
/// also records a flight-recorder span timeline and writes it as Chrome
/// trace-event JSON (one file per size: `path` gains a `.nN` suffix
/// before the extension so repeated sizes don't clobber each other).
fn profile_fused(
    engine: &ld_core::LdEngine,
    g: &ld_bitmat::BitMatrix,
    threads: usize,
    trace_out: Option<&str>,
) -> Option<LayerBreakdown> {
    if !ld_trace::enabled() {
        return None;
    }
    ld_trace::reset();
    if trace_out.is_some() {
        ld_trace::recorder::start(ld_trace::recorder::RecorderConfig::for_threads(threads));
    }
    let t = std::time::Instant::now();
    let _ = engine.stat_matrix(g, LdStats::RSquared);
    let wall_ns = t.elapsed().as_nanos() as u64;
    let r = ld_trace::MetricsReport::capture()
        .with_wall_ns(wall_ns)
        .with_threads(threads);
    if let Some(path) = trace_out {
        let snap = ld_trace::recorder::stop().unwrap_or_default();
        let path = trace_path_for_size(path, g.n_snps());
        let body = ld_trace::export::chrome_trace_json(&snap);
        match ld_io::atomic::write_atomic(&path, (body + "\n").as_bytes()) {
            Ok(()) => eprintln!(
                "wrote trace timeline to {path} ({} events, {} dropped)",
                snap.events.len(),
                snap.dropped
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    use ld_trace::Counter as C;
    Some(LayerBreakdown {
        wall_ns,
        pack_a_ns: r.get(C::PackANs),
        pack_b_ns: r.get(C::PackBNs),
        kernel_ns: r.get(C::KernelNs),
        transform_ns: r.get(C::TransformNs),
        coverage: r.layer_coverage(),
    })
}

/// `trace.json` + n=2000 → `trace.n2000.json` (suffix before the final
/// extension; appended when there is none).
fn trace_path_for_size(path: &str, n: usize) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.n{n}.{ext}"),
        _ => format!("{path}.n{n}"),
    }
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let n_samples = if opts.full { 2504 } else { 512 };
    let sizes = [2000usize, 8000];
    let threads = opts.thread_list().into_iter().next().unwrap_or(1).max(1);
    // Tuned parameters: a cached CPU profile (gemm-ld tune) overrides the
    // built-in geometry so the bench measures what production runs use;
    // LD_NO_CPU_PROFILE=1 pins the defaults (the CI gate does, so the
    // committed baseline stays comparable across tuned machines).
    let mut slab = 64usize;
    let mut chunk = 1usize;
    let mut blocks = ld_kernels::BlockSizes::default();
    let mut kind = ld_kernels::KernelKind::Auto;
    if let Some(p) = ld_kernels::profile::load_active() {
        let t = &p.tuned;
        slab = t.slab_rows;
        chunk = t.chunk_slabs;
        blocks = t.blocks;
        kind = t.kernel;
        eprintln!(
            "using tuned CPU profile: kernel={} kc={} mc={} nc={} slab={slab} chunk={chunk}",
            t.kernel.name(),
            blocks.kc,
            blocks.mc,
            blocks.nc
        );
    }
    let kernel_name = ld_kernels::Kernel::resolve(kind)
        .map(|k| k.kind().name())
        .unwrap_or("unresolved");
    // The budget must buy the large sizes at least two reps: a best-of-1
    // measurement is a *cold* measurement (first-touch page faults on the
    // multi-hundred-MB allocations dominate and vary with memory
    // pressure), and the bench-regression gate needs warm, repeatable
    // numbers to band tightly.
    let (budget, max_reps) = if opts.full { (30.0, 5) } else { (6.0, 3) };

    let engine = LdEngine::new()
        .kernel(kind)
        .blocks(blocks)
        .threads(threads)
        .slab_rows(slab)
        .chunk_slabs(chunk)
        .nan_policy(NanPolicy::Zero);

    println!(
        "fused vs two-pass: {n_samples} samples, threads={threads}, slab={slab}, \
         kernel={kernel_name} (best of <= {max_reps} reps, {budget:.1}s budget)"
    );
    let mut table = Table::new([
        "n_snps",
        "pairs",
        "fused",
        "two-pass",
        "ratio",
        "RSS@fused",
        "RSS@two-pass",
        "scratch(model)",
        "counts(model)",
    ]);

    let mut results: Vec<SizeResult> = Vec::new();
    // ascending sizes + fused before two-pass: VmHWM is monotonic, so each
    // reading is attributable to the largest phase completed so far
    for &n in &sizes {
        let g = random_matrix(n_samples, n, 0.3, 0x5eed ^ n as u64);

        // Drop the previous rep's result *before* computing the next one:
        // otherwise two output triangles are resident at once and VmHWM
        // becomes a function of how many reps the budget allowed — the
        // bench-regression gate needs the peak to depend on the problem,
        // not the rep count.
        let mut fused = None;
        let fused_secs = time_best(
            || {
                fused = None;
                fused = Some(engine.stat_matrix(&g, LdStats::RSquared));
            },
            budget,
            max_reps,
        );
        let hwm_after_fused_kb = vm_hwm_kb();

        let mut twopass = None;
        let twopass_secs = time_best(
            || {
                twopass = None;
                twopass = Some(engine.stat_matrix_twopass(&g, LdStats::RSquared));
            },
            budget,
            max_reps,
        );
        let hwm_after_twopass_kb = vm_hwm_kb();

        // both paths must agree to the bit — this is a benchmark of two
        // implementations of the same function, so check it
        let (a, b) = (fused.take().unwrap(), twopass.take().unwrap());
        let mismatches = a
            .packed()
            .iter()
            .zip(b.packed())
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(mismatches, 0, "fused and two-pass disagree at n={n}");
        // free both results before the instrumented run so its allocations
        // cannot raise the high-water mark the next size reads
        drop((a, b));

        let layers = profile_fused(&engine, &g, threads, opts.get("trace-out"));

        let packed_mb = (n * (n + 1) / 2 * 8) as f64 / 1e6;
        let counts_mb = (n * n * 4) as f64 / 1e6;
        let scratch_mb = (threads * slab * n * 4) as f64 / 1e6;
        table.row([
            n.to_string(),
            format!("{:.1}M", (n * (n + 1) / 2) as f64 / 1e6),
            fmt_secs(fused_secs),
            fmt_secs(twopass_secs),
            format!("{:.2}x", twopass_secs / fused_secs),
            format!("{:.0} MB", hwm_after_fused_kb as f64 / 1e3),
            format!("{:.0} MB", hwm_after_twopass_kb as f64 / 1e3),
            format!("{scratch_mb:.1} MB"),
            format!("{counts_mb:.0} MB"),
        ]);
        results.push(SizeResult {
            n_snps: n,
            fused_secs,
            twopass_secs,
            hwm_after_fused_kb,
            hwm_after_twopass_kb,
            packed_mb,
            counts_mb,
            scratch_mb,
            layers,
        });
    }

    println!("{}", table.render());
    println!(
        "model: fused transient = threads x slab x n x 4 B; two-pass transient = 4n^2 B.\n\
         RSS columns are process high-water marks (monotonic): the jump from the\n\
         fused column to the two-pass column is the counts matrix the fused path never pays."
    );

    // Per-layer breakdown of one instrumented fused run per size: where the
    // wall time goes across the paper's pipeline stages (pack A/B, the
    // AND+POPCNT micro-kernel sweep, the counts -> statistic transform).
    if results.iter().any(|r| r.layers.is_some()) {
        let mut lt = Table::new([
            "n_snps",
            "wall",
            "pack_a",
            "pack_b",
            "kernel",
            "transform",
            "coverage",
        ]);
        for r in &results {
            let Some(l) = &r.layers else { continue };
            let pct = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / l.wall_ns.max(1) as f64);
            lt.row([
                r.n_snps.to_string(),
                fmt_secs(l.wall_ns as f64 / 1e9),
                pct(l.pack_a_ns),
                pct(l.pack_b_ns),
                pct(l.kernel_ns),
                pct(l.transform_ns),
                l.coverage
                    .map(|c| format!("{:.1}%", 100.0 * c))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
        println!("\nper-layer breakdown (one instrumented fused run, % of its wall):");
        println!("{}", lt.render());
    } else {
        println!("\n(per-layer breakdown unavailable: built without the `metrics` feature)");
    }

    // hand-rolled JSON (no external deps in this workspace)
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fused\",\n");
    json.push_str(&format!("  \"n_samples\": {n_samples},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"slab_rows\": {slab},\n"));
    // Tuning parameters of this run: compared warn-only by the regression
    // gate (a tuned machine is allowed to differ from the baseline's
    // geometry, but the gate should say so next to any timing delta).
    json.push_str(&format!("  \"kernel\": \"{kernel_name}\",\n"));
    json.push_str(&format!("  \"block_kc\": {},\n", blocks.kc));
    json.push_str(&format!("  \"block_mc\": {},\n", blocks.mc));
    json.push_str(&format!("  \"block_nc\": {},\n", blocks.nc));
    json.push_str(&format!("  \"chunk_slabs\": {chunk},\n"));
    json.push_str("  \"results\": [\n");
    for (k, r) in results.iter().enumerate() {
        let layers_json = match &r.layers {
            Some(l) => format!(
                ", \"layers\": {{\"wall_ns\": {}, \"pack_a_ns\": {}, \"pack_b_ns\": {}, \
                 \"kernel_ns\": {}, \"transform_ns\": {}}}",
                l.wall_ns, l.pack_a_ns, l.pack_b_ns, l.kernel_ns, l.transform_ns
            ),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"n_snps\": {}, \"fused_secs\": {:.6}, \"twopass_secs\": {:.6}, \
             \"vm_hwm_after_fused_kb\": {}, \"vm_hwm_after_twopass_kb\": {}, \
             \"packed_mb\": {:.3}, \"counts_model_mb\": {:.3}, \"scratch_model_mb\": {:.3}{}}}{}\n",
            r.n_snps,
            r.fused_secs,
            r.twopass_secs,
            r.hwm_after_fused_kb,
            r.hwm_after_twopass_kb,
            r.packed_mb,
            r.counts_mb,
            r.scratch_mb,
            layers_json,
            if k + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_fused.json";
    // temp + fsync + rename: a crashed bench run never leaves a truncated
    // metrics file for the CI validator to trip over
    match ld_io::atomic::write_atomic(path, json.as_bytes()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
