//! **Figure 3** — performance of the haplotype-frequency computation
//! (`H = GᵀG`, one genomic matrix, SYRK path) as a percentage of the
//! scalar theoretical peak, sweeping the `k` dimension (sample count) for
//! several square output sizes `m = n`.
//!
//! Paper setup: Intel Haswell 3.5 GHz, scalar AND+POPCNT+ADD kernel,
//! peak = 3 ops/cycle = 1 word-pair/cycle; observed 84–90 % of peak,
//! flat in both `k` and `n`.
//!
//! Usage: `fig3 [--full] [--kernel scalar|auto|avx512-vpopcnt|avx2-mula]`
//! Default sizes are scaled ~4× down so the sweep finishes in minutes on
//! one core; `--full` uses the paper's 4096/8192/16384 SNPs.

use ld_bench::report::Table;
use ld_bench::runner::BenchOpts;
use ld_bench::workloads::{random_matrix, triangle_pairs};
use ld_kernels::clock::{percent_of_peak, tsc_hz, CycleTimer};
use ld_kernels::{syrk_counts_buf, BlockSizes, Kernel, KernelKind};

fn parse_kernel(name: Option<&str>) -> KernelKind {
    match name {
        None => KernelKind::Scalar, // the paper's kernel
        Some(n) => n.parse().unwrap_or_else(|e| {
            eprintln!("{e}; using scalar");
            KernelKind::Scalar
        }),
    }
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let kind = parse_kernel(opts.get("kernel"));
    let kernel = Kernel::resolve(kind).expect("kernel unsupported on this CPU");
    let sizes: &[usize] = if opts.full {
        &[4096, 8192, 16384]
    } else {
        &[1024, 2048, 4096]
    };
    let ks: &[usize] = if opts.full {
        &[512, 1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };

    println!("# Figure 3: % of theoretical peak vs k (same matrix, SYRK)");
    println!(
        "# kernel = {} (MR={} NR={} lanes={})",
        kernel.kind(),
        kernel.mr(),
        kernel.nr(),
        kernel.lanes()
    );
    match tsc_hz() {
        Some(hz) => println!("# TSC calibrated at {:.2} GHz", hz / 1e9),
        None => println!("# no TSC; falling back to wall-clock at 1 GHz nominal"),
    }
    println!(
        "# peak = {} word-pair(s)/cycle; %peak = useful word-pairs / (cycles * lanes)",
        kernel.lanes()
    );

    let mut table = Table::new([
        "m=n",
        "k (samples)",
        "k_words",
        "time (s)",
        "GLD/s",
        "% peak",
    ]);
    for &n in sizes {
        for &k in ks {
            let g = random_matrix(k, n, 0.3, (n * 31 + k) as u64);
            let k_words = g.words_per_snp();
            let mut c = vec![0u32; n * n];
            // Warm-up pass, then best-of-3 (shared-VM noise easily shifts a
            // single pass by 20%+).
            syrk_counts_buf(&g.full_view(), &mut c, n, kind, BlockSizes::default(), 1);
            let mut secs = f64::INFINITY;
            let mut cycles = f64::INFINITY;
            for _ in 0..3 {
                let t = CycleTimer::start();
                syrk_counts_buf(&g.full_view(), &mut c, n, kind, BlockSizes::default(), 1);
                let s = t.seconds();
                if s < secs {
                    secs = s;
                    cycles = t.cycles(tsc_hz().unwrap_or(1e9));
                }
            }
            let pairs = triangle_pairs(n);
            let useful = pairs * k_words as f64;
            let peak = percent_of_peak(useful, cycles, kernel.lanes());
            table.row([
                n.to_string(),
                k.to_string(),
                k_words.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}", pairs / secs / 1e9),
                format!("{peak:.1}%"),
            ]);
        }
    }
    println!("{}", table.render());
}
