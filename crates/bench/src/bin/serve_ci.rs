//! `serve_ci` — the deterministic driver behind the `scripts/ci.sh`
//! serve leg. Spawns the *real* `gemm-ld serve` daemon on a loopback
//! port and proves the PR's acceptance properties end to end:
//!
//! 1. **overload** — one slow worker + a short queue: concurrent
//!    queries must split into `Ok` and typed `Shed` responses with
//!    zero hung connections;
//! 2. **killed client** — a client that vanishes mid-request must not
//!    wedge the pool;
//! 3. **SIGINT mid-load** — with a full-panel region query in flight,
//!    SIGINT must drain it (the response arrives, byte-identical to
//!    the one-shot CLI table — asserted by the calling script via
//!    `cmp`), refuse new connections, and exit 0;
//! 4. **drain deadline** — `--drain-ms 0` with work in flight must
//!    exit 5 (the Interrupted exit code), per the exit-code contract.
//!
//! ```sh
//! serve_ci --gemm-ld target/release/gemm-ld --input data.ms \
//!          --region-out served_region.tsv
//! ```
//!
//! Exits 0 only if every check passed; failures print one line each.

use ld_serve::protocol::{Request, StatCode, Status};
use ld_serve::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Opts {
    gemm_ld: String,
    input: String,
    region_out: String,
}

fn parse_opts() -> Opts {
    let mut gemm_ld = "target/release/gemm-ld".to_string();
    let mut input = String::new();
    let mut region_out = "served_region.tsv".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gemm-ld" => gemm_ld = it.next().unwrap_or_default(),
            "--input" => input = it.next().unwrap_or_default(),
            "--region-out" => region_out = it.next().unwrap_or_default(),
            other => {
                eprintln!("serve_ci: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    if input.is_empty() {
        eprintln!("serve_ci: --input FILE is required");
        std::process::exit(2);
    }
    Opts {
        gemm_ld,
        input,
        region_out,
    }
}

/// Spawns `gemm-ld serve` and reads the bound address off its stdout.
fn spawn_daemon(opts: &Opts, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(&opts.gemm_ld);
    cmd.arg("serve")
        .arg(format!("panel={}", opts.input))
        .args(["--addr", "127.0.0.1:0", "--preload"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap_or_else(|e| {
        eprintln!("serve_ci FAIL: cannot spawn {}: {e}", opts.gemm_ld);
        std::process::exit(1);
    });
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("listening on ") {
                    break a.trim().to_string();
                }
            }
            _ => {
                eprintln!("serve_ci FAIL: daemon exited before binding");
                let _ = child.kill();
                std::process::exit(1);
            }
        }
    };
    (child, addr)
}

fn sigint(child: &Child) {
    // /bin/kill is universally available where ci.sh runs; the CLI's
    // own watcher turns the signal into a graceful drain.
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
}

fn pair(i: u32, j: u32) -> Request {
    Request::Pair {
        panel: "panel".into(),
        stat: StatCode::RSquared,
        i,
        j,
    }
}

fn full_region() -> Request {
    Request::Region {
        panel: "panel".into(),
        stat: StatCode::RSquared,
        row0: 0,
        row1: 0,
        min_r2: 0.0,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_ci FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let opts = parse_opts();
    let timeout = Duration::from_secs(30);

    // ---- daemon A: slow worker, short queue -------------------------
    let (child, addr) = spawn_daemon(
        &opts,
        &[
            "--workers",
            "1",
            "--queue",
            "1",
            "--inject-delay-ms",
            "250",
            "--drain-ms",
            "15000",
        ],
    );

    // 1. Overload: 6 concurrent queries, no retry. With a 250 ms worker
    // hold and a depth-1 queue, at most 2 can be admitted promptly —
    // the rest MUST be typed sheds, and nothing may hang.
    let threads: Vec<_> = (0..6)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, timeout).ok()?;
                c.request(&pair(k % 4, k % 4 + 1)).ok()
            })
        })
        .collect();
    let mut ok = 0;
    let mut shed = 0;
    let mut hung = 0;
    for t in threads {
        match t.join().ok().flatten() {
            Some(r) if r.status == Status::Ok => ok += 1,
            Some(r) if r.status == Status::Shed => shed += 1,
            Some(r) => fail(&format!("overload: unexpected status {:?}", r.status)),
            None => hung += 1,
        }
    }
    if ok == 0 || shed == 0 || hung != 0 {
        fail(&format!(
            "overload: expected ok>0 and typed sheds with none hung, got ok={ok} shed={shed} hung={hung}"
        ));
    }
    println!("serve_ci: overload OK ({ok} served, {shed} typed sheds, 0 hung)");

    // 2. Killed client: send a request and vanish without reading the
    // response. The pool must keep serving.
    for _ in 0..4 {
        if let Ok(mut c) = Client::connect(&addr, timeout) {
            let _ = c.send_raw_frame(&full_region().encode());
            drop(c);
        }
    }
    std::thread::sleep(Duration::from_millis(600));
    let resp = Client::connect(&addr, timeout)
        .and_then(|mut c| c.request(&pair(0, 1)))
        .unwrap_or_else(|e| fail(&format!("after killed clients: {e}")));
    if resp.status != Status::Ok {
        fail(&format!(
            "after killed clients: status {:?} ({})",
            resp.status,
            resp.message()
        ));
    }
    println!("serve_ci: killed clients left the pool serving OK");

    // 3. SIGINT mid-load: put a full-panel region query in flight, trip
    // SIGINT while the worker holds it, and require (a) the response
    // still arrives intact, (b) new connections are refused, (c) the
    // daemon exits 0 within the drain deadline.
    let region_thread = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, timeout).ok()?;
            c.request(&full_region()).ok()
        })
    };
    std::thread::sleep(Duration::from_millis(80)); // request now in flight
    sigint(&child);
    let resp = region_thread
        .join()
        .ok()
        .flatten()
        .unwrap_or_else(|| fail("drain: in-flight region request got no response"));
    if resp.status != Status::Ok {
        fail(&format!(
            "drain: in-flight request answered {:?} ({})",
            resp.status,
            resp.message()
        ));
    }
    std::fs::write(&opts.region_out, &resp.body)
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", opts.region_out)));

    let mut child = child;
    let t0 = Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(s)) => break s,
            Ok(None) if t0.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                fail("drain: daemon did not exit within 30 s of SIGINT");
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => fail(&format!("drain: wait failed: {e}")),
        }
    };
    if status.code() != Some(0) {
        fail(&format!(
            "drain: daemon exited {:?} after clean drain (expected 0)",
            status.code()
        ));
    }
    if Client::connect(&addr, Duration::from_secs(2)).is_ok() {
        fail("drain: daemon still accepting connections after exit");
    }
    println!(
        "serve_ci: SIGINT drained the in-flight region request ({} bytes) and exited 0",
        resp.body.len()
    );

    // 4. Drain deadline: with --drain-ms 0 and a request in flight,
    // the exit-code contract demands 5 (interrupted).
    let (child_b, addr_b) = spawn_daemon(
        &opts,
        &[
            "--workers",
            "1",
            "--inject-delay-ms",
            "1500",
            "--drain-ms",
            "0",
        ],
    );
    let slow_thread = {
        let addr_b = addr_b.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr_b, timeout).ok()?;
            c.request(&pair(0, 1)).ok()
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    sigint(&child_b);
    let mut child_b = child_b;
    let t0 = Instant::now();
    let status_b = loop {
        match child_b.try_wait() {
            Ok(Some(s)) => break s,
            Ok(None) if t0.elapsed() > Duration::from_secs(30) => {
                let _ = child_b.kill();
                fail("deadline: daemon did not exit within 30 s of SIGINT");
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => fail(&format!("deadline: wait failed: {e}")),
        }
    };
    if status_b.code() != Some(5) {
        fail(&format!(
            "deadline: expired drain exited {:?} (expected 5)",
            status_b.code()
        ));
    }
    // The abandoned request still received a typed response.
    match slow_thread.join().ok().flatten() {
        Some(r)
            if matches!(
                r.status,
                Status::Ok | Status::ShuttingDown | Status::Timeout
            ) => {}
        Some(r) => fail(&format!(
            "deadline: abandoned request answered {:?}",
            r.status
        )),
        None => fail("deadline: abandoned request got no typed response"),
    }
    println!("serve_ci: expired drain deadline exited 5 with typed abandonment");
    println!("serve_ci: all checks passed");
}
