//! **Figure 4** — performance when the haplotype frequencies are computed
//! between **two different genomic matrices** (the full `m × n` output, no
//! triangle): the long-range LD / distant-gene use case.
//!
//! The paper's observation: despite computing ~2× as many values as the
//! symmetric case, the attained fraction of peak stays in the same
//! 84–90 % band, because the GotoBLAS blocking is shape-agnostic.
//!
//! Usage: `fig4 [--full] [--kernel ...]` (flags as in `fig3`).

use ld_bench::report::Table;
use ld_bench::runner::BenchOpts;
use ld_bench::workloads::{random_matrix, word_pairs};
use ld_kernels::clock::{percent_of_peak, tsc_hz, CycleTimer};
use ld_kernels::{gemm_counts_mt, BlockSizes, Kernel, KernelKind};

fn parse_kernel(name: Option<&str>) -> KernelKind {
    match name {
        None => KernelKind::Scalar, // the paper's kernel
        Some(n) => n.parse().unwrap_or_else(|e| {
            eprintln!("{e}; using scalar");
            KernelKind::Scalar
        }),
    }
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let kind = parse_kernel(opts.get("kernel"));
    let kernel = Kernel::resolve(kind).expect("kernel unsupported on this CPU");
    let sizes: &[usize] = if opts.full {
        &[4096, 8192, 16384]
    } else {
        &[1024, 2048, 4096]
    };
    let ks: &[usize] = if opts.full {
        &[512, 1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };

    println!("# Figure 4: % of theoretical peak, two different genomic matrices (GEMM)");
    println!("# kernel = {} (lanes={})", kernel.kind(), kernel.lanes());
    println!("# all m*n values computed (no symmetric triangle)");

    let mut table = Table::new([
        "m=n",
        "k (samples)",
        "k_words",
        "time (s)",
        "GLD/s",
        "% peak",
    ]);
    for &n in sizes {
        for &k in ks {
            let a = random_matrix(k, n, 0.3, (n * 7 + k) as u64);
            let b = random_matrix(k, n, 0.3, (n * 13 + k) as u64);
            let k_words = a.words_per_snp();
            let mut c = vec![0u32; n * n];
            gemm_counts_mt(
                &a.full_view(),
                &b.full_view(),
                &mut c,
                n,
                kind,
                BlockSizes::default(),
                1,
            );
            let mut secs = f64::INFINITY;
            let mut cycles = f64::INFINITY;
            for _ in 0..3 {
                let t = CycleTimer::start();
                gemm_counts_mt(
                    &a.full_view(),
                    &b.full_view(),
                    &mut c,
                    n,
                    kind,
                    BlockSizes::default(),
                    1,
                );
                let s = t.seconds();
                if s < secs {
                    secs = s;
                    cycles = t.cycles(tsc_hz().unwrap_or(1e9));
                }
            }
            let useful = word_pairs(n, n, k_words);
            let peak = percent_of_peak(useful, cycles, kernel.lanes());
            let lds = (n as f64) * (n as f64);
            table.row([
                n.to_string(),
                k.to_string(),
                k_words.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}", lds / secs / 1e9),
                format!("{peak:.1}%"),
            ]);
        }
    }
    println!("{}", table.render());
}
