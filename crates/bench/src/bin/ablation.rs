//! **Ablations** — which parts of the GotoBLAS recipe actually pay, and by
//! how much (the design-choice index of DESIGN.md §5):
//!
//! 1. *blocking on/off*: blocked SYRK vs the unblocked pairwise loop
//!    (OmegaPlus-class) vs the naive byte-vector loop (PopGenome-class);
//! 2. *cache block sizes*: `kc`/`mc`/`nc` sweeps around the defaults;
//! 3. *register tile shape*: 2×4 / 4×4 / 8×4 scalar micro-kernels;
//! 4. *popcount strategy inside the blocked kernel*: `POPCNT` instruction
//!    vs SWAR vs 8/16-bit LUTs vs Harley–Seal (§IV's claim that the
//!    instruction wins).
//!
//! Usage: `ablation [--full]`

use ld_baselines::{ByteMatrix, OmegaPlusKernel};
use ld_bench::report::Table;
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::{random_matrix, triangle_pairs};
use ld_core::NanPolicy;
use ld_kernels::{syrk_counts_buf, BlockSizes, KernelKind};
use ld_popcount::PopcountStrategy;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let (n, k) = if opts.full {
        (4096, 8192)
    } else {
        (1024, 4096)
    };
    let g = random_matrix(k, n, 0.3, 99);
    let pairs = triangle_pairs(n);
    let mut c = vec![0u32; n * n];
    println!("# Ablations on n={n} SNPs x k={k} samples\n");

    // 1. blocking on/off ----------------------------------------------------
    println!("## 1. what blocking buys (same popcount instruction everywhere)");
    let mut t = Table::new(["implementation", "time (s)", "MLD/s", "vs blocked"]);
    let blocked = time_best(
        || {
            syrk_counts_buf(
                &g.full_view(),
                &mut c,
                n,
                KernelKind::Scalar,
                BlockSizes::default(),
                1,
            )
        },
        0.3,
        3,
    );
    let unblocked = time_best(
        || {
            let _ = OmegaPlusKernel::new()
                .nan_policy(NanPolicy::Zero)
                .r2_matrix(&g.full_view(), 1);
        },
        0.3,
        2,
    );
    // naive on a smaller slice (it is orders of magnitude slower)
    let n_naive = (n / 8).max(64);
    let bytes =
        ByteMatrix::from_bitmatrix(&g.select_snps(&(0..n_naive).collect::<Vec<_>>()).unwrap());
    let naive = time_best(
        || {
            let _ = bytes.r2_matrix(1, NanPolicy::Zero);
        },
        0.3,
        2,
    );
    let naive_scaled = naive * (pairs / triangle_pairs(n_naive));
    t.row([
        "blocked GEMM (GotoBLAS)".to_string(),
        format!("{blocked:.3}"),
        format!("{:.1}", pairs / blocked / 1e6),
        "1.00x".into(),
    ]);
    t.row([
        "unblocked popcount pairs".to_string(),
        format!("{unblocked:.3}"),
        format!("{:.1}", pairs / unblocked / 1e6),
        format!("{:.2}x", unblocked / blocked),
    ]);
    t.row([
        format!("naive bytes (extrapolated from {n_naive} SNPs)"),
        format!("{naive_scaled:.1}"),
        format!("{:.1}", pairs / naive_scaled / 1e6),
        format!("{:.0}x", naive_scaled / blocked),
    ]);
    println!("{}", t.render());

    // 2. block-size sweeps ---------------------------------------------------
    println!("## 2. cache block sizes (scalar kernel; default kc=256 mc=512 nc=4096)");
    let mut t = Table::new(["kc", "mc", "nc", "time (s)", "rel"]);
    let base = blocked;
    for kc in [32usize, 128, 256, 512] {
        for (mc, nc) in [(128usize, 1024usize), (512, 4096), (2048, 8192)] {
            let b = BlockSizes { kc, mc, nc };
            let secs = time_best(
                || syrk_counts_buf(&g.full_view(), &mut c, n, KernelKind::Scalar, b, 1),
                0.2,
                2,
            );
            t.row([
                kc.to_string(),
                mc.to_string(),
                nc.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}x", secs / base),
            ]);
        }
    }
    println!("{}", t.render());

    // 3. register tile shapes ------------------------------------------------
    println!("## 3. scalar register-tile shape");
    let mut t = Table::new(["kernel", "time (s)", "rel to 4x4"]);
    for kind in [
        KernelKind::Scalar2x4,
        KernelKind::Scalar,
        KernelKind::Scalar8x4,
    ] {
        let secs = time_best(
            || syrk_counts_buf(&g.full_view(), &mut c, n, kind, BlockSizes::default(), 1),
            0.2,
            2,
        );
        t.row([
            format!("{kind}"),
            format!("{secs:.3}"),
            format!("{:.2}x", secs / base),
        ]);
    }
    println!("{}", t.render());

    // 4. popcount strategies -------------------------------------------------
    println!("## 4. popcount strategy inside the blocked kernel (SectionIV: POPCNT wins)");
    let mut t = Table::new(["strategy", "time (s)", "rel to popcnt-asm"]);
    t.row([
        "popcnt (asm-pinned)".to_string(),
        format!("{base:.3}"),
        "1.00x".into(),
    ]);
    for s in PopcountStrategy::ALL {
        let kind = KernelKind::ScalarStrategy(s);
        let secs = time_best(
            || syrk_counts_buf(&g.full_view(), &mut c, n, kind, BlockSizes::default(), 1),
            0.2,
            2,
        );
        t.row([
            s.name().to_string(),
            format!("{secs:.3}"),
            format!("{:.2}x", secs / base),
        ]);
    }
    println!("{}", t.render());
}
