//! **§V** — does SIMD help LD? Measured kernel shootout plus the paper's
//! analytical model.
//!
//! The paper's claims, each tied to a row below:
//!
//! 1. *SIMD without a vector popcount cannot beat scalar* (§V-A): the
//!    `avx2-extract-insert` kernel implements exactly the analysed
//!    extract → scalar `POPCNT` → insert sequence.
//! 2. *A hardware vectorized popcount restores the full `v×` speedup*
//!    (§V-B): the `avx512-vpopcnt` kernel uses `VPOPCNTQ` — the very
//!    instruction the paper asked hardware vendors for (it shipped in
//!    Ice Lake, three years after publication).
//! 3. Software vector popcounts (`avx2-mula`) sit in between.
//! 4. `scalar-autovec` shows that modern compilers now reach case 2 from
//!    plain `count_ones()` source when AVX-512 is available.
//!
//! Usage: `simd [--full]`

use ld_bench::report::Table;
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::{random_matrix, triangle_pairs};
use ld_kernels::clock::{percent_of_peak, tsc_hz};
use ld_kernels::{syrk_counts_buf, BlockSizes, Kernel, KernelKind};
use ld_popcount::{CpuFeatures, SimdCostModel};

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let (n, k) = if opts.full {
        (4096, 16384)
    } else {
        (1536, 8192)
    };
    let g = random_matrix(k, n, 0.3, 1234);
    let k_words = g.words_per_snp();
    let pairs = triangle_pairs(n);
    let useful = pairs * k_words as f64;
    let hz = tsc_hz().unwrap_or(1e9);

    println!("# SectionV: SIMD benefit for LD — measured");
    println!("# features: {}", CpuFeatures::detect().summary());
    println!("# workload: n={n} SNPs, k={k} samples ({k_words} words/SNP), symmetric GtG\n");

    let kinds = [
        KernelKind::Scalar,
        KernelKind::Avx2ExtractInsert,
        KernelKind::Avx2Mula,
        KernelKind::Avx512Vpopcnt4x8,
        KernelKind::Avx512Vpopcnt,
        KernelKind::ScalarAutoVec,
    ];
    let mut table = Table::new([
        "kernel",
        "lanes",
        "time (s)",
        "GLD/s",
        "%peak(lane)",
        "speedup vs scalar",
    ]);
    let mut scalar_time = None;
    let mut c = vec![0u32; n * n];
    for kind in kinds {
        let Ok(kernel) = Kernel::resolve(kind) else {
            println!("(skipping {kind:?}: unsupported on this CPU)");
            continue;
        };
        let secs = time_best(
            || {
                syrk_counts_buf(&g.full_view(), &mut c, n, kind, BlockSizes::default(), 1);
            },
            0.3,
            3,
        );
        let cycles = secs * hz;
        if kind == KernelKind::Scalar {
            scalar_time = Some(secs);
        }
        let speedup = scalar_time.map(|s| s / secs).unwrap_or(1.0);
        table.row([
            kernel.kind().to_string(),
            kernel.lanes().to_string(),
            format!("{secs:.3}"),
            format!("{:.2}", pairs / secs / 1e9),
            format!("{:.1}%", percent_of_peak(useful, cycles, kernel.lanes())),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{}", table.render());

    println!("\n# SectionV: analytical model (paper equations)");
    println!("# T = scalar, T_SIMD = SIMD and/add + scalar popcnt (+lane transfers), T_HW = vector popcnt");
    let elems = (n, n, k_words);
    println!("\n## best case (no transfer penalty, SectionV-A first assumption)");
    for v in [2usize, 4, 8] {
        let m = SimdCostModel::paper_ideal(v);
        println!("{}", m.times(elems.0, elems.1, elems.2));
    }
    println!("\n## practical case (extract/insert contend, SectionV-A 'in practice')");
    for v in [2usize, 4, 8] {
        let m = SimdCostModel::paper_practical(v);
        println!("{}", m.times(elems.0, elems.1, elems.2));
    }
    println!("\nReading: T_SIMD never beats T without hardware support; T_HW/v matches the");
    println!("measured avx512-vpopcnt speedup above — the instruction the paper called for.");
}
