//! Out-of-core tile-store streaming: throughput and memory vs. budget.
//!
//! Imports a genotype matrix into an on-disk chunked tile store, drops
//! the in-memory copy, then runs the streamed rows driver under a sweep
//! of memory budgets — from a few slab rows up to unlimited. For each
//! budget it reports the slab height the engine derived, the bytes
//! streamed out of the store (panel reads + the column sweep, which
//! shrinks the budget inflates), wall time, streaming GB/s and the
//! process RSS high-water mark.
//!
//! Emits `BENCH_outofcore.json`, gated in CI against
//! `results/baselines/BENCH_outofcore.json` by `scripts/bench_compare.py`.
//!
//! ```sh
//! cargo run --release -p ld-bench --bin outofcore           # 1024 x 3000
//! cargo run --release -p ld-bench --bin outofcore -- --full # 4096 x 8000
//! ```

use ld_bench::report::{fmt_giga, fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::random_matrix;
use ld_core::{LdStats, MemoryBudget, NanPolicy, RunControl, TileSource};
use ld_io::tilestore::{import_to_dir, DirTileStore};

/// Peak resident set size of this process so far, in kB (`VmHWM` from
/// `/proc/self/status`); 0 when unavailable. Monotonic — phases run
/// smallest-budget first so each reading is attributable.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Bytes the streamed driver reads from the store for one full run at
/// slab height `slab`: each slab re-reads its A-panel's chunks plus the
/// column stream from the first covering chunk to the end. Deterministic
/// — `outofcore_resume.rs` pins the `store_bytes_read` counter to this
/// model.
fn streamed_bytes(meta: &ld_core::TileStoreMeta, slab: usize) -> u64 {
    let (n, chunk) = (meta.n_snps, meta.chunk_snps);
    let n_chunks = meta.n_chunks();
    let mut bytes = 0u64;
    for k in 0..n.div_ceil(slab.max(1)) {
        let (r0, r1) = (k * slab, ((k + 1) * slab).min(n));
        let (first, last) = (r0 / chunk, (r1 - 1) / chunk);
        for c in first..=last {
            bytes += meta.chunk_bytes(c) as u64;
        }
        for c in first..n_chunks {
            bytes += meta.chunk_bytes(c) as u64;
        }
    }
    bytes
}

struct BudgetResult {
    label: String,
    budget_mb: f64, // 0.0 = unlimited
    slab_rows: usize,
    secs: f64,
    streamed_mb: f64,
    gbps: f64,
    hwm_kb: u64,
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let (n_samples, n) = if opts.full {
        (4096, 8000)
    } else {
        (1024, 3000)
    };
    let chunk_snps = 256usize;
    let threads = opts.thread_list().into_iter().next().unwrap_or(1).max(1);
    let (budget_secs, max_reps) = if opts.full { (10.0, 5) } else { (3.0, 3) };

    let dir = std::env::temp_dir().join(format!("ld_bench_outofcore_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        // import, then drop the in-memory matrix: from here on the only
        // copy of G is the chunked store on disk
        let g = random_matrix(n_samples, n, 0.3, 0x5eed ^ n as u64);
        import_to_dir(&g, chunk_snps, &dir).expect("import tile store");
    }
    let store = DirTileStore::open(&dir).expect("open tile store");
    let meta = TileSource::meta(&store).clone();

    let engine = ld_core::LdEngine::new()
        .threads(threads)
        .nan_policy(NanPolicy::Zero);
    let kernel_name = ld_kernels::Kernel::resolve(engine.kernel_kind())
        .map(|k| k.kind().name())
        .unwrap_or("unresolved");

    // Budget sweep, tightest first (VmHWM is monotonic): a few slab rows'
    // worth, a mid-sized working set, then unlimited. 0 = unlimited.
    let budgets_mib: [usize; 3] = if opts.full { [2, 8, 0] } else { [1, 4, 0] };

    println!(
        "out-of-core streaming: {n_samples} samples x {n} SNPs, {} chunks of {chunk_snps} SNPs \
         ({:.1} MB store), threads={threads}, kernel={kernel_name} \
         (best of <= {max_reps} reps, {budget_secs:.1}s budget)",
        meta.n_chunks(),
        (0..meta.n_chunks())
            .map(|c| meta.chunk_bytes(c))
            .sum::<usize>() as f64
            / 1e6
    );

    let mut table = Table::new([
        "budget",
        "slab",
        "streamed",
        "wall",
        "stream rate",
        "RSS hwm",
    ]);
    let mut results: Vec<BudgetResult> = Vec::new();
    for &mib in &budgets_mib {
        let (label, e) = if mib == 0 {
            ("unlimited".to_string(), engine.clone())
        } else {
            (
                format!("{mib}mib"),
                engine.clone().memory_budget(MemoryBudget::mib(mib)),
            )
        };
        let slab_rows = e
            .outofcore_slab_for(&meta, false)
            .expect("budget admits at least one row");
        let mut sum = 0.0f64;
        let secs = time_best(
            || {
                sum = 0.0;
                e.try_stat_rows_outofcore_with(
                    &store,
                    LdStats::RSquared,
                    |s| {
                        for (_, row) in s.rows() {
                            sum += row.iter().copied().filter(|v| !v.is_nan()).sum::<f64>();
                        }
                    },
                    &RunControl::new(),
                )
                .expect("streamed run");
            },
            budget_secs,
            max_reps,
        );
        assert!(sum.is_finite() && sum > 0.0, "degenerate result");
        let bytes = streamed_bytes(&meta, slab_rows);
        let gbps = bytes as f64 / secs / 1e9;
        let hwm_kb = vm_hwm_kb();
        table.row([
            label.clone(),
            slab_rows.to_string(),
            format!("{:.1} MB", bytes as f64 / 1e6),
            fmt_secs(secs),
            fmt_giga(bytes as f64 / secs) + " GB/s",
            format!("{:.0} MB", hwm_kb as f64 / 1e3),
        ]);
        results.push(BudgetResult {
            label,
            budget_mb: mib as f64,
            slab_rows,
            secs,
            streamed_mb: bytes as f64 / 1e6,
            gbps,
            hwm_kb,
        });
    }

    println!("{}", table.render());
    println!(
        "model: a tighter budget shrinks the slab, so the store is swept more times —\n\
         streamed bytes rise as the working set falls. RSS is the process high-water\n\
         mark (monotonic; tightest budget ran first)."
    );

    // hand-rolled JSON (no external deps in this workspace)
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"outofcore\",\n");
    json.push_str(&format!("  \"n_samples\": {n_samples},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"n_snps\": {n},\n"));
    json.push_str(&format!("  \"chunk_snps\": {chunk_snps},\n"));
    json.push_str(&format!("  \"kernel\": \"{kernel_name}\",\n"));
    json.push_str("  \"results\": [\n");
    for (k, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"budget_mb\": {:.1}, \"slab_rows\": {}, \
             \"secs\": {:.6}, \"streamed_mb\": {:.3}, \"gbps_streamed\": {:.4}, \
             \"vm_hwm_kb\": {}}}{}\n",
            r.label,
            r.budget_mb,
            r.slab_rows,
            r.secs,
            r.streamed_mb,
            r.gbps,
            r.hwm_kb,
            if k + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match ld_io::atomic::write_atomic("BENCH_outofcore.json", json.as_bytes()) {
        Ok(()) => println!("wrote BENCH_outofcore.json"),
        Err(e) => eprintln!("could not write BENCH_outofcore.json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
