//! `serve_load` — load-test + fault-injection harness for the `ld-serve`
//! daemon (the serve PR's acceptance harness).
//!
//! Four phases, each against a fresh daemon:
//!
//! 1. **load** — concurrent clients issue pair/region queries with
//!    retry + capped jittered backoff (`ld_parallel::Backoff`, the same
//!    envelope `run-sharded` uses); reports throughput and client-side
//!    p50/p99 latency. Every request must end in a typed outcome —
//!    `hung` (no response within the harness deadline) must be 0.
//! 2. **overload** — one slow worker, tiny queue: the daemon must shed
//!    with typed responses, never stall, and serve normally afterwards.
//! 3. **faults** (in-process) — malformed frames, a half-open
//!    connection, and clients killed mid-request; the daemon must
//!    answer typed errors and keep the pool serving.
//! 4. **server-kill** (subprocess) — spawns `gemm-ld serve`, SIGKILLs
//!    it mid-load, respawns, and verifies retrying clients recover.
//!    Skipped (and marked in the JSON) when the CLI binary is absent.
//! 5. **telemetry overhead** — A/B throughput with the telemetry plane
//!    off vs fully on (metrics endpoint being scraped + request log),
//!    best-of-3 each; `telemetry.overhead_pct` must stay within the
//!    bench_compare bound (≤ 3%).
//!
//! Emits `BENCH_serve.json`.
//!
//! `--attach HOST:PORT` skips the phase suite and just drives the
//! phase-1 client load against an *external* daemon (the CI telemetry
//! leg uses this to exercise a `gemm-ld serve` process it owns); the
//! target must serve a panel named `bench` with at least `--snps N`
//! SNPs (default 200).
//!
//! ```sh
//! cargo run --release -p ld-bench --bin serve_load
//! cargo run --release -p ld-bench --bin serve_load -- --full \
//!     --gemm-ld target/release/gemm-ld
//! cargo run --release -p ld-bench --bin serve_load -- \
//!     --attach 127.0.0.1:7711 --snps 200
//! ```

use ld_bench::report::Table;
use ld_bench::runner::BenchOpts;
use ld_bench::workloads::random_matrix;
use ld_core::{LdEngine, NanPolicy};
use ld_parallel::Backoff;
use ld_serve::protocol::{Request, StatCode, Status};
use ld_serve::registry::{PanelRegistry, PanelSource};
use ld_serve::server::{ServeConfig, Server, ServerHandle};
use ld_serve::{request_with_retry, Client};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PANEL: &str = "bench";

struct Fixture {
    dir: PathBuf,
    panel_path: PathBuf,
    n_snps: usize,
}

fn build_fixture(n_samples: usize, n_snps: usize) -> Fixture {
    let dir = std::env::temp_dir().join(format!("ld_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let g = random_matrix(n_samples, n_snps, 0.3, 99);
    let panel_path = dir.join("bench.txt");
    let f = std::fs::File::create(&panel_path).expect("create panel");
    ld_io::text::write_matrix(std::io::BufWriter::new(f), &g).expect("write panel");
    Fixture {
        dir,
        panel_path,
        n_snps,
    }
}

fn registry(fx: &Fixture) -> PanelRegistry {
    let engine = LdEngine::new().threads(2).nan_policy(NanPolicy::Zero);
    let mut reg = PanelRegistry::new(engine, 1 << 30);
    assert!(reg.add_source(PANEL, PanelSource::TextFile(fx.panel_path.clone())));
    reg
}

fn spawn_server(fx: &Fixture, cfg: ServeConfig) -> ServerHandle {
    Server::bind(cfg, registry(fx))
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// Client-side outcome tallies for one phase.
#[derive(Default)]
struct Tally {
    ok: usize,
    shed: usize,
    failed: usize,
    hung: usize,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn quantile_us(&mut self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        self.latencies_us.sort_unstable();
        let idx = ((q * self.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_us.len())
            - 1;
        self.latencies_us[idx]
    }
}

/// Phase 1/2 worker: `requests` queries with retry + jittered backoff.
fn client_loop(
    addr: String,
    client_id: u64,
    requests: usize,
    n_snps: usize,
    counters: Arc<[AtomicUsize; 4]>, // ok, shed, failed, hung
    latency_sink: std::sync::mpsc::Sender<u64>,
) {
    // Per-client seed decorrelates retry storms — exactly the shard
    // supervisor's trick.
    let backoff =
        Backoff::new(Duration::from_millis(5), Duration::from_millis(250)).with_seed(client_id);
    for k in 0..requests {
        let req = if k % 8 == 7 {
            Request::Region {
                panel: PANEL.into(),
                stat: StatCode::RSquared,
                row0: 0,
                row1: (n_snps / 4).max(2) as u32,
                min_r2: 0.2,
            }
        } else {
            Request::Pair {
                panel: PANEL.into(),
                stat: StatCode::RSquared,
                i: ((client_id as usize + k) % n_snps) as u32,
                j: ((client_id as usize + 3 * k + 1) % n_snps) as u32,
            }
        };
        let t0 = Instant::now();
        match request_with_retry(&addr, &req, 6, Duration::from_secs(20), &backoff) {
            Ok(resp) => {
                let _ = latency_sink.send(t0.elapsed().as_micros() as u64);
                match resp.status {
                    Status::Ok => counters[0].fetch_add(1, Ordering::Relaxed),
                    Status::Shed | Status::Timeout | Status::ShuttingDown => {
                        counters[1].fetch_add(1, Ordering::Relaxed)
                    }
                    _ => counters[2].fetch_add(1, Ordering::Relaxed),
                };
            }
            Err(_) => {
                // Typed client-side failure after retries — not a hang.
                counters[2].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn run_clients(addr: &str, clients: usize, requests: usize, n_snps: usize) -> Tally {
    let counters: Arc<[AtomicUsize; 4]> = Arc::new([
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ]);
    let (tx, rx) = std::sync::mpsc::channel();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let counters = Arc::clone(&counters);
            let tx = tx.clone();
            std::thread::spawn(move || client_loop(addr, c as u64, requests, n_snps, counters, tx))
        })
        .collect();
    drop(tx);
    let mut tally = Tally::default();
    // A client thread that never returns within the harness deadline is
    // a hung request — the failure mode the daemon must make impossible.
    let harness_deadline = Instant::now() + Duration::from_secs(120);
    for t in threads {
        if Instant::now() >= harness_deadline {
            tally.hung += 1;
            continue;
        }
        if t.join().is_err() {
            tally.failed += 1;
        }
    }
    while let Ok(us) = rx.try_recv() {
        tally.latencies_us.push(us);
    }
    tally.ok = counters[0].load(Ordering::Relaxed);
    tally.shed = counters[1].load(Ordering::Relaxed);
    tally.failed += counters[2].load(Ordering::Relaxed);
    tally.hung += counters[3].load(Ordering::Relaxed);
    tally
}

/// Phase 3: wire-level faults against a live in-process daemon.
struct FaultResults {
    malformed_typed: bool,
    half_open_typed: bool,
    client_kill_survived: bool,
}

fn run_faults(addr: &str) -> FaultResults {
    let timeout = Duration::from_secs(10);

    // Malformed frame: garbage payload must yield a typed BadRequest on
    // a connection that stays usable.
    let malformed_typed = (|| {
        let mut c = Client::connect(addr, timeout).ok()?;
        c.send_raw_frame(b"\xDE\xAD\xBE\xEF not a request").ok()?;
        let resp = c.read_response().ok()?;
        if resp.status != Status::BadRequest {
            return None;
        }
        let follow = c
            .request(&Request::Pair {
                panel: PANEL.into(),
                stat: StatCode::RSquared,
                i: 0,
                j: 1,
            })
            .ok()?;
        (follow.status == Status::Ok).then_some(())
    })()
    .is_some();

    // Half-open connection: start a frame, stall; the daemon must
    // answer a typed error within its frame timeout instead of leaking
    // the reader forever.
    let half_open_typed = (|| {
        let mut c = Client::connect(addr, timeout).ok()?;
        c.send_raw_bytes(&64u32.to_le_bytes()).ok()?;
        c.send_raw_bytes(&[1, 2, 3]).ok()?;
        let resp = c.read_response().ok()?;
        (resp.status == Status::BadRequest).then_some(())
    })()
    .is_some();

    // Clients killed mid-request: fire requests and drop the socket
    // without reading the response. The worker's answer hits a dead
    // socket; the pool must keep serving.
    for k in 0..8u32 {
        if let Ok(mut c) = Client::connect(addr, timeout) {
            let _ = c.send_raw_frame(
                &Request::Region {
                    panel: PANEL.into(),
                    stat: StatCode::RSquared,
                    row0: 0,
                    row1: 0,
                    min_r2: 0.0,
                }
                .encode(),
            );
            drop(c); // vanish before the response — a killed client
            let _ = k;
        }
    }
    std::thread::sleep(Duration::from_millis(300));
    let client_kill_survived = (|| {
        let mut c = Client::connect(addr, timeout).ok()?;
        let resp = c
            .request(&Request::Pair {
                panel: PANEL.into(),
                stat: StatCode::RSquared,
                i: 0,
                j: 1,
            })
            .ok()?;
        (resp.status == Status::Ok).then_some(())
    })()
    .is_some();

    FaultResults {
        malformed_typed,
        half_open_typed,
        client_kill_survived,
    }
}

/// Phase 4: SIGKILL a subprocess daemon mid-load; retrying clients must
/// recover once it is respawned. Returns `None` when the CLI binary is
/// unavailable (the phase is skipped, not failed).
fn run_server_kill(fx: &Fixture, gemm_ld: &str) -> Option<bool> {
    fn spawn_daemon(gemm_ld: &str, panel: &Path) -> Option<(Child, String)> {
        let mut child = Command::new(gemm_ld)
            .arg("serve")
            .arg(format!("{PANEL}={}", panel.display()))
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .ok()?;
        // The daemon prints `listening on HOST:PORT` once bound.
        let stdout = child.stdout.take()?;
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next()? {
                Ok(line) => {
                    if let Some(a) = line.strip_prefix("listening on ") {
                        break a.trim().to_string();
                    }
                }
                Err(_) => return None,
            }
        };
        Some((child, addr))
    }

    let (mut child, addr) = spawn_daemon(gemm_ld, &fx.panel_path)?;
    let req = Request::Pair {
        panel: PANEL.into(),
        stat: StatCode::RSquared,
        i: 0,
        j: 1,
    };
    let backoff = Backoff::new(Duration::from_millis(20), Duration::from_millis(500));
    let before = request_with_retry(&addr, &req, 5, Duration::from_secs(10), &backoff)
        .map(|r| r.status == Status::Ok)
        .unwrap_or(false);

    // SIGKILL mid-service: `Child::kill` delivers SIGKILL on unix.
    child.kill().ok()?;
    let _ = child.wait();
    // The dead daemon must refuse cleanly (connection error), not hang.
    let during = Client::connect(&addr, Duration::from_secs(2)).is_err()
        || request_with_retry(&addr, &req, 1, Duration::from_secs(2), &backoff).is_err();

    // Respawn (new port) — clients with retry+backoff recover.
    let (mut child2, addr2) = spawn_daemon(gemm_ld, &fx.panel_path)?;
    let after = request_with_retry(&addr2, &req, 8, Duration::from_secs(10), &backoff)
        .map(|r| r.status == Status::Ok)
        .unwrap_or(false);
    child2.kill().ok();
    let _ = child2.wait();
    Some(before && during && after)
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let (n_samples, n_snps) = if opts.full { (1024, 800) } else { (256, 200) };
    let clients = opts
        .extras
        .iter()
        .find(|(k, _)| k == "clients")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(8usize);
    let requests = opts
        .extras
        .iter()
        .find(|(k, _)| k == "requests")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(40usize);
    let gemm_ld = opts
        .extras
        .iter()
        .find(|(k, _)| k == "gemm-ld")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "target/release/gemm-ld".to_string());

    // ---- attach mode: load an external daemon, no phase suite -------
    if let Some((_, addr)) = opts.extras.iter().find(|(k, _)| k == "attach") {
        let ext_snps = opts
            .extras
            .iter()
            .find(|(k, _)| k == "snps")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(200usize);
        println!("serve_load: attaching to {addr}, {clients} clients x {requests} requests");
        let t0 = Instant::now();
        let mut tally = run_clients(addr, clients, requests, ext_snps);
        let secs = t0.elapsed().as_secs_f64();
        let rps = (clients * requests) as f64 / secs.max(1e-9);
        let (p50, p99) = (tally.quantile_us(0.50), tally.quantile_us(0.99));
        println!(
            "attach: {} ok / {} shed / {} failed / {} hung, {:.0} req/s, p50 {p50}us p99 {p99}us",
            tally.ok, tally.shed, tally.failed, tally.hung, rps,
        );
        if tally.hung > 0 || tally.failed > 0 {
            std::process::exit(1);
        }
        return;
    }

    let fx = build_fixture(n_samples, n_snps);
    println!("serve_load: {n_samples} x {n_snps} panel, {clients} clients x {requests} requests");

    // ---- phase 1: steady load --------------------------------------
    let handle = spawn_server(&fx, ServeConfig::default());
    let addr = handle.addr().to_string();
    let t0 = Instant::now();
    let mut load = run_clients(&addr, clients, requests, fx.n_snps);
    let load_secs = t0.elapsed().as_secs_f64();
    let total = clients * requests;
    let rps = total as f64 / load_secs.max(1e-9);
    let (p50_us, p99_us) = (load.quantile_us(0.50), load.quantile_us(0.99));
    handle.shutdown_and_wait();

    // ---- phase 2: overload must shed, then recover ------------------
    let handle = spawn_server(
        &fx,
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            inject_delay: Duration::from_millis(25),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr().to_string();
    // No retries here: we want to observe raw sheds.
    let overload_threads: Vec<_> = (0..(clients * 2))
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(20)).ok()?;
                c.request(&Request::Pair {
                    panel: PANEL.into(),
                    stat: StatCode::RSquared,
                    i: (k % 7) as u32,
                    j: (k % 11 + 12) as u32,
                })
                .ok()
            })
        })
        .collect();
    let mut over_ok = 0usize;
    let mut over_shed = 0usize;
    let mut over_other = 0usize;
    for t in overload_threads {
        match t.join().ok().flatten() {
            Some(r) if r.status == Status::Ok => over_ok += 1,
            Some(r) if r.status == Status::Shed => over_shed += 1,
            _ => over_other += 1,
        }
    }
    // The daemon must serve normally once the burst is gone.
    std::thread::sleep(Duration::from_millis(200));
    let recovered = Client::connect(&addr, Duration::from_secs(10))
        .and_then(|mut c| {
            c.request(&Request::Pair {
                panel: PANEL.into(),
                stat: StatCode::RSquared,
                i: 0,
                j: 1,
            })
        })
        .map(|r| r.status == Status::Ok)
        .unwrap_or(false);
    handle.shutdown_and_wait();

    // ---- phase 3: wire faults ---------------------------------------
    // A short frame timeout keeps the half-open check well inside the
    // client's 10 s read deadline (equal timeouts race at the wire).
    let handle = spawn_server(
        &fx,
        ServeConfig {
            frame_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr().to_string();
    let faults = run_faults(&addr);
    handle.shutdown_and_wait();

    // ---- phase 4: server SIGKILL + recovery (subprocess) -------------
    let server_kill = if std::path::Path::new(&gemm_ld).exists() {
        run_server_kill(&fx, &gemm_ld)
    } else {
        None
    };

    // ---- phase 5: telemetry overhead A/B ----------------------------
    // Best-of-3 throughput per side absorbs loopback jitter; the
    // telemetry side runs with the request log on AND a scraper hitting
    // GET /metrics, so the measured cost is the whole plane, not just
    // the record calls.
    let measure = |cfg: ServeConfig| -> f64 {
        let handle = spawn_server(&fx, cfg);
        let addr = handle.addr().to_string();
        // warm up: panel compute + first-connection costs off the clock
        let backoff = Backoff::new(Duration::from_millis(5), Duration::from_millis(100));
        let warm = Request::Pair {
            panel: PANEL.into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        };
        let _ = request_with_retry(&addr, &warm, 5, Duration::from_secs(20), &backoff);
        let scraper_stop = Arc::new(AtomicUsize::new(0));
        let scraper = handle.metrics_addr().map(|maddr| {
            let stop = Arc::clone(&scraper_stop);
            std::thread::spawn(move || {
                use std::io::Read as _;
                while stop.load(Ordering::Relaxed) == 0 {
                    if let Ok(mut s) = std::net::TcpStream::connect(maddr) {
                        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                        let mut sink = String::new();
                        let _ = s.read_to_string(&mut sink);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
        });
        let t0 = Instant::now();
        let tally = run_clients(&addr, clients, requests, fx.n_snps);
        let secs = t0.elapsed().as_secs_f64();
        scraper_stop.store(1, Ordering::Relaxed);
        if let Some(h) = scraper {
            let _ = h.join();
        }
        handle.shutdown_and_wait();
        ((tally.ok + tally.shed) as f64 / secs.max(1e-9)).max(1e-9)
    };
    let mut baseline_rps = 0f64;
    let mut telemetry_rps = 0f64;
    for round in 0..3 {
        baseline_rps = baseline_rps.max(measure(ServeConfig::default()));
        let log_path = fx.dir.join(format!("requests_{round}.jsonl"));
        telemetry_rps = telemetry_rps.max(measure(ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            request_log: Some(log_path.to_string_lossy().into_owned()),
            slow_ms: Some(10_000),
            ..ServeConfig::default()
        }));
    }
    let overhead_pct = ((baseline_rps - telemetry_rps) / baseline_rps * 100.0).max(0.0);

    // ---- report -------------------------------------------------------
    let mut t = Table::new(["phase", "result"]);
    t.row([
        "load".to_string(),
        format!(
            "{} ok / {} shed / {} failed / {} hung, {:.0} req/s, p50 {}us p99 {}us",
            load.ok, load.shed, load.failed, load.hung, rps, p50_us, p99_us
        ),
    ]);
    t.row([
        "overload".to_string(),
        format!("{over_ok} ok / {over_shed} shed / {over_other} other, recovered={recovered}"),
    ]);
    t.row([
        "faults".to_string(),
        format!(
            "malformed_typed={} half_open_typed={} client_kill_survived={}",
            faults.malformed_typed, faults.half_open_typed, faults.client_kill_survived
        ),
    ]);
    t.row([
        "server-kill".to_string(),
        match server_kill {
            Some(ok) => format!("recovered={ok}"),
            None => format!("skipped ({gemm_ld} not found)"),
        },
    ]);
    t.row([
        "telemetry".to_string(),
        format!(
            "baseline {baseline_rps:.0} req/s, telemetry+scrape {telemetry_rps:.0} req/s, \
             overhead {overhead_pct:.2}%"
        ),
    ]);
    println!("\n{}", t.render());

    let pass = load.hung == 0
        && load.failed == 0
        && over_shed > 0
        && recovered
        && faults.malformed_typed
        && faults.half_open_typed
        && faults.client_kill_survived
        && server_kill.unwrap_or(true);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str(&format!("  \"n_samples\": {n_samples},\n"));
    json.push_str(&format!("  \"n_snps\": {n_snps},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!(
        "  \"load\": {{\"ok\": {}, \"shed\": {}, \"failed\": {}, \"hung\": {}, \
         \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}},\n",
        load.ok, load.shed, load.failed, load.hung, rps, p50_us, p99_us
    ));
    json.push_str(&format!(
        "  \"overload\": {{\"ok\": {over_ok}, \"shed\": {over_shed}, \
         \"other\": {over_other}, \"recovered\": {recovered}}},\n"
    ));
    json.push_str(&format!(
        "  \"faults\": {{\"malformed_typed\": {}, \"half_open_typed\": {}, \
         \"client_kill_survived\": {}}},\n",
        faults.malformed_typed, faults.half_open_typed, faults.client_kill_survived
    ));
    json.push_str(&format!(
        "  \"server_kill\": {},\n",
        match server_kill {
            Some(ok) => format!("{{\"ran\": true, \"recovered\": {ok}}}"),
            None => "{\"ran\": false}".to_string(),
        }
    ));
    json.push_str(&format!(
        "  \"telemetry\": {{\"baseline_rps\": {baseline_rps:.1}, \
         \"telemetry_rps\": {telemetry_rps:.1}, \"overhead_pct\": {overhead_pct:.2}}},\n"
    ));
    json.push_str(&format!("  \"pass\": {pass}\n"));
    json.push_str("}\n");
    let mut f = std::fs::File::create("BENCH_serve.json").expect("create BENCH_serve.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json (pass={pass})");

    let _ = std::fs::remove_dir_all(&fx.dir);
    if !pass {
        std::process::exit(1);
    }
}
