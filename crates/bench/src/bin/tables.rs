//! **Tables I–III** — execution time, LD values per second, and GEMM
//! speedup for PLINK-1.9-style vs OmegaPlus-style vs GEMM-based LD on the
//! paper's three datasets, over the thread counts {1, 2, 4, 8, 12}.
//!
//! Paper numbers (12 threads, Dataset C): GEMM 17.1× over PLINK 1.9 and
//! 4.0× over OmegaPlus; 1-thread Dataset A: 7.5× and 3.7×.
//!
//! Notes on fidelity (details in DESIGN.md §3 / EXPERIMENTS.md):
//! * datasets are simulated at the paper's shapes (`--full`) or scaled
//!   down by `--scale N` (default 5) for minutes-long runs;
//! * all three implementations compute all `N(N+1)/2` pairwise r² values
//!   of the same underlying samples (PLINK on the homozygous-lift
//!   genotype view), so "LDs per second" is directly comparable;
//! * the paper's LDs/s column is ×10⁶ (its ×10⁹ header does not match its
//!   own time/pair-count arithmetic) — we print ×10⁶.
//!
//! Usage: `tables [--dataset a|b|c|all] [--scale N | --full] [--threads 1,2,...]
//!         [--only plink,omegaplus,gemm]`
//! (`--only` lets full-size runs skip the slowest baselines; skipped cells
//! print `-`.)

use ld_baselines::{OmegaPlusKernel, PlinkKernel};
use ld_bench::report::Table;
use ld_bench::runner::BenchOpts;
use ld_bench::workloads::triangle_pairs;
use ld_core::{LdEngine, NanPolicy};
use ld_data::datasets::{build, genotypes_for, Dataset};
use ld_kernels::KernelKind;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let scale = if opts.full {
        1
    } else {
        opts.get("scale").and_then(|s| s.parse().ok()).unwrap_or(5)
    };
    let which: Vec<Dataset> = match opts.get("dataset") {
        None | Some("all") => vec![Dataset::A, Dataset::B, Dataset::C],
        Some(s) => match Dataset::parse(s) {
            Some(d) => vec![d],
            None => {
                eprintln!("unknown dataset '{s}' (expected a|b|c|all)");
                std::process::exit(2);
            }
        },
    };
    let threads = opts.thread_list();
    let only: Vec<String> = opts
        .get("only")
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect())
        .unwrap_or_else(|| vec!["plink".into(), "omegaplus".into(), "gemm".into()]);
    let run = |name: &str| only.iter().any(|o| o == name);

    for dataset in which {
        let (n_snps, n_samples) = dataset.scaled_shape(scale);
        println!(
            "\n## Dataset {} — scaled to {n_snps} SNPs x {n_samples} samples (scale {scale})",
            dataset.name()
        );
        println!("generating haplotypes...");
        let haps = build(dataset, scale, 42);
        println!("lifting to genotypes for the PLINK-style kernel...");
        let genos = genotypes_for(&haps);
        let pairs = triangle_pairs(n_snps);

        let mut table = Table::new([
            "Threads",
            "PLINK (s)",
            "OmegaPlus (s)",
            "GEMM (s)",
            "PLINK MLD/s",
            "OmegaPlus MLD/s",
            "GEMM MLD/s",
            "GEMM vs PLINK",
            "GEMM vs OmegaPlus",
        ]);
        for &t in &threads {
            let probe = (n_snps / 3, n_snps / 2);
            let fmt_s = |s: Option<f64>| s.map(|v| format!("{v:.2}")).unwrap_or("-".into());
            let fmt_rate = |s: Option<f64>| {
                s.map(|v| format!("{:.2}", pairs / v / 1e6))
                    .unwrap_or("-".into())
            };

            let plink_s = run("plink").then(|| {
                let plink = PlinkKernel::new().nan_policy(NanPolicy::Zero);
                let t0 = Instant::now();
                let m = plink.r2_matrix(&genos, t);
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(m.get(probe.0, probe.1));
                dt
            });
            let omega_s = run("omegaplus").then(|| {
                let omega = OmegaPlusKernel::new().nan_policy(NanPolicy::Zero);
                let t0 = Instant::now();
                let m = omega.r2_matrix(&haps.full_view(), t);
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(m.get(probe.0, probe.1));
                dt
            });
            let gemm_s = run("gemm").then(|| {
                let engine = LdEngine::new()
                    .kernel(KernelKind::Scalar)
                    .threads(t)
                    .nan_policy(NanPolicy::Zero);
                let t0 = Instant::now();
                let m = engine.r2_matrix(&haps);
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(m.get(probe.0, probe.1));
                dt
            });

            let speedup = |x: Option<f64>| match (x, gemm_s) {
                (Some(x), Some(g)) => format!("{:.2}x", x / g),
                _ => "-".into(),
            };
            table.row([
                t.to_string(),
                fmt_s(plink_s),
                fmt_s(omega_s),
                fmt_s(gemm_s),
                fmt_rate(plink_s),
                fmt_rate(omega_s),
                fmt_rate(gemm_s),
                speedup(plink_s),
                speedup(omega_s),
            ]);
        }
        println!("{}", table.render());
    }
}
