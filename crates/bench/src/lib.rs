//! # ld-bench — benchmark harness reproducing the paper's tables & figures
//!
//! One binary per experiment (see DESIGN.md §5 for the index):
//!
//! | bin        | reproduces |
//! |------------|------------|
//! | `fig3`     | Fig. 3 — % of theoretical peak vs `k`, `GᵀG` (SYRK)    |
//! | `fig4`     | Fig. 4 — same, two distinct genomic matrices (GEMM)    |
//! | `tables`   | Tables I–III — PLINK 1.9 vs OmegaPlus vs GEMM          |
//! | `fig5`     | Fig. 5 — thread scaling beyond physical cores          |
//! | `simd`     | §V — scalar vs SIMD-extract vs software/hardware vector popcount, with the analytical model |
//! | `ablation` | blocking / kernel-shape / popcount-strategy sweeps     |
//! | `cache`    | working-set sweep — the Tables II/III memory-hierarchy mechanism |
//! | `fused`    | fused slab pipeline vs two-pass: wall time + peak RSS (`BENCH_fused.json`) |
//! | `serve_load` | `ld-serve` daemon under concurrent load + fault injection — malformed frames, half-open peers, killed clients, a SIGKILLed server (`BENCH_serve.json`) |
//! | `serve_ci`   | CI driver (ci.sh step 18): real `gemm-ld serve` processes — overload sheds typed, SIGINT drain byte-identical + exit 0, expired drain exit 5 |
//!
//! The library part holds shared plumbing: workload construction, timing
//! loops, and plain-text table rendering, so the binaries stay declarative.

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod workloads;
