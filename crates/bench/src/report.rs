//! Plain-text table rendering for benchmark reports.

/// A simple fixed-width text table that renders like the paper's tables.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a rate as `×10⁹` LDs per second like the paper's tables.
pub fn fmt_giga(rate: f64) -> String {
    format!("{:.2}", rate / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["Threads", "Time", "Speedup"]);
        t.row(["1", "14.18", "7.48"]);
        t.row(["12", "0.62", "8.43"]);
        let s = t.render();
        assert!(s.contains("Threads"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.5), "500.00ms");
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_giga(26.36e9), "26.36");
    }
}
