//! Timing loops and simple CLI-argument plumbing for the bench binaries.

use std::time::Instant;

/// Times `f`, repeating until at least `min_seconds` of total runtime or
/// `max_reps` repetitions, and returns the **best** wall time in seconds
/// (best-of-N is the standard defense against interference for
/// throughput-style kernels).
pub fn time_best<F: FnMut()>(mut f: F, min_seconds: f64, max_reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut reps = 0;
    while (total < min_seconds && reps < max_reps) || reps == 0 {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
        reps += 1;
    }
    best
}

/// Parsed common benchmark options.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Run paper-sized problems instead of scaled-down defaults.
    pub full: bool,
    /// Override the thread list (`--threads 1,2,4`).
    pub threads: Option<Vec<usize>>,
    /// Free-form key=value extras (dataset selection etc.).
    pub extras: Vec<(String, String)>,
}

impl BenchOpts {
    /// Parses `std::env::args`-style arguments. Recognizes `--full`,
    /// `--threads a,b,c` and `--key value` pairs.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = BenchOpts {
            full: false,
            threads: None,
            extras: Vec::new(),
        };
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--threads" => {
                    if let Some(list) = it.next() {
                        opts.threads = Some(
                            list.split(',')
                                .filter_map(|s| s.trim().parse().ok())
                                .collect(),
                        );
                    }
                }
                other => {
                    if let Some(key) = other.strip_prefix("--") {
                        let val = it.peek().filter(|v| !v.starts_with("--")).cloned();
                        if val.is_some() {
                            it.next();
                        }
                        opts.extras.push((key.to_string(), val.unwrap_or_default()));
                    }
                }
            }
        }
        opts
    }

    /// Looks up a `--key value` extra.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.extras
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The thread counts to sweep: explicit `--threads`, else the default
    /// list the paper's tables use.
    pub fn thread_list(&self) -> Vec<usize> {
        self.threads.clone().unwrap_or_else(|| vec![1, 2, 4, 8, 12])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_runs_at_least_once() {
        let mut n = 0;
        let t = time_best(|| n += 1, 0.0, 1);
        assert_eq!(n, 1);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_best_repeats_until_budget() {
        let mut n = 0;
        time_best(|| n += 1, 0.0005, 1000);
        assert!(n >= 1);
    }

    #[test]
    fn parse_flags() {
        let o =
            BenchOpts::parse(["--full", "--threads", "1,2,8", "--dataset", "c"].map(String::from));
        assert!(o.full);
        assert_eq!(o.thread_list(), vec![1, 2, 8]);
        assert_eq!(o.get("dataset"), Some("c"));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn default_thread_list_matches_paper_tables() {
        let o = BenchOpts::parse(Vec::<String>::new());
        assert_eq!(o.thread_list(), vec![1, 2, 4, 8, 12]);
        assert!(!o.full);
    }

    #[test]
    fn flag_without_value() {
        let o = BenchOpts::parse(["--quick", "--full"].map(String::from));
        assert_eq!(o.get("quick"), Some(""));
        assert!(o.full);
    }
}
