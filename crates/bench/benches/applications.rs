//! Benchmarks of the application layers: ω scans, Tanimoto screening,
//! masked LD, finite-sites T, association scans, banded/decay/blocks.
//!
//! Plain `fn main()` harness (criterion is unavailable offline).

use ld_bench::report::{fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::random_matrix;
use ld_bitmat::ValidityMask;
use ld_core::{LdEngine, NanPolicy};
use ld_data::fingerprints::clustered_fingerprints;
use ld_ext::gaps::masked_r2_matrix;
use ld_ext::tanimoto::tanimoto_matrix;
use ld_kernels::KernelKind;
use ld_omega::OmegaScan;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let budget = if opts.full { 1.0 } else { 0.1 };
    let mut table = Table::new(["bench", "case", "best"]);
    let mut push = |bench: &str, case: &str, t: f64| {
        table.row([bench.to_string(), case.to_string(), fmt_secs(t)]);
    };

    // -- ω scans -----------------------------------------------------------
    {
        let g = random_matrix(512, 400, 0.3, 21);
        let scan = OmegaScan::new(50, 25);
        push(
            "omega",
            "scan-400snps-w50",
            time_best(|| drop(scan.scan(&g)), budget, 10),
        );
        let r2 = LdEngine::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(g.view(0, 50));
        push(
            "omega",
            "omega-max-of-window",
            time_best(
                || {
                    let _ = ld_omega::omega_max(&r2);
                },
                budget,
                50,
            ),
        );
    }

    // -- Tanimoto ----------------------------------------------------------
    {
        let fp = clustered_fingerprints(256, 1024, 16, 0.08, 0.01, 3);
        push(
            "tanimoto",
            "all-pairs-256x1024bits",
            time_best(
                || drop(tanimoto_matrix(&fp.full_view(), KernelKind::Auto, 1)),
                budget,
                10,
            ),
        );
    }

    // -- masked LD ---------------------------------------------------------
    {
        let g = random_matrix(1024, 128, 0.3, 9);
        let mut mask = ValidityMask::all_valid(1024, 128);
        // 5% missing
        for j in 0..128 {
            for s in (0..1024).step_by(20) {
                mask.set_missing((s + j) % 1024, j);
            }
        }
        push(
            "masked-ld",
            "masked-r2-128snps",
            time_best(
                || drop(masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Zero)),
                budget,
                10,
            ),
        );
        let plain = LdEngine::new().threads(1).nan_policy(NanPolicy::Zero);
        push(
            "masked-ld",
            "unmasked-r2-128snps",
            time_best(|| drop(plain.r2_matrix(&g)), budget, 10),
        );
    }

    // -- finite sites ------------------------------------------------------
    {
        // biallelic nucleotide data, 32 sites x 512 samples
        let bits = random_matrix(512, 32, 0.4, 13);
        let cols: Vec<String> = (0..32)
            .map(|j| {
                (0..512)
                    .map(|s| if bits.get(s, j) { 'A' } else { 'G' })
                    .collect::<String>()
            })
            .collect();
        let m = ld_ext::fsm::NucleotideMatrix::from_site_strings(512, cols);
        push(
            "finite-sites",
            "zaykin-t-32sites",
            time_best(|| drop(m.t_matrix(1, NanPolicy::Zero)), budget, 10),
        );
    }

    // -- association scan --------------------------------------------------
    {
        let g = random_matrix(8192, 512, 0.3, 31);
        let mask: Vec<u64> = (0..g.words_per_snp())
            .map(|w| {
                if w + 1 == g.words_per_snp() {
                    ld_bitmat::tail_mask(8192) & 0x5555_5555_5555_5555
                } else {
                    0x5555_5555_5555_5555
                }
            })
            .collect();
        push(
            "assoc",
            "allelic-scan-512snps-8k-samples",
            time_best(
                || drop(ld_assoc::allelic_scan(&g.full_view(), &mask, 1)),
                budget,
                10,
            ),
        );
    }

    // -- grid ω scan -------------------------------------------------------
    {
        let g = random_matrix(256, 300, 0.3, 33);
        let scan = ld_omega::GridScan::new(5, 25, 10);
        push(
            "omega-grid",
            "grid-300snps-maxwin25",
            time_best(|| drop(scan.scan(&g)), budget, 10),
        );
    }

    // -- banded / decay / blocks -------------------------------------------
    {
        let g = random_matrix(512, 600, 0.3, 35);
        let engine = LdEngine::new().threads(1).nan_policy(NanPolicy::Zero);
        push(
            "applications",
            "banded-r2-600snps-band32",
            time_best(
                || {
                    drop(ld_core::BandedLdMatrix::compute(
                        &engine,
                        &g,
                        32,
                        ld_core::LdStats::RSquared,
                    ))
                },
                budget,
                10,
            ),
        );
        push(
            "applications",
            "decay-600snps-dist32",
            time_best(
                || drop(ld_core::DecayProfile::compute(&engine, &g, 32, 4)),
                budget,
                10,
            ),
        );
        push(
            "applications",
            "haplotype-blocks-600snps",
            time_best(
                || drop(ld_core::haplotype_blocks(&engine, &g, 0.8)),
                budget,
                10,
            ),
        );
    }

    println!("{}", table.render());
}
