//! Criterion benchmarks of the application layers: ω scans, Tanimoto
//! screening, masked LD, finite-sites T.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ld_bench::workloads::random_matrix;
use ld_bitmat::ValidityMask;
use ld_core::{LdEngine, NanPolicy};
use ld_data::fingerprints::clustered_fingerprints;
use ld_ext::gaps::masked_r2_matrix;
use ld_ext::tanimoto::tanimoto_matrix;
use ld_kernels::KernelKind;
use ld_omega::OmegaScan;

fn bench_omega_scan(c: &mut Criterion) {
    let g = random_matrix(512, 400, 0.3, 21);
    let mut group = c.benchmark_group("omega");
    group.sample_size(10);
    let scan = OmegaScan::new(50, 25);
    group.bench_function("scan-400snps-w50", |b| b.iter(|| scan.scan(&g)));
    let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(g.view(0, 50));
    group.bench_function("omega-max-of-window", |b| b.iter(|| ld_omega::omega_max(&r2)));
    group.finish();
}

fn bench_tanimoto(c: &mut Criterion) {
    let fp = clustered_fingerprints(256, 1024, 16, 0.08, 0.01, 3);
    let mut group = c.benchmark_group("tanimoto");
    group.sample_size(10);
    group.throughput(Throughput::Elements((256 * 257 / 2) as u64));
    group.bench_function("all-pairs-256x1024bits", |b| {
        b.iter(|| tanimoto_matrix(&fp.full_view(), KernelKind::Auto, 1))
    });
    group.finish();
}

fn bench_masked(c: &mut Criterion) {
    let g = random_matrix(1024, 128, 0.3, 9);
    let mut mask = ValidityMask::all_valid(1024, 128);
    // 5% missing
    for j in 0..128 {
        for s in (0..1024).step_by(20) {
            mask.set_missing((s + j) % 1024, j);
        }
    }
    let mut group = c.benchmark_group("masked-ld");
    group.sample_size(10);
    group.throughput(Throughput::Elements((128 * 129 / 2) as u64));
    group.bench_function("masked-r2-128snps", |b| {
        b.iter(|| masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Zero))
    });
    let plain = LdEngine::new().threads(1).nan_policy(NanPolicy::Zero);
    group.bench_function("unmasked-r2-128snps", |b| b.iter(|| plain.r2_matrix(&g)));
    group.finish();
}

fn bench_fsm(c: &mut Criterion) {
    // biallelic nucleotide data, 32 sites x 512 samples
    let bits = random_matrix(512, 32, 0.4, 13);
    let cols: Vec<String> = (0..32)
        .map(|j| {
            (0..512).map(|s| if bits.get(s, j) { 'A' } else { 'G' }).collect::<String>()
        })
        .collect();
    let m = ld_ext::fsm::NucleotideMatrix::from_site_strings(512, cols);
    let mut group = c.benchmark_group("finite-sites");
    group.sample_size(10);
    group.throughput(Throughput::Elements((32 * 33 / 2) as u64));
    group.bench_function("zaykin-t-32sites", |b| {
        b.iter(|| m.t_matrix(1, NanPolicy::Zero))
    });
    group.finish();
}

fn bench_assoc_scan(c: &mut Criterion) {
    let g = random_matrix(8192, 512, 0.3, 31);
    let mask: Vec<u64> = (0..g.words_per_snp())
        .map(|w| if w + 1 == g.words_per_snp() { ld_bitmat::tail_mask(8192) & 0x5555_5555_5555_5555 } else { 0x5555_5555_5555_5555 })
        .collect();
    let mut group = c.benchmark_group("assoc");
    group.throughput(Throughput::Elements(512));
    group.bench_function("allelic-scan-512snps-8k-samples", |b| {
        b.iter(|| ld_assoc::allelic_scan(&g.full_view(), &mask, 1))
    });
    group.finish();
}

fn bench_grid_scan(c: &mut Criterion) {
    let g = random_matrix(256, 300, 0.3, 33);
    let mut group = c.benchmark_group("omega-grid");
    group.sample_size(10);
    let scan = ld_omega::GridScan::new(5, 25, 10);
    group.bench_function("grid-300snps-maxwin25", |b| b.iter(|| scan.scan(&g)));
    group.finish();
}

fn bench_banded_and_blocks(c: &mut Criterion) {
    let g = random_matrix(512, 600, 0.3, 35);
    let engine = LdEngine::new().threads(1).nan_policy(NanPolicy::Zero);
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);
    group.bench_function("banded-r2-600snps-band32", |b| {
        b.iter(|| ld_core::BandedLdMatrix::compute(&engine, &g, 32, ld_core::LdStats::RSquared))
    });
    group.bench_function("decay-600snps-dist32", |b| {
        b.iter(|| ld_core::DecayProfile::compute(&engine, &g, 32, 4))
    });
    group.bench_function("haplotype-blocks-600snps", |b| {
        b.iter(|| ld_core::haplotype_blocks(&engine, &g, 0.8))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_omega_scan, bench_tanimoto, bench_masked, bench_fsm, bench_assoc_scan, bench_grid_scan, bench_banded_and_blocks
}
criterion_main!(benches);
