//! Criterion comparison of the four LD implementations on one shared
//! workload — the §VI comparison at micro-benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ld_baselines::{ByteMatrix, OmegaPlusKernel, PlinkKernel};
use ld_bench::workloads::random_matrix;
use ld_bitmat::GenotypeMatrix;
use ld_core::{LdEngine, NanPolicy};
use ld_kernels::KernelKind;

fn bench_implementations(c: &mut Criterion) {
    let n_snps = 256usize;
    let n_samples = 2048usize;
    let haps = random_matrix(n_samples, n_snps, 0.3, 7);
    let genos = GenotypeMatrix::from_haplotypes_as_homozygous(&haps);
    let bytes = ByteMatrix::from_bitmatrix(&haps);
    let pairs = (n_snps * (n_snps + 1) / 2) as u64;

    let mut group = c.benchmark_group("ld-implementations");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pairs));

    let gemm_scalar =
        LdEngine::new().kernel(KernelKind::Scalar).threads(1).nan_policy(NanPolicy::Zero);
    group.bench_function("gemm-scalar", |b| b.iter(|| gemm_scalar.r2_matrix(&haps)));

    let gemm_auto =
        LdEngine::new().kernel(KernelKind::Auto).threads(1).nan_policy(NanPolicy::Zero);
    group.bench_function("gemm-auto", |b| b.iter(|| gemm_auto.r2_matrix(&haps)));

    let omega = OmegaPlusKernel::new().nan_policy(NanPolicy::Zero);
    group.bench_function("omegaplus-style", |b| {
        b.iter(|| omega.r2_matrix(&haps.full_view(), 1))
    });

    let plink = PlinkKernel::new().nan_policy(NanPolicy::Zero);
    group.bench_function("plink-style", |b| b.iter(|| plink.r2_matrix(&genos, 1)));

    group.bench_function("naive-bytes", |b| b.iter(|| bytes.r2_matrix(1, NanPolicy::Zero)));

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_implementations
}
criterion_main!(benches);
