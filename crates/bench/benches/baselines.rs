//! Comparison of the four LD implementations on one shared workload — the
//! §VI comparison at micro-benchmark scale.
//!
//! Plain `fn main()` harness (criterion is unavailable offline).

use ld_baselines::{ByteMatrix, OmegaPlusKernel, PlinkKernel};
use ld_bench::report::{fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::random_matrix;
use ld_bitmat::GenotypeMatrix;
use ld_core::{LdEngine, NanPolicy};
use ld_kernels::KernelKind;

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let budget = if opts.full { 2.0 } else { 0.2 };
    let n_snps = 256usize;
    let n_samples = 2048usize;
    let haps = random_matrix(n_samples, n_snps, 0.3, 7);
    let genos = GenotypeMatrix::from_haplotypes_as_homozygous(&haps);
    let bytes = ByteMatrix::from_bitmatrix(&haps);
    let pairs = (n_snps * (n_snps + 1) / 2) as f64;

    let mut table = Table::new(["implementation", "best", "Mpair/s"]);
    let mut push = |name: &str, t: f64| {
        table.row([
            name.to_string(),
            fmt_secs(t),
            format!("{:.2}", pairs / t / 1e6),
        ]);
    };

    let gemm_scalar = LdEngine::new()
        .kernel(KernelKind::Scalar)
        .threads(1)
        .nan_policy(NanPolicy::Zero);
    push(
        "gemm-scalar",
        time_best(|| drop(gemm_scalar.r2_matrix(&haps)), budget, 10),
    );

    let gemm_auto = LdEngine::new()
        .kernel(KernelKind::Auto)
        .threads(1)
        .nan_policy(NanPolicy::Zero);
    push(
        "gemm-auto",
        time_best(|| drop(gemm_auto.r2_matrix(&haps)), budget, 10),
    );

    let omega = OmegaPlusKernel::new().nan_policy(NanPolicy::Zero);
    push(
        "omegaplus-style",
        time_best(|| drop(omega.r2_matrix(&haps.full_view(), 1)), budget, 10),
    );

    let plink = PlinkKernel::new().nan_policy(NanPolicy::Zero);
    push(
        "plink-style",
        time_best(|| drop(plink.r2_matrix(&genos, 1)), budget, 10),
    );

    push(
        "naive-bytes",
        time_best(|| drop(bytes.r2_matrix(1, NanPolicy::Zero)), budget, 10),
    );

    println!("{}", table.render());
}
