//! Criterion benchmarks of the popcount strategy library (§IV: the
//! `POPCNT` instruction vs software schemes; §V: vectorized variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ld_popcount::simd::{
    and_popcount_extract_insert_avx2, and_popcount_mula_avx2, and_popcount_vpopcntdq,
};
use ld_popcount::PopcountStrategy;

fn mk(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
        .collect()
}

fn bench_strategies(c: &mut Criterion) {
    let words = mk(4096, 1);
    let mut group = c.benchmark_group("popcount-slice");
    group.throughput(Throughput::Bytes((words.len() * 8) as u64));
    for s in PopcountStrategy::ALL {
        group.bench_function(BenchmarkId::from_parameter(s.name()), |b| {
            b.iter(|| std::hint::black_box(s.count_slice(&words)))
        });
    }
    group.finish();
}

fn bench_and_popcount(c: &mut Criterion) {
    let a = mk(4096, 2);
    let b_words = mk(4096, 3);
    let mut group = c.benchmark_group("and-popcount");
    group.throughput(Throughput::Bytes((a.len() * 16) as u64));
    group.bench_function("scalar-popcnt", |b| {
        b.iter(|| std::hint::black_box(ld_popcount::and_popcount(&a, &b_words)))
    });
    group.bench_function("avx2-extract-insert", |b| {
        b.iter(|| std::hint::black_box(and_popcount_extract_insert_avx2(&a, &b_words)))
    });
    group.bench_function("avx2-mula", |b| {
        b.iter(|| std::hint::black_box(and_popcount_mula_avx2(&a, &b_words)))
    });
    group.bench_function("avx512-vpopcntdq", |b| {
        b.iter(|| std::hint::black_box(and_popcount_vpopcntdq(&a, &b_words)))
    });
    group.bench_function("harley-seal", |b| {
        b.iter(|| std::hint::black_box(ld_popcount::strategies::harley_seal_and(&a, &b_words)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_strategies, bench_and_popcount
}
criterion_main!(benches);
