//! Benchmarks of the popcount strategy library (§IV: the `POPCNT`
//! instruction vs software schemes; §V: vectorized variants).
//!
//! Plain `fn main()` harness (criterion is unavailable offline).

use ld_bench::report::{fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_popcount::simd::{
    and_popcount_extract_insert_avx2, and_popcount_mula_avx2, and_popcount_vpopcntdq,
};
use ld_popcount::PopcountStrategy;

fn mk(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
        .collect()
}

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let budget = if opts.full { 0.5 } else { 0.05 };
    let mut table = Table::new(["bench", "case", "best", "rate"]);

    // -- slice popcount per strategy ---------------------------------------
    let words = mk(4096, 1);
    let bytes = (words.len() * 8) as f64;
    for s in PopcountStrategy::ALL {
        let t = time_best(
            || {
                std::hint::black_box(s.count_slice(&words));
            },
            budget,
            500,
        );
        table.row([
            "popcount-slice".to_string(),
            s.name().to_string(),
            fmt_secs(t),
            format!("{:.2} GB/s", bytes / t / 1e9),
        ]);
    }

    // -- AND + popcount paths ----------------------------------------------
    let a = mk(4096, 2);
    let b_words = mk(4096, 3);
    let bytes = (a.len() * 16) as f64;
    let cases: [(&str, &dyn Fn() -> u64); 5] = [
        ("scalar-popcnt", &|| ld_popcount::and_popcount(&a, &b_words)),
        ("avx2-extract-insert", &|| {
            and_popcount_extract_insert_avx2(&a, &b_words)
        }),
        ("avx2-mula", &|| and_popcount_mula_avx2(&a, &b_words)),
        ("avx512-vpopcntdq", &|| and_popcount_vpopcntdq(&a, &b_words)),
        ("harley-seal", &|| {
            ld_popcount::strategies::harley_seal_and(&a, &b_words)
        }),
    ];
    for (name, f) in cases {
        let t = time_best(
            || {
                std::hint::black_box(f());
            },
            budget,
            500,
        );
        table.row([
            "and-popcount".to_string(),
            name.to_string(),
            fmt_secs(t),
            format!("{:.2} GB/s", bytes / t / 1e9),
        ]);
    }

    println!("{}", table.render());
}
