//! Micro-benchmarks of the GEMM machinery: packing, micro-kernel tiles,
//! and full SYRK/GEMM drivers per kernel kind.
//!
//! Plain `fn main()` harness (criterion is unavailable offline): best-of-N
//! wall times via `ld_bench::runner::time_best`, rendered as a text table.

use ld_bench::report::{fmt_secs, Table};
use ld_bench::runner::{time_best, BenchOpts};
use ld_bench::workloads::random_matrix;
use ld_bitmat::AlignedWords;
use ld_kernels::micro::supported_kernels;
use ld_kernels::pack::pack_panels;
use ld_kernels::{gemm_counts_mt, syrk_counts_buf, BlockSizes, KernelKind};

fn main() {
    let opts = BenchOpts::parse(std::env::args().skip(1));
    let budget = if opts.full { 1.0 } else { 0.1 };
    let mut table = Table::new(["bench", "case", "best", "rate"]);

    // -- micro-kernel tiles ------------------------------------------------
    let kc = 256usize;
    for k in supported_kernels() {
        let ap: Vec<u64> = (0..kc * k.mr())
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        let bp: Vec<u64> = (0..kc * k.nr())
            .map(|i| (i as u64).wrapping_mul(0x85ebca6b))
            .collect();
        let mut acc = vec![0u64; k.mr() * k.nr()];
        let t = time_best(
            || {
                acc.fill(0);
                k.run(kc, &ap, &bp, &mut acc);
                std::hint::black_box(&acc);
            },
            budget,
            200,
        );
        let elems = (kc * k.mr() * k.nr()) as f64;
        table.row([
            "micro-kernel".to_string(),
            format!("{}", k.kind()),
            fmt_secs(t),
            format!("{:.2} Gelem/s", elems / t / 1e9),
        ]);
    }

    // -- packing -----------------------------------------------------------
    let g = random_matrix(8192, 512, 0.3, 5);
    let v = g.full_view();
    let mut buf = AlignedWords::new();
    for r in [4usize, 8] {
        let t = time_best(|| pack_panels(&v, 0..512, 0..128, r, &mut buf), budget, 100);
        let bytes = (512 * 128 * 8) as f64;
        table.row([
            "pack".to_string(),
            format!("panels r={r}"),
            fmt_secs(t),
            format!("{:.2} GB/s", bytes / t / 1e9),
        ]);
    }

    // -- SYRK --------------------------------------------------------------
    for n in [256usize, 512] {
        let g = random_matrix(4096, n, 0.3, n as u64);
        let mut out = vec![0u32; n * n];
        for kind in [KernelKind::Scalar, KernelKind::Auto] {
            let t = time_best(
                || syrk_counts_buf(&g.full_view(), &mut out, n, kind, BlockSizes::default(), 1),
                budget,
                20,
            );
            let pairs = (n * (n + 1) / 2) as f64;
            table.row([
                "syrk".to_string(),
                format!("{kind} n={n}"),
                fmt_secs(t),
                format!("{:.2} Mpair/s", pairs / t / 1e6),
            ]);
        }
    }

    // -- rectangular GEMM --------------------------------------------------
    let (m, n, k) = (384usize, 384usize, 4096usize);
    let a = random_matrix(k, m, 0.3, 11);
    let b_mat = random_matrix(k, n, 0.3, 12);
    let mut out = vec![0u32; m * n];
    let t = time_best(
        || {
            gemm_counts_mt(
                &a.full_view(),
                &b_mat.full_view(),
                &mut out,
                n,
                KernelKind::Auto,
                BlockSizes::default(),
                1,
            )
        },
        budget,
        20,
    );
    table.row([
        "gemm".to_string(),
        format!("auto {m}x{n}xk{k}"),
        fmt_secs(t),
        format!("{:.2} Mpair/s", (m * n) as f64 / t / 1e6),
    ]);

    println!("{}", table.render());
}
