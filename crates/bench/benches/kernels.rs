//! Criterion micro-benchmarks of the GEMM machinery: packing, micro-kernel
//! tiles, and full SYRK/GEMM drivers per kernel kind.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ld_bench::workloads::random_matrix;
use ld_bitmat::AlignedWords;
use ld_kernels::micro::supported_kernels;
use ld_kernels::pack::pack_panels;
use ld_kernels::{gemm_counts_mt, syrk_counts_buf, BlockSizes, KernelKind};

fn bench_micro_kernels(c: &mut Criterion) {
    let kc = 256usize;
    let mut group = c.benchmark_group("micro-kernel");
    for k in supported_kernels() {
        let ap: Vec<u64> = (0..kc * k.mr()).map(|i| (i as u64).wrapping_mul(0x9e3779b9)).collect();
        let bp: Vec<u64> = (0..kc * k.nr()).map(|i| (i as u64).wrapping_mul(0x85ebca6b)).collect();
        let mut acc = vec![0u64; k.mr() * k.nr()];
        // word-pairs processed per call
        group.throughput(Throughput::Elements((kc * k.mr() * k.nr()) as u64));
        group.bench_function(BenchmarkId::from_parameter(k.kind()), |b| {
            b.iter(|| {
                acc.fill(0);
                k.run(kc, &ap, &bp, &mut acc);
                std::hint::black_box(&acc);
            })
        });
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let g = random_matrix(8192, 512, 0.3, 5);
    let v = g.full_view();
    let mut buf = AlignedWords::new();
    let mut group = c.benchmark_group("pack");
    for r in [4usize, 8] {
        group.throughput(Throughput::Bytes((512 * 128 * 8) as u64));
        group.bench_function(BenchmarkId::new("panels", r), |b| {
            b.iter(|| pack_panels(&v, 0..512, 0..128, r, &mut buf))
        });
    }
    group.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut group = c.benchmark_group("syrk");
    group.sample_size(10);
    for n in [256usize, 512] {
        let g = random_matrix(4096, n, 0.3, n as u64);
        let mut out = vec![0u32; n * n];
        group.throughput(Throughput::Elements((n * (n + 1) / 2) as u64));
        for kind in [KernelKind::Scalar, KernelKind::Auto] {
            group.bench_function(BenchmarkId::new(format!("{kind}"), n), |b| {
                b.iter(|| {
                    syrk_counts_buf(&g.full_view(), &mut out, n, kind, BlockSizes::default(), 1)
                })
            });
        }
    }
    group.finish();
}

fn bench_gemm_rectangular(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    let (m, n, k) = (384usize, 384usize, 4096usize);
    let a = random_matrix(k, m, 0.3, 11);
    let b_mat = random_matrix(k, n, 0.3, 12);
    let mut out = vec![0u32; m * n];
    group.throughput(Throughput::Elements((m * n) as u64));
    group.bench_function("auto-384x384xk4096", |bch| {
        bch.iter(|| {
            gemm_counts_mt(
                &a.full_view(),
                &b_mat.full_view(),
                &mut out,
                n,
                KernelKind::Auto,
                BlockSizes::default(),
                1,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_micro_kernels, bench_packing, bench_syrk, bench_gemm_rectangular
}
criterion_main!(benches);
