//! Third-order linkage disequilibrium (paper §VIII: "more specialized
//! use-cases such as higher-order LD").
//!
//! The three-locus disequilibrium coefficient (Bennett 1954; reviewed in
//! Slatkin's ref. [28] of the paper) for loci A, B, C:
//!
//! ```text
//! D_ABC = P_ABC − p_A·D_BC − p_B·D_AC − p_C·D_AB − p_A p_B p_C
//! ```
//!
//! `D_ABC = 0` when no three-way interaction exists beyond the pairwise
//! structure. Every term is a popcount on the packed substrate — the
//! three-way haplotype frequency is `POPCNT(s_A & s_B & s_C)/N`, one extra
//! AND deeper than the pairwise kernel — so windowed triple scans reuse
//! the same machinery (the `O(n³)` triple count confines them to windows).

use ld_bitmat::BitMatrixView;
use ld_popcount::and_popcount;

/// All frequencies entering the three-locus coefficient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TripleFreqs {
    /// Single-locus derived frequencies.
    pub p: [f64; 3],
    /// Pairwise derived-derived haplotype frequencies (AB, AC, BC).
    pub p2: [f64; 3],
    /// Three-way derived haplotype frequency.
    pub p3: f64,
}

impl TripleFreqs {
    /// Pairwise `D` coefficients (AB, AC, BC).
    pub fn pairwise_d(&self) -> [f64; 3] {
        [
            self.p2[0] - self.p[0] * self.p[1],
            self.p2[1] - self.p[0] * self.p[2],
            self.p2[2] - self.p[1] * self.p[2],
        ]
    }

    /// The three-locus coefficient `D_ABC`.
    pub fn d3(&self) -> f64 {
        let d = self.pairwise_d();
        self.p3
            - self.p[0] * d[2]  // p_A · D_BC
            - self.p[1] * d[1]  // p_B · D_AC
            - self.p[2] * d[0]  // p_C · D_AB
            - self.p[0] * self.p[1] * self.p[2]
    }
}

/// Counts all frequencies for the SNP triple `(i, j, k)` in one pass.
pub fn triple_freqs(g: &BitMatrixView<'_>, i: usize, j: usize, k: usize) -> TripleFreqs {
    let n = g.n_samples() as f64;
    let (a, b, c) = (g.snp_words(i), g.snp_words(j), g.snp_words(k));
    let mut n_ab = 0u64;
    let mut n_ac = 0u64;
    let mut n_bc = 0u64;
    let mut n_abc = 0u64;
    for w in 0..a.len() {
        let ab = a[w] & b[w];
        n_ab += ab.count_ones() as u64;
        n_ac += (a[w] & c[w]).count_ones() as u64;
        n_bc += (b[w] & c[w]).count_ones() as u64;
        n_abc += (ab & c[w]).count_ones() as u64;
    }
    TripleFreqs {
        p: [
            g.ones_in_snp(i) as f64 / n,
            g.ones_in_snp(j) as f64 / n,
            g.ones_in_snp(k) as f64 / n,
        ],
        p2: [n_ab as f64 / n, n_ac as f64 / n, n_bc as f64 / n],
        p3: n_abc as f64 / n,
    }
}

/// `D_ABC` for one triple.
pub fn third_order_d(g: &BitMatrixView<'_>, i: usize, j: usize, k: usize) -> f64 {
    triple_freqs(g, i, j, k).d3()
}

/// All `C(w, 3)` third-order coefficients of a window, as
/// `(i, j, k, D_ABC)` with `i < j < k` (window-local indices).
pub fn third_order_window(g: &BitMatrixView<'_>) -> Vec<(usize, usize, usize, f64)> {
    let w = g.n_snps();
    let mut out = Vec::with_capacity(w * (w.saturating_sub(1)) * (w.saturating_sub(2)) / 6);
    for i in 0..w {
        for j in i + 1..w {
            for k in j + 1..w {
                out.push((i, j, k, third_order_d(g, i, j, k)));
            }
        }
    }
    out
}

/// The triples whose |D_ABC| meets `threshold`, strongest first — an
/// epistasis-style screen.
pub fn strongest_triples(g: &BitMatrixView<'_>, threshold: f64) -> Vec<(usize, usize, usize, f64)> {
    let mut v: Vec<_> = third_order_window(g)
        .into_iter()
        .filter(|&(_, _, _, d)| d.abs() >= threshold)
        .collect();
    v.sort_by(|a, b| {
        b.3.abs()
            .partial_cmp(&a.3.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    v
}

/// Consistency helper used by tests: the pairwise counts embedded in a
/// [`TripleFreqs`] must match the direct pairwise kernel.
pub fn pairwise_count(g: &BitMatrixView<'_>, i: usize, j: usize) -> u64 {
    and_popcount(g.snp_words(i), g.snp_words(j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::BitMatrix;

    #[test]
    fn independent_loci_give_zero_d3() {
        // 8 samples = full factorial over 3 loci: perfectly independent
        let mut g = BitMatrix::zeros(8, 3);
        for s in 0..8 {
            g.set(s, 0, s & 1 != 0);
            g.set(s, 1, s & 2 != 0);
            g.set(s, 2, s & 4 != 0);
        }
        let f = triple_freqs(&g.full_view(), 0, 1, 2);
        assert_eq!(f.p, [0.5, 0.5, 0.5]);
        assert_eq!(f.p2, [0.25, 0.25, 0.25]);
        assert_eq!(f.p3, 0.125);
        assert!(f.d3().abs() < 1e-12);
        assert!(f.pairwise_d().iter().all(|d| d.abs() < 1e-12));
    }

    #[test]
    fn pure_three_way_interaction_detected() {
        // XOR structure: every pair independent, but the triple is not —
        // the signature case D_ABC must flag.
        // samples: all (a,b) combos twice; c = a XOR b
        let rows: Vec<[u8; 3]> = (0..8)
            .map(|s| {
                let a = (s >> 1) & 1;
                let b = s & 1;
                [a as u8, b as u8, (a ^ b) as u8]
            })
            .collect();
        let g = BitMatrix::from_rows(8, 3, rows).unwrap();
        let f = triple_freqs(&g.full_view(), 0, 1, 2);
        // pairwise: all D = 0
        assert!(f.pairwise_d().iter().all(|d| d.abs() < 1e-12));
        // but P_ABC = 0 (a=b=1 -> c=0) while independence predicts 1/8
        assert_eq!(f.p3, 0.0);
        assert!((f.d3() + 0.125).abs() < 1e-12, "D3 = {}", f.d3());
    }

    #[test]
    fn d3_is_symmetric_under_locus_permutation() {
        let mut g = BitMatrix::zeros(32, 3);
        let mut s = 9u64;
        for j in 0..3 {
            for smp in 0..32 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s.is_multiple_of(3) {
                    g.set(smp, j, true);
                }
            }
        }
        let v = g.full_view();
        let base = third_order_d(&v, 0, 1, 2);
        for (i, j, k) in [(0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0)] {
            assert!(
                (third_order_d(&v, i, j, k) - base).abs() < 1e-12,
                "permutation ({i},{j},{k})"
            );
        }
    }

    #[test]
    fn window_scan_counts_triples() {
        let g = BitMatrix::zeros(16, 6);
        let all = third_order_window(&g.full_view());
        assert_eq!(all.len(), 20); // C(6,3)
                                   // ordering invariant
        for &(i, j, k, _) in &all {
            assert!(i < j && j < k);
        }
    }

    #[test]
    fn screen_finds_planted_xor() {
        // plant an XOR triple inside random noise
        let n_samples = 64;
        let mut g = BitMatrix::zeros(n_samples, 8);
        let mut s = 77u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for j in 0..8 {
            for smp in 0..n_samples {
                if next() % 2 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        // loci 2,5: random; locus 7 = xor of them
        for smp in 0..n_samples {
            g.set(smp, 7, g.get(smp, 2) ^ g.get(smp, 5));
        }
        let hits = strongest_triples(&g.full_view(), 0.08);
        assert!(
            hits.iter().any(|&(i, j, k, _)| (i, j, k) == (2, 5, 7)),
            "planted XOR triple not found: {hits:?}"
        );
    }

    #[test]
    fn embedded_pairwise_counts_agree() {
        let mut g = BitMatrix::zeros(100, 3);
        for smp in (0..100).step_by(3) {
            g.set(smp, 0, true);
        }
        for smp in (0..100).step_by(4) {
            g.set(smp, 1, true);
        }
        for smp in (0..100).step_by(5) {
            g.set(smp, 2, true);
        }
        let v = g.full_view();
        let f = triple_freqs(&v, 0, 1, 2);
        assert_eq!(f.p2[0], pairwise_count(&v, 0, 1) as f64 / 100.0);
        assert_eq!(f.p2[1], pairwise_count(&v, 0, 2) as f64 / 100.0);
        assert_eq!(f.p2[2], pairwise_count(&v, 1, 2) as f64 / 100.0);
    }
}
