//! # ld-ext — the paper's §VII "Discussion" extensions, implemented
//!
//! The paper sketches three adaptations of the GEMM-LD framework and
//! leaves them as directions; this crate builds all three:
//!
//! * [`gaps`] — **alignment gaps / missing data**: one validity bit-vector
//!   `c_j` per SNP; for every pair the valid-pair mask `c_ij = c_i & c_j`
//!   restricts all inner products, giving per-pair effective sample sizes
//!   (`(c_ij & s_i)ᵀ(c_ij & s_j) = POPCNT(c_ij & s_i & s_j)` — §VII's
//!   exact formulas).
//! * [`fsm`] — **finite-sites model**: four bit-planes per SNP (A/C/G/T),
//!   Zaykin's coefficient-based statistic `T_ij` (the paper's Eq. 6)
//!   summing `r²` over present state pairs, with gap handling built in.
//! * [`tanimoto`] — **other domains**: Tanimoto 2-D fingerprint similarity
//!   (Eq. 7) computed with the *same* blocked AND/POPCNT SYRK engine —
//!   `Tanimoto(A,B) = x / (p + q − x)` needs exactly the co-occurrence
//!   counts matrix plus its diagonal.

#![warn(missing_docs)]

pub mod fsm;
pub mod gaps;
pub mod gaps_blocked;
pub mod higher_order;
pub mod tanimoto;

pub use fsm::{Nucleotide, NucleotideMatrix};
pub use gaps::{masked_ld_pair, masked_r2_matrix, MaskedCounts};
pub use gaps_blocked::masked_r2_matrix_blocked;
pub use higher_order::{third_order_d, triple_freqs, TripleFreqs};
pub use tanimoto::{tanimoto_cross, tanimoto_matrix, tanimoto_pair};
