//! Finite-sites-model LD (paper §VII, "Facilitating finite sites models").
//!
//! Under the FSM a site carries up to four states (A/C/G/T) plus gaps and
//! ambiguity codes, so each SNP becomes **four bit-planes** — one presence
//! vector per nucleotide — and LD generalizes to Zaykin's coefficient-based
//! statistic (the paper's Eq. 6):
//!
//! ```text
//! T_ij = ((v_i − 1)(v_j − 1) v_ij / (v_i v_j)) · Σ_{s_i, s_j ∈ {A,C,G,T}} r²_{s_i s_j}
//! ```
//!
//! where `v_i` is the number of states present at SNP `i`, `v_ij` the
//! number of jointly-valid samples, and each `r²_{s_i s_j}` is the ordinary
//! Eq. 2 applied to the indicator vectors of state `s_i` at SNP `i` and
//! state `s_j` at SNP `j`, restricted to the valid-pair mask. The worst
//! case costs 16 plane popcount products per pair — the 16× factor the
//! paper quotes.

use ld_bitmat::{BitMatrix, BitMatrixBuilder, ValidityMask};
use ld_core::fused::SyncSlice;
use ld_core::{ld_pair_from_counts, LdMatrix, NanPolicy};
use ld_parallel::parallel_for_dynamic;

/// The four DNA states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Nucleotide {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Thymine.
    T,
}

impl Nucleotide {
    /// All four states, plane order.
    pub const ALL: [Nucleotide; 4] = [Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::T];

    /// Parses an (upper- or lower-case) base; gaps/ambiguity return `None`.
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'A' => Some(Nucleotide::A),
            'C' => Some(Nucleotide::C),
            'G' => Some(Nucleotide::G),
            'T' | 'U' => Some(Nucleotide::T),
            _ => None,
        }
    }

    /// Plane index 0..4.
    pub fn index(self) -> usize {
        match self {
            Nucleotide::A => 0,
            Nucleotide::C => 1,
            Nucleotide::G => 2,
            Nucleotide::T => 3,
        }
    }
}

/// A multi-state site matrix: four presence bit-planes plus validity.
///
/// Plane `p` is a [`BitMatrix`] whose bit `(s, j)` says "sample `s` carries
/// nucleotide `p` at site `j`". Gaps and ambiguity codes set no plane and
/// are invalid in the mask.
#[derive(Clone, Debug)]
pub struct NucleotideMatrix {
    planes: [BitMatrix; 4],
    mask: ValidityMask,
    n_samples: usize,
    n_sites: usize,
}

impl NucleotideMatrix {
    /// Builds from site-major character columns (`'A' 'C' 'G' 'T'`, with
    /// `'-'`, `'N'`, etc. treated as invalid).
    pub fn from_site_columns<C, I>(n_samples: usize, cols: I) -> Self
    where
        C: AsRef<[char]>,
        I: IntoIterator<Item = C>,
    {
        let cols: Vec<C> = cols.into_iter().collect();
        let mut plane_builders: Vec<BitMatrixBuilder> =
            (0..4).map(|_| BitMatrixBuilder::new(n_samples)).collect();
        let mut valid_builder = BitMatrixBuilder::new(n_samples);
        for col in &cols {
            let col = col.as_ref();
            assert_eq!(col.len(), n_samples, "site column length mismatch");
            let states: Vec<Option<Nucleotide>> =
                col.iter().map(|&c| Nucleotide::from_char(c)).collect();
            for (p, b) in plane_builders.iter_mut().enumerate() {
                b.push_snp_bits(states.iter().map(|s| s.map(Nucleotide::index) == Some(p)))
                    .expect("fixed length");
            }
            valid_builder
                .push_snp_bits(states.iter().map(Option::is_some))
                .expect("fixed length");
        }
        let mut planes = plane_builders.into_iter().map(BitMatrixBuilder::finish);
        let planes = [
            planes.next().unwrap(),
            planes.next().unwrap(),
            planes.next().unwrap(),
            planes.next().unwrap(),
        ];
        let mask = ValidityMask::from_bitmatrix(&valid_builder.finish());
        Self {
            planes,
            mask,
            n_samples,
            n_sites: cols.len(),
        }
    }

    /// Builds from site-major strings (one string per site).
    pub fn from_site_strings<S: AsRef<str>, I: IntoIterator<Item = S>>(
        n_samples: usize,
        cols: I,
    ) -> Self {
        let char_cols: Vec<Vec<char>> = cols
            .into_iter()
            .map(|s| s.as_ref().chars().collect())
            .collect();
        Self::from_site_columns(n_samples, char_cols)
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// The presence plane of one nucleotide.
    pub fn plane(&self, n: Nucleotide) -> &BitMatrix {
        &self.planes[n.index()]
    }

    /// The validity mask (invalid = gap/ambiguous).
    pub fn mask(&self) -> &ValidityMask {
        &self.mask
    }

    /// Number of distinct states present at site `j` (`v_j ≤ 4`).
    pub fn states_present(&self, j: usize) -> usize {
        self.planes.iter().filter(|p| p.ones_in_snp(j) > 0).count()
    }

    /// Zaykin's `T` statistic for one site pair (the paper's Eq. 6).
    /// Returns NaN (or 0 per policy) when either site is monomorphic
    /// (`v ≤ 1`) or no jointly-valid samples exist.
    pub fn t_statistic(&self, i: usize, j: usize, policy: NanPolicy) -> f64 {
        let v_i = self.states_present(i);
        let v_j = self.states_present(j);
        let v_ij = self.mask.pair_valid_count(i, j);
        if v_i <= 1 || v_j <= 1 || v_ij == 0 {
            return match policy {
                NanPolicy::Propagate => f64::NAN,
                NanPolicy::Zero => 0.0,
            };
        }
        let mut sum_r2 = 0.0;
        for si in Nucleotide::ALL {
            let pi = self.planes[si.index()].snp_words(i);
            for sj in Nucleotide::ALL {
                let pj = self.planes[sj.index()].snp_words(j);
                // masked counts for the two indicator vectors
                let ci = self.mask.snp_words(i);
                let cj = self.mask.snp_words(j);
                let mut ones_i = 0u64;
                let mut ones_j = 0u64;
                let mut both = 0u64;
                for w in 0..pi.len() {
                    let c = ci[w] & cj[w];
                    let a = c & pi[w];
                    let b = c & pj[w];
                    ones_i += a.count_ones() as u64;
                    ones_j += b.count_ones() as u64;
                    both += (a & b).count_ones() as u64;
                }
                let r2 = ld_pair_from_counts(ones_i, ones_j, both, v_ij, NanPolicy::Zero).r2;
                sum_r2 += r2;
            }
        }
        let (v_i, v_j, v_ij) = (v_i as f64, v_j as f64, v_ij as f64);
        ((v_i - 1.0) * (v_j - 1.0) * v_ij / (v_i * v_j)) * sum_r2
    }

    /// All-pairs `T` matrix, dynamically scheduled.
    pub fn t_matrix(&self, threads: usize, policy: NanPolicy) -> LdMatrix {
        let n = self.n_sites;
        let mut out = LdMatrix::zeros(n);
        {
            let packed = out.packed_mut();
            let ptr = SyncSlice::new(packed);
            parallel_for_dynamic(threads, n, 2, |rows| {
                for i in rows.clone() {
                    let off = i * n - (i * i - i) / 2;
                    // SAFETY: disjoint packed row ranges per worker.
                    let dst = unsafe { ptr.slice(off, n - i) };
                    for (t, j) in (i..n).enumerate() {
                        dst[t] = self.t_statistic(i, j, policy);
                    }
                }
            });
        }
        out
    }

    /// Reduces a *biallelic* nucleotide matrix back to a 0/1 matrix
    /// (derived = the rarer of the two present states), for consistency
    /// checks against the ISM pipeline.
    pub fn to_biallelic(&self) -> Option<BitMatrix> {
        let mut b = BitMatrixBuilder::new(self.n_samples);
        for j in 0..self.n_sites {
            let present: Vec<&BitMatrix> = self
                .planes
                .iter()
                .filter(|p| p.ones_in_snp(j) > 0)
                .collect();
            if present.len() != 2 {
                return None;
            }
            let (a, c) = (present[0], present[1]);
            let derived = if a.ones_in_snp(j) <= c.ones_in_snp(j) {
                a
            } else {
                c
            };
            b.push_snp_bits((0..self.n_samples).map(|s| derived.get(s, j)))
                .ok()?;
        }
        Some(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::LdEngine;

    #[test]
    fn planes_partition_valid_samples() {
        let m = NucleotideMatrix::from_site_strings(5, ["ACGT-", "AAccN"]);
        assert_eq!(m.n_sites(), 2);
        assert_eq!(m.n_samples(), 5);
        // site 0: one of each + gap
        assert_eq!(m.states_present(0), 4);
        assert_eq!(m.mask().valid_count(0), 4);
        // site 1: A,A,C,C,N
        assert_eq!(m.states_present(1), 2);
        assert_eq!(m.mask().valid_count(1), 4);
        assert_eq!(m.plane(Nucleotide::A).ones_in_snp(1), 2);
        assert_eq!(m.plane(Nucleotide::C).ones_in_snp(1), 2);
    }

    #[test]
    fn nucleotide_parsing() {
        assert_eq!(Nucleotide::from_char('a'), Some(Nucleotide::A));
        assert_eq!(Nucleotide::from_char('U'), Some(Nucleotide::T));
        assert_eq!(Nucleotide::from_char('-'), None);
        assert_eq!(Nucleotide::from_char('N'), None);
    }

    #[test]
    fn biallelic_t_tracks_r2() {
        // Perfectly linked biallelic sites: T should be maximal relative to
        // the same sites shuffled into equilibrium.
        let linked = NucleotideMatrix::from_site_strings(8, ["AAAACCCC", "GGGGTTTT"]);
        let equil = NucleotideMatrix::from_site_strings(8, ["AAAACCCC", "GGTTGGTT"]);
        let t_linked = linked.t_statistic(0, 1, NanPolicy::Propagate);
        let t_equil = equil.t_statistic(0, 1, NanPolicy::Propagate);
        assert!(
            t_linked > 5.0 * t_equil.max(1e-9),
            "linked {t_linked} equil {t_equil}"
        );
    }

    #[test]
    fn eq6_value_on_biallelic_pair() {
        // For biallelic sites, Σ r² over the 2×2 present state pairs is
        // 4·r² of the 0/1 encoding, so
        // T = (1·1·n / 4) · 4 r² = n · r².
        let m = NucleotideMatrix::from_site_strings(6, ["AACCAC", "GGTTGT"]);
        let bi = m.to_biallelic().unwrap();
        let r2 = LdEngine::new().ld_pair(&bi, 0, 1).r2;
        let t = m.t_statistic(0, 1, NanPolicy::Propagate);
        assert!((t - 6.0 * r2).abs() < 1e-9, "t {t} vs n·r² {}", 6.0 * r2);
    }

    #[test]
    fn monomorphic_site_is_undefined() {
        let m = NucleotideMatrix::from_site_strings(4, ["AAAA", "ACAC"]);
        assert!(m.t_statistic(0, 1, NanPolicy::Propagate).is_nan());
        assert_eq!(m.t_statistic(0, 1, NanPolicy::Zero), 0.0);
    }

    #[test]
    fn gaps_reduce_v_ij() {
        let with_gap = NucleotideMatrix::from_site_strings(4, ["ACAC", "GT-G"]);
        assert_eq!(with_gap.mask().pair_valid_count(0, 1), 3);
    }

    #[test]
    fn t_matrix_matches_pairwise() {
        let m = NucleotideMatrix::from_site_strings(
            10,
            ["ACGTACGTAC", "AACCGGTTAA", "ACACACACAC", "TTTTTAAAAA"],
        );
        let mat = m.t_matrix(3, NanPolicy::Zero);
        for i in 0..4 {
            for j in i..4 {
                let want = m.t_statistic(i, j, NanPolicy::Zero);
                assert!((mat.get(i, j) - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn to_biallelic_rejects_multiallelic() {
        let m = NucleotideMatrix::from_site_strings(4, ["ACGT"]);
        assert!(m.to_biallelic().is_none());
    }
}
