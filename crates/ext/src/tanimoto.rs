//! Tanimoto fingerprint similarity on the GEMM engine (paper §VII,
//! "Adapting for other domains", Eq. 7).
//!
//! For compounds `A`, `B` with `p`, `q` set bits and `x` shared set bits:
//!
//! ```text
//! Tanimoto(A, B) = x / (p + q − x)
//! ```
//!
//! `x` for all pairs is exactly the co-occurrence counts matrix the LD
//! SYRK produces, and `p`, `q` are its diagonal — so an all-pairs
//! similarity screen is one blocked AND/POPCNT GEMM plus an `O(n²)`
//! elementwise transform. The same cache/register blocking that gives LD
//! its 84–95 % of peak carries over verbatim, which is the paper's point
//! about domain transfer.

use ld_bitmat::BitMatrixView;
use ld_core::{CrossLdMatrix, LdMatrix};
use ld_kernels::{gemm_counts_mt, syrk_counts_buf, BlockSizes, KernelKind};
use ld_popcount::and_popcount;

/// Tanimoto similarity of one fingerprint pair (columns `i`, `j`).
pub fn tanimoto_pair(fp: &BitMatrixView<'_>, i: usize, j: usize) -> f64 {
    let p = ld_popcount::popcount_slice(fp.snp_words(i));
    let q = ld_popcount::popcount_slice(fp.snp_words(j));
    let x = and_popcount(fp.snp_words(i), fp.snp_words(j));
    tanimoto_from_counts(p, q, x)
}

/// Eq. 7 with the empty-∪-empty convention `Tanimoto(∅, ∅) = 1`.
#[inline]
pub fn tanimoto_from_counts(p: u64, q: u64, x: u64) -> f64 {
    let denom = p + q - x;
    if denom == 0 {
        1.0
    } else {
        x as f64 / denom as f64
    }
}

/// All-pairs Tanimoto matrix over the fingerprint set (columns are
/// compounds), computed with the blocked SYRK engine.
pub fn tanimoto_matrix(fp: &BitMatrixView<'_>, kind: KernelKind, threads: usize) -> LdMatrix {
    let n = fp.n_snps();
    let mut counts = vec![0u32; n * n];
    syrk_counts_buf(fp, &mut counts, n, kind, BlockSizes::default(), threads);
    let mut out = LdMatrix::zeros(n);
    for i in 0..n {
        let p = counts[i * n + i] as u64;
        for j in i..n {
            let q = counts[j * n + j] as u64;
            let x = counts[i * n + j] as u64;
            out.set(i, j, tanimoto_from_counts(p, q, x));
        }
    }
    out
}

/// Cross-set Tanimoto (query set × library set) with the GEMM driver —
/// the shape of a virtual-screening run.
pub fn tanimoto_cross(
    queries: &BitMatrixView<'_>,
    library: &BitMatrixView<'_>,
    kind: KernelKind,
    threads: usize,
) -> CrossLdMatrix {
    assert_eq!(
        queries.n_samples(),
        library.n_samples(),
        "fingerprint widths must match"
    );
    let (m, n) = (queries.n_snps(), library.n_snps());
    let mut counts = vec![0u32; m * n];
    gemm_counts_mt(
        queries,
        library,
        &mut counts,
        n,
        kind,
        BlockSizes::default(),
        threads,
    );
    let p: Vec<u64> = (0..m).map(|i| queries.ones_in_snp(i)).collect();
    let q: Vec<u64> = (0..n).map(|j| library.ones_in_snp(j)).collect();
    let mut values = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            values[i * n + j] = tanimoto_from_counts(p[i], q[j], counts[i * n + j] as u64);
        }
    }
    CrossLdMatrix::from_dense(m, n, values)
}

/// Returns the `k` most similar library compounds for each query
/// (indices + similarity, descending) — the classic screening output.
pub fn top_k_neighbors(sim: &CrossLdMatrix, k: usize) -> Vec<Vec<(usize, f64)>> {
    (0..sim.n_rows())
        .map(|i| {
            let mut row: Vec<(usize, f64)> =
                (0..sim.n_cols()).map(|j| (j, sim.get(i, j))).collect();
            row.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            row.truncate(k);
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::BitMatrix;

    fn fp_from_cols(cols: &[&[u8]]) -> BitMatrix {
        BitMatrix::from_columns(cols[0].len(), cols.iter().map(|c| c.to_vec())).unwrap()
    }

    #[test]
    fn hand_computed_values() {
        // A = {0,1,2}, B = {1,2,3}: x=2, p=q=3 -> 2/4 = 0.5
        let fp = fp_from_cols(&[&[1, 1, 1, 0, 0, 0], &[0, 1, 1, 1, 0, 0]]);
        let t = tanimoto_pair(&fp.full_view(), 0, 1);
        assert!((t - 0.5).abs() < 1e-12);
        // identical -> 1, disjoint -> 0
        let fp2 = fp_from_cols(&[&[1, 1, 0, 0], &[1, 1, 0, 0], &[0, 0, 1, 1]]);
        let v = fp2.full_view();
        assert_eq!(tanimoto_pair(&v, 0, 1), 1.0);
        assert_eq!(tanimoto_pair(&v, 0, 2), 0.0);
    }

    #[test]
    fn empty_convention() {
        assert_eq!(tanimoto_from_counts(0, 0, 0), 1.0);
        assert_eq!(tanimoto_from_counts(3, 0, 0), 0.0);
    }

    #[test]
    fn matrix_matches_pairs_and_is_bounded() {
        let fp = ld_data_like(24, 128);
        let v = fp.full_view();
        let m = tanimoto_matrix(&v, KernelKind::Auto, 2);
        for i in 0..24 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12, "self-similarity");
            for j in i..24 {
                let want = tanimoto_pair(&v, i, j);
                let got = m.get(i, j);
                assert!((got - want).abs() < 1e-12, "({i},{j})");
                assert!((0.0..=1.0).contains(&got));
            }
        }
    }

    #[test]
    fn cross_matches_square_blocks() {
        let fp = ld_data_like(20, 256);
        let v = fp.full_view();
        let full = tanimoto_matrix(&v, KernelKind::Auto, 1);
        let cross = tanimoto_cross(&fp.view(0, 8), &fp.view(8, 20), KernelKind::Auto, 1);
        for i in 0..8 {
            for j in 0..12 {
                assert!((cross.get(i, j) - full.get(i, 8 + j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let fp = ld_data_like(10, 64);
        let cross = tanimoto_cross(&fp.view(0, 3), &fp.view(3, 10), KernelKind::Auto, 1);
        let nn = top_k_neighbors(&cross, 4);
        assert_eq!(nn.len(), 3);
        for row in &nn {
            assert_eq!(row.len(), 4);
            for w in row.windows(2) {
                assert!(w[0].1 >= w[1].1, "descending order");
            }
        }
    }

    /// Small deterministic pseudo-random fingerprint set.
    fn ld_data_like(count: usize, bits: usize) -> BitMatrix {
        let mut g = BitMatrix::zeros(bits, count);
        let mut s = 0x5eed_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for j in 0..count {
            for b in 0..bits {
                if next() % 10 < 2 {
                    g.set(b, j, true);
                }
            }
        }
        g
    }
}
