//! Missing-data-aware LD (paper §VII, "Considering alignment gaps").
//!
//! Every pair gets its own effective sample set: the samples with valid
//! calls at *both* SNPs. The three §VII inner products become four
//! popcounts per packed word:
//!
//! ```text
//! c_ij      = c_i & c_j                  (valid pairs)
//! n_i|ij    = POPCNT(c_ij & s_i)         (derived at i among valid)
//! n_j|ij    = POPCNT(c_ij & s_j)
//! n_ij      = POPCNT(c_ij & s_i & s_j)   (derived at both)
//! ```
//!
//! and the LD statistics use `N_ij = POPCNT(c_ij)` as the sample size.

use ld_bitmat::{BitMatrix, BitMatrixView, ValidityMask};
use ld_core::fused::SyncSlice;
use ld_core::{ld_pair_from_counts, LdMatrix, LdPair, NanPolicy};
use ld_parallel::parallel_for_dynamic;

/// The four masked counts of one SNP pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaskedCounts {
    /// Jointly valid samples `N_ij`.
    pub valid: u64,
    /// Derived at SNP i among the valid set.
    pub ones_i: u64,
    /// Derived at SNP j among the valid set.
    pub ones_j: u64,
    /// Derived at both SNPs among the valid set.
    pub both: u64,
}

/// Computes the masked counts of pair `(i, j)` in one fused pass.
pub fn masked_counts(
    g: &BitMatrixView<'_>,
    mask: &ValidityMask,
    i: usize,
    j: usize,
) -> MaskedCounts {
    let si = g.snp_words(i);
    let sj = g.snp_words(j);
    // `i`/`j` are view-local; the mask is indexed in parent coordinates
    let ci = mask.snp_words(g.start() + i);
    let cj = mask.snp_words(g.start() + j);
    let mut out = MaskedCounts::default();
    for w in 0..si.len() {
        let c = ci[w] & cj[w];
        let a = c & si[w];
        let b = c & sj[w];
        out.valid += c.count_ones() as u64;
        out.ones_i += a.count_ones() as u64;
        out.ones_j += b.count_ones() as u64;
        out.both += (a & b).count_ones() as u64;
    }
    out
}

/// LD statistics for one pair under missing data.
pub fn masked_ld_pair(
    g: &BitMatrix,
    mask: &ValidityMask,
    i: usize,
    j: usize,
    policy: NanPolicy,
) -> LdPair {
    check_shapes(&g.full_view(), mask);
    let c = masked_counts(&g.full_view(), mask, i, j);
    if c.valid == 0 {
        // no jointly-valid sample: everything is undefined
        return ld_pair_from_counts(0, 0, 0, 1, policy);
    }
    ld_pair_from_counts(c.ones_i, c.ones_j, c.both, c.valid, policy)
}

/// All-pairs `r²` under missing data. Pairwise (the per-pair mask breaks
/// the shared-`N` factorization the GEMM exploits), dynamically scheduled.
pub fn masked_r2_matrix(
    g: &BitMatrixView<'_>,
    mask: &ValidityMask,
    threads: usize,
    policy: NanPolicy,
) -> LdMatrix {
    check_shapes(g, mask);
    let n = g.n_snps();
    let mut out = LdMatrix::zeros(n);
    {
        let packed = out.packed_mut();
        let ptr = SyncSlice::new(packed);
        parallel_for_dynamic(threads, n, 4, |rows| {
            for i in rows.clone() {
                let off = i * n - (i * i - i) / 2;
                // SAFETY: disjoint packed row ranges per worker.
                let dst = unsafe { ptr.slice(off, n - i) };
                for (t, j) in (i..n).enumerate() {
                    let c = masked_counts(g, mask, i, j);
                    dst[t] = if c.valid == 0 {
                        match policy {
                            NanPolicy::Propagate => f64::NAN,
                            NanPolicy::Zero => 0.0,
                        }
                    } else {
                        ld_pair_from_counts(c.ones_i, c.ones_j, c.both, c.valid, policy).r2
                    };
                }
            }
        });
    }
    out
}

fn check_shapes(g: &BitMatrixView<'_>, mask: &ValidityMask) {
    assert_eq!(
        g.n_samples(),
        mask.n_samples(),
        "mask sample count mismatch"
    );
    assert!(mask.n_snps() >= g.end(), "mask must cover the viewed SNPs");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::LdEngine;

    #[test]
    fn all_valid_mask_reproduces_plain_ld() {
        let g = BitMatrix::from_rows(
            6,
            3,
            [
                [1u8, 0, 1],
                [1, 1, 0],
                [0, 1, 1],
                [0, 0, 0],
                [1, 1, 1],
                [0, 1, 0],
            ],
        )
        .unwrap();
        let mask = ValidityMask::all_valid(6, 3);
        let masked = masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Propagate);
        let plain = LdEngine::new().r2_matrix(&g);
        for i in 0..3 {
            for j in i..3 {
                let (a, b) = (masked.get(i, j), plain.get(i, j));
                assert!(
                    (a - b).abs() < 1e-12 || (a.is_nan() && b.is_nan()),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn masking_excludes_samples() {
        // 4 samples; sample 3 is missing at SNP 1. Pair (0,1) must be
        // computed over samples {0,1,2} only.
        let g = BitMatrix::from_rows(4, 2, [[1u8, 1], [1, 1], [0, 0], [1, 0]]).unwrap();
        let mut mask = ValidityMask::all_valid(4, 2);
        mask.set_missing(3, 1);
        let c = masked_counts(&g.full_view(), &mask, 0, 1);
        assert_eq!(c.valid, 3);
        assert_eq!(c.ones_i, 2); // samples 0,1 derived at snp0 within valid set
        assert_eq!(c.ones_j, 2);
        assert_eq!(c.both, 2);
        // within the valid subset the two SNPs are identical -> r² = 1
        let p = masked_ld_pair(&g, &mask, 0, 1, NanPolicy::Propagate);
        assert!((p.r2 - 1.0).abs() < 1e-12);
        // unmasked they are not identical
        let q = LdEngine::new().ld_pair(&g, 0, 1);
        assert!(q.r2 < 1.0);
    }

    #[test]
    fn empty_intersection_is_undefined() {
        let g = BitMatrix::from_rows(2, 2, [[1u8, 0], [0, 1]]).unwrap();
        let mut mask = ValidityMask::all_valid(2, 2);
        mask.set_missing(0, 0);
        mask.set_missing(1, 1);
        let p = masked_ld_pair(&g, &mask, 0, 1, NanPolicy::Propagate);
        assert!(p.r2.is_nan());
        let m = masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Zero);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn threaded_matches_single() {
        let mut g = BitMatrix::zeros(100, 12);
        let mut mask = ValidityMask::all_valid(100, 12);
        let mut s = 77u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for j in 0..12 {
            for smp in 0..100 {
                if next() % 3 == 0 {
                    g.set(smp, j, true);
                }
                if next() % 10 == 0 {
                    mask.set_missing(smp, j);
                }
            }
        }
        let one = masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Zero);
        let many = masked_r2_matrix(&g.full_view(), &mask, 5, NanPolicy::Zero);
        assert_eq!(one.packed(), many.packed());
    }

    #[test]
    #[should_panic(expected = "mask sample count")]
    fn shape_mismatch_panics() {
        let g = BitMatrix::zeros(4, 2);
        let mask = ValidityMask::all_valid(5, 2);
        masked_ld_pair(&g, &mask, 0, 1, NanPolicy::Propagate);
    }
}
