//! Missing-data LD as **pure blocked DLA** — finishing §VII with the
//! paper's own recipe.
//!
//! [`crate::gaps::masked_r2_matrix`] walks pairs one at a time because the
//! per-pair validity mask seems to break the shared-`N` factorization. It
//! doesn't: define two derived bit matrices,
//!
//! ```text
//! V = validity            (bit = call present)
//! D = S ∧ V               (bit = valid derived allele)
//! ```
//!
//! and every §VII count is an inner product between their columns:
//!
//! ```text
//! N_ij      = v_iᵀ v_j        (jointly valid)
//! n_ij      = d_iᵀ d_j        (derived at both)
//! n_i|ij    = d_iᵀ v_j        (derived at i among valid)
//! n_j|ij    = v_iᵀ d_j
//! ```
//!
//! So the masked all-pairs computation is **two SYRKs (`VᵀV`, `DᵀD`) plus
//! one full GEMM (`DᵀV`, whose transpose supplies `VᵀD`)** — 4× the plain
//! kernel work, all of it inside the blocked engine. This module verifies
//! the identity against the pairwise path and exposes the blocked driver.

use ld_bitmat::{AlignedWords, BitMatrix, BitMatrixView, ValidityMask};
use ld_core::{ld_pair_from_counts, LdMatrix, NanPolicy};
use ld_kernels::{gemm_counts_mt, syrk_counts_buf, BlockSizes, KernelKind};

/// Builds the `D = S ∧ V` (valid-derived) matrix.
pub fn valid_derived_matrix(g: &BitMatrixView<'_>, mask: &ValidityMask) -> BitMatrix {
    assert_eq!(
        g.n_samples(),
        mask.n_samples(),
        "mask sample count mismatch"
    );
    assert!(mask.n_snps() >= g.end(), "mask must cover the viewed SNPs");
    let wps = g.words_per_snp();
    let mut words = AlignedWords::zeroed(wps * g.n_snps());
    for j in 0..g.n_snps() {
        let s = g.snp_words(j);
        let c = mask.snp_words(g.start() + j);
        for w in 0..wps {
            words[j * wps + w] = s[w] & c[w];
        }
    }
    BitMatrix::from_words(g.n_samples(), g.n_snps(), words).expect("AND preserves padding")
}

/// Reinterprets the validity mask as a bit matrix (for the `VᵀV` SYRK).
pub fn validity_matrix(g: &BitMatrixView<'_>, mask: &ValidityMask) -> BitMatrix {
    let wps = g.words_per_snp();
    let mut words = AlignedWords::zeroed(wps * g.n_snps());
    for j in 0..g.n_snps() {
        words[j * wps..(j + 1) * wps].copy_from_slice(mask.snp_words(g.start() + j));
    }
    BitMatrix::from_words(g.n_samples(), g.n_snps(), words)
        .expect("masks maintain the padding invariant")
}

/// All-pairs `r²` under missing data via four blocked counts products.
pub fn masked_r2_matrix_blocked(
    g: &BitMatrixView<'_>,
    mask: &ValidityMask,
    kind: KernelKind,
    threads: usize,
    policy: NanPolicy,
) -> LdMatrix {
    let n = g.n_snps();
    let d = valid_derived_matrix(g, mask);
    let v = validity_matrix(g, mask);

    // three blocked products: VᵀV, DᵀD (symmetric), DᵀV (general)
    let mut vv = vec![0u32; n * n];
    syrk_counts_buf(
        &v.full_view(),
        &mut vv,
        n,
        kind,
        BlockSizes::default(),
        threads,
    );
    let mut dd = vec![0u32; n * n];
    syrk_counts_buf(
        &d.full_view(),
        &mut dd,
        n,
        kind,
        BlockSizes::default(),
        threads,
    );
    let mut dv = vec![0u32; n * n];
    gemm_counts_mt(
        &d.full_view(),
        &v.full_view(),
        &mut dv,
        n,
        kind,
        BlockSizes::default(),
        threads,
    );

    let mut out = LdMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let valid = vv[i * n + j] as u64;
            if valid == 0 {
                out.set(
                    i,
                    j,
                    match policy {
                        NanPolicy::Propagate => f64::NAN,
                        NanPolicy::Zero => 0.0,
                    },
                );
                continue;
            }
            let both = dd[i * n + j] as u64;
            let ones_i = dv[i * n + j] as u64; // d_i · v_j
            let ones_j = dv[j * n + i] as u64; // d_j · v_i
            out.set(
                i,
                j,
                ld_pair_from_counts(ones_i, ones_j, both, valid, policy).r2,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaps::masked_r2_matrix;

    fn fixture(n_samples: usize, n_snps: usize, seed: u64) -> (BitMatrix, ValidityMask) {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        let mut mask = ValidityMask::all_valid(n_samples, n_snps);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 3 == 0 {
                    g.set(smp, j, true);
                }
                if next() % 12 == 0 {
                    mask.set_missing(smp, j);
                }
            }
        }
        (g, mask)
    }

    #[test]
    fn blocked_equals_pairwise() {
        let (g, mask) = fixture(150, 24, 1);
        let pairwise = masked_r2_matrix(&g.full_view(), &mask, 1, NanPolicy::Propagate);
        let blocked = masked_r2_matrix_blocked(
            &g.full_view(),
            &mask,
            KernelKind::Auto,
            2,
            NanPolicy::Propagate,
        );
        for i in 0..24 {
            for j in i..24 {
                let (a, b) = (pairwise.get(i, j), blocked.get(i, j));
                assert!(
                    (a - b).abs() < 1e-12 || (a.is_nan() && b.is_nan()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn derived_planes_are_correct() {
        let (g, mask) = fixture(70, 5, 2);
        let d = valid_derived_matrix(&g.full_view(), &mask);
        let v = validity_matrix(&g.full_view(), &mask);
        for j in 0..5 {
            for s in 0..70 {
                assert_eq!(d.get(s, j), g.get(s, j) && mask.is_valid(s, j));
                assert_eq!(v.get(s, j), mask.is_valid(s, j));
            }
        }
        d.check_padding().unwrap();
        v.check_padding().unwrap();
    }

    #[test]
    fn all_valid_reduces_to_plain_r2() {
        let (g, _) = fixture(90, 10, 3);
        let mask = ValidityMask::all_valid(90, 10);
        let blocked =
            masked_r2_matrix_blocked(&g.full_view(), &mask, KernelKind::Auto, 1, NanPolicy::Zero);
        let plain = ld_core::LdEngine::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(&g);
        for (i, j, v) in plain.iter_upper() {
            assert!((blocked.get(i, j) - v).abs() < 1e-12, "({i},{j})");
        }
    }

    #[test]
    fn empty_intersections_respect_policy() {
        let mut mask = ValidityMask::all_valid(4, 2);
        // SNP 0 valid only in samples {0,1}, SNP 1 only in {2,3}
        mask.set_missing(2, 0);
        mask.set_missing(3, 0);
        mask.set_missing(0, 1);
        mask.set_missing(1, 1);
        let g = BitMatrix::from_rows(4, 2, [[1u8, 0], [0, 1], [1, 0], [0, 1]]).unwrap();
        let nan = masked_r2_matrix_blocked(
            &g.full_view(),
            &mask,
            KernelKind::Auto,
            1,
            NanPolicy::Propagate,
        );
        assert!(nan.get(0, 1).is_nan());
        let zero =
            masked_r2_matrix_blocked(&g.full_view(), &mask, KernelKind::Auto, 1, NanPolicy::Zero);
        assert_eq!(zero.get(0, 1), 0.0);
    }

    #[test]
    fn works_on_views() {
        let (g, mask) = fixture(100, 20, 4);
        let view = g.view(5, 15);
        let blocked = masked_r2_matrix_blocked(&view, &mask, KernelKind::Auto, 1, NanPolicy::Zero);
        let pairwise = masked_r2_matrix(&view, &mask, 1, NanPolicy::Zero);
        for i in 0..10 {
            for j in i..10 {
                assert!(
                    (blocked.get(i, j) - pairwise.get(i, j)).abs() < 1e-12,
                    "({i},{j})"
                );
            }
        }
    }
}
