//! # ld-kernels — GotoBLAS/BLIS-layered GEMM over the AND/POPCNT semiring
//!
//! This crate is the paper's core contribution: computing the pairwise
//! *co-occurrence count matrix*
//!
//! ```text
//! C[i, j] = Σ_p POPCNT( A_p[i] & B_p[j] )        (p over packed words)
//! ```
//!
//! — the integer numerator of the haplotype-frequency matrix
//! `H = (1/N) GᵀG` — using the layered blocking scheme of GotoBLAS/BLIS
//! (paper §III–IV, Figure 1):
//!
//! ```text
//! for jc in 0..n  step NC      (columns of B/C)          — L3-sized B̃
//!   for pc in 0..k step KC     (packed words)            — rank-k update
//!     pack B̃: KC × NC words, interleaved in NR-wide micro-panels
//!     for ic in 0..m step MC   (rows of C)               — L2-sized Ã
//!       pack Ã: MC × KC words, interleaved in MR-wide micro-panels
//!       for jr in 0..nc step NR
//!         for ir in 0..mc step MR
//!           micro-kernel: MR×NR accumulators over KC words
//! ```
//!
//! The "multiply" of the classical GEMM becomes a bitwise AND, the "add" a
//! population count plus integer accumulate; everything else — packing for
//! contiguity, cache blocking, register tiling, loop parallelism — carries
//! over from the dense-linear-algebra playbook untouched, which is exactly
//! the paper's point.
//!
//! Micro-kernels ([`KernelKind`]):
//!
//! * `Scalar` — `MR×NR` unrolled AND+`POPCNT`+ADD (the paper's §IV kernel;
//!   theoretical peak 3 ops/cycle ⇒ 1 word-pair/cycle);
//! * `Avx2ExtractInsert` — the §V-A anti-pattern (SIMD AND, lane extract →
//!   scalar `POPCNT` → insert, SIMD add): implemented to *measure* the
//!   paper's claim that it cannot beat scalar;
//! * `Avx2Mula` — software vector popcount (`PSHUFB` nibble LUT + `PSADBW`);
//! * `Avx512Vpopcnt` — hardware vector popcount (`VPOPCNTQ`), the §V-B
//!   instruction the paper calls for.
//!
//! Drivers: [`gemm_counts`] (two matrices, all `m×n` outputs — Fig. 4,
//! long-range LD), [`syrk_counts`] (one matrix, upper triangle + mirror —
//! Fig. 3, the usual all-pairs case), and their `_mt` threaded variants
//! partitioned the BLIS way (Tables I–III, Fig. 5).

#![warn(missing_docs)]

pub mod clock;
pub mod gemm;
pub mod micro;
pub mod pack;
pub mod params;
pub mod profile;
pub mod reference;
pub mod syrk;

pub use gemm::{gemm_counts, gemm_counts_buf, gemm_counts_mt};
pub use micro::{Kernel, KernelKind, UnsupportedKernel};
pub use params::{BlockSizes, InvalidBlockSizes};
pub use profile::{CpuProfile, ProfileError, TunedParams, PROFILE_SCHEMA_VERSION};
pub use syrk::{
    mirror_upper_to_lower, syrk_counts, syrk_counts_buf, syrk_counts_mt, syrk_slab_counts,
};
