//! Tuned per-CPU profiles: the autotuner's persistent output.
//!
//! `ld-cli tune` measures the best kernel/blocking/slab/chunk parameters
//! on the running machine and stores them in a small JSON file keyed by
//! the [`CpuFingerprint`]. Subsequent runs load the profile and use the
//! tuned parameters as defaults; explicit CLI flags and environment
//! overrides always win.
//!
//! File format (`schema_version` 1):
//!
//! ```json
//! {"schema_version":1,"crc32":3735928559,"payload":{
//!    "fingerprint":{...},"tuned":{...}}}
//! ```
//!
//! The CRC-32 (IEEE) is computed over the exact byte span of the
//! `payload` value as it appears in the file, so any bit damage to the
//! tuned parameters — truncation, flipped bits, a partial write — is
//! detected and the loader falls back to the built-in defaults with a
//! single warning. The profile is additionally rejected when its
//! fingerprint does not match the running CPU (the tuning is only valid
//! on the machine class that produced it).
//!
//! Loading is opt-out: `LD_NO_CPU_PROFILE=1` ignores any cached profile
//! and `LD_CPU_PROFILE=<path>` overrides the default location
//! (`$XDG_CACHE_HOME/gemm-ld/cpu-profile.json`, falling back to
//! `~/.cache`). Writing is the CLI's job (atomic rename via `ld-io`);
//! this module only defines the format, the serializer, and the loader.

use crate::micro::KernelKind;
use crate::params::BlockSizes;
use ld_popcount::{CpuFeatures, CpuFingerprint};
use std::fmt;
use std::path::PathBuf;

/// Version of the on-disk profile format this build reads and writes.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// The parameters the tuner searches, with their measured score.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedParams {
    /// Winning micro-kernel.
    pub kernel: KernelKind,
    /// Winning cache-blocking parameters.
    pub blocks: BlockSizes,
    /// Winning fused-driver slab height (rows).
    pub slab_rows: usize,
    /// Winning scheduler chunk size (slabs per work unit).
    pub chunk_slabs: usize,
    /// Thread count the measurements were taken at.
    pub threads: usize,
    /// Best observed score (higher is better).
    pub score: f64,
    /// What `score` measures: `"words-per-cycle"` when the trace
    /// recorder + TSC were available, `"runs-per-sec"` otherwise.
    pub metric: String,
}

/// A tuned profile: fingerprint key + tuned parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuProfile {
    /// The CPU the parameters were measured on.
    pub fingerprint: CpuFingerprint,
    /// The measured-best parameters.
    pub tuned: TunedParams,
}

/// Why a profile failed to load. Every variant is a *soft* failure: the
/// caller warns once and falls back to the built-in defaults.
#[derive(Debug)]
pub enum ProfileError {
    /// The file could not be read (missing files are reported separately
    /// by [`CpuProfile::load`] returning `Ok(None)`).
    Io(std::io::Error),
    /// The file is damaged or structurally wrong (bad JSON, failed CRC,
    /// unknown schema version, missing or ill-typed fields).
    Malformed(String),
    /// The file is intact but was measured on a different CPU.
    FingerprintMismatch {
        /// Fingerprint recorded in the profile.
        profile: String,
        /// Fingerprint of the running CPU.
        host: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io(e) => write!(f, "cannot read profile: {e}"),
            ProfileError::Malformed(m) => write!(f, "malformed profile: {m}"),
            ProfileError::FingerprintMismatch { profile, host } => write!(
                f,
                "profile was tuned for a different CPU (profile: {profile}; host: {host})"
            ),
        }
    }
}
impl std::error::Error for ProfileError {}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the same checksum
// gzip/zip use; table built at compile time, no dependencies.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Minimal JSON value + parser. The workspace builds with no external
// crates, so the profile loader carries its own recursive-descent
// parser; it tracks the byte span of every value so the CRC can be
// verified over the payload exactly as it sits in the file.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json, (usize, usize))>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _, _)| k == key).map(|(_, v, _)| v),
            _ => None,
        }
    }

    /// Byte span of the value bound to `key` (for CRC over raw bytes).
    fn span(&self, key: &str) -> Option<(usize, usize)> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _, _)| k == key).map(|&(_, _, s)| s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => Some(n as u64),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(Json, (usize, usize)), String> {
        self.skip_ws();
        let start = self.pos;
        let v = match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object()?,
            b'[' => self.array()?,
            b'"' => Json::Str(self.string()?),
            b't' => self.literal(b"true", Json::Bool(true))?,
            b'f' => self.literal(b"false", Json::Bool(false))?,
            b'n' => self.literal(b"null", Json::Null)?,
            _ => self.number()?,
        };
        Ok((v, (start, self.pos)))
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected a value"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar's worth of bytes.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let (val, span) = self.value()?;
            fields.push((key, val, span));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            let (val, _) = self.value()?;
            items.push(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Serialization.

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fingerprint_json(fp: &CpuFingerprint) -> String {
    format!(
        concat!(
            "{{\"arch\":\"{}\",\"vendor\":\"{}\",\"family\":{},\"model\":{},",
            "\"features\":{{\"popcnt\":{},\"avx2\":{},\"avx512f\":{},\"avx512vpopcntdq\":{}}},",
            "\"l1d_kb\":{},\"l2_kb\":{},\"l3_kb\":{}}}"
        ),
        escape(&fp.arch),
        escape(&fp.vendor),
        fp.family,
        fp.model,
        fp.features.popcnt,
        fp.features.avx2,
        fp.features.avx512f,
        fp.features.avx512vpopcntdq,
        fp.l1d_kb,
        fp.l2_kb,
        fp.l3_kb,
    )
}

impl CpuProfile {
    /// Serializes the profile, computing the payload CRC.
    pub fn to_json(&self) -> String {
        let t = &self.tuned;
        let payload = format!(
            concat!(
                "{{\"fingerprint\":{},\"tuned\":{{\"kernel\":\"{}\",",
                "\"kc\":{},\"mc\":{},\"nc\":{},\"slab_rows\":{},\"chunk_slabs\":{},",
                "\"threads\":{},\"score\":{:.6},\"metric\":\"{}\"}}}}"
            ),
            fingerprint_json(&self.fingerprint),
            t.kernel.name(),
            t.blocks.kc,
            t.blocks.mc,
            t.blocks.nc,
            t.slab_rows,
            t.chunk_slabs,
            t.threads,
            t.score,
            escape(&t.metric),
        );
        format!(
            "{{\"schema_version\":{},\"crc32\":{},\"payload\":{}}}\n",
            PROFILE_SCHEMA_VERSION,
            crc32(payload.as_bytes()),
            payload
        )
    }

    /// Parses and verifies profile bytes (version, CRC, structure).
    pub fn parse(bytes: &[u8]) -> Result<CpuProfile, ProfileError> {
        let mut p = Parser::new(bytes);
        let (doc, _) = p.value().map_err(ProfileError::Malformed)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(ProfileError::Malformed(
                "trailing bytes after document".into(),
            ));
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProfileError::Malformed("missing schema_version".into()))?;
        if version != PROFILE_SCHEMA_VERSION {
            return Err(ProfileError::Malformed(format!(
                "schema_version {version} (this build reads {PROFILE_SCHEMA_VERSION})"
            )));
        }
        let stored_crc = doc
            .get("crc32")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProfileError::Malformed("missing crc32".into()))?;
        let (s, e) = doc
            .span("payload")
            .ok_or_else(|| ProfileError::Malformed("missing payload".into()))?;
        let actual = crc32(&bytes[s..e]) as u64;
        if actual != stored_crc {
            return Err(ProfileError::Malformed(format!(
                "CRC mismatch (stored {stored_crc}, computed {actual}) — file is damaged"
            )));
        }
        let payload = doc
            .get("payload")
            .ok_or_else(|| ProfileError::Malformed("missing payload".into()))?;

        let fpj = payload
            .get("fingerprint")
            .ok_or_else(|| ProfileError::Malformed("missing fingerprint".into()))?;
        let featj = fpj
            .get("features")
            .ok_or_else(|| ProfileError::Malformed("missing features".into()))?;
        let feat_bool = |k: &str| {
            featj
                .get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| ProfileError::Malformed(format!("missing feature {k}")))
        };
        let fp_str = |k: &str| {
            fpj.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProfileError::Malformed(format!("missing fingerprint.{k}")))
        };
        let fp_u32 = |k: &str| {
            fpj.get(k)
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| ProfileError::Malformed(format!("missing fingerprint.{k}")))
        };
        let fingerprint = CpuFingerprint {
            arch: fp_str("arch")?,
            vendor: fp_str("vendor")?,
            family: fp_u32("family")?,
            model: fp_u32("model")?,
            features: CpuFeatures {
                popcnt: feat_bool("popcnt")?,
                avx2: feat_bool("avx2")?,
                avx512f: feat_bool("avx512f")?,
                avx512vpopcntdq: feat_bool("avx512vpopcntdq")?,
            },
            l1d_kb: fp_u32("l1d_kb")?,
            l2_kb: fp_u32("l2_kb")?,
            l3_kb: fp_u32("l3_kb")?,
        };

        let tj = payload
            .get("tuned")
            .ok_or_else(|| ProfileError::Malformed("missing tuned".into()))?;
        let t_usize = |k: &str| {
            tj.get(k)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| ProfileError::Malformed(format!("missing tuned.{k}")))
        };
        let kernel_name = tj
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or_else(|| ProfileError::Malformed("missing tuned.kernel".into()))?;
        let kernel = kernel_name
            .parse::<KernelKind>()
            .map_err(ProfileError::Malformed)?;
        let tuned = TunedParams {
            kernel,
            blocks: BlockSizes {
                kc: t_usize("kc")?,
                mc: t_usize("mc")?,
                nc: t_usize("nc")?,
            },
            slab_rows: t_usize("slab_rows")?,
            chunk_slabs: t_usize("chunk_slabs")?,
            threads: t_usize("threads")?,
            score: tj
                .get("score")
                .and_then(Json::as_f64)
                .ok_or_else(|| ProfileError::Malformed("missing tuned.score".into()))?,
            metric: tj
                .get("metric")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProfileError::Malformed("missing tuned.metric".into()))?,
        };
        if tuned.slab_rows == 0 || tuned.chunk_slabs == 0 {
            return Err(ProfileError::Malformed(
                "tuned slab_rows/chunk_slabs must be at least 1".into(),
            ));
        }
        Ok(CpuProfile { fingerprint, tuned })
    }

    /// Loads and verifies a profile from `path`.
    ///
    /// Returns `Ok(None)` when the file simply does not exist (the
    /// untuned case — not an error), `Err` for every damaged or
    /// mismatched profile, and checks the fingerprint against the
    /// running CPU.
    pub fn load(path: &std::path::Path) -> Result<Option<CpuProfile>, ProfileError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ProfileError::Io(e)),
        };
        let profile = Self::parse(&bytes)?;
        let host = CpuFingerprint::detect();
        if profile.fingerprint != *host {
            return Err(ProfileError::FingerprintMismatch {
                profile: profile.fingerprint.summary(),
                host: host.summary(),
            });
        }
        Ok(Some(profile))
    }
}

// ---------------------------------------------------------------------
// Process-wide active profile.

/// Default profile location: `$LD_CPU_PROFILE`, else
/// `$XDG_CACHE_HOME/gemm-ld/cpu-profile.json`, else
/// `$HOME/.cache/gemm-ld/cpu-profile.json`.
pub fn profile_path() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("LD_CPU_PROFILE") {
        if !p.trim().is_empty() {
            return Some(PathBuf::from(p));
        }
    }
    let cache_root = std::env::var("XDG_CACHE_HOME")
        .ok()
        .filter(|p| !p.trim().is_empty())
        .map(PathBuf::from)
        .or_else(|| {
            std::env::var("HOME")
                .ok()
                .filter(|p| !p.trim().is_empty())
                .map(|h| PathBuf::from(h).join(".cache"))
        })?;
    Some(cache_root.join("gemm-ld").join("cpu-profile.json"))
}

/// True when `LD_NO_CPU_PROFILE` is set to anything but `""`/`"0"`.
pub fn profile_disabled() -> bool {
    match std::env::var("LD_NO_CPU_PROFILE") {
        Ok(v) => !v.trim().is_empty() && v.trim() != "0",
        Err(_) => false,
    }
}

static ACTIVE: std::sync::OnceLock<Option<CpuProfile>> = std::sync::OnceLock::new();

/// The process-wide tuned profile, if one is cached, valid for this CPU,
/// and not disabled via `LD_NO_CPU_PROFILE`. Damaged or mismatched
/// profiles produce exactly one stderr warning per process and are then
/// treated as absent — tuning must never be able to crash a pipeline.
pub fn load_active() -> Option<&'static CpuProfile> {
    ACTIVE
        .get_or_init(|| {
            if profile_disabled() {
                return None;
            }
            let path = profile_path()?;
            match CpuProfile::load(&path) {
                Ok(found) => found,
                Err(e) => {
                    eprintln!(
                        "warning: ignoring CPU profile {}: {e}; using built-in defaults \
                         (re-run `tune` to regenerate)",
                        path.display()
                    );
                    None
                }
            }
        })
        .as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> CpuProfile {
        CpuProfile {
            fingerprint: CpuFingerprint::detect().clone(),
            tuned: TunedParams {
                kernel: KernelKind::Avx2HarleySeal,
                blocks: BlockSizes {
                    kc: 128,
                    mc: 256,
                    nc: 2048,
                },
                slab_rows: 96,
                chunk_slabs: 2,
                threads: 2,
                score: 1.234567,
                metric: "words-per-cycle".to_string(),
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let p = sample_profile();
        let json = p.to_json();
        let q = CpuProfile::parse(json.as_bytes()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn crc_is_the_gzip_crc() {
        // Known-answer test: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn whitespace_inside_payload_changes_crc_but_reformat_outside_does_not() {
        let p = sample_profile();
        let json = p.to_json();
        // Adding whitespace outside the payload span keeps the CRC valid.
        let spaced = json.replacen("{\"schema_version\"", "{  \"schema_version\"", 1);
        assert_eq!(CpuProfile::parse(spaced.as_bytes()).unwrap(), p);
    }

    #[test]
    fn version_skew_is_rejected() {
        let p = sample_profile();
        let json = p
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        let e = CpuProfile::parse(json.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("schema_version"), "{e}");
    }

    #[test]
    fn load_missing_file_is_ok_none() {
        let r = CpuProfile::load(std::path::Path::new("/nonexistent/profile.json")).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn load_rejects_wrong_fingerprint() {
        let mut p = sample_profile();
        p.fingerprint.model = p.fingerprint.model.wrapping_add(7);
        let dir = std::env::temp_dir().join(format!("ld-profile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-cpu.json");
        std::fs::write(&path, p.to_json()).unwrap();
        let e = CpuProfile::load(&path).unwrap_err();
        assert!(matches!(e, ProfileError::FingerprintMismatch { .. }), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_path_respects_env_contract() {
        // Cannot mutate process env safely in parallel tests; just check
        // the fallback shape is sane for whatever env we run under.
        if let Some(p) = profile_path() {
            assert!(p.to_string_lossy().ends_with("cpu-profile.json"));
        }
    }
}
