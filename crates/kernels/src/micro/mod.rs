//! Micro-kernels: the innermost layer of the GotoBLAS pyramid.
//!
//! A micro-kernel computes an `MR × NR` tile of co-occurrence counts from
//! two packed micro-panels (`Ã`: `kc·MR` words, `B̃`: `kc·NR` words),
//! accumulating into a caller-provided `MR·NR` buffer. The driver zeroes
//! the buffer, calls the kernel, and scatters the valid region into `C` —
//! so every kernel can assume full panels (packing zero-pads the fringe).

mod avx2;
mod avx512;
mod scalar;

use ld_popcount::{CpuFeatures, PopcountStrategy};
use std::fmt;

/// Selects which micro-kernel the drivers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Pick the fastest kernel this CPU supports:
    /// `Avx512Vpopcnt` → `Avx2HarleySeal` → `Scalar`.
    Auto,
    /// Scalar 4×4 AND+`POPCNT`+ADD — the paper's §IV micro-kernel.
    Scalar,
    /// Scalar 2×4 (lower register pressure; ablation).
    Scalar2x4,
    /// Scalar 8×4 (higher register pressure; ablation).
    Scalar8x4,
    /// Scalar source with `u64::count_ones()`, compiler free to
    /// auto-vectorize (on AVX-512 CPUs LLVM turns this into `VPOPCNTQ`;
    /// ablation showing what `-C target-cpu=native` does on its own).
    ScalarAutoVec,
    /// Scalar 4×4 with a selectable software popcount (ablation of §IV's
    /// claim that software popcounts lose to the `POPCNT` instruction).
    ScalarStrategy(PopcountStrategy),
    /// AVX2 with per-lane extract → scalar `POPCNT` → insert —
    /// the §V-A anti-pattern, for measurement.
    Avx2ExtractInsert,
    /// AVX2 Mula `PSHUFB`+`PSADBW` software vector popcount.
    Avx2Mula,
    /// AVX2 Harley–Seal: a carry-save adder tree compresses eight 256-bit
    /// AND results per block so only 1/8th of the data reaches the Mula
    /// LUT leaf — the wide-SIMD candidate for non-AVX-512 parts.
    Avx2HarleySeal,
    /// AVX-512 `VPOPCNTQ` hardware vector popcount (§V-B), 4×16 tile.
    Avx512Vpopcnt,
    /// AVX-512 `VPOPCNTQ` with the narrower 4×8 tile (ablation: more
    /// broadcast traffic per popcount).
    Avx512Vpopcnt4x8,
}

impl KernelKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::Scalar => "scalar-4x4",
            KernelKind::Scalar2x4 => "scalar-2x4",
            KernelKind::Scalar8x4 => "scalar-8x4",
            KernelKind::ScalarAutoVec => "scalar-autovec",
            KernelKind::ScalarStrategy(_) => "scalar-strategy",
            KernelKind::Avx2ExtractInsert => "avx2-extract-insert",
            KernelKind::Avx2Mula => "avx2-mula",
            KernelKind::Avx2HarleySeal => "avx2-harley-seal",
            KernelKind::Avx512Vpopcnt => "avx512-vpopcnt",
            KernelKind::Avx512Vpopcnt4x8 => "avx512-vpopcnt-4x8",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let KernelKind::ScalarStrategy(s) = self {
            write!(f, "scalar-{}", s.name())
        } else {
            f.write_str(self.name())
        }
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    /// Parses the user-facing kernel names (CLI `--kernel`, bench flags).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "auto" => KernelKind::Auto,
            "scalar" | "scalar-4x4" => KernelKind::Scalar,
            "scalar-2x4" => KernelKind::Scalar2x4,
            "scalar-8x4" => KernelKind::Scalar8x4,
            "scalar-autovec" | "autovec" => KernelKind::ScalarAutoVec,
            "avx2-extract-insert" | "extract-insert" => KernelKind::Avx2ExtractInsert,
            "avx2-mula" | "avx2" | "mula" => KernelKind::Avx2Mula,
            "avx2-harley-seal" | "harley-seal" | "csa" => KernelKind::Avx2HarleySeal,
            "avx512-vpopcnt" | "avx512" | "vpopcnt" => KernelKind::Avx512Vpopcnt,
            "avx512-vpopcnt-4x8" => KernelKind::Avx512Vpopcnt4x8,
            other => {
                return Err(format!(
                    "unknown kernel '{other}' (expected auto, scalar, scalar-2x4, scalar-8x4, \
                     scalar-autovec, avx2-mula, avx2-harley-seal, avx2-extract-insert, \
                     avx512-vpopcnt, avx512-vpopcnt-4x8)"
                ))
            }
        })
    }
}

/// The function signature every micro-kernel implements:
/// `(kc, ap, bp, acc)` with `ap.len() ≥ kc·MR`, `bp.len() ≥ kc·NR`,
/// `acc.len() ≥ MR·NR` (row-major, kernel *adds* into it).
type KernelFn = fn(usize, &[u64], &[u64], &mut [u64]);

/// A resolved micro-kernel: shape plus entry point.
///
/// Construct with [`Kernel::resolve`]; construction verifies the CPU
/// supports the kernel, which is what makes the internally-`unsafe`
/// vector entry points sound to call through the safe `run`.
#[derive(Clone, Copy)]
pub struct Kernel {
    kind: KernelKind,
    mr: usize,
    nr: usize,
    func: KernelFn,
    /// 64-bit lanes processed per popcount op (for peak accounting):
    /// 1 scalar, 4 AVX2, 8 AVX-512.
    lanes: usize,
}

/// Error returned when a kernel is requested on a CPU without the needed
/// instruction set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedKernel {
    /// The kernel that was requested.
    pub kind: KernelKind,
}

impl fmt::Display for UnsupportedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "micro-kernel {} is not supported by this CPU", self.kind)
    }
}
impl std::error::Error for UnsupportedKernel {}

/// `Auto` resolution pinned for the process lifetime: detection is
/// immutable at runtime, so every `Auto` request must land on the same
/// concrete kernel (tests pin this; drifting mid-run would mix tile
/// shapes between slabs).
static AUTO_RESOLVED: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();

/// `LD_KERNEL` pin for `Auto` resolution. Invalid names and kernels the
/// CPU cannot run are reported once to stderr and ignored — a bad pin
/// must degrade to normal auto-detection, never crash a pipeline.
fn env_kernel_override(f: CpuFeatures) -> Option<Kernel> {
    let raw = std::env::var("LD_KERNEL").ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    let resolved = raw
        .parse::<KernelKind>()
        .and_then(|kind| Kernel::resolve_with(kind, f).map_err(|e| e.to_string()));
    match resolved {
        Ok(k) => Some(k),
        Err(e) => {
            eprintln!("warning: ignoring LD_KERNEL='{raw}': {e}");
            None
        }
    }
}

impl Kernel {
    /// Resolves a [`KernelKind`] against the current CPU.
    ///
    /// `Auto` is resolved once per process (cached in a `OnceLock`); the
    /// resolved concrete name is recorded with [`ld_trace::set_kernel_name`]
    /// so profiling reports can state which kernel actually ran. The
    /// `LD_KERNEL` environment variable pins what `Auto` resolves to
    /// (deterministic CI on heterogeneous runners); explicitly requested
    /// kinds are never overridden, so kernel sweeps stay honest.
    pub fn resolve(kind: KernelKind) -> Result<Kernel, UnsupportedKernel> {
        let k = if kind == KernelKind::Auto {
            *AUTO_RESOLVED.get_or_init(|| {
                let f = CpuFeatures::detect();
                if let Some(pinned) = env_kernel_override(f) {
                    return pinned;
                }
                Self::resolve_with(KernelKind::Auto, f)
                    .expect("Auto resolution always succeeds (scalar fallback)")
            })
        } else {
            Self::resolve_with(kind, CpuFeatures::detect())?
        };
        ld_trace::set_kernel_name(k.kind.name());
        Ok(k)
    }

    /// Resolution against explicit features (testable).
    pub fn resolve_with(kind: KernelKind, f: CpuFeatures) -> Result<Kernel, UnsupportedKernel> {
        match kind {
            KernelKind::Auto => {
                if f.has_vector_popcount() {
                    Self::resolve_with(KernelKind::Avx512Vpopcnt, f)
                } else if f.avx2 {
                    // Harley–Seal over Mula: the CSA tree sends only the
                    // eights plane through the LUT leaf, so fewer shuffle
                    // µops per word on parts without VPOPCNTDQ.
                    Self::resolve_with(KernelKind::Avx2HarleySeal, f)
                } else {
                    Self::resolve_with(KernelKind::Scalar, f)
                }
            }
            KernelKind::Scalar => Ok(Kernel {
                kind,
                mr: 4,
                nr: 4,
                func: scalar::kernel_4x4,
                lanes: 1,
            }),
            KernelKind::Scalar2x4 => Ok(Kernel {
                kind,
                mr: 2,
                nr: 4,
                func: scalar::kernel_2x4,
                lanes: 1,
            }),
            KernelKind::Scalar8x4 => Ok(Kernel {
                kind,
                mr: 8,
                nr: 4,
                func: scalar::kernel_8x4,
                lanes: 1,
            }),
            KernelKind::ScalarAutoVec => {
                // lanes=1 by the *source* shape; on AVX-512 targets the
                // compiler widens it, so %-of-peak vs lanes=1 can exceed
                // 100 — which is the point of this ablation.
                Ok(Kernel {
                    kind,
                    mr: 4,
                    nr: 4,
                    func: scalar::kernel_autovec_4x4,
                    lanes: 1,
                })
            }
            KernelKind::ScalarStrategy(s) => Ok(Kernel {
                kind,
                mr: 4,
                nr: 4,
                func: scalar::strategy_kernel(s),
                lanes: 1,
            }),
            KernelKind::Avx2ExtractInsert => {
                if f.avx2 && f.popcnt {
                    Ok(Kernel {
                        kind,
                        mr: 4,
                        nr: 4,
                        func: avx2::kernel_extract_insert_4x4,
                        lanes: 4,
                    })
                } else {
                    Err(UnsupportedKernel { kind })
                }
            }
            KernelKind::Avx2Mula => {
                if f.avx2 {
                    Ok(Kernel {
                        kind,
                        mr: 4,
                        nr: 4,
                        func: avx2::kernel_mula_4x4,
                        lanes: 4,
                    })
                } else {
                    Err(UnsupportedKernel { kind })
                }
            }
            KernelKind::Avx2HarleySeal => {
                if f.avx2 {
                    Ok(Kernel {
                        kind,
                        mr: 4,
                        nr: 4,
                        func: avx2::kernel_harley_seal_4x4,
                        lanes: 4,
                    })
                } else {
                    Err(UnsupportedKernel { kind })
                }
            }
            KernelKind::Avx512Vpopcnt => {
                if f.has_vector_popcount() {
                    Ok(Kernel {
                        kind,
                        mr: 4,
                        nr: 16,
                        func: avx512::kernel_vpopcnt_4x16,
                        lanes: 8,
                    })
                } else {
                    Err(UnsupportedKernel { kind })
                }
            }
            KernelKind::Avx512Vpopcnt4x8 => {
                if f.has_vector_popcount() {
                    Ok(Kernel {
                        kind,
                        mr: 4,
                        nr: 8,
                        func: avx512::kernel_vpopcnt_4x8,
                        lanes: 8,
                    })
                } else {
                    Err(UnsupportedKernel { kind })
                }
            }
        }
    }

    /// The resolved kind (never `Auto`).
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Register-tile rows (`m_r`).
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Register-tile columns (`n_r`).
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// 64-bit lanes per popcount operation (theoretical word-pairs/cycle).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs the kernel: accumulates the `mr × nr` tile over `kc` packed
    /// words into `acc` (row-major, length ≥ `mr·nr`).
    #[inline]
    pub fn run(&self, kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
        debug_assert!(ap.len() >= kc * self.mr, "A panel too short");
        debug_assert!(bp.len() >= kc * self.nr, "B panel too short");
        debug_assert!(acc.len() >= self.mr * self.nr, "accumulator too short");
        (self.func)(kc, ap, bp, acc);
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("kind", &self.kind)
            .field("mr", &self.mr)
            .field("nr", &self.nr)
            .field("lanes", &self.lanes)
            .finish()
    }
}

/// All kernels supported by the current CPU (used by sweeps and tests).
pub fn supported_kernels() -> Vec<Kernel> {
    [
        KernelKind::Scalar,
        KernelKind::Scalar2x4,
        KernelKind::Scalar8x4,
        KernelKind::ScalarAutoVec,
        KernelKind::Avx2ExtractInsert,
        KernelKind::Avx2Mula,
        KernelKind::Avx2HarleySeal,
        KernelKind::Avx512Vpopcnt,
        KernelKind::Avx512Vpopcnt4x8,
    ]
    .into_iter()
    .filter_map(|k| Kernel::resolve(k).ok())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packs `mr`/`nr` panels from plain word columns for direct kernel
    /// tests (driver-independent).
    fn pack(cols: &[Vec<u64>], r: usize, kc: usize) -> Vec<u64> {
        let mut out = vec![0u64; kc * r];
        for (i, col) in cols.iter().enumerate().take(r) {
            for p in 0..kc {
                out[p * r + i] = col[p];
            }
        }
        out
    }

    fn reference_tile(a: &[Vec<u64>], b: &[Vec<u64>]) -> Vec<u64> {
        let mut out = vec![0u64; a.len() * b.len()];
        for (i, ca) in a.iter().enumerate() {
            for (j, cb) in b.iter().enumerate() {
                out[i * b.len() + j] = ca
                    .iter()
                    .zip(cb)
                    .map(|(&x, &y)| (x & y).count_ones() as u64)
                    .sum();
            }
        }
        out
    }

    fn pseudo_cols(n: usize, kc: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        (0..n).map(|_| (0..kc).map(|_| next()).collect()).collect()
    }

    #[test]
    fn every_supported_kernel_matches_reference() {
        for kc in [1usize, 2, 7, 8, 40, 129] {
            for k in supported_kernels() {
                let a = pseudo_cols(k.mr(), kc, 0xabcd + kc as u64);
                let b = pseudo_cols(k.nr(), kc, 0x1234 + kc as u64);
                let ap = pack(&a, k.mr(), kc);
                let bp = pack(&b, k.nr(), kc);
                let mut acc = vec![0u64; k.mr() * k.nr()];
                k.run(kc, &ap, &bp, &mut acc);
                assert_eq!(acc, reference_tile(&a, &b), "kernel {} kc={kc}", k.kind());
            }
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let k = Kernel::resolve(KernelKind::Scalar).unwrap();
        let kc = 3;
        let a = pseudo_cols(k.mr(), kc, 7);
        let b = pseudo_cols(k.nr(), kc, 9);
        let ap = pack(&a, k.mr(), kc);
        let bp = pack(&b, k.nr(), kc);
        let mut acc = vec![0u64; k.mr() * k.nr()];
        k.run(kc, &ap, &bp, &mut acc);
        let once = acc.clone();
        k.run(kc, &ap, &bp, &mut acc);
        for (x, y) in acc.iter().zip(&once) {
            assert_eq!(*x, 2 * y);
        }
    }

    #[test]
    fn strategy_kernels_match_reference() {
        let kc = 33;
        for s in PopcountStrategy::ALL {
            let k = Kernel::resolve(KernelKind::ScalarStrategy(s)).unwrap();
            let a = pseudo_cols(k.mr(), kc, 0x42);
            let b = pseudo_cols(k.nr(), kc, 0x4242);
            let ap = pack(&a, k.mr(), kc);
            let bp = pack(&b, k.nr(), kc);
            let mut acc = vec![0u64; k.mr() * k.nr()];
            k.run(kc, &ap, &bp, &mut acc);
            assert_eq!(acc, reference_tile(&a, &b), "strategy {}", s.name());
        }
    }

    #[test]
    fn auto_resolves_to_something_supported() {
        let k = Kernel::resolve(KernelKind::Auto).unwrap();
        assert_ne!(k.kind(), KernelKind::Auto);
        assert!(k.mr() > 0 && k.nr() > 0 && k.lanes() > 0);
    }

    #[test]
    fn auto_resolution_is_pinned_for_process_lifetime() {
        // The OnceLock pin: every Auto resolve in this process must land
        // on the identical concrete kernel, matching a fresh resolution
        // against the (cached) feature set.
        let first = Kernel::resolve(KernelKind::Auto).unwrap();
        for _ in 0..10 {
            let again = Kernel::resolve(KernelKind::Auto).unwrap();
            assert_eq!(again.kind(), first.kind());
            assert_eq!(again.mr(), first.mr());
            assert_eq!(again.nr(), first.nr());
            assert_eq!(again.lanes(), first.lanes());
        }
        let fresh = Kernel::resolve_with(KernelKind::Auto, CpuFeatures::detect()).unwrap();
        assert_eq!(fresh.kind(), first.kind());
    }

    #[test]
    fn unsupported_is_reported_not_panicked() {
        let none = CpuFeatures::default();
        assert!(Kernel::resolve_with(KernelKind::Avx512Vpopcnt, none).is_err());
        assert!(Kernel::resolve_with(KernelKind::Avx2Mula, none).is_err());
        // Auto always succeeds (falls back to scalar).
        let k = Kernel::resolve_with(KernelKind::Auto, none).unwrap();
        assert_eq!(k.kind(), KernelKind::Scalar);
        let e = Kernel::resolve_with(KernelKind::Avx2Mula, none).unwrap_err();
        assert!(e.to_string().contains("not supported"));
    }

    #[test]
    fn from_str_round_trips_every_named_kind() {
        for kind in [
            KernelKind::Auto,
            KernelKind::Scalar,
            KernelKind::Scalar2x4,
            KernelKind::Scalar8x4,
            KernelKind::ScalarAutoVec,
            KernelKind::Avx2ExtractInsert,
            KernelKind::Avx2Mula,
            KernelKind::Avx2HarleySeal,
            KernelKind::Avx512Vpopcnt,
            KernelKind::Avx512Vpopcnt4x8,
        ] {
            let parsed: KernelKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind, "{}", kind.name());
        }
        assert!("bogus".parse::<KernelKind>().is_err());
        assert_eq!(
            "avx512".parse::<KernelKind>().unwrap(),
            KernelKind::Avx512Vpopcnt
        );
    }

    #[test]
    fn zero_kc_leaves_accumulator_untouched() {
        for k in supported_kernels() {
            let mut acc = vec![7u64; k.mr() * k.nr()];
            k.run(0, &[], &[], &mut acc);
            assert!(acc.iter().all(|&x| x == 7), "kernel {}", k.kind());
        }
    }
}
