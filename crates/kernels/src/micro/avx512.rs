//! AVX-512 `VPOPCNTQ` micro-kernel — the hardware vector popcount the
//! paper's §V-B calls for.
//!
//! Register tile 4×8: one 512-bit load covers the eight `B̃` lanes of a
//! packed word row; each of the four `Ã` lanes is broadcast; `VPOPCNTQ`
//! counts all eight 64-bit lanes in one instruction; four `zmm`
//! accumulators hold the running per-(i,j) counts. Steady state processes
//! 32 word-pairs per 13 instructions — 8× the scalar kernel's theoretical
//! rate, which is exactly the `T_HW = T/v` prediction of §V-B.

#![allow(unsafe_op_in_unsafe_fn)]

/// 4×8 hardware-vector-popcount kernel.
pub(crate) fn kernel_vpopcnt_4x8(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        );
        // SAFETY: resolved kernels guarantee the features (see micro::Kernel).
        unsafe { vpopcnt_impl(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Unreachable in practice (resolution fails first); keep a correct
        // fallback so the symbol exists on every target.
        let mut tmp = [0u64; 32];
        for p in 0..kc {
            for i in 0..4 {
                for j in 0..8 {
                    tmp[i * 8 + j] += (ap[p * 4 + i] & bp[p * 8 + j]).count_ones() as u64;
                }
            }
        }
        for (a, t) in acc.iter_mut().zip(tmp.iter()) {
            *a += t;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn vpopcnt_impl(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 8 && acc.len() >= 32);
    let mut c = [_mm512_setzero_si512(); 4];
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    for p in 0..kc {
        let b = _mm512_loadu_si512(bpx.add(p * 8) as *const _);
        for (i, ci) in c.iter_mut().enumerate() {
            let ai = _mm512_set1_epi64(*apx.add(p * 4 + i) as i64);
            let v = _mm512_and_si512(ai, b);
            *ci = _mm512_add_epi64(*ci, _mm512_popcnt_epi64(v));
        }
    }
    for i in 0..4 {
        let mut lanes = [0u64; 8];
        _mm512_storeu_si512(lanes.as_mut_ptr() as *mut _, c[i]);
        for j in 0..8 {
            acc[i * 8 + j] += lanes[j];
        }
    }
}

/// 4×16 hardware-vector-popcount kernel: two `zmm` loads of `B̃` per packed
/// word amortize the four `Ã` broadcasts over eight `VPOPCNTQ`s, easing the
/// port-5 pressure that caps the 4×8 shape (`VPOPCNTQ` issues on a single
/// port on Ice Lake-class cores, so non-popcount shuffle traffic directly
/// steals its throughput).
pub(crate) fn kernel_vpopcnt_4x16(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        );
        // SAFETY: resolved kernels guarantee the features.
        unsafe { vpopcnt_impl_4x16(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let mut tmp = [0u64; 64];
        for p in 0..kc {
            for i in 0..4 {
                for j in 0..16 {
                    tmp[i * 16 + j] += (ap[p * 4 + i] & bp[p * 16 + j]).count_ones() as u64;
                }
            }
        }
        for (a, t) in acc.iter_mut().zip(tmp.iter()) {
            *a += t;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn vpopcnt_impl_4x16(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 16 && acc.len() >= 64);
    // 8 accumulators: rows i = 0..4, column halves h = 0..2.
    let mut c = [_mm512_setzero_si512(); 8];
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    for p in 0..kc {
        let b0 = _mm512_loadu_si512(bpx.add(p * 16) as *const _);
        let b1 = _mm512_loadu_si512(bpx.add(p * 16 + 8) as *const _);
        for i in 0..4 {
            let ai = _mm512_set1_epi64(*apx.add(p * 4 + i) as i64);
            c[i * 2] = _mm512_add_epi64(c[i * 2], _mm512_popcnt_epi64(_mm512_and_si512(ai, b0)));
            c[i * 2 + 1] =
                _mm512_add_epi64(c[i * 2 + 1], _mm512_popcnt_epi64(_mm512_and_si512(ai, b1)));
        }
    }
    for i in 0..4 {
        for h in 0..2 {
            let mut lanes = [0u64; 8];
            _mm512_storeu_si512(lanes.as_mut_ptr() as *mut _, c[i * 2 + h]);
            for j in 0..8 {
                acc[i * 16 + h * 8 + j] += lanes[j];
            }
        }
    }
}
