//! Scalar micro-kernels (the paper's §IV kernel).
//!
//! One AND, one `POPCNT`, one ADD per packed word pair; `u64::count_ones`
//! compiles to the `POPCNT` instruction on any target with the feature
//! enabled (this workspace builds with `-C target-cpu=native`). The
//! register tile is kept in a local array so the compiler can promote the
//! accumulators to registers; the 4×4 shape keeps enough independent
//! dependency chains to hide the 3-cycle `POPCNT` latency.

use ld_popcount::PopcountStrategy;

/// The scalar `POPCNT` instruction, pinned with inline assembly.
///
/// `u64::count_ones()` is *not* used here on purpose: with
/// `-C target-cpu=native` on an AVX-512 machine LLVM auto-vectorizes the
/// whole accumulation loop into `VPOPCNTQ`, silently turning the "scalar"
/// kernel into the hardware-vector-popcount kernel and breaking the
/// paper's §IV/§V comparison. The asm popcount keeps this kernel honest:
/// one AND, one scalar `POPCNT`, one ADD per word pair, peak 1
/// word-pair/cycle. (See `KernelKind::ScalarAutoVec` for the
/// compiler-does-what-it-wants variant, kept as an ablation.)
#[inline(always)]
fn popcnt64(x: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let r: u64;
        // SAFETY: POPCNT is baseline on every x86-64 CPU this crate's
        // kernels resolve on (2008+); `pure,nomem,nostack` lets LLVM
        // schedule it freely without reintroducing vectorization.
        unsafe {
            std::arch::asm!(
                "popcnt {r}, {x}",
                r = out(reg) r,
                x = in(reg) x,
                options(pure, nomem, nostack)
            );
        }
        r
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        x.count_ones() as u64
    }
}

/// Generic scalar kernel over a const register tile.
#[inline(always)]
fn kernel_generic<const MR: usize, const NR: usize>(
    kc: usize,
    ap: &[u64],
    bp: &[u64],
    acc: &mut [u64],
) {
    let mut local = [[0u64; NR]; MR];
    // Slicing once outside the loop lets the compiler drop bounds checks in
    // the hot loop.
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                local[i][j] += popcnt64(ai & b[j]);
            }
        }
    }
    for i in 0..MR {
        for j in 0..NR {
            acc[i * NR + j] += local[i][j];
        }
    }
}

/// 4×4 kernel written with plain `u64::count_ones()`, letting the compiler
/// do whatever it wants — with `-C target-cpu=native` on an AVX-512 CPU
/// LLVM auto-vectorizes this into `VPOPCNTQ`, often matching the
/// hand-written AVX-512 kernel. Kept as an ablation point: it shows the
/// paper's requested hardware support is now not only present but reachable
/// from scalar source code.
pub fn kernel_autovec_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    const MR: usize = 4;
    const NR: usize = 4;
    let mut local = [[0u64; NR]; MR];
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                local[i][j] += (ai & b[j]).count_ones() as u64;
            }
        }
    }
    for i in 0..MR {
        for j in 0..NR {
            acc[i * NR + j] += local[i][j];
        }
    }
}

/// 4×4 scalar kernel (default `Scalar`).
pub fn kernel_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    kernel_generic::<4, 4>(kc, ap, bp, acc)
}

/// 2×4 scalar kernel (ablation: fewer live accumulators).
pub fn kernel_2x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    kernel_generic::<2, 4>(kc, ap, bp, acc)
}

/// 8×4 scalar kernel (ablation: more reuse per loaded `b` word, more
/// register spills).
pub fn kernel_8x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    kernel_generic::<8, 4>(kc, ap, bp, acc)
}

/// 4×4 kernel whose popcount is a selectable software strategy — used by
/// the ablation benchmark to reproduce the paper's claim that software
/// popcounts cannot keep up with the `POPCNT` instruction.
fn kernel_strategy<const WHICH: u8>(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    let s = match WHICH {
        0 => PopcountStrategy::Hardware,
        1 => PopcountStrategy::Swar,
        2 => PopcountStrategy::Lut8,
        3 => PopcountStrategy::Lut16,
        _ => PopcountStrategy::HarleySeal,
    };
    const MR: usize = 4;
    const NR: usize = 4;
    let mut local = [[0u64; NR]; MR];
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for p in 0..kc {
        let a = &ap[p * MR..p * MR + MR];
        let b = &bp[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                local[i][j] += s.count_word(ai & b[j]) as u64;
            }
        }
    }
    for i in 0..MR {
        for j in 0..NR {
            acc[i * NR + j] += local[i][j];
        }
    }
}

/// Returns the 4×4 strategy kernel entry point for `s`.
pub fn strategy_kernel(s: PopcountStrategy) -> fn(usize, &[u64], &[u64], &mut [u64]) {
    match s {
        PopcountStrategy::Hardware => kernel_strategy::<0>,
        PopcountStrategy::Swar => kernel_strategy::<1>,
        PopcountStrategy::Lut8 => kernel_strategy::<2>,
        PopcountStrategy::Lut16 => kernel_strategy::<3>,
        PopcountStrategy::HarleySeal => kernel_strategy::<4>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_tile() {
        // kc = 1: a = rows of identity-ish patterns
        let ap = [0b1111u64, 0b1100, 0b1010, 0b0001]; // MR=4 lanes of word 0
        let bp = [0b1111u64, 0b0011, 0b1010, 0b0000]; // NR=4 lanes of word 0
        let mut acc = vec![0u64; 16];
        kernel_4x4(1, &ap, &bp, &mut acc);
        // row 0: a=1111 -> counts 4,2,2,0
        assert_eq!(&acc[0..4], &[4, 2, 2, 0]);
        // row 3: a=0001 -> 1,1,0,0
        assert_eq!(&acc[12..16], &[1, 1, 0, 0]);
    }

    #[test]
    fn shapes_agree_on_shared_lanes() {
        // 2x4 must equal the first two rows of 4x4 given the same packing
        // truncated appropriately.
        let kc = 5;
        let a4: Vec<u64> = (0..kc * 4)
            .map(|i| (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let b: Vec<u64> = (0..kc * 4)
            .map(|i| (i as u64 + 7).wrapping_mul(0x2545f4914f6cdd1d))
            .collect();
        let mut acc4 = vec![0u64; 16];
        kernel_4x4(kc, &a4, &b, &mut acc4);

        // repack first 2 lanes for the 2x4 kernel
        let mut a2 = vec![0u64; kc * 2];
        for p in 0..kc {
            a2[p * 2] = a4[p * 4];
            a2[p * 2 + 1] = a4[p * 4 + 1];
        }
        let mut acc2 = vec![0u64; 8];
        kernel_2x4(kc, &a2, &b, &mut acc2);
        assert_eq!(&acc2[..], &acc4[..8]);
    }
}
