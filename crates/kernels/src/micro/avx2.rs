//! AVX2 micro-kernels: the §V-A anti-pattern, the Mula software vector
//! popcount, and the Harley–Seal carry-save-adder variant.
//!
//! All kernels use a 4×4 register tile: one 256-bit load covers the four
//! `B̃` lanes of a packed word row, each `Ã` lane is broadcast, and four
//! 64-bit-lane accumulators live in `ymm` registers.
//!
//! Safety: the `#[target_feature]` inner functions are only reachable
//! through [`crate::micro::Kernel::resolve`], which verifies the CPU
//! features first; the safe wrappers additionally `debug_assert!` the
//! detection in test builds.

#![allow(unsafe_op_in_unsafe_fn)]

/// 4×4 extract/insert kernel (§V-A): SIMD AND, scalar `POPCNT` on each
/// extracted lane, results re-inserted for a SIMD accumulate.
pub(crate) fn kernel_extract_insert_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
        );
        // SAFETY: resolved kernels guarantee AVX2+POPCNT (see module docs).
        unsafe { extract_insert_impl(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        super::scalar::kernel_4x4(kc, ap, bp, acc)
    }
}

/// Scalar `POPCNT` pinned with inline asm so LLVM cannot pattern-match the
/// extract → popcnt → insert sequence back into `VPOPCNTQ` (it does, on
/// AVX-512 targets, which would silently un-measure the §V-A claim).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn popcnt_pinned(x: i64) -> i64 {
    let r: i64;
    // SAFETY: POPCNT availability is checked at kernel resolution.
    unsafe {
        std::arch::asm!(
            "popcnt {r}, {x}",
            r = out(reg) r,
            x = in(reg) x,
            options(pure, nomem, nostack)
        );
    }
    r
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn extract_insert_impl(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 4 && acc.len() >= 16);
    let mut c = [_mm256_setzero_si256(); 4];
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    for p in 0..kc {
        let b = _mm256_loadu_si256(bpx.add(p * 4) as *const __m256i);
        for (i, ci) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_epi64x(*apx.add(p * 4 + i) as i64);
            let v = _mm256_and_si256(ai, b);
            // The §V-A sequence: extract each lane, scalar POPCNT, insert.
            let l0 = popcnt_pinned(_mm256_extract_epi64::<0>(v));
            let l1 = popcnt_pinned(_mm256_extract_epi64::<1>(v));
            let l2 = popcnt_pinned(_mm256_extract_epi64::<2>(v));
            let l3 = popcnt_pinned(_mm256_extract_epi64::<3>(v));
            let counts = _mm256_set_epi64x(l3, l2, l1, l0);
            *ci = _mm256_add_epi64(*ci, counts);
        }
    }
    for i in 0..4 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, c[i]);
        for j in 0..4 {
            acc[i * 4 + j] += lanes[j];
        }
    }
}

/// 4×4 Mula kernel: per-byte popcount via `PSHUFB` nibble lookup, reduced
/// to per-64-bit-lane sums with `PSADBW` — a *software* vector popcount.
pub(crate) fn kernel_mula_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: resolved kernels guarantee AVX2 (see module docs).
        unsafe { mula_impl(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        super::scalar::kernel_4x4(kc, ap, bp, acc)
    }
}

/// 4×4 Harley–Seal kernel: a carry-save adder tree compresses eight
/// AND-ed 256-bit vectors into `ones/twos/fours` planes plus one
/// `eights` plane per block, and only the `eights` plane (1/8th of the
/// data) goes through the Mula LUT leaf each iteration. The persistent
/// planes are popcounted once in the epilogue with weights 1/2/4.
pub(crate) fn kernel_harley_seal_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: resolved kernels guarantee AVX2 (see module docs).
        unsafe { harley_seal_impl(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        super::scalar::kernel_4x4(kc, ap, bp, acc)
    }
}

/// Carry-save adder over 256-bit lanes: `(sum, carry)` per bit position.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn csa256(
    a: std::arch::x86_64::__m256i,
    b: std::arch::x86_64::__m256i,
    c: std::arch::x86_64::__m256i,
) -> (std::arch::x86_64::__m256i, std::arch::x86_64::__m256i) {
    use std::arch::x86_64::*;
    let u = _mm256_xor_si256(a, b);
    (
        _mm256_xor_si256(u, c),
        _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c)),
    )
}

/// Mula LUT leaf: per-64-bit-lane popcount of `v` via nibble `PSHUFB`
/// plus `PSADBW` byte reduction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn mula_popcnt256(
    v: std::arch::x86_64::__m256i,
    lut: std::arch::x86_64::__m256i,
    low_mask: std::arch::x86_64::__m256i,
    zero: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
    let bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_sad_epu8(bytes, zero)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn harley_seal_impl(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 4 && acc.len() >= 16);
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    // Rows are processed sequentially so only one row's CSA state
    // (ones/twos/fours) plus two accumulators is live at a time — the
    // whole working set fits the 16 ymm registers without spills.
    for i in 0..4 {
        let mut ones = zero;
        let mut twos = zero;
        let mut fours = zero;
        let mut acc8 = zero; // popcounts of the eights plane (weight 8)
        let mut acc1 = zero; // remainder words, directly popcounted (weight 1)
        let mut p = 0;
        while p + 8 <= kc {
            let mut v = [zero; 8];
            for (t, vt) in v.iter_mut().enumerate() {
                let b = _mm256_loadu_si256(bpx.add((p + t) * 4) as *const __m256i);
                let ai = _mm256_set1_epi64x(*apx.add((p + t) * 4 + i) as i64);
                *vt = _mm256_and_si256(ai, b);
            }
            let (s0, c0) = csa256(ones, v[0], v[1]);
            let (s1, c1) = csa256(s0, v[2], v[3]);
            let (s2, c2) = csa256(s1, v[4], v[5]);
            let (s3, c3) = csa256(s2, v[6], v[7]);
            ones = s3;
            let (t0, f0) = csa256(twos, c0, c1);
            let (t1, f1) = csa256(t0, c2, c3);
            twos = t1;
            let (f2, eights) = csa256(fours, f0, f1);
            fours = f2;
            acc8 = _mm256_add_epi64(acc8, mula_popcnt256(eights, lut, low_mask, zero));
            p += 8;
        }
        while p < kc {
            let b = _mm256_loadu_si256(bpx.add(p * 4) as *const __m256i);
            let ai = _mm256_set1_epi64x(*apx.add(p * 4 + i) as i64);
            let v = _mm256_and_si256(ai, b);
            acc1 = _mm256_add_epi64(acc1, mula_popcnt256(v, lut, low_mask, zero));
            p += 1;
        }
        let weighted = _mm256_add_epi64(
            _mm256_slli_epi64::<3>(acc8),
            _mm256_add_epi64(
                _mm256_slli_epi64::<2>(mula_popcnt256(fours, lut, low_mask, zero)),
                _mm256_add_epi64(
                    _mm256_slli_epi64::<1>(mula_popcnt256(twos, lut, low_mask, zero)),
                    _mm256_add_epi64(mula_popcnt256(ones, lut, low_mask, zero), acc1),
                ),
            ),
        );
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, weighted);
        for j in 0..4 {
            acc[i * 4 + j] += lanes[j];
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mula_impl(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 4 && acc.len() >= 16);
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut c = [zero; 4];
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    for p in 0..kc {
        let b = _mm256_loadu_si256(bpx.add(p * 4) as *const __m256i);
        for (i, ci) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_epi64x(*apx.add(p * 4 + i) as i64);
            let v = _mm256_and_si256(ai, b);
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
            let bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            *ci = _mm256_add_epi64(*ci, _mm256_sad_epu8(bytes, zero));
        }
    }
    for i in 0..4 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, c[i]);
        for j in 0..4 {
            acc[i * 4 + j] += lanes[j];
        }
    }
}
