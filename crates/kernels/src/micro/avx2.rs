//! AVX2 micro-kernels: the §V-A anti-pattern and the Mula software
//! vector popcount.
//!
//! Both kernels use a 4×4 register tile: one 256-bit load covers the four
//! `B̃` lanes of a packed word row, each `Ã` lane is broadcast, and four
//! 64-bit-lane accumulators live in `ymm` registers.
//!
//! Safety: the `#[target_feature]` inner functions are only reachable
//! through [`crate::micro::Kernel::resolve`], which verifies the CPU
//! features first; the safe wrappers additionally `debug_assert!` the
//! detection in test builds.

#![allow(unsafe_op_in_unsafe_fn)]

/// 4×4 extract/insert kernel (§V-A): SIMD AND, scalar `POPCNT` on each
/// extracted lane, results re-inserted for a SIMD accumulate.
pub(crate) fn kernel_extract_insert_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
        );
        // SAFETY: resolved kernels guarantee AVX2+POPCNT (see module docs).
        unsafe { extract_insert_impl(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        super::scalar::kernel_4x4(kc, ap, bp, acc)
    }
}

/// Scalar `POPCNT` pinned with inline asm so LLVM cannot pattern-match the
/// extract → popcnt → insert sequence back into `VPOPCNTQ` (it does, on
/// AVX-512 targets, which would silently un-measure the §V-A claim).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn popcnt_pinned(x: i64) -> i64 {
    let r: i64;
    // SAFETY: POPCNT availability is checked at kernel resolution.
    unsafe {
        std::arch::asm!(
            "popcnt {r}, {x}",
            r = out(reg) r,
            x = in(reg) x,
            options(pure, nomem, nostack)
        );
    }
    r
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn extract_insert_impl(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 4 && acc.len() >= 16);
    let mut c = [_mm256_setzero_si256(); 4];
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    for p in 0..kc {
        let b = _mm256_loadu_si256(bpx.add(p * 4) as *const __m256i);
        for (i, ci) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_epi64x(*apx.add(p * 4 + i) as i64);
            let v = _mm256_and_si256(ai, b);
            // The §V-A sequence: extract each lane, scalar POPCNT, insert.
            let l0 = popcnt_pinned(_mm256_extract_epi64::<0>(v));
            let l1 = popcnt_pinned(_mm256_extract_epi64::<1>(v));
            let l2 = popcnt_pinned(_mm256_extract_epi64::<2>(v));
            let l3 = popcnt_pinned(_mm256_extract_epi64::<3>(v));
            let counts = _mm256_set_epi64x(l3, l2, l1, l0);
            *ci = _mm256_add_epi64(*ci, counts);
        }
    }
    for i in 0..4 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, c[i]);
        for j in 0..4 {
            acc[i * 4 + j] += lanes[j];
        }
    }
}

/// 4×4 Mula kernel: per-byte popcount via `PSHUFB` nibble lookup, reduced
/// to per-64-bit-lane sums with `PSADBW` — a *software* vector popcount.
pub(crate) fn kernel_mula_4x4(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: resolved kernels guarantee AVX2 (see module docs).
        unsafe { mula_impl(kc, ap, bp, acc) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        super::scalar::kernel_4x4(kc, ap, bp, acc)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mula_impl(kc: usize, ap: &[u64], bp: &[u64], acc: &mut [u64]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * 4 && bp.len() >= kc * 4 && acc.len() >= 16);
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut c = [zero; 4];
    let apx = ap.as_ptr();
    let bpx = bp.as_ptr();
    for p in 0..kc {
        let b = _mm256_loadu_si256(bpx.add(p * 4) as *const __m256i);
        for (i, ci) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_epi64x(*apx.add(p * 4 + i) as i64);
            let v = _mm256_and_si256(ai, b);
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
            let bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            *ci = _mm256_add_epi64(*ci, _mm256_sad_epu8(bytes, zero));
        }
    }
    for i in 0..4 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, c[i]);
        for j in 0..4 {
            acc[i * 4 + j] += lanes[j];
        }
    }
}
