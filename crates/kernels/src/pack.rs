//! Packing routines — the middle layer of Figure 1.
//!
//! Packing copies a cache-block of the (already SNP-major, bit-packed)
//! genomic matrix into a contiguous buffer reordered into *micro-panels*:
//! `R` SNP columns interleaved word-by-word, so the micro-kernel reads both
//! operands with perfectly sequential, aligned streams:
//!
//! ```text
//! panel q, word p, lane i  ↦  buf[q·kc·R + p·R + i]   (SNP = start + q·R + i)
//! ```
//!
//! Columns past the end of the SNP range are padded with zero words; zero
//! lanes contribute zero to every popcount, so edge micro-tiles can run the
//! full `MR×NR` kernel and the driver simply discards the padded rows and
//! columns when scattering into `C`. This mirrors how BLIS handles fringe
//! cases, and is also why the zero-padding invariant of `ld-bitmat` exists.

use ld_bitmat::{AlignedWords, BitMatrixView};
use std::ops::Range;

/// Packs SNP columns `snps` over packed-word rows `words` into `R`-wide
/// interleaved micro-panels, appending zero lanes up to a multiple of `R`.
///
/// `out` is resized to exactly `ceil(|snps|/R) · |words| · R` words.
pub fn pack_panels(
    view: &BitMatrixView<'_>,
    snps: Range<usize>,
    words: Range<usize>,
    r: usize,
    out: &mut AlignedWords,
) {
    assert!(r > 0, "panel width must be positive");
    assert!(snps.end <= view.n_snps(), "snp range out of bounds");
    assert!(
        words.end <= view.words_per_snp(),
        "word range out of bounds"
    );
    let nsnps = snps.len();
    let kc = words.len();
    let n_panels = nsnps.div_ceil(r);
    out.resize_zeroed(n_panels * kc * r);

    for q in 0..n_panels {
        let panel = &mut out[q * kc * r..(q + 1) * kc * r];
        for i in 0..r {
            let snp_local = q * r + i;
            if snp_local < nsnps {
                let col = view.snp_words(snps.start + snp_local);
                let col = &col[words.clone()];
                // strided scatter: word p of this SNP lands at panel[p*r + i]
                for (p, &w) in col.iter().enumerate() {
                    panel[p * r + i] = w;
                }
            } else {
                // zero padding lane
                for p in 0..kc {
                    panel[p * r + i] = 0;
                }
            }
        }
    }
}

/// Number of words [`pack_panels`] writes for the given shape.
pub fn packed_len(nsnps: usize, kc: usize, r: usize) -> usize {
    nsnps.div_ceil(r) * kc * r
}

#[cfg(test)]
mod tests {
    // explicit `row * stride + col` index arithmetic reads better than
    // pre-folded literals in these layout tests
    #![allow(clippy::identity_op, clippy::erasing_op)]
    use super::*;
    use ld_bitmat::BitMatrix;

    /// A deterministic multi-word matrix for packing tests.
    fn mk(n_samples: usize, n_snps: usize) -> BitMatrix {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for s in 0..n_samples {
                if (s * 7 + j * 13) % 3 == 0 {
                    g.set(s, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn roundtrip_exact_panels() {
        let g = mk(128, 8); // 2 words per SNP
        let v = g.full_view();
        let mut buf = AlignedWords::new();
        pack_panels(&v, 0..8, 0..2, 4, &mut buf);
        assert_eq!(buf.len(), packed_len(8, 2, 4));
        // verify interleave: buf[q*kc*r + p*r + i] == word p of snp q*r+i
        for q in 0..2 {
            for p in 0..2 {
                for i in 0..4 {
                    let snp = q * 4 + i;
                    assert_eq!(
                        buf[q * 2 * 4 + p * 4 + i],
                        g.snp_words(snp)[p],
                        "q={q} p={p} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn edge_panel_zero_padded() {
        let g = mk(64, 6);
        let v = g.full_view();
        let mut buf = AlignedWords::new();
        pack_panels(&v, 0..6, 0..1, 4, &mut buf);
        assert_eq!(buf.len(), 2 * 1 * 4);
        // second panel lanes 2,3 are padding
        assert_eq!(buf[4 + 0], g.snp_words(4)[0]);
        assert_eq!(buf[4 + 1], g.snp_words(5)[0]);
        assert_eq!(buf[4 + 2], 0);
        assert_eq!(buf[4 + 3], 0);
    }

    #[test]
    fn subranges_select_correct_words() {
        let g = mk(200, 5); // 4 words per SNP
        let v = g.full_view();
        let mut buf = AlignedWords::new();
        pack_panels(&v, 2..5, 1..3, 2, &mut buf);
        // 3 snps -> 2 panels, kc=2, r=2
        assert_eq!(buf.len(), 2 * 2 * 2);
        assert_eq!(buf[0], g.snp_words(2)[1]);
        assert_eq!(buf[1], g.snp_words(3)[1]);
        assert_eq!(buf[2], g.snp_words(2)[2]);
        assert_eq!(buf[3], g.snp_words(3)[2]);
        assert_eq!(buf[4], g.snp_words(4)[1]);
        assert_eq!(buf[5], 0);
    }

    #[test]
    fn buffer_reuse_leaves_no_stale_words() {
        let g = mk(64, 8);
        let v = g.full_view();
        let mut buf = AlignedWords::new();
        pack_panels(&v, 0..8, 0..1, 4, &mut buf);
        let big = buf.len();
        pack_panels(&v, 0..3, 0..1, 4, &mut buf);
        assert!(buf.len() < big);
        // lane 3 of the only panel is padding and must be zero even though
        // the buffer previously held data there.
        assert_eq!(buf[3], 0);
    }

    #[test]
    #[should_panic(expected = "snp range out of bounds")]
    fn oob_snps_panics() {
        let g = mk(64, 4);
        let mut buf = AlignedWords::new();
        pack_panels(&g.full_view(), 0..5, 0..1, 4, &mut buf);
    }
}
