//! The blocked GEMM driver (two distinct SNP sets — Fig. 4 of the paper,
//! long-range and cross-population LD).

use crate::micro::Kernel;
use crate::pack::pack_panels;
use crate::{BlockSizes, KernelKind};
use ld_bitmat::{AlignedWords, BitMatrixView};
use ld_parallel::even_ranges;
use ld_trace::recorder::{Span, SpanKind};
use ld_trace::{Counter, Stopwatch};
use std::ops::Range;

/// Validates shapes shared by the GEMM entry points.
fn check_gemm(a: &BitMatrixView<'_>, b: &BitMatrixView<'_>, c_len: usize, ldc: usize) {
    assert_eq!(
        a.n_samples(),
        b.n_samples(),
        "GEMM operands must have the same number of samples"
    );
    assert!(
        a.n_samples() < u32::MAX as usize,
        "co-occurrence counts are stored as u32; sample count must fit"
    );
    assert!(
        ldc >= b.n_snps(),
        "ldc must be at least the number of B SNPs"
    );
    assert!(
        c_len >= a.n_snps().saturating_sub(1) * ldc + b.n_snps().max(usize::from(a.n_snps() > 0)),
        "C buffer too small for {} x {} output with ldc {}",
        a.n_snps(),
        b.n_snps(),
        ldc
    );
}

/// The five-loop blocked core. Accumulates `C += AᵀB` counts for the SNP
/// rows `a_rows` of `A` into the row-slab `c` (whose row 0 corresponds to
/// `a_rows.start` and whose column 0 corresponds to global B column
/// `c_col0`; pass `c_col0 = 0` for a full-width output buffer).
///
/// `skip_below_diagonal` implements the SYRK triangle: micro-tiles whose
/// entire row range lies strictly below the diagonal (`i > j` for all
/// covered entries) are skipped. The decision depends only on (i, j), never
/// on `pc`, so partial sums stay consistent across rank-k passes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_blocked(
    kernel: &Kernel,
    blocks: BlockSizes,
    a: &BitMatrixView<'_>,
    b: &BitMatrixView<'_>,
    a_rows: Range<usize>,
    b_cols: Range<usize>,
    c: &mut [u32],
    ldc: usize,
    c_col0: usize,
    skip_below_diagonal: bool,
) {
    debug_assert!(c_col0 <= b_cols.start);
    let k_words = a.words_per_snp();
    debug_assert_eq!(k_words, b.words_per_snp());
    let (mr, nr) = (kernel.mr(), kernel.nr());
    let bs = blocks.clamped(a_rows.len(), b_cols.len(), k_words);
    let mut abuf = AlignedWords::new();
    let mut bbuf = AlignedWords::new();
    // Accumulator tile (heap-free small array; max shape is 8x8).
    let mut acc = [0u64; 64];
    debug_assert!(mr * nr <= acc.len());

    // Per-layer observability: accumulate into plain locals and flush to
    // the ld-trace counters exactly once per call, so the hot loops never
    // touch an atomic. With the `metrics` feature off, `Stopwatch` is a
    // ZST whose `elapsed_ns()` is a const 0 and `ld_trace::add` is an
    // inlined no-op, so all of this folds away.
    let mut t_pack_a = 0u64;
    let mut t_pack_b = 0u64;
    let mut t_kernel = 0u64;
    let mut n_tiles = 0u64;
    let mut n_words = 0u64;
    let mut n_bytes_packed = 0u64;

    let mut jc = b_cols.start;
    while jc < b_cols.end {
        let ncur = bs.nc.min(b_cols.end - jc);
        let mut pc = 0usize;
        while pc < k_words {
            let kcur = bs.kc.min(k_words - pc);
            // Flight-recorder spans mirror the Stopwatch regions 1:1 so
            // the timeline and the counters describe the same code. A
            // span is two clock reads + four relaxed stores when a
            // recorder is active, one relaxed load when not, and nothing
            // at all with `metrics` off.
            let span = Span::begin(SpanKind::PackB);
            let sw = Stopwatch::start();
            pack_panels(b, jc..jc + ncur, pc..pc + kcur, nr, &mut bbuf);
            t_pack_b += sw.elapsed_ns();
            let b_bytes = (bbuf.len() * 8) as u64;
            span.end(b_bytes);
            n_bytes_packed += b_bytes;
            let mut ic = a_rows.start;
            while ic < a_rows.end {
                let mcur = bs.mc.min(a_rows.end - ic);
                // SYRK: an entire A block strictly below the diagonal of
                // this B block contributes nothing.
                if skip_below_diagonal && ic > jc + ncur - 1 {
                    ic += mcur;
                    continue;
                }
                let span = Span::begin(SpanKind::PackA);
                let sw = Stopwatch::start();
                pack_panels(a, ic..ic + mcur, pc..pc + kcur, mr, &mut abuf);
                t_pack_a += sw.elapsed_ns();
                let a_bytes = (abuf.len() * 8) as u64;
                span.end(a_bytes);
                n_bytes_packed += a_bytes;
                // One kernel-batch span covers the whole jr/ir register-
                // tile sweep of this (jc, pc, ic) block — coarse enough
                // that tracing never perturbs the tile loops themselves.
                let span = Span::begin(SpanKind::KernelBatch);
                let words_before = n_words;
                let sw = Stopwatch::start();
                let mut jr = 0usize;
                while jr < ncur {
                    let nrcur = nr.min(ncur - jr);
                    let bp = &bbuf[(jr / nr) * kcur * nr..(jr / nr + 1) * kcur * nr];
                    let gj1 = jc + jr + nrcur - 1;
                    let mut ir = 0usize;
                    while ir < mcur {
                        let mrcur = mr.min(mcur - ir);
                        let gi0 = ic + ir;
                        if skip_below_diagonal && gi0 > gj1 {
                            ir += mr;
                            continue;
                        }
                        // A micro-tile is counted once, on its first rank-k
                        // pass: the (i, j) skip decision never depends on
                        // `pc`, so the pc == 0 pass visits exactly the set
                        // of distinct tiles.
                        if pc == 0 {
                            n_tiles += 1;
                        }
                        n_words += (kcur * mr * nr) as u64;
                        let ap = &abuf[(ir / mr) * kcur * mr..(ir / mr + 1) * kcur * mr];
                        acc[..mr * nr].fill(0);
                        kernel.run(kcur, ap, bp, &mut acc[..mr * nr]);
                        // Scatter the valid region into C.
                        for i in 0..mrcur {
                            let row = gi0 + i - a_rows.start;
                            let base = row * ldc + (jc + jr - c_col0);
                            for j in 0..nrcur {
                                c[base + j] += acc[i * nr + j] as u32;
                            }
                        }
                        ir += mr;
                    }
                    jr += nr;
                }
                t_kernel += sw.elapsed_ns();
                span.end(n_words - words_before);
                ic += mcur;
            }
            pc += kcur;
        }
        jc += ncur;
    }

    ld_trace::add(Counter::PackANs, t_pack_a);
    ld_trace::add(Counter::PackBNs, t_pack_b);
    ld_trace::add(Counter::KernelNs, t_kernel);
    ld_trace::add(Counter::KernelTiles, n_tiles);
    ld_trace::add(Counter::KernelWords, n_words);
    ld_trace::add(Counter::BytesPacked, n_bytes_packed);
}

/// Computes all `m × n` co-occurrence counts `C[i,j] = s_iᵀ s_j` between
/// the SNPs of `a` and `b` into `c` (row-major with leading dimension
/// `ldc`), overwriting previous contents.
///
/// This is the integer core of `H = (1/N) GᵀG` for two different genomic
/// matrices (Fig. 4): divide by `n_samples` to get haplotype frequencies.
///
/// # Panics
/// If the sample counts differ or `c` is too small.
pub fn gemm_counts_buf(
    a: &BitMatrixView<'_>,
    b: &BitMatrixView<'_>,
    c: &mut [u32],
    ldc: usize,
    kind: KernelKind,
    blocks: BlockSizes,
) {
    check_gemm(a, b, c.len(), ldc);
    let kernel = Kernel::resolve(kind).expect("requested kernel not supported on this CPU");
    for row in c.chunks_mut(ldc).take(a.n_snps()) {
        row[..b.n_snps()].fill(0);
    }
    gemm_blocked(
        &kernel,
        blocks,
        a,
        b,
        0..a.n_snps(),
        0..b.n_snps(),
        c,
        ldc,
        0,
        false,
    );
}

/// Convenience wrapper: allocates and returns the `m × n` counts matrix.
pub fn gemm_counts(a: &BitMatrixView<'_>, b: &BitMatrixView<'_>, kind: KernelKind) -> Vec<u32> {
    let mut c = vec![0u32; a.n_snps() * b.n_snps()];
    gemm_counts_buf(a, b, &mut c, b.n_snps(), kind, BlockSizes::default());
    c
}

/// Multithreaded [`gemm_counts_buf`]: the `m` (A-SNP) dimension is split
/// into `threads` even row slabs, each computed by one worker — the BLIS
/// loop-around-the-macro-kernel parallelization the paper uses for
/// Tables I–III.
pub fn gemm_counts_mt(
    a: &BitMatrixView<'_>,
    b: &BitMatrixView<'_>,
    c: &mut [u32],
    ldc: usize,
    kind: KernelKind,
    blocks: BlockSizes,
    threads: usize,
) {
    check_gemm(a, b, c.len(), ldc);
    let kernel = Kernel::resolve(kind).expect("requested kernel not supported on this CPU");
    for row in c.chunks_mut(ldc).take(a.n_snps()) {
        row[..b.n_snps()].fill(0);
    }
    let threads = threads.max(1).min(a.n_snps().max(1));
    if threads == 1 {
        gemm_blocked(
            &kernel,
            blocks,
            a,
            b,
            0..a.n_snps(),
            0..b.n_snps(),
            c,
            ldc,
            0,
            false,
        );
        return;
    }
    let ranges = even_ranges(a.n_snps(), threads);
    // Slice C into disjoint contiguous row slabs, one per worker.
    let mut slabs: Vec<(&mut [u32], Range<usize>)> = Vec::with_capacity(threads);
    let mut rest = c;
    let mut offset = 0usize;
    for r in &ranges {
        let take = (r.end - offset) * ldc;
        let (slab, tail) = rest.split_at_mut(take.min(rest.len()));
        slabs.push((slab, r.clone()));
        rest = tail;
        offset = r.end;
    }
    std::thread::scope(|s| {
        for (slab, rows) in slabs {
            if rows.is_empty() {
                continue;
            }
            let kernel = &kernel;
            s.spawn(move || {
                gemm_blocked(
                    kernel,
                    blocks,
                    a,
                    b,
                    rows,
                    0..b.n_snps(),
                    slab,
                    ldc,
                    0,
                    false,
                );
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::supported_kernels;
    use crate::reference::gemm_counts_naive;
    use ld_bitmat::BitMatrix;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 5 < 2 {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn blocked_matches_naive_all_kernels() {
        let a = pseudo(100, 13, 1);
        let b = pseudo(100, 9, 2);
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        for k in supported_kernels() {
            let got = gemm_counts(&a.full_view(), &b.full_view(), k.kind());
            assert_eq!(got, expect, "kernel {}", k.kind());
        }
    }

    #[test]
    fn blocked_matches_naive_odd_shapes() {
        // Shapes chosen to hit every fringe path: single SNP, non-multiples
        // of MR/NR, sample counts straddling word boundaries.
        for (ns, ma, nb) in [
            (1usize, 1usize, 1usize),
            (63, 5, 7),
            (64, 4, 8),
            (65, 17, 3),
            (200, 33, 31),
        ] {
            let a = pseudo(ns, ma, ns as u64);
            let b = pseudo(ns, nb, ns as u64 + 17);
            let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
            let got = gemm_counts(&a.full_view(), &b.full_view(), KernelKind::Auto);
            assert_eq!(got, expect, "shape ({ns},{ma},{nb})");
        }
    }

    #[test]
    fn tiny_blocks_stress_the_loop_structure() {
        let a = pseudo(300, 23, 5);
        let b = pseudo(300, 19, 6);
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        let blocks = BlockSizes {
            kc: 2,
            mc: 3,
            nc: 5,
        };
        let mut c = vec![0u32; 23 * 19];
        gemm_counts_buf(
            &a.full_view(),
            &b.full_view(),
            &mut c,
            19,
            KernelKind::Auto,
            blocks,
        );
        assert_eq!(c, expect);
    }

    #[test]
    fn ldc_larger_than_n_leaves_gaps_untouched() {
        let a = pseudo(64, 4, 9);
        let b = pseudo(64, 3, 10);
        let ldc = 5;
        let mut c = vec![u32::MAX; 4 * ldc];
        gemm_counts_buf(
            &a.full_view(),
            &b.full_view(),
            &mut c,
            ldc,
            KernelKind::Auto,
            BlockSizes::default(),
        );
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(c[i * ldc + j], expect[i * 3 + j]);
            }
            // padding columns untouched
            assert_eq!(c[i * ldc + 3], u32::MAX);
            assert_eq!(c[i * ldc + 4], u32::MAX);
        }
    }

    #[test]
    fn multithreaded_matches_single() {
        let a = pseudo(150, 40, 11);
        let b = pseudo(150, 37, 12);
        let expect = gemm_counts(&a.full_view(), &b.full_view(), KernelKind::Auto);
        for threads in [1usize, 2, 3, 7, 64] {
            let mut c = vec![0u32; 40 * 37];
            gemm_counts_mt(
                &a.full_view(),
                &b.full_view(),
                &mut c,
                37,
                KernelKind::Auto,
                BlockSizes::default(),
                threads,
            );
            assert_eq!(c, expect, "threads={threads}");
        }
    }

    #[test]
    fn buf_overwrites_stale_contents() {
        let a = pseudo(64, 3, 13);
        let b = pseudo(64, 3, 14);
        let mut c = vec![99u32; 9];
        gemm_counts_buf(
            &a.full_view(),
            &b.full_view(),
            &mut c,
            3,
            KernelKind::Auto,
            BlockSizes::default(),
        );
        assert_eq!(c, gemm_counts_naive(&a.full_view(), &b.full_view()));
    }

    #[test]
    #[should_panic(expected = "same number of samples")]
    fn sample_mismatch_panics() {
        let a = BitMatrix::zeros(10, 2);
        let b = BitMatrix::zeros(11, 2);
        gemm_counts(&a.full_view(), &b.full_view(), KernelKind::Auto);
    }

    #[test]
    #[should_panic(expected = "C buffer too small")]
    fn short_c_panics() {
        let a = BitMatrix::zeros(10, 2);
        let b = BitMatrix::zeros(10, 2);
        let mut c = vec![0u32; 3];
        gemm_counts_buf(
            &a.full_view(),
            &b.full_view(),
            &mut c,
            2,
            KernelKind::Auto,
            BlockSizes::default(),
        );
    }

    #[test]
    fn views_restrict_the_computation() {
        let a = pseudo(90, 10, 20);
        let expect_full = gemm_counts_naive(&a.full_view(), &a.full_view());
        let va = a.view(2, 6); // 4 snps
        let vb = a.view(5, 10); // 5 snps
        let got = gemm_counts(&va, &vb, KernelKind::Auto);
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(got[i * 5 + j], expect_full[(i + 2) * 10 + (j + 5)]);
            }
        }
    }
}
